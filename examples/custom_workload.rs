//! Author a custom workload with [`ProgramBuilder`] and analyze its value
//! predictability — the full pipeline (assemble → trace → DFG → predictors
//! → machine model) on your own code.
//!
//! The example program is a polynomial evaluator over a table: one strided,
//! perfectly predictable induction chain and one data-dependent Horner
//! accumulation that no value predictor can collapse.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use fetchvp_core::{IdealConfig, IdealMachine, VpConfig};
use fetchvp_dfg::analyze;
use fetchvp_isa::{AluOp, Cond, ProgramBuilder, Reg};
use fetchvp_predictor::{
    ConfidenceConfig, LastValuePredictor, StridePredictor, TableGeometry, ValuePredictor,
};
use fetchvp_trace::trace_program;

fn main() {
    // -- 1. Write the program with the assembler-style builder --
    let mut b = ProgramBuilder::new("horner");
    let (acc, i, budget, t, coeffs) = (Reg::R2, Reg::R3, Reg::R4, Reg::R9, 0x1000u64);
    for k in 0..64u64 {
        b.data_word(coeffs + k, 0x9E37_79B9u64.wrapping_mul(k + 1)); // "random" coefficients
    }
    let head = b.bind_label("head");
    // A three-step, perfectly stride-predictable accounting chain — value
    // prediction can collapse this...
    b.alu_imm(AluOp::Add, budget, budget, 2);
    b.alu_imm(AluOp::And, t, i, 63); // coefficient index (predictable)
    b.load(t, t, coeffs as i64); //    c_i (data-dependent)
    b.alu_imm(AluOp::Add, budget, budget, 5);
    // ...and a two-step Horner recurrence on data-dependent values, which
    // it cannot.
    b.alu_imm(AluOp::Mul, acc, acc, 3); // acc = acc*3 + c_i
    b.alu(AluOp::Add, acc, acc, t);
    b.alu_imm(AluOp::Add, i, i, 1); // induction (predictable)
    b.alu_imm(AluOp::Add, budget, budget, 9);
    b.branch(Cond::Geu, i, Reg::R0, head); // loop forever
    b.halt();
    let program = b.build().expect("program assembles");
    println!("{program}");

    // -- 2. Trace it and inspect the dependence structure --
    let trace = trace_program(&program, 100_000);
    let analysis = analyze(&trace);
    println!("arcs: {}, average DID {:.2}", analysis.arcs, analysis.avg_did());
    println!(
        "predictable: {:.0}% ({:.0}% with DID >= 4)",
        100.0 * analysis.predictability.fraction_predictable(),
        100.0 * analysis.predictability.fraction_predictable_long(4),
    );

    // -- 3. Compare predictors head-to-head on the raw value stream --
    let mut last: Box<dyn ValuePredictor> =
        Box::new(LastValuePredictor::new(TableGeometry::Infinite, ConfidenceConfig::paper()));
    let mut stride: Box<dyn ValuePredictor> =
        Box::new(StridePredictor::new(TableGeometry::Infinite, ConfidenceConfig::paper()));
    for rec in &trace {
        if rec.produces_value() {
            for p in [&mut last, &mut stride] {
                let predicted = p.lookup(rec.pc);
                p.commit(rec.pc, rec.result, predicted);
            }
        }
    }
    for p in [&last, &stride] {
        let s = p.stats();
        println!(
            "{:>10}: coverage {:>5.1}%, accuracy {:>5.1}%",
            p.name(),
            100.0 * s.coverage(),
            100.0 * s.accuracy()
        );
    }

    // -- 4. Does value prediction pay off? Only with fetch bandwidth. --
    for fetch_rate in [4, 16, 40] {
        let base = IdealMachine::new(IdealConfig {
            fetch_rate,
            vp: VpConfig::None,
            ..IdealConfig::default()
        })
        .run(&trace);
        let vp = IdealMachine::new(IdealConfig {
            fetch_rate,
            vp: VpConfig::stride_infinite(),
            ..IdealConfig::default()
        })
        .run(&trace);
        println!("fetch {fetch_rate:>2}: VP speedup {:>5.1}%", 100.0 * vp.speedup_over(&base));
    }
}
