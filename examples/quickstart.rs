//! Quickstart: measure how instruction-fetch bandwidth gates the benefit of
//! value prediction, on one benchmark, in ~30 lines of code.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fetchvp_core::{IdealConfig, IdealMachine, VpConfig};
use fetchvp_trace::trace_program;
use fetchvp_workloads::{by_name, WorkloadParams};

fn main() {
    // 1. Build the synthetic `m88ksim` benchmark and capture a trace, as
    //    the paper does with Shade (scaled down from its 100M instructions).
    let workload = by_name("m88ksim", &WorkloadParams::default()).expect("known benchmark");
    let trace = trace_program(workload.program(), 200_000);
    println!("benchmark : {} — {}", workload.name(), workload.description());
    println!("{}\n", trace.stats());

    // 2. Sweep the ideal machine's fetch/issue rate with and without the
    //    stride value predictor (Figure 3.1's experiment).
    println!("{:>8} {:>10} {:>10} {:>9}", "fetch BW", "base IPC", "VP IPC", "speedup");
    for fetch_rate in [4, 8, 16, 32, 40] {
        let base = IdealMachine::new(IdealConfig {
            fetch_rate,
            vp: VpConfig::None,
            ..IdealConfig::default()
        })
        .run(&trace);
        let vp = IdealMachine::new(IdealConfig {
            fetch_rate,
            vp: VpConfig::stride_infinite(),
            ..IdealConfig::default()
        })
        .run(&trace);
        println!(
            "{:>8} {:>10.2} {:>10.2} {:>8.1}%",
            fetch_rate,
            base.ipc(),
            vp.ipc(),
            100.0 * vp.speedup_over(&base)
        );
    }

    // 3. The paper's central observation, measured directly: how many
    //    correct predictions were *useless* because the consumer was
    //    fetched too late.
    let narrow = IdealMachine::new(IdealConfig {
        fetch_rate: 4,
        vp: VpConfig::stride_infinite(),
        ..IdealConfig::default()
    })
    .run(&trace);
    let wide = IdealMachine::new(IdealConfig {
        fetch_rate: 40,
        vp: VpConfig::stride_infinite(),
        ..IdealConfig::default()
    })
    .run(&trace);
    println!(
        "\ncorrect-but-useless predictions: {:.0}% of deps at fetch-4, {:.0}% at fetch-40",
        100.0 * narrow.deps.useless_fraction(),
        100.0 * wide.deps.useless_fraction(),
    );
}
