//! Out-of-core replay: run a machine sweep from an on-disk chunked trace
//! store instead of an in-memory trace, through the content-addressed
//! trace cache — the workflow behind `fetchvp fig3-1 --trace-len
//! 100000000 --trace-dir DIR` (the paper's Shade traces are 100M
//! instructions; a materialized trace that size is ~4 GB of columns,
//! while chunked replay peaks under a single chunk window).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example out_of_core
//! ```

use std::fs::File;
use std::io::BufWriter;

use fetchvp_core::{run_batch, IdealConfig, MachineConfig, VpConfig};
use fetchvp_trace::trace_program;
use fetchvp_tracestore::{
    run_batch_store, stream_program_to_store, stream_store_stats, TraceDir, TraceKey,
    DEFAULT_CHUNK_LEN,
};
use fetchvp_workloads::{by_name, WorkloadParams};

fn main() {
    let params = WorkloadParams::default();
    let workload = by_name("m88ksim", &params).expect("known benchmark");
    let trace_len: u64 = 200_000;

    // 1. The content-addressed cache: traces are keyed by (workload, seed,
    //    scale, length, format version), so a second process asking for
    //    the same trace opens the file instead of re-generating.
    let root = std::env::temp_dir().join("fetchvp-example-out-of-core");
    let dir = TraceDir::new(&root);
    let key = TraceKey::benchmark(workload.name(), params.seed, params.scale, trace_len);
    let generate = |path: &std::path::Path| {
        // Streaming generation: the executor emits rows chunk-by-chunk
        // straight to disk; the full trace never exists in memory.
        stream_program_to_store(
            workload.program(),
            workload.name(),
            trace_len,
            DEFAULT_CHUNK_LEN,
            BufWriter::new(File::create(path)?),
        )
        .map(|_| ())
    };
    dir.open_or_create(&key, generate).expect("populate trace cache");
    // A second lookup is a pure hit: the generator is never called again.
    let store = dir
        .open_or_create(&key, |_| unreachable!("second lookup must hit"))
        .expect("reopen cached store");
    let counters = dir.counters();
    println!(
        "cache: {} hit(s), {} miss(es), {} bytes at {}",
        counters.hits,
        counters.misses,
        counters.bytes,
        store.path().display()
    );
    println!(
        "store: {} instructions in {} chunk(s) of <= {}",
        store.len(),
        store.chunks().len(),
        store.chunk_target()
    );

    // 2. Streamed statistics — one chunk in memory at a time.
    let stats = stream_store_stats(&store).expect("streamed stats");
    println!("\n{stats}\n");

    // 3. Chunked replay is byte-identical to the in-memory batch path.
    let configs: Vec<MachineConfig> = [VpConfig::None, VpConfig::stride_infinite()]
        .into_iter()
        .map(|vp| {
            MachineConfig::Ideal(IdealConfig { fetch_rate: 16, vp, ..IdealConfig::default() })
        })
        .collect();
    let from_disk = run_batch_store(&store, &configs).expect("out-of-core replay");
    let in_memory = run_batch(&trace_program(workload.program(), trace_len), &configs);
    assert_eq!(from_disk, in_memory, "chunked replay must match the in-memory path");
    println!(
        "ideal fetch-16: base IPC {:.2}, stride-VP IPC {:.2} — identical from disk and memory",
        from_disk[0].ipc(),
        from_disk[1].ipc()
    );

    std::fs::remove_dir_all(&root).expect("remove example cache dir");
}
