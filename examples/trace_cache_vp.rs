//! High-bandwidth fetch and the §4 banked value-prediction front-end.
//!
//! Compares, on one benchmark, the realistic machine of §5 across its
//! front-ends (conventional fetch at 1 and 4 taken branches per cycle, and
//! the trace cache) and shows the banked prediction table, the address
//! router and the value distributor in action, including the bank-conflict
//! and same-PC-merge statistics of the proposed hardware.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example trace_cache_vp
//! ```

use fetchvp_core::{BtbKind, FrontEnd, RealisticConfig, RealisticMachine, VpConfig};
use fetchvp_fetch::TraceCacheConfig;
use fetchvp_predictor::BankedConfig;
use fetchvp_trace::trace_program;
use fetchvp_workloads::{by_name, WorkloadParams};

fn main() {
    let workload = by_name("vortex", &WorkloadParams::default()).expect("known benchmark");
    let trace = trace_program(workload.program(), 200_000);
    println!("benchmark: {} ({} instructions)\n", workload.name(), trace.len());

    let front_ends = [
        ("conventional, 1 taken branch/cycle", conventional(Some(1))),
        ("conventional, 4 taken branches/cycle", conventional(Some(4))),
        ("trace cache (64 x 32-instr lines)", trace_cache()),
    ];

    println!("{:<38} {:>9} {:>9} {:>9}", "front-end", "base IPC", "VP IPC", "speedup");
    for (label, fe) in front_ends {
        let base = RealisticMachine::new(RealisticConfig::paper(fe, VpConfig::None)).run(&trace);
        // Value predictions flow through the §4 banked front-end: a
        // 16-bank interleaved table behind the address router and value
        // distributor.
        let vp = RealisticMachine::new(
            RealisticConfig::paper(fe, VpConfig::stride_infinite())
                .with_banked(BankedConfig::new(16)),
        )
        .run(&trace);
        println!(
            "{label:<38} {:>9.2} {:>9.2} {:>8.1}%",
            base.ipc(),
            vp.ipc(),
            100.0 * vp.speedup_over(&base)
        );
        if let Some(tc) = vp.trace_cache_stats {
            println!(
                "{:<38} trace-cache hit rate {:.0}%, {} fills",
                "",
                100.0 * tc.hit_rate(),
                tc.fills
            );
        }
        if let Some(banked) = vp.banked_stats {
            println!(
                "{:<38} router: {} granted, {} merged (loop copies), {} denied ({:.1}%)",
                "",
                banked.granted,
                banked.merged,
                banked.denied,
                100.0 * banked.denial_rate()
            );
        }
    }

    // Ablation: how many banks does the interleaved table need?
    println!("\nbank-count ablation (trace cache front-end):");
    let fe = trace_cache();
    let base = RealisticMachine::new(RealisticConfig::paper(fe, VpConfig::None)).run(&trace);
    for banks in [1u32, 2, 4, 8, 16, 64] {
        let vp = RealisticMachine::new(
            RealisticConfig::paper(fe, VpConfig::stride_infinite())
                .with_banked(BankedConfig::new(banks)),
        )
        .run(&trace);
        let b = vp.banked_stats.expect("banked stats present");
        println!(
            "  {banks:>3} banks: speedup {:>6.1}%, denial rate {:>5.1}%",
            100.0 * vp.speedup_over(&base),
            100.0 * b.denial_rate()
        );
    }
}

fn conventional(max_taken: Option<u32>) -> FrontEnd {
    FrontEnd::Conventional { width: 40, max_taken, btb: BtbKind::two_level_paper() }
}

fn trace_cache() -> FrontEnd {
    FrontEnd::TraceCache { config: TraceCacheConfig::paper(), btb: BtbKind::two_level_paper() }
}
