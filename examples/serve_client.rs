//! Drive the `fetchvp serve` daemon end to end from plain `std::net`:
//! boot a server in-process on an ephemeral port, check its health,
//! submit a quick bench job, poll it to completion, scrape the metrics
//! registry, and shut the daemon down gracefully.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serve_client
//! ```
//!
//! Against an already-running daemon (`fetchvp serve`), the same five
//! requests work verbatim with `curl` — see the README's Serving section.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use fetchvp_metrics::Json;
use fetchvp_server::{Server, ServerConfig};

/// One `Connection: close` HTTP exchange; returns `(status, body)`.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).and_then(|()| stream.write_all(body.as_bytes())).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("complete response");
    let status = head.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    (status, body.to_string())
}

fn main() {
    // 1. Boot the daemon on an ephemeral loopback port, as `fetchvp serve
    //    --addr 127.0.0.1:0` would.
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let daemon = std::thread::spawn(move || server.run());
    println!("daemon    : listening on {addr}");

    // 2. Health check.
    let (status, body) = http(addr, "GET", "/healthz", "");
    println!("healthz   : {status} {body}");

    // 3. Submit a quick bench job; the daemon answers 202 + a job id.
    let spec = r#"{"experiment": "bench", "trace_len": 2000, "seed": 7}"#;
    let (status, body) = http(addr, "POST", "/run", spec);
    println!("run       : {status} {body}");
    assert_eq!(status, 202, "submission failed");
    let id = Json::parse(&body).unwrap().get("job").and_then(Json::as_u64).expect("job id");

    // 4. Poll the job until it reaches a terminal state.
    let deadline = Instant::now() + Duration::from_secs(60);
    let record = loop {
        let (_, body) = http(addr, "GET", &format!("/jobs/{id}"), "");
        let doc = Json::parse(&body).expect("job record");
        match doc.get("status").and_then(Json::as_str) {
            Some("done") | Some("failed") => break doc,
            _ if Instant::now() > deadline => panic!("job {id} never finished"),
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    };
    println!("job {id}     : {}", record.get("status").and_then(Json::as_str).unwrap());
    if let Some(workloads) = record.get_path("result.workloads").and_then(Json::as_object) {
        for (name, w) in workloads {
            let ipc = w
                .get("gauges")
                .and_then(|g| g.get("machine.ipc"))
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            println!(
                "  {name:<10} {} instructions, ipc {ipc:.2}",
                w.get("instructions").and_then(Json::as_u64).unwrap_or(0)
            );
        }
    }

    // 5. Scrape the live registry: server counters plus the simulator
    //    namespaces merged from the completed job.
    let (_, body) = http(addr, "GET", "/metrics", "");
    let metrics = Json::parse(&body).expect("metrics parse with our own Json");
    let counters = metrics.get("counters").and_then(Json::as_object).expect("counters");
    println!("metrics   : {} counters, e.g.", counters.len());
    for key in ["server.jobs.completed", "server.queue.admitted", "server.started"] {
        let value = counters.iter().find(|(k, _)| k == key).and_then(|(_, v)| v.as_u64());
        println!("  {key:<24} {}", value.unwrap_or(0));
    }

    // 6. Graceful shutdown: drains in-flight work, then `run()` returns.
    let (status, _) = http(addr, "POST", "/shutdown", "");
    println!("shutdown  : {status}");
    daemon.join().expect("daemon thread").expect("daemon exited with an error");
    println!("daemon    : exited cleanly");
}
