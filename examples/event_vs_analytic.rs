//! Cross-validation demo: the analytic §5 machine vs the event-driven one,
//! side by side on the full benchmark suite.
//!
//! The two implementations share a configuration but differ in buffering
//! assumptions (unbounded vs bounded fetch queue), so their absolute IPCs
//! diverge slightly — while every conclusion (value prediction helps, and
//! helps more with bandwidth) agrees. This is the repository's answer to
//! "how do you know the simulator is right?".
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example event_vs_analytic
//! ```

use fetchvp_core::event::EventMachine;
use fetchvp_core::{BtbKind, FrontEnd, RealisticConfig, RealisticMachine, VpConfig};
use fetchvp_trace::trace_program;
use fetchvp_workloads::{suite, WorkloadParams};

fn main() {
    let fe = FrontEnd::Conventional { width: 40, max_taken: Some(4), btb: BtbKind::Perfect };
    println!(
        "{:<10} {:>14} {:>14} {:>16} {:>16}",
        "benchmark", "analytic IPC", "event IPC", "analytic VP gain", "event VP gain"
    );
    for workload in suite(&WorkloadParams::default()) {
        let trace = trace_program(workload.program(), 60_000);
        let base_cfg = RealisticConfig::paper(fe, VpConfig::None);
        let vp_cfg = RealisticConfig::paper(fe, VpConfig::stride_infinite());

        let a_base = RealisticMachine::new(base_cfg).run(&trace);
        let a_vp = RealisticMachine::new(vp_cfg).run(&trace);
        let e_base = EventMachine::new(base_cfg).run(&trace);
        let e_vp = EventMachine::new(vp_cfg).run(&trace);

        println!(
            "{:<10} {:>14.2} {:>14.2} {:>15.1}% {:>15.1}%",
            workload.name(),
            a_base.ipc(),
            e_base.ipc(),
            100.0 * a_vp.speedup_over(&a_base),
            100.0 * e_vp.speedup_over(&e_base),
        );
    }
    println!("\n(cycle counts differ by design — the event model's bounded fetch");
    println!(" queue exerts back-pressure — but the orderings must agree; see");
    println!(" tests/model_cross_validation.rs for the machine-checked version)");
}
