//! Dynamic-instruction-distance analysis: reproduces the paper's §3.3
//! worked example (Figure 3.2, Table 3.2) and then the full-suite DID
//! statistics (Figures 3.3–3.5).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example did_analysis
//! ```

use fetchvp_dfg::DataflowGraph;
use fetchvp_experiments::{fig3_3, fig3_4, fig3_5, table3_2, ExperimentConfig};
use fetchvp_trace::trace_program;

fn main() {
    // -- The Figure 3.2 example graph and its Table 3.2 pipeline schedule --
    let program = table3_2::figure_3_2_program();
    let trace = trace_program(&program, 100);
    let dfg = DataflowGraph::build(&trace);
    println!("{dfg}");
    println!(
        "average DID of the example: {:.2} (the paper's graph: arcs of DID 1,1,1,2,4,4)\n",
        dfg.avg_did()
    );
    println!("{}", table3_2::run().to_table());

    // -- Full-suite DID statistics over the synthetic benchmarks --
    let cfg = ExperimentConfig { trace_len: 100_000, ..ExperimentConfig::default() };

    let f33 = fig3_3::run(&cfg);
    println!("{}", f33.to_table());
    println!(
        "every benchmark's average DID exceeds a 4-wide fetch: {}\n",
        f33.rows.iter().all(|(_, d)| *d > 4.0)
    );

    let f34 = fig3_4::run(&cfg);
    println!("{}", f34.to_table());
    println!(
        "average fraction of dependencies with DID >= 4: {:.0}% (paper: ~60%)\n",
        100.0 * f34.average_long_fraction()
    );

    let f35 = fig3_5::run(&cfg);
    println!("{}", f35.to_table());
    println!(
        "average predictable-and-short fraction: {:.0}% (paper: ~23%)",
        100.0 * f35.average_predictable_short()
    );
}
