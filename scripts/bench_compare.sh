#!/usr/bin/env bash
# Perf-regression gate: diffs two `fetchvp bench` JSON reports and fails
# when throughput (simulated instructions/second) drops by more than the
# threshold on the suite total or any workload.
#
# usage: bench_compare.sh OLD.json NEW.json [THRESHOLD_PCT]
#
#   THRESHOLD_PCT      tolerated slowdown, percent (default 15)
#   BENCH_WARN_ONLY=1  report the comparison but always exit 0 — for shared
#                      CI runners whose wall-clock timing is too noisy to
#                      hard-fail on (the local gate stays strict)
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ $# -lt 2 ]]; then
    echo "usage: $0 OLD.json NEW.json [THRESHOLD_PCT]" >&2
    exit 2
fi
old=$1
new=$2
threshold=${3:-15}

# A missing baseline is the expected state of a fresh checkout (the first
# bench run creates it) — nothing to gate against, so pass with a notice.
if [[ ! -f "$old" ]]; then
    echo "bench_compare: baseline '$old' not found — nothing to compare against (pass)"
    echo "bench_compare: create one with: cargo run --release -p fetchvp-cli -- bench --quick --out '$old'"
    exit 0
fi
if [[ ! -f "$new" ]]; then
    echo "bench_compare: new report '$new' not found" >&2
    exit 2
fi

bin=target/release/fetchvp-cli
if [[ ! -x "$bin" ]]; then
    echo "== building fetchvp-cli (release)"
    cargo build --release -p fetchvp-cli --offline 2>/dev/null \
        || cargo build --release -p fetchvp-cli
fi

if "$bin" bench-compare "$old" "$new" --threshold "$threshold"; then
    exit 0
fi
if [[ "${BENCH_WARN_ONLY:-0}" == 1 ]]; then
    echo "::warning::bench throughput regressed beyond ${threshold}% (warn-only mode)"
    exit 0
fi
echo "bench_compare: throughput regressed beyond ${threshold}% — failing" >&2
exit 1
