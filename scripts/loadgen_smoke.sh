#!/usr/bin/env bash
# Loadgen smoke test: boot a two-member `--peers` fleet on loopback,
# warm the result cache, drive it with `fetchvp loadgen` for a few
# seconds, and gate on a floor achieved-RPS (warn-only when
# BENCH_WARN_ONLY=1 — shared CI hosts have noisy wall-clock, the hard
# gate is for local runs). Always asserts the report is well-formed:
# a finite p99 and zero transport errors.
#
# Loopback only, no external dependencies. Expects the release binary
# (scripts/ci.sh runs this after `cargo build --release`).
#
# Tunables:
#   LOADGEN_RPS        offered rate            (default 1200)
#   LOADGEN_DURATION   seconds to sustain it   (default 5)
#   LOADGEN_FLOOR_RPS  minimum achieved RPS    (default 1000)
#   BENCH_WARN_ONLY=1  warn instead of failing on a floor miss
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/fetchvp-cli
[[ -x "$BIN" ]] || { echo "missing $BIN — run cargo build --release first" >&2; exit 1; }

RPS=${LOADGEN_RPS:-1200}
DURATION=${LOADGEN_DURATION:-5}
FLOOR=${LOADGEN_FLOOR_RPS:-1000}
REPORT=${LOADGEN_REPORT:-/tmp/loadgen_report.json}

# Two free loopback ports. $RANDOM collisions are retried below by
# checking that both daemons actually report their listen address.
LOG_A=$(mktemp) LOG_B=$(mktemp)
PID_A="" PID_B=""
cleanup() {
    [[ -n "$PID_A" ]] && kill "$PID_A" 2>/dev/null || true
    [[ -n "$PID_B" ]] && kill "$PID_B" 2>/dev/null || true
    rm -f "$LOG_A" "$LOG_B"
}
trap cleanup EXIT

started=0
for _ in 1 2 3 4 5; do
    PORT_A=$((20000 + RANDOM % 20000))
    PORT_B=$((20000 + RANDOM % 20000))
    [[ "$PORT_A" == "$PORT_B" ]] && continue
    ADDR_A="127.0.0.1:$PORT_A" ADDR_B="127.0.0.1:$PORT_B"
    PEERS="$ADDR_A,$ADDR_B"
    "$BIN" serve --addr "$ADDR_A" --peers "$PEERS" --workers 2 --queue-depth 64 \
        --result-cache 512 >"$LOG_A" 2>&1 &
    PID_A=$!
    "$BIN" serve --addr "$ADDR_B" --peers "$PEERS" --workers 2 --queue-depth 64 \
        --result-cache 512 >"$LOG_B" 2>&1 &
    PID_B=$!
    ok=1
    for log in "$LOG_A" "$LOG_B"; do
        for _ in $(seq 1 100); do
            grep -q "listening on" "$log" && break
            kill -0 "$PID_A" 2>/dev/null && kill -0 "$PID_B" 2>/dev/null || { ok=0; break; }
            sleep 0.1
        done
        grep -q "listening on" "$log" || ok=0
    done
    if [[ "$ok" == 1 ]]; then
        started=1
        break
    fi
    echo "== loadgen-smoke: port clash on $PEERS, retrying"
    cleanup
    LOG_A=$(mktemp) LOG_B=$(mktemp) PID_A="" PID_B=""
done
[[ "$started" == 1 ]] || { echo "fleet never came up"; cat "$LOG_A" "$LOG_B"; exit 1; }
echo "== loadgen-smoke: fleet up on $PEERS"

# http METHOD PATH [BODY] — prints the response body.
http() {
    local method=$1 path=$2 body=${3:-}
    if command -v curl >/dev/null; then
        if [[ "$method" == GET ]]; then
            curl -sS "http://$ADDR_A$path"
        else
            curl -sS -X "$method" --data-binary "$body" "http://$ADDR_A$path"
        fi
    else
        exec 3<>"/dev/tcp/127.0.0.1/$PORT_A"
        printf '%s %s HTTP/1.1\r\nHost: %s\r\nContent-Length: %s\r\n\r\n%s' \
            "$method" "$path" "$ADDR_A" "${#body}" "$body" >&3
        sed -e '1,/^\r$/d' <&3
        exec 3<&-
    fi
}

# Warm the fleet: run each spec of the loadgen default mix (keep in sync
# with DEFAULT_SPEC_MIX in crates/server/src/loadgen.rs) once to
# completion, so the measured pass is answered from the result cache.
echo "== loadgen-smoke: warming the result cache"
for spec in \
    '{"experiment": "table3-1", "trace_len": 1000}' \
    '{"experiment": "accuracy", "trace_len": 1000}' \
    '{"experiment": "table3-1", "trace_len": 2000}' \
    '{"experiment": "breakdown", "trace_len": 1000}'; do
    RUN=$(http POST /run "$spec")
    # Already warm: a cache hit answers inline with the result and no
    # job id — nothing to poll, this spec is done.
    if echo "$RUN" | grep -q '"cached": true'; then
        continue
    fi
    JOB=$(echo "$RUN" | grep -o '"job": [0-9]*' | grep -o '[0-9]*' | head -1)
    [[ -n "$JOB" ]] || { echo "no job id in: $RUN"; exit 1; }
    for _ in $(seq 1 600); do
        RECORD=$(http GET "/jobs/$JOB")
        echo "$RECORD" | grep -q '"status": "done"' && break
        echo "$RECORD" | grep -q '"status": "failed"' && { echo "warm-up job failed: $RECORD"; exit 1; }
        sleep 0.1
    done
    echo "$RECORD" | grep -q '"status": "done"' || { echo "warm-up never finished: $RECORD"; exit 1; }
done

echo "== loadgen-smoke: $RPS rps for ${DURATION}s across both members"
"$BIN" loadgen --addr "$PEERS" --rps "$RPS" --duration "$DURATION" --out "$REPORT"

ACHIEVED=$(grep -o '"achieved_rps": [0-9.]*' "$REPORT" | grep -o '[0-9.]*')
# The overall p99 lives in the top-level latency_us block; the
# per-class breakdown repeats the quantile keys, so scope to the block
# (the key appears exactly once, the report is pretty-printed).
P99=$(sed -n '/"latency_us": {/,/}/p' "$REPORT" \
    | grep -o '"p99": [0-9]*' | grep -o '[0-9]*$')
ERRORS=$(grep -o '"errors": [0-9]*' "$REPORT" | grep -o '[0-9]*')
[[ -n "$ACHIEVED" && -n "$P99" && -n "$ERRORS" ]] \
    || { echo "malformed report:"; cat "$REPORT"; exit 1; }

# The warmed cache answers the measured pass inline, either locally
# (2xx) or across the peer hop (proxied) — which one depends on how the
# specs shard across the two random ports, so accept either class.
grep -q '"by_class"' "$REPORT" || { echo "report missing by_class:"; cat "$REPORT"; exit 1; }
grep -q '"2xx"\|"proxied"' "$REPORT" \
    || { echo "report missing a cache-hit class:"; cat "$REPORT"; exit 1; }

# p99 must be a finite integer (the histogram always produces one when
# any request completed) and the transport must have been clean.
[[ "$P99" =~ ^[0-9]+$ ]] || { echo "p99 is not finite: $P99"; exit 1; }
[[ "$ERRORS" == 0 ]] || { echo "loadgen saw $ERRORS transport error(s)"; cat "$REPORT"; exit 1; }
echo "== loadgen-smoke: achieved ${ACHIEVED} rps, p99 ${P99}us"

if awk -v got="$ACHIEVED" -v floor="$FLOOR" 'BEGIN { exit !(got < floor) }'; then
    MSG="achieved ${ACHIEVED} rps is below the ${FLOOR} rps floor"
    if [[ "${BENCH_WARN_ONLY:-}" == 1 ]]; then
        echo "WARNING: $MSG (BENCH_WARN_ONLY=1, not failing)"
    else
        echo "FAIL: $MSG"
        exit 1
    fi
fi

# One observability scrape: either member merges the whole fleet.
echo "== loadgen-smoke: GET /fleet/metrics"
FLEET=$(http GET /fleet/metrics)
echo "$FLEET" | grep -q '"reporting": 2' \
    || { echo "fleet merge missing a member:"; echo "$FLEET" | head -5; exit 1; }
echo "$FLEET" | grep -q "\"$ADDR_A\"" && echo "$FLEET" | grep -q "\"$ADDR_B\"" \
    || { echo "fleet merge missing an address:"; echo "$FLEET" | head -5; exit 1; }
echo "$FLEET" | grep -q '"status": "self"' && echo "$FLEET" | grep -q '"status": "up"' \
    || { echo "fleet merge missing member statuses:"; echo "$FLEET" | head -5; exit 1; }

echo "== loadgen-smoke: shutting the fleet down"
http POST /shutdown | grep -q "shutting down"
if command -v curl >/dev/null; then
    curl -sS -X POST "http://$ADDR_B/shutdown" | grep -q "shutting down"
else
    exec 3<>"/dev/tcp/127.0.0.1/$PORT_B"
    printf 'POST /shutdown HTTP/1.1\r\nHost: %s\r\nContent-Length: 0\r\n\r\n' "$ADDR_B" >&3
    sed -e '1,/^\r$/d' <&3 | grep -q "shutting down"
    exec 3<&-
fi
wait "$PID_A" "$PID_B"
grep -q "shut down cleanly" "$LOG_A"
grep -q "shut down cleanly" "$LOG_B"
PID_A="" PID_B=""
echo "== loadgen-smoke: clean exit"
