#!/usr/bin/env bash
# Tier-1 CI gate: format, lint, docs, build, test, examples smoke.
#
# The workspace has no external dependencies, so everything also works on a
# machine with no registry access — if `cargo fetch` cannot reach a
# registry, every later step runs with `--offline`.
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=""
if ! cargo fetch --quiet 2>/dev/null; then
    echo "== registry unreachable, continuing with --offline"
    OFFLINE="--offline"
fi

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy $OFFLINE --workspace --all-targets -- -D warnings

echo "== cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc $OFFLINE --workspace --no-deps --quiet

# Doc examples are the API's contract — including the README code blocks,
# which doc-test through fetchvp-experiments.
echo "== cargo test --doc"
cargo test $OFFLINE -q --doc --workspace

echo "== tier-1: cargo build --release"
cargo build $OFFLINE --release

echo "== tier-1: cargo test -q"
cargo test $OFFLINE -q

for example in quickstart did_analysis trace_cache_vp custom_workload event_vs_analytic serve_client; do
    echo "== example: $example"
    cargo run $OFFLINE --release --example "$example" >/dev/null
done

echo "== server smoke"
./scripts/server_smoke.sh

echo "== CI green"
