#!/usr/bin/env bash
# Tier-1 CI gate: format, lint, docs, build, test, examples smoke.
#
# The workspace has no external dependencies, so everything also works on a
# machine with no registry access — if `cargo fetch` cannot reach a
# registry, every later step runs with `--offline`.
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=""
if ! cargo fetch --quiet 2>/dev/null; then
    echo "== registry unreachable, continuing with --offline"
    OFFLINE="--offline"
fi

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy $OFFLINE --workspace --all-targets -- -D warnings

echo "== cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc $OFFLINE --workspace --no-deps --quiet

# Doc examples are the API's contract — including the README code blocks,
# which doc-test through fetchvp-experiments.
echo "== cargo test --doc"
cargo test $OFFLINE -q --doc --workspace

echo "== tier-1: cargo build --release"
cargo build $OFFLINE --release

echo "== tier-1: cargo test -q"
cargo test $OFFLINE -q

# The batch kernel's correctness contract: batched configs produce counters
# byte-identical to serial runs, on every workload, at --jobs 1 and 8.
echo "== batch-vs-serial differential"
cargo test $OFFLINE -q -p fetchvp-experiments --test batch_vs_serial

# HTTP reader regressions: trailing keep-alive bytes, exact body reads and
# duplicate Content-Length handling.
echo "== http reader regressions"
cargo test $OFFLINE -q -p fetchvp-server --lib http::

# Out-of-core tracestore: chunked round-trip, corruption-hardening and
# cache-semantics tests (also covered by the workspace test run above;
# named here so a format change fails loudly), then a 20M-instruction
# smoke through the content-addressed trace cache — generation streams to
# disk, the machine sweep replays chunk-by-chunk, and the pre-generated
# trace is reused (the `trace-gen` line prints `already cached` when the
# sweep finds it warm).
echo "== tracestore tests"
cargo test $OFFLINE -q -p fetchvp-tracestore

echo "== out-of-core smoke (20M instructions)"
TRACE_DIR=$(mktemp -d)
cargo run $OFFLINE --release -p fetchvp-cli -- trace-gen m88ksim \
    --trace-len 20000000 --trace-dir "$TRACE_DIR"
cargo run $OFFLINE --release -p fetchvp-cli -- trace-info "$TRACE_DIR"/m88ksim-*.fvps
cargo run $OFFLINE --release -p fetchvp-cli -- usefulness \
    --trace-len 20000000 --trace-dir "$TRACE_DIR" --csv >/dev/null

# The flagship streaming e2e: the same 20M out-of-core sweep served over
# HTTP with a live `GET /jobs/<id>/events` follower — monotone progress,
# on-disk chunk indices in the events, and a result byte-identical to
# the in-process run. Reuses the traces the smoke above just generated.
echo "== out-of-core streaming e2e (20M instructions)"
FETCHVP_E2E_TRACE_DIR="$TRACE_DIR" cargo test $OFFLINE --release -q -p fetchvp-server \
    --test stream_e2e -- --ignored
rm -rf "$TRACE_DIR"

# The standing invariant gate: differentially fuzz sampled workload-family
# points across the spanning machine set (fixed seed — deterministic, and
# any failure prints a replayable repro tuple; see EXPERIMENTS.md).
echo "== fuzz-smoke"
cargo run $OFFLINE --release -p fetchvp-cli -- fuzz --cases 64 --seed 7

# Throughput expectation for the batched kernel (see EXPERIMENTS.md):
# warn-only, because wall-clock on shared CI hosts is too noisy to gate.
if [ -f benchmarks/BENCH_baseline.json ]; then
    echo "== bench gate (warn-only)"
    cargo run $OFFLINE --release -p fetchvp-cli -- bench --quick --out /tmp/BENCH_ci.json \
        >/dev/null
    BENCH_WARN_ONLY=1 ./scripts/bench_compare.sh benchmarks/BENCH_baseline.json \
        /tmp/BENCH_ci.json
fi

for example in quickstart did_analysis trace_cache_vp custom_workload event_vs_analytic serve_client out_of_core; do
    echo "== example: $example"
    cargo run $OFFLINE --release --example "$example" >/dev/null
done

echo "== server smoke"
./scripts/server_smoke.sh

# Fleet serving under load: a two-member --peers fleet, warmed result
# cache, open-loop loadgen, floor-RPS gate (warn-only — wall-clock on
# shared hosts is noisy; see EXPERIMENTS.md "Load testing").
echo "== loadgen smoke"
BENCH_WARN_ONLY=1 ./scripts/loadgen_smoke.sh

echo "== CI green"
