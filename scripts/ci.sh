#!/usr/bin/env bash
# Tier-1 CI gate: format, lint, build, test.
#
# The workspace has no external dependencies, so everything also works on a
# machine with no registry access — if `cargo fetch` cannot reach a
# registry, every later step runs with `--offline`.
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=""
if ! cargo fetch --quiet 2>/dev/null; then
    echo "== registry unreachable, continuing with --offline"
    OFFLINE="--offline"
fi

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy $OFFLINE --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release"
cargo build $OFFLINE --release

echo "== tier-1: cargo test -q"
cargo test $OFFLINE -q

echo "== CI green"
