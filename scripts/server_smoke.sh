#!/usr/bin/env bash
# Smoke test for the `fetchvp serve` daemon: boot it on an ephemeral
# loopback port, hit /healthz, run one quick job to completion, scrape
# /metrics, follow a second job live over `GET /jobs/<id>/events`, and
# shut it down gracefully, asserting a clean exit.
#
# Loopback only, no external dependencies: uses curl when present and
# falls back to bash's /dev/tcp otherwise. Expects the release binary to
# be built already (scripts/ci.sh runs it after `cargo build --release`).
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/fetchvp-cli
[[ -x "$BIN" ]] || { echo "missing $BIN — run cargo build --release first" >&2; exit 1; }

LOG=$(mktemp)
"$BIN" serve --addr 127.0.0.1:0 --workers 2 --queue-depth 4 >"$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; rm -f "$LOG"' EXIT

for _ in $(seq 1 100); do
    grep -q "listening on" "$LOG" && break
    sleep 0.1
done
ADDR=$(sed -n 's/^fetchvp-server listening on //p' "$LOG" | head -1)
[[ -n "$ADDR" ]] || { echo "server never reported its address:"; cat "$LOG"; exit 1; }
echo "== serve: listening on $ADDR"

# http METHOD PATH [BODY] — prints the response body.
http() {
    local method=$1 path=$2 body=${3:-}
    if command -v curl >/dev/null; then
        if [[ "$method" == GET ]]; then
            curl -sS "http://$ADDR$path"
        else
            curl -sS -X "$method" --data-binary "$body" "http://$ADDR$path"
        fi
    else
        exec 3<>"/dev/tcp/${ADDR%:*}/${ADDR#*:}"
        printf '%s %s HTTP/1.1\r\nHost: %s\r\nContent-Length: %s\r\n\r\n%s' \
            "$method" "$path" "$ADDR" "${#body}" "$body" >&3
        sed -e '1,/^\r$/d' <&3
        exec 3<&-
    fi
}

echo "== serve: GET /healthz"
http GET /healthz | grep -q '"status": "ok"'

echo "== serve: POST /run (quick bench job)"
RUN=$(http POST /run '{"experiment": "bench", "trace_len": 2000, "seed": 7}')
echo "$RUN" | grep -q '"status": "queued"'
JOB=$(echo "$RUN" | grep -o '"job": [0-9]*' | grep -o '[0-9]*')
[[ -n "$JOB" ]] || { echo "no job id in: $RUN"; exit 1; }

echo "== serve: polling /jobs/$JOB"
for _ in $(seq 1 600); do
    RECORD=$(http GET "/jobs/$JOB")
    echo "$RECORD" | grep -q '"status": "done"' && break
    echo "$RECORD" | grep -q '"status": "failed"' && { echo "job failed: $RECORD"; exit 1; }
    sleep 0.1
done
echo "$RECORD" | grep -q '"status": "done"' || { echo "job never finished: $RECORD"; exit 1; }

echo "== serve: GET /metrics"
METRICS=$(http GET /metrics)
echo "$METRICS" | grep -q '"server.jobs.completed": 1'
echo "$METRICS" | grep -q '"sched\.'
echo "$METRICS" | grep -q '"trace\.'

# http_prom PATH — GET with an Accept header asking for Prometheus text
# exposition; prints headers and body so the content type is assertable.
http_prom() {
    local path=$1
    if command -v curl >/dev/null; then
        curl -sS -i -H 'Accept: text/plain' "http://$ADDR$path"
    else
        exec 3<>"/dev/tcp/${ADDR%:*}/${ADDR#*:}"
        printf 'GET %s HTTP/1.1\r\nHost: %s\r\nAccept: text/plain\r\n\r\n' \
            "$path" "$ADDR" >&3
        cat <&3
        exec 3<&-
    fi
}

echo "== serve: GET /metrics (Prometheus exposition)"
PROM=$(http_prom /metrics)
echo "$PROM" | grep -qi 'content-type: text/plain; version=0.0.4' \
    || { echo "missing Prometheus content type:"; echo "$PROM" | head -5; exit 1; }
echo "$PROM" | grep -q '^fetchvp_server_jobs_completed 1' \
    || { echo "missing fetchvp_server_jobs_completed counter:"; echo "$PROM" | head -30; exit 1; }
echo "$PROM" | grep -q '^# TYPE fetchvp_server_jobs_completed counter' \
    || { echo "missing TYPE line:"; echo "$PROM" | head -30; exit 1; }
echo "$PROM" | grep -q '^# HELP fetchvp_server_jobs_completed ' \
    || { echo "missing HELP line:"; echo "$PROM" | head -30; exit 1; }

# stream PATH — GET with the response streamed to stdout as it arrives
# (chunked transfer; the server closes after the terminal event).
stream() {
    local path=$1
    if command -v curl >/dev/null; then
        curl -sS --no-buffer "http://$ADDR$path"
    else
        exec 3<>"/dev/tcp/${ADDR%:*}/${ADDR#*:}"
        printf 'GET %s HTTP/1.1\r\nHost: %s\r\n\r\n' "$path" "$ADDR" >&3
        cat <&3
        exec 3<&-
    fi
}

echo "== serve: streaming /jobs/<id>/events for a fresh job"
RUN=$(http POST /run '{"experiment": "bench", "trace_len": 60000, "seed": 8}')
JOB=$(echo "$RUN" | grep -o '"job": [0-9]*' | grep -o '[0-9]*')
[[ -n "$JOB" ]] || { echo "no job id in: $RUN"; exit 1; }
EVENTS=$(stream "/jobs/$JOB/events")
# At least one non-terminal progress event precedes the terminal one,
# and the stream ends at the terminal event (that's what closed it).
echo "$EVENTS" | grep -q '"phase": "queued"\|"phase": "running"' \
    || { echo "no progress events before the terminal:"; echo "$EVENTS" | head -10; exit 1; }
echo "$EVENTS" | grep -q '"phase": "done"' \
    || { echo "stream never reached the terminal event:"; echo "$EVENTS" | tail -10; exit 1; }
POLLED=$(http GET "/jobs/$JOB")
echo "$POLLED" | grep -q '"status": "done"' \
    || { echo "streamed job not done when polled: $POLLED"; exit 1; }

echo "== serve: POST /shutdown"
http POST /shutdown | grep -q "shutting down"
wait "$PID"
grep -q "shut down cleanly" "$LOG"
trap 'rm -f "$LOG"' EXIT
echo "== serve: clean exit"
