//! The central acceptance property: chunked out-of-core replay is
//! *byte-identical* to the in-memory batch path — same `MachineResult`s,
//! same metrics JSON — at the issue's 1M-instruction scale, across five
//! configurations spanning the paper's machine space.

mod common;

use std::fs::File;
use std::io::BufWriter;

use common::Scratch;
use fetchvp_core::{
    run_batch, BtbKind, FrontEnd, IdealConfig, MachineConfig, RealisticConfig, VpConfig,
};
use fetchvp_fetch::TraceCacheConfig;
use fetchvp_predictor::BankedConfig;
use fetchvp_trace::trace_program;
use fetchvp_tracestore::{run_batch_store, write_store, TraceStore};
use fetchvp_workloads::{by_name, WorkloadParams};

/// Five configurations spanning the machine space: ideal with and without
/// value prediction, conventional fetch, trace cache, and the banked
/// predictor front-end.
fn spanning_configs() -> Vec<MachineConfig> {
    let conv = FrontEnd::Conventional { width: 40, max_taken: Some(4), btb: BtbKind::Perfect };
    let tc =
        FrontEnd::TraceCache { config: TraceCacheConfig::paper(), btb: BtbKind::two_level_paper() };
    vec![
        MachineConfig::Ideal(IdealConfig { fetch_rate: 16, ..IdealConfig::default() }),
        MachineConfig::Ideal(IdealConfig {
            fetch_rate: 16,
            vp: VpConfig::stride_infinite(),
            ..IdealConfig::default()
        }),
        MachineConfig::Realistic(RealisticConfig::paper(conv, VpConfig::None)),
        MachineConfig::Realistic(RealisticConfig::paper(tc, VpConfig::stride_infinite())),
        MachineConfig::Realistic(
            RealisticConfig::paper(tc, VpConfig::stride_infinite())
                .with_banked(BankedConfig::new(2)),
        ),
    ]
}

#[test]
fn chunked_replay_metrics_json_is_byte_identical_at_1m() {
    let scratch = Scratch::new("identity");
    let params = WorkloadParams::default();
    let w = by_name("m88ksim", &params).expect("m88ksim in suite");
    let trace = trace_program(w.program(), 1_000_000);
    assert_eq!(trace.len(), 1_000_000);

    // Small chunks force many boundary crossings (and many lookahead
    // windows) without changing the result.
    let path = scratch.file("m88ksim-1m.fvps");
    write_store(&trace, 1 << 16, BufWriter::new(File::create(&path).unwrap())).unwrap();
    let store = TraceStore::open(&path).unwrap();
    assert_eq!(store.chunks().len(), 1_000_000usize.div_ceil(1 << 16));

    let configs = spanning_configs();
    let in_memory = run_batch(&trace, &configs);
    let chunked = run_batch_store(&store, &configs).unwrap();
    assert_eq!(in_memory.len(), chunked.len());
    for (cfg, (mem, ooc)) in configs.iter().zip(in_memory.iter().zip(&chunked)) {
        assert_eq!(mem, ooc, "results diverge for {cfg:?}");
        let mem_json = mem.metrics().to_json().to_json();
        let ooc_json = ooc.metrics().to_json().to_json();
        assert_eq!(mem_json, ooc_json, "metrics JSON diverges for {cfg:?}");
    }
}

#[test]
fn chunked_replay_is_identical_at_degenerate_chunk_sizes() {
    // One-instruction chunks maximize window churn; a single whole-trace
    // chunk exercises the no-lookahead-needed path.
    let scratch = Scratch::new("identity-degenerate");
    let params = WorkloadParams::default();
    let w = by_name("compress", &params).expect("compress in suite");
    let trace = trace_program(w.program(), 3_000);
    let configs = spanning_configs();
    let in_memory = run_batch(&trace, &configs);
    for chunk_len in [1usize, 97, trace.len()] {
        let path = scratch.file(&format!("compress-{chunk_len}.fvps"));
        write_store(&trace, chunk_len, BufWriter::new(File::create(&path).unwrap())).unwrap();
        let store = TraceStore::open(&path).unwrap();
        let chunked = run_batch_store(&store, &configs).unwrap();
        assert_eq!(in_memory, chunked, "diverged at chunk_len={chunk_len}");
    }
}
