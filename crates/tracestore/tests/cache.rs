//! Behavior of the content-addressed trace cache: miss-then-hit, counter
//! accounting, corrupt-entry regeneration, and failed-generation cleanup.

mod common;

use std::fs::{self, File};
use std::io::{self, BufWriter};

use common::Scratch;
use fetchvp_trace::trace_program;
use fetchvp_tracestore::{stream_program_to_store, TraceDir, TraceKey};
use fetchvp_workloads::{by_name, WorkloadParams};

fn generate(key: &TraceKey, path: &std::path::Path) -> io::Result<()> {
    let params = WorkloadParams { seed: key.seed, scale: key.scale };
    let w = by_name(&key.workload, &params).expect("known workload");
    let out = BufWriter::new(File::create(path)?);
    stream_program_to_store(w.program(), &key.workload, key.trace_len, 1024, out)?;
    Ok(())
}

#[test]
fn second_lookup_hits_without_generating() {
    let scratch = Scratch::new("cache-hit");
    let dir = TraceDir::new(scratch.path().join("traces"));
    let key = TraceKey::benchmark("gcc", WorkloadParams::default().seed, 1, 2_000);

    let first = dir.open_or_create(&key, |p| generate(&key, p)).unwrap();
    assert_eq!(first.len(), 2_000);
    let after_miss = dir.counters();
    assert_eq!((after_miss.hits, after_miss.misses), (0, 1));
    assert!(after_miss.bytes > 0, "generation bytes must be counted");

    // The second lookup must not invoke the generator at all.
    let second = dir.open_or_create(&key, |_| panic!("generator ran on a warm cache")).unwrap();
    assert_eq!(second.len(), 2_000);
    let after_hit = dir.counters();
    assert_eq!((after_hit.hits, after_hit.misses), (1, 1));
    assert_eq!(after_hit.bytes, after_miss.bytes, "a hit writes nothing");

    // A fresh `TraceDir` over the same root also hits: the cache is the
    // directory contents, not process state.
    let reopened = TraceDir::new(scratch.path().join("traces"));
    reopened.open_or_create(&key, |_| panic!("generator ran across processes")).unwrap();
    assert_eq!(reopened.counters().hits, 1);
}

#[test]
fn different_keys_live_in_different_files() {
    let scratch = Scratch::new("cache-keys");
    let dir = TraceDir::new(scratch.path().join("traces"));
    let a = TraceKey::benchmark("gcc", 1, 1, 1_000);
    let b = TraceKey::benchmark("gcc", 2, 1, 1_000);
    assert_ne!(dir.path_for(&a), dir.path_for(&b));
    dir.open_or_create(&a, |p| generate(&a, p)).unwrap();
    dir.open_or_create(&b, |p| generate(&b, p)).unwrap();
    assert_eq!(dir.counters().misses, 2);
    dir.open_or_create(&a, |_| panic!("warm key regenerated")).unwrap();
}

#[test]
fn corrupt_entry_is_regenerated() {
    let scratch = Scratch::new("cache-corrupt");
    let dir = TraceDir::new(scratch.path().join("traces"));
    let key = TraceKey::benchmark("perl", WorkloadParams::default().seed, 1, 1_500);
    dir.open_or_create(&key, |p| generate(&key, p)).unwrap();

    // Truncate the cached file; the next lookup must treat it as a miss
    // and regenerate, and the replacement must decode to the real trace.
    let path = dir.path_for(&key);
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    let store = dir.open_or_create(&key, |p| generate(&key, p)).unwrap();
    assert_eq!(dir.counters().misses, 2);
    let params = WorkloadParams::default();
    let expected = trace_program(by_name("perl", &params).unwrap().program(), 1_500);
    assert_eq!(store.to_trace().unwrap().columns(), expected.columns());
}

#[test]
fn failed_generation_leaves_no_residue() {
    let scratch = Scratch::new("cache-fail");
    let root = scratch.path().join("traces");
    let dir = TraceDir::new(&root);
    let key = TraceKey::benchmark("go", 3, 1, 1_000);
    let err = dir
        .open_or_create(&key, |p| {
            // Write something, then fail: the partial temp file must be
            // removed and the final path must not appear.
            fs::write(p, b"partial")?;
            Err(io::Error::other("generator exploded"))
        })
        .unwrap_err();
    assert_eq!(err.to_string(), "generator exploded");
    assert!(!dir.path_for(&key).exists());
    let leftovers: Vec<_> = fs::read_dir(&root)
        .map(|d| d.filter_map(Result::ok).map(|e| e.file_name()).collect())
        .unwrap_or_default();
    assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");

    // The failure is not cached: a working generator succeeds afterwards.
    dir.open_or_create(&key, |p| generate(&key, p)).unwrap();
    assert_eq!(dir.counters().misses, 2);
}
