//! Round-trip property tests: an in-memory trace written as a chunked
//! store and read back must be *equal*, for every workload in the suite
//! and a spread of sampled family points, at degenerate and realistic
//! chunk sizes alike.

mod common;

use std::fs::{self, File};
use std::io::BufWriter;

use common::Scratch;
use fetchvp_trace::{trace_program, Trace};
use fetchvp_tracestore::{
    stream_program_to_store, stream_store_stats, write_store, TraceStore, DEFAULT_CHUNK_LEN,
};
use fetchvp_workloads::rng::SplitMix64;
use fetchvp_workloads::{extended_suite, FamilyPoint, WorkloadParams};

/// Writes `trace` at `chunk_len`, reopens it, and checks every readable
/// property against the original.
fn assert_round_trips(scratch: &Scratch, trace: &Trace, chunk_len: usize, tag: &str) {
    let path = scratch.file(&format!("{tag}-{chunk_len}.fvps"));
    let summary = {
        let out = BufWriter::new(File::create(&path).unwrap());
        write_store(trace, chunk_len, out).unwrap()
    };
    assert_eq!(summary.instructions, trace.len() as u64, "{tag}");
    assert_eq!(summary.chunks, trace.len().div_ceil(chunk_len), "{tag}");
    assert_eq!(summary.bytes, fs::metadata(&path).unwrap().len(), "{tag}");

    let store = TraceStore::open(&path).unwrap();
    assert_eq!(store.name(), trace.name(), "{tag}");
    assert_eq!(store.outcome(), trace.outcome(), "{tag}");
    assert_eq!(store.len(), trace.len() as u64, "{tag}");

    let back = store.to_trace().unwrap();
    assert_eq!(back.columns(), trace.columns(), "{tag} chunk_len={chunk_len}");
    assert_eq!(back.name(), trace.name(), "{tag}");
    assert_eq!(back.outcome(), trace.outcome(), "{tag}");

    // Streamed per-chunk statistics must equal the in-memory ones.
    assert_eq!(stream_store_stats(&store).unwrap(), trace.stats(), "{tag}");
}

#[test]
fn every_suite_workload_round_trips_at_every_chunk_size() {
    let scratch = Scratch::new("suite");
    let params = WorkloadParams::default();
    for w in extended_suite(&params) {
        let trace = trace_program(w.program(), 3_000);
        assert!(!trace.is_empty(), "{}", w.name());
        for chunk_len in [1, 4096, trace.len()] {
            assert_round_trips(&scratch, &trace, chunk_len, w.name());
        }
    }
}

#[test]
fn sampled_family_points_round_trip() {
    let scratch = Scratch::new("family");
    let mut rng = SplitMix64::new(0xF00D_CAFE);
    for i in 0..32 {
        let point = FamilyPoint::sample(&mut rng);
        let trace = trace_program(&point.program(), 2_000);
        // Mix degenerate and realistic chunk sizes across the samples.
        let chunk_len = [1, 7, 1024, trace.len().max(1)][i % 4];
        assert_round_trips(&scratch, &trace, chunk_len, &format!("family-{i}"));
    }
}

#[test]
fn streaming_generation_writes_the_same_bytes_as_write_store() {
    // `stream_program_to_store` never materializes the trace, but its
    // executor, interning order and chunking are the same as
    // `trace_program` + `write_store` — so the files must be
    // byte-identical, not merely equivalent.
    let scratch = Scratch::new("stream");
    let params = WorkloadParams::default();
    for w in extended_suite(&params).iter().take(3) {
        let trace = trace_program(w.program(), 5_000);
        let mem_path = scratch.file(&format!("{}-mem.fvps", w.name()));
        write_store(&trace, 1024, BufWriter::new(File::create(&mem_path).unwrap())).unwrap();
        let stream_path = scratch.file(&format!("{}-stream.fvps", w.name()));
        let summary = stream_program_to_store(
            w.program(),
            w.name(),
            5_000,
            1024,
            BufWriter::new(File::create(&stream_path).unwrap()),
        )
        .unwrap();
        assert_eq!(summary.instructions, trace.len() as u64);
        assert_eq!(
            fs::read(&mem_path).unwrap(),
            fs::read(&stream_path).unwrap(),
            "streamed bytes diverge for {}",
            w.name()
        );
    }
}

#[test]
fn empty_trace_round_trips() {
    // A program that halts immediately produces an empty trace; the store
    // must represent it (zero chunks) and read it back.
    let scratch = Scratch::new("empty");
    let params = WorkloadParams::default();
    let w = &extended_suite(&params)[0];
    let trace = trace_program(w.program(), 0);
    assert!(trace.is_empty());
    assert_round_trips(&scratch, &trace, DEFAULT_CHUNK_LEN, "empty");
}
