//! Hostile-input hardening for the chunked reader: truncation at every
//! byte, bit flips at every position, and impossible length fields must
//! produce clean errors — never panics, never huge allocations.

mod common;

use std::fs::{self, File};
use std::io::BufWriter;

use common::Scratch;
use fetchvp_trace::trace_program;
use fetchvp_tracestore::{write_store, TraceStore};
use fetchvp_workloads::{by_name, WorkloadParams};

/// A small but structurally complete store: several chunks, a non-trivial
/// instruction table, memory rows and taken branches.
fn sample_store_bytes(scratch: &Scratch) -> Vec<u8> {
    let params = WorkloadParams::default();
    let w = by_name("go", &params).expect("go in suite");
    let trace = trace_program(w.program(), 200);
    let path = scratch.file("sample.fvps");
    write_store(&trace, 64, BufWriter::new(File::create(&path).unwrap())).unwrap();
    fs::read(&path).unwrap()
}

#[test]
fn every_truncation_point_is_rejected() {
    let scratch = Scratch::new("truncate");
    let bytes = sample_store_bytes(&scratch);
    let path = scratch.file("truncated.fvps");
    for len in 0..bytes.len() {
        fs::write(&path, &bytes[..len]).unwrap();
        let opened = TraceStore::open(&path);
        assert!(opened.is_err(), "a {len}-byte prefix of a {}-byte store opened", bytes.len());
    }
}

#[test]
fn bit_flips_never_panic_and_payload_flips_are_detected() {
    let scratch = Scratch::new("bitflip");
    let bytes = sample_store_bytes(&scratch);
    let store = TraceStore::open(scratch.file("sample.fvps")).unwrap();
    let payload_spans: Vec<(u64, u64)> =
        store.chunks().iter().map(|c| (c.offset, c.offset + c.byte_len)).collect();
    let original = store.to_trace().unwrap();

    let path = scratch.file("flipped.fvps");
    for pos in 0..bytes.len() {
        for bit in 0..8 {
            let mut mutated = bytes.clone();
            mutated[pos] ^= 1 << bit;
            fs::write(&path, &mutated).unwrap();
            // Opening and decoding must not panic; corruption inside a
            // chunk payload must be *detected*, because every payload
            // byte is covered by that chunk's checksum.
            let decoded = TraceStore::open(&path).and_then(|s| s.to_trace());
            let in_payload = payload_spans.iter().any(|&(a, b)| (a..b).contains(&(pos as u64)));
            if in_payload {
                assert!(decoded.is_err(), "payload flip at byte {pos} bit {bit} went unnoticed");
            } else if let Ok(t) = decoded {
                // Flips elsewhere may be caught by the footer checksum or
                // field validation; if one slips through (e.g. inside the
                // name before its length is checked) it must not have
                // altered the decoded rows.
                assert_eq!(t.columns(), original.columns(), "byte {pos} bit {bit}");
            }
        }
    }
}

#[test]
fn impossible_length_fields_are_rejected_without_allocation() {
    let scratch = Scratch::new("fields");
    let bytes = sample_store_bytes(&scratch);
    let path = scratch.file("hostile.fvps");

    // Name length of u32::MAX (offset 8: magic + version precede it).
    let mut hostile = bytes.clone();
    hostile[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    fs::write(&path, &hostile).unwrap();
    assert!(TraceStore::open(&path).is_err(), "huge name length accepted");

    // Footer length of u64::MAX in the trailer.
    let mut hostile = bytes.clone();
    let n = hostile.len();
    hostile[n - 12..n - 4].copy_from_slice(&u64::MAX.to_le_bytes());
    fs::write(&path, &hostile).unwrap();
    assert!(TraceStore::open(&path).is_err(), "huge footer length accepted");

    // Footer length pointing at almost nothing.
    let mut hostile = bytes.clone();
    hostile[n - 12..n - 4].copy_from_slice(&1u64.to_le_bytes());
    fs::write(&path, &hostile).unwrap();
    assert!(TraceStore::open(&path).is_err(), "tiny footer length accepted");

    // A zero chunk target divides nowhere; must be rejected up front.
    let mut hostile = bytes.clone();
    let name_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let chunk_target_at = 12 + name_len;
    hostile[chunk_target_at..chunk_target_at + 8].copy_from_slice(&0u64.to_le_bytes());
    fs::write(&path, &hostile).unwrap();
    assert!(TraceStore::open(&path).is_err(), "zero chunk target accepted");

    // Wrong magic and wrong version.
    let mut hostile = bytes.clone();
    hostile[0] = b'X';
    fs::write(&path, &hostile).unwrap();
    assert!(TraceStore::open(&path).is_err(), "wrong magic accepted");
    let mut hostile = bytes;
    hostile[4..8].copy_from_slice(&999u32.to_le_bytes());
    fs::write(&path, &hostile).unwrap();
    assert!(TraceStore::open(&path).is_err(), "future version accepted");
}
