//! Shared helpers for the tracestore integration tests.

// Each test binary compiles this module separately and uses a different
// subset of the helpers.
#![allow(dead_code)]

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory under the system temp dir, removed on drop.
pub struct Scratch {
    path: PathBuf,
}

impl Scratch {
    pub fn new(tag: &str) -> Scratch {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "fetchvp-tracestore-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("create scratch dir");
        Scratch { path }
    }

    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
