//! The content-addressed on-disk trace cache.
//!
//! A trace is fully determined by its generation inputs — workload (or
//! family point), seed, scale, knob coordinates, trace length — plus the
//! on-disk format version. [`TraceKey`] canonicalizes those into a stable
//! string; its FNV-1a hash names the cache file. Anything producing the
//! same key gets the same bytes, so sweeps, benches and the server share
//! one generation per key instead of one per process.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::format::fnv1a;
use crate::format::FORMAT_VERSION;
use crate::reader::TraceStore;

/// The generation inputs that content-address one cached trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceKey {
    /// Workload or family name (e.g. `m88ksim`).
    pub workload: String,
    /// Data-generation seed.
    pub seed: u64,
    /// Data-size multiplier.
    pub scale: u32,
    /// Canonical rendering of the family knob coordinates; empty for the
    /// legacy benchmarks at the family origin. Callers must render knobs
    /// deterministically (fixed field order, exact decimal values).
    pub knobs: String,
    /// Dynamic instructions in the trace.
    pub trace_len: u64,
}

impl TraceKey {
    /// A key for a legacy suite benchmark (origin knobs).
    pub fn benchmark(workload: &str, seed: u64, scale: u32, trace_len: u64) -> TraceKey {
        TraceKey { workload: workload.to_string(), seed, scale, knobs: String::new(), trace_len }
    }

    /// The canonical text form the hash is computed over. Includes the
    /// format version, so a format bump silently invalidates every older
    /// cache entry instead of misreading it.
    pub fn canonical(&self) -> String {
        format!(
            "fetchvp-store-v{};workload={};seed={:#018x};scale={};knobs={};len={}",
            FORMAT_VERSION, self.workload, self.seed, self.scale, self.knobs, self.trace_len
        )
    }

    /// The stable 64-bit content hash of the canonical form.
    pub fn hash(&self) -> u64 {
        fnv1a(self.canonical().as_bytes())
    }

    /// The cache file name: workload for humans, hash for addressing.
    pub fn file_name(&self) -> String {
        format!("{}-{:016x}.fvps", self.workload, self.hash())
    }
}

/// Cumulative effectiveness counters of one [`TraceDir`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups satisfied by an existing valid store.
    pub hits: u64,
    /// Lookups that had to generate (absent or unreadable store).
    pub misses: u64,
    /// Bytes written by generations.
    pub bytes: u64,
}

/// A directory of content-addressed trace stores.
///
/// Lookup-or-generate goes through
/// [`open_or_create`](TraceDir::open_or_create): on a hit the existing
/// store is opened (header + footer validated); on a miss the caller's
/// generator writes to a temporary file in the same directory which is
/// atomically renamed into place, so concurrent processes racing on the
/// same key each produce a complete file and the last rename wins with
/// identical content.
#[derive(Debug)]
pub struct TraceDir {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    bytes: AtomicU64,
}

impl TraceDir {
    /// A cache rooted at `root` (created lazily on first generation).
    pub fn new(root: impl Into<PathBuf>) -> TraceDir {
        TraceDir {
            root: root.into(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// The conventional user-level cache root, `~/.cache/fetchvp`
    /// (respecting `$XDG_CACHE_HOME`), or `None` when no home directory
    /// can be determined.
    pub fn default_root() -> Option<PathBuf> {
        if let Some(xdg) = std::env::var_os("XDG_CACHE_HOME").filter(|v| !v.is_empty()) {
            return Some(PathBuf::from(xdg).join("fetchvp"));
        }
        std::env::var_os("HOME")
            .filter(|v| !v.is_empty())
            .map(|home| PathBuf::from(home).join(".cache").join("fetchvp"))
    }

    /// The cache's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The path a key's store lives at (whether or not it exists yet).
    pub fn path_for(&self, key: &TraceKey) -> PathBuf {
        self.root.join(key.file_name())
    }

    /// Opens the store for `key`, generating it first if it is absent or
    /// unreadable. `generate` receives a temporary path to write a
    /// complete store to; the file is renamed into place afterwards.
    ///
    /// # Errors
    ///
    /// Propagates generator and filesystem errors, and validation errors
    /// from opening a freshly generated store (a generator that writes a
    /// malformed file is a bug worth surfacing, not caching).
    pub fn open_or_create(
        &self,
        key: &TraceKey,
        generate: impl FnOnce(&Path) -> io::Result<()>,
    ) -> io::Result<TraceStore> {
        let path = self.path_for(key);
        // A corrupt or half-written store (e.g. an interrupted process
        // without the atomic rename) counts as a miss and is regenerated.
        if let Ok(store) = TraceStore::open(&path) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(store);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        fs::create_dir_all(&self.root)?;
        let tmp = self.root.join(format!(".{}.tmp-{}", key.file_name(), std::process::id()));
        let result = generate(&tmp);
        if let Err(e) = result {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        let bytes = fs::metadata(&tmp).map(|m| m.len()).unwrap_or(0);
        fs::rename(&tmp, &path)?;
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        TraceStore::open(&path)
    }

    /// A snapshot of the cumulative hit/miss/bytes counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_across_calls_and_instances() {
        let a = TraceKey::benchmark("m88ksim", 0x5EED_1998, 1, 1_000_000);
        let b = TraceKey::benchmark("m88ksim", 0x5EED_1998, 1, 1_000_000);
        assert_eq!(a.hash(), b.hash());
        assert_eq!(a.file_name(), b.file_name());
        // Golden value: the canonical form is an on-disk contract — if
        // this changes, every existing cache entry is orphaned, which
        // must be a deliberate format-version bump, not an accident.
        assert_eq!(
            a.canonical(),
            "fetchvp-store-v1;workload=m88ksim;seed=0x000000005eed1998;scale=1;knobs=;len=1000000"
        );
    }

    #[test]
    fn any_input_change_changes_the_hash() {
        let base = TraceKey::benchmark("go", 7, 1, 1000);
        let variants = [
            TraceKey::benchmark("gcc", 7, 1, 1000),
            TraceKey::benchmark("go", 8, 1, 1000),
            TraceKey::benchmark("go", 7, 2, 1000),
            TraceKey::benchmark("go", 7, 1, 1001),
            TraceKey { knobs: "did=1".to_string(), ..base.clone() },
        ];
        for v in &variants {
            assert_ne!(base.hash(), v.hash(), "{v:?}");
        }
    }
}
