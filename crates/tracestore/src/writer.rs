//! Writing chunked trace stores: the low-level [`StoreWriter`], the
//! whole-trace convenience [`write_store`], and streaming generation with
//! [`stream_program_to_store`].

use std::io::{self, Write};
use std::ops::Range;

use fetchvp_isa::{Instr, Program};
use fetchvp_trace::io::write_instr;
use fetchvp_trace::{ExecOutcome, Executor, PreparedInstr, Trace, TraceColumns, TraceView};

use crate::format::{
    fnv1a, push_varint, write_u32, write_u64, zigzag, ChunkMeta, FORMAT_VERSION, MAGIC,
    TRAILER_MAGIC,
};

/// What a completed store write produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreSummary {
    /// Total instructions written.
    pub instructions: u64,
    /// Number of chunks.
    pub chunks: usize,
    /// Total file size in bytes (header + chunks + footer + trailer).
    pub bytes: u64,
}

/// An incremental writer for the chunked trace format.
///
/// Chunks are appended with [`write_chunk`](StoreWriter::write_chunk) in
/// sequence order; [`finish`](StoreWriter::finish) writes the footer
/// (outcome, instruction table, chunk index) and trailer. The writer is a
/// single forward pass — no seeking — so it streams through a pipe or a
/// `BufWriter` equally well.
///
/// Every chunk must come from views sharing **one** interned instruction
/// table (the table handed to `finish`): the encoded rows store
/// table *indices*, not instructions. Both callers in this crate satisfy
/// this structurally — [`write_store`] encodes one in-memory trace, and
/// [`stream_program_to_store`] reuses a single buffer whose table only
/// grows.
#[derive(Debug)]
pub struct StoreWriter<W: Write> {
    out: W,
    /// Bytes written so far (the writer never seeks, so this is the file
    /// offset the next chunk payload lands at).
    position: u64,
    chunks: Vec<ChunkMeta>,
    total: u64,
    scratch: Vec<u8>,
}

impl<W: Write> StoreWriter<W> {
    /// Writes the header and returns the writer.
    ///
    /// `name` is the trace's program name (as in [`Trace::name`]).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn new(mut out: W, name: &str, chunk_target: u64) -> io::Result<StoreWriter<W>> {
        out.write_all(MAGIC)?;
        write_u32(&mut out, FORMAT_VERSION)?;
        write_u32(&mut out, name.len() as u32)?;
        out.write_all(name.as_bytes())?;
        write_u64(&mut out, chunk_target)?;
        let position = (4 + 4 + 4 + name.len() + 8) as u64;
        Ok(StoreWriter { out, position, chunks: Vec::new(), total: 0, scratch: Vec::new() })
    }

    /// Instructions written so far.
    pub fn instructions(&self) -> u64 {
        self.total
    }

    /// Encodes and appends the slots in logical `range` of `view` as one
    /// chunk.
    ///
    /// # Panics
    ///
    /// Panics if `range` does not continue exactly where the previous
    /// chunk ended, or is empty, or falls outside the view.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_chunk(&mut self, view: TraceView<'_>, range: Range<usize>) -> io::Result<()> {
        assert_eq!(range.start as u64, self.total, "chunks must be written in sequence order");
        assert!(!range.is_empty(), "empty chunk");
        let len = range.len();
        let scratch = &mut self.scratch;
        scratch.clear();
        scratch.extend_from_slice(&(len as u32).to_le_bytes());

        // Section: interned instruction-table indices.
        for s in view.slots_in(range.clone()) {
            push_varint(scratch, s.instr_index() as u64);
        }
        // Section: pcs, delta from the previous pc (chunk-local, so every
        // chunk decodes independently).
        let mut prev_pc = 0i64;
        for s in view.slots_in(range.clone()) {
            let pc = s.pc() as i64;
            push_varint(scratch, zigzag(pc.wrapping_sub(prev_pc)));
            prev_pc = pc;
        }
        // Section: next pcs as deltas from the fallthrough pc + 1 (zero
        // for every non-taken instruction).
        for s in view.slots_in(range.clone()) {
            let fallthrough = (s.pc() as i64).wrapping_add(1);
            push_varint(scratch, zigzag((s.next_pc() as i64).wrapping_sub(fallthrough)));
        }
        // Section: the two dynamic flag bits, packed four rows per byte.
        let mut packed = 0u8;
        for (i, s) in view.slots_in(range.clone()).enumerate() {
            let bits = (s.taken() as u8) | ((s.mem_addr().is_some() as u8) << 1);
            packed |= bits << ((i % 4) * 2);
            if i % 4 == 3 {
                scratch.push(packed);
                packed = 0;
            }
        }
        if !len.is_multiple_of(4) {
            scratch.push(packed);
        }
        // Section: results.
        for s in view.slots_in(range.clone()) {
            push_varint(scratch, s.result());
        }
        // Section: memory addresses, delta-encoded, only for rows that
        // have one.
        let mut prev_addr = 0i64;
        for s in view.slots_in(range.clone()) {
            if let Some(addr) = s.mem_addr() {
                let addr = addr as i64;
                push_varint(scratch, zigzag(addr.wrapping_sub(prev_addr)));
                prev_addr = addr;
            }
        }

        let checksum = fnv1a(scratch);
        self.out.write_all(scratch)?;
        self.chunks.push(ChunkMeta {
            start: range.start as u64,
            len: len as u32,
            offset: self.position,
            byte_len: scratch.len() as u64,
            checksum,
        });
        self.position += scratch.len() as u64;
        self.total = range.end as u64;
        Ok(())
    }

    /// Writes the footer (outcome, instruction table, chunk index) and
    /// trailer, consuming the writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn finish(mut self, outcome: ExecOutcome, table: &[Instr]) -> io::Result<StoreSummary> {
        let mut footer = Vec::new();
        footer.push(match outcome {
            ExecOutcome::Halted => 0u8,
            ExecOutcome::LimitReached => 1,
        });
        footer.extend_from_slice(&self.total.to_le_bytes());
        footer.extend_from_slice(&(table.len() as u32).to_le_bytes());
        for instr in table {
            write_instr(&mut footer, instr)?;
        }
        footer.extend_from_slice(&(self.chunks.len() as u32).to_le_bytes());
        for c in &self.chunks {
            footer.extend_from_slice(&c.start.to_le_bytes());
            footer.extend_from_slice(&c.len.to_le_bytes());
            footer.extend_from_slice(&c.offset.to_le_bytes());
            footer.extend_from_slice(&c.byte_len.to_le_bytes());
            footer.extend_from_slice(&c.checksum.to_le_bytes());
        }
        let checksum = fnv1a(&footer);
        footer.extend_from_slice(&checksum.to_le_bytes());
        self.out.write_all(&footer)?;
        write_u64(&mut self.out, footer.len() as u64)?;
        self.out.write_all(TRAILER_MAGIC)?;
        self.out.flush()?;
        Ok(StoreSummary {
            instructions: self.total,
            chunks: self.chunks.len(),
            bytes: self.position + footer.len() as u64 + 8 + 4,
        })
    }
}

/// Writes an in-memory trace as a chunked store with `chunk_len`
/// instructions per chunk.
///
/// # Panics
///
/// Panics if `chunk_len` is zero.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_store<W: Write>(trace: &Trace, chunk_len: usize, out: W) -> io::Result<StoreSummary> {
    assert!(chunk_len > 0, "chunk length must be positive");
    let mut writer = StoreWriter::new(out, trace.name(), chunk_len as u64)?;
    let view = trace.view();
    let mut start = 0;
    while start < view.len() {
        let end = (start + chunk_len).min(view.len());
        writer.write_chunk(view, start..end)?;
        start = end;
    }
    writer.finish(trace.outcome(), trace.columns().instr_table())
}

/// Executes `program` for at most `max_instrs` instructions, streaming
/// the trace to `out` in `chunk_len`-instruction chunks — the
/// `trace_program` loop without the whole-trace heap footprint: at any
/// moment only one chunk of columns is materialized.
///
/// # Panics
///
/// Panics if `chunk_len` is zero.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn stream_program_to_store<W: Write>(
    program: &Program,
    name: &str,
    max_instrs: u64,
    chunk_len: usize,
    out: W,
) -> io::Result<StoreSummary> {
    assert!(chunk_len > 0, "chunk length must be positive");
    let mut writer = StoreWriter::new(out, name, chunk_len as u64)?;
    let mut exec = Executor::new(program);
    // One reusable chunk buffer. Its interned table grows monotonically
    // across chunks (clear_rows keeps it), so the instruction-table
    // indices the encoder writes stay globally consistent, and the
    // per-PC prepared cache stays valid for the whole run.
    let mut buf = TraceColumns::new();
    let mut prepared: Vec<Option<PreparedInstr>> = vec![None; program.len()];
    let mut produced: u64 = 0;
    while produced < max_instrs {
        match exec.step() {
            Some(rec) => {
                let slot = &mut prepared[rec.pc as usize];
                let p = match *slot {
                    Some(p) => p,
                    None => *slot.insert(buf.prepare(rec.instr)),
                };
                buf.push_prepared(p, rec.pc, rec.next_pc, rec.result, rec.mem_addr, rec.taken);
                produced += 1;
                if buf.len() - buf.base() == chunk_len {
                    flush(&mut writer, &mut buf)?;
                }
            }
            None => break,
        }
    }
    if buf.len() > buf.base() {
        flush(&mut writer, &mut buf)?;
    }
    let outcome = if exec.halted() { ExecOutcome::Halted } else { ExecOutcome::LimitReached };
    writer.finish(outcome, buf.instr_table())
}

fn flush<W: Write>(writer: &mut StoreWriter<W>, buf: &mut TraceColumns) -> io::Result<()> {
    let (start, end) = (buf.base(), buf.len());
    writer.write_chunk(buf.view(), start..end)?;
    buf.clear_rows();
    buf.set_base(end);
    Ok(())
}
