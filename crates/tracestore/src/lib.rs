//! Chunked on-disk trace storage at the paper's 100M-instruction scale.
//!
//! The paper's methodology traces each SPECint95 benchmark once (100M
//! instructions through Shade) and then simulates many machine
//! configurations over the same trace. In-memory [`TraceColumns`] capped
//! our reproduction an order of magnitude below that, because the whole
//! stream had to fit on the heap. This crate removes the cap with three
//! pieces:
//!
//! 1. **A chunked, versioned file format** ([`StoreWriter`] /
//!    [`TraceStore`]): the structure-of-arrays columns are delta/varint
//!    encoded per chunk, static per-instruction facts are stored once in
//!    an interned instruction table, and a footer index records every
//!    chunk's byte offset, sequence range and checksum so chunks are
//!    independently seekable and verifiable. See the [format
//!    description](#file-format) below.
//! 2. **Streaming generation** ([`stream_program_to_store`]): the
//!    executor loop of `fetchvp_trace::trace_program` writing chunks to
//!    disk as it goes, so a 100M-instruction trace occupies one chunk of
//!    heap at a time.
//! 3. **Chunked replay** ([`run_batch_store`]): decodes one chunk (plus a
//!    fetch-lookahead window) at a time into a reusable re-based buffer
//!    and feeds it to [`fetchvp_core::BatchRunner`] — every existing
//!    machine model runs out-of-core unchanged, with results
//!    byte-identical to the in-memory path.
//!
//! On top sits a **content-addressed trace cache** ([`TraceDir`]): traces
//! keyed by a canonical hash of (workload, knobs, seed, trace length,
//! format version), generated at most once per key and shared by the
//! server's sweep pool, `fetchvp bench`, and the figure runners.
//!
//! # File format
//!
//! Little-endian throughout:
//!
//! ```text
//! header    magic "FVPS", version u32, name (u32 length + UTF-8 bytes),
//!           chunk target u64 (nominal instructions per chunk)
//! chunks    back-to-back encoded chunk payloads (below)
//! footer    outcome u8, total instructions u64,
//!           instruction table (u32 count + tagged encodings),
//!           chunk index (u32 count + per chunk: start seq u64, len u32,
//!           byte offset u64, byte length u64, checksum u64),
//!           footer checksum u64
//! trailer   footer byte length u64, magic "FVPE"
//! ```
//!
//! The footer lives at the *end* so generation is a single forward pass;
//! readers locate it through the fixed-size trailer. Each chunk payload
//! encodes its rows as consecutive columnar sections:
//!
//! ```text
//! row count u32
//! instruction-table indices   varint u32 per row
//! pcs                         zigzag varint delta from the previous pc
//! next pcs                    zigzag varint delta from pc + 1
//! dynamic flags               2 bits per row (taken, has-mem-addr)
//! results                     varint u64 per row
//! memory addresses            zigzag varint delta, only rows with one
//! ```
//!
//! Only the two *dynamic* flag bits are stored: everything else in a
//! [`TraceColumns`] flag byte, and the register columns, are static facts
//! of the interned instruction and are rebuilt at decode time through
//! [`TraceColumns::prepare`]. Decoded traces are exactly equal to what
//! the executor produced (see the round-trip property tests).
//!
//! # Example
//!
//! ```
//! use fetchvp_isa::{AluOp, ProgramBuilder, Reg};
//! use fetchvp_tracestore::{run_batch_store, stream_program_to_store, TraceStore};
//! use fetchvp_core::{run_batch, IdealConfig, MachineConfig};
//! use fetchvp_trace::trace_program;
//!
//! # fn main() -> std::io::Result<()> {
//! let mut b = ProgramBuilder::new("loop");
//! let head = b.bind_label("head");
//! b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 3);
//! b.jump(head);
//! let program = b.build().unwrap();
//!
//! let dir = std::env::temp_dir().join("fetchvp-doctest");
//! std::fs::create_dir_all(&dir)?;
//! let path = dir.join("loop.fvps");
//!
//! // Stream 50k instructions to disk in 4k-instruction chunks…
//! let file = std::io::BufWriter::new(std::fs::File::create(&path)?);
//! stream_program_to_store(&program, "loop", 50_000, 4096, file)?;
//!
//! // …and replay them chunk-by-chunk, byte-identical to in-memory.
//! let store = TraceStore::open(&path)?;
//! let configs = [MachineConfig::Ideal(IdealConfig::default())];
//! let chunked = run_batch_store(&store, &configs)?;
//! let in_memory = run_batch(&trace_program(&program, 50_000), &configs);
//! assert_eq!(chunked, in_memory);
//! # std::fs::remove_file(&path)?;
//! # Ok(())
//! # }
//! ```
//!
//! [`TraceColumns`]: fetchvp_trace::TraceColumns
//! [`TraceColumns::prepare`]: fetchvp_trace::TraceColumns::prepare
//! [`fetchvp_core::BatchRunner`]: fetchvp_core::BatchRunner

#![deny(missing_docs)]

pub mod cache;
mod format;
mod reader;
mod replay;
mod writer;

pub use cache::{CacheCounters, TraceDir, TraceKey};
pub use format::{fnv1a, ChunkMeta, DEFAULT_CHUNK_LEN, FORMAT_VERSION, MAGIC};
pub use reader::{ChunkCursor, TraceStore};
pub use replay::{
    run_batch_store, run_batch_store_with_progress, stream_store_stats, ReplayProgress,
};
pub use writer::{stream_program_to_store, write_store, StoreSummary, StoreWriter};
