//! Wire-level primitives of the chunked trace format: varints, zigzag,
//! checksums, and the header/footer layout shared by writer and reader.

use std::io::{self, Read, Write};

/// File magic of the chunked store format ("fetchvp store").
pub const MAGIC: &[u8; 4] = b"FVPS";
/// Trailer magic closing a complete file.
pub(crate) const TRAILER_MAGIC: &[u8; 4] = b"FVPE";

/// Version of the chunked on-disk format. Bumped on any layout change;
/// part of every [cache key](crate::TraceKey), so cached traces from an
/// older layout are simply never matched rather than misread.
pub const FORMAT_VERSION: u32 = 1;

/// Default instructions per chunk: large enough that varint decode and
/// per-chunk bookkeeping amortize, small enough that the two-chunk replay
/// window stays tens of megabytes (a decoded instruction costs ~39 bytes
/// of buffer).
pub const DEFAULT_CHUNK_LEN: usize = 1 << 20;

/// Cap on length-prefixed name allocations (matches the legacy reader).
pub(crate) const MAX_NAME_LEN: usize = 1 << 20;

/// One chunk's entry in the footer index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Sequence number of the chunk's first instruction.
    pub start: u64,
    /// Instructions in the chunk.
    pub len: u32,
    /// Byte offset of the chunk payload from the start of the file.
    pub offset: u64,
    /// Encoded payload length in bytes.
    pub byte_len: u64,
    /// FNV-1a checksum of the payload bytes.
    pub checksum: u64,
}

/// Bytes one chunk-index entry occupies in the footer.
pub(crate) const CHUNK_META_BYTES: u64 = 8 + 4 + 8 + 8 + 8;

pub(crate) fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// FNV-1a over a byte slice — stable across platforms and processes, which
/// makes it usable both for chunk checksums and for cache-key hashing.
///
/// Public because it is the workspace's one content-addressing hash: trace
/// chunks, [`crate::TraceKey`]s, the server's result cache and its
/// consistent-hash ring all key off the same function, so any two
/// processes agree on what a given spec hashes to.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends an LEB128 varint.
pub(crate) fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// A bounds-checked forward reader over an in-memory byte buffer. All
/// reads return clean `InvalidData` errors on truncation, so corrupt
/// length fields can never walk past the buffer.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn take_bytes(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(bad(format!("truncated: wanted {n} bytes, have {}", self.remaining())));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take_bytes(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take_bytes(4)?.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take_bytes(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn varint(&mut self) -> io::Result<u64> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(bad("varint longer than 64 bits"))
    }
}

/// `Read` adapter for [`Cursor`] so the shared instruction decoder
/// (`fetchvp_trace::io::read_instr`) can parse straight out of the footer
/// buffer.
impl Read for Cursor<'_> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        let n = out.len().min(self.remaining());
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

pub(crate) fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_round_trip() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            1 << 20,
            u32::MAX as u64,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &values {
            push_varint(&mut buf, v);
        }
        let mut c = Cursor::new(&buf);
        for &v in &values {
            assert_eq!(c.varint().unwrap(), v);
        }
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes map to small codes (the point of zigzag).
        assert!(zigzag(-1) < 8);
        assert!(zigzag(3) < 8);
    }

    #[test]
    fn cursor_rejects_truncation() {
        let mut c = Cursor::new(&[1, 2, 3]);
        assert!(c.u64().is_err());
        // A varint with continuation bits running off the buffer fails.
        let mut c = Cursor::new(&[0x80, 0x80]);
        assert!(c.varint().is_err());
        // An over-long varint fails rather than looping.
        let mut c = Cursor::new(&[0x80; 11]);
        assert!(c.varint().is_err());
    }

    #[test]
    fn fnv_is_stable() {
        // Golden values: the checksum is part of the on-disk format and
        // must never drift.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"fetchvp"), fnv1a(b"fetchvp"));
        assert_ne!(fnv1a(b"fetchvp"), fnv1a(b"fetchvq"));
    }
}
