//! Out-of-core replay: feeding an on-disk store chunk-by-chunk through
//! [`fetchvp_core::BatchRunner`], plus streaming statistics.

use std::io;

use fetchvp_core::{BatchRunner, MachineConfig, MachineResult, ProgressSink};
use fetchvp_trace::{StatsAccum, TraceStats};

use crate::reader::TraceStore;

/// A passive observer of out-of-core replay progress: called once per
/// batch block with the on-disk chunk currently being replayed and the
/// logical instruction index the walk has advanced past (strictly
/// increasing within one replay). Like [`fetchvp_core::ProgressSink`],
/// the sink must never influence results.
pub trait ReplayProgress: Sync {
    /// The replay is inside on-disk chunk `chunk` and has fully stepped
    /// `instructions_done` logical trace slots.
    fn retired(&self, chunk: usize, instructions_done: u64);
}

/// Adapts the per-block [`ProgressSink`] callback of the batch kernel to
/// [`ReplayProgress`] by pinning the chunk index of the feed in flight.
struct ChunkProgress<'a> {
    inner: &'a dyn ReplayProgress,
    chunk: usize,
}

impl ProgressSink for ChunkProgress<'_> {
    fn retired(&self, retired: u64) {
        self.inner.retired(self.chunk, retired);
    }
}

/// Runs every configuration over the on-disk trace with one sequential
/// pass, decoding one chunk window at a time into a reusable buffer — the
/// out-of-core counterpart of [`fetchvp_core::run_batch`], byte-identical
/// to it for any trace that also fits in memory.
///
/// Peak heap is bounded by the window, not the trace: a window spans one
/// chunk plus however many further chunks are needed to cover the widest
/// realistic front-end's fetch lookahead (in practice: two chunks).
///
/// # Errors
///
/// Propagates I/O errors and chunk corruption from decoding.
///
/// # Panics
///
/// Panics if any configuration is invalid, exactly as
/// [`fetchvp_core::run_batch`].
pub fn run_batch_store(
    store: &TraceStore,
    configs: &[MachineConfig],
) -> io::Result<Vec<MachineResult>> {
    run_batch_store_with_progress(store, configs, None)
}

/// [`run_batch_store`] with an optional [`ReplayProgress`] observer
/// notified once per batch block (tagged with the chunk in flight).
/// `None` is exactly [`run_batch_store`]; results are byte-identical
/// either way.
///
/// # Errors
///
/// Propagates I/O errors and chunk corruption from decoding.
///
/// # Panics
///
/// Panics if any configuration is invalid, exactly as
/// [`fetchvp_core::run_batch`].
pub fn run_batch_store_with_progress(
    store: &TraceStore,
    configs: &[MachineConfig],
    progress: Option<&dyn ReplayProgress>,
) -> io::Result<Vec<MachineResult>> {
    let mut runner = BatchRunner::new(configs);
    let lookahead = runner.lookahead() as u64;
    if store.is_empty() {
        return Ok(runner.finish());
    }
    let mut cursor = store.cursor()?;
    for (k, meta) in store.chunks().iter().enumerate() {
        let end = meta.start + meta.len as u64;
        // The window must reach `end + lookahead` (or the true end of the
        // trace) so fetch groups straddling the chunk boundary see the
        // same slots they would in a whole-trace view. A chunk is decoded
        // at most twice: once as lookahead, once as the fed chunk.
        cursor.load_window(k, end + lookahead)?;
        match progress {
            Some(sink) => {
                let tagged = ChunkProgress { inner: sink, chunk: k };
                runner.feed_with_progress(
                    cursor.view(),
                    meta.start as usize,
                    end as usize,
                    Some(&tagged),
                );
            }
            None => runner.feed(cursor.view(), meta.start as usize, end as usize),
        }
    }
    Ok(runner.finish())
}

/// Computes [`TraceStats`] for an on-disk store by streaming one chunk at
/// a time through a [`StatsAccum`] — exactly the statistics
/// `Trace::stats` would report for the materialized trace, without
/// materializing it.
///
/// # Errors
///
/// Propagates I/O errors and chunk corruption from decoding.
pub fn stream_store_stats(store: &TraceStore) -> io::Result<TraceStats> {
    let mut accum = StatsAccum::new();
    if store.is_empty() {
        return Ok(accum.finish());
    }
    let mut cursor = store.cursor()?;
    for (k, meta) in store.chunks().iter().enumerate() {
        cursor.load_window(k, meta.start + 1)?;
        accum.push_view(cursor.view());
    }
    Ok(accum.finish())
}
