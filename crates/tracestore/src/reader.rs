//! Reading chunked trace stores: footer-index parsing with hostile-input
//! hardening, per-chunk decoding into a reusable buffer, and full
//! materialization for code that wants an in-memory [`Trace`].

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use fetchvp_isa::Instr;
use fetchvp_trace::io::read_instr;
use fetchvp_trace::{ExecOutcome, PreparedInstr, Trace, TraceColumns, TraceView};

use crate::format::{
    bad, fnv1a, unzigzag, ChunkMeta, Cursor, CHUNK_META_BYTES, FORMAT_VERSION, MAGIC, MAX_NAME_LEN,
    TRAILER_MAGIC,
};

/// An opened chunked trace store: the parsed header and footer index plus
/// the file path. Opening reads *only* the header and footer — chunk
/// payloads stay on disk until a [`ChunkCursor`] decodes them.
///
/// The store itself holds no file handle; each cursor opens its own, so
/// parallel sweep cells can replay the same store concurrently.
#[derive(Debug, Clone)]
pub struct TraceStore {
    path: PathBuf,
    name: String,
    outcome: ExecOutcome,
    total: u64,
    chunk_target: u64,
    table: Vec<Instr>,
    chunks: Vec<ChunkMeta>,
}

impl TraceStore {
    /// Opens a store and validates its header, trailer, and footer index.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] for anything that is not a
    /// well-formed store — bad magic, unsupported version, counts that
    /// cannot fit in the file, checksum mismatches, or a chunk index that
    /// does not tile `0..total` — and propagates I/O errors. Length
    /// fields are validated against the actual file size before any
    /// allocation, so corrupt headers fail cleanly instead of aborting on
    /// OOM.
    pub fn open(path: impl AsRef<Path>) -> io::Result<TraceStore> {
        let path = path.as_ref();
        let mut file = File::open(path)?;
        let size = file.metadata()?.len();

        // Header: magic, version, name, chunk target.
        let header_min = (4 + 4 + 4 + 8) as u64;
        let trailer = (8 + 4) as u64;
        if size < header_min + trailer {
            return Err(bad(format!("{}-byte file is too small to be a trace store", size)));
        }
        let mut fixed = [0u8; 12];
        file.read_exact(&mut fixed)?;
        if &fixed[0..4] != MAGIC {
            return Err(bad("not a chunked fetchvp trace store (bad magic)"));
        }
        let version = u32::from_le_bytes(fixed[4..8].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(bad(format!("unsupported store version {version}")));
        }
        let name_len = u32::from_le_bytes(fixed[8..12].try_into().expect("4 bytes")) as usize;
        if name_len > MAX_NAME_LEN || (name_len as u64) > size - header_min - trailer {
            return Err(bad(format!("implausible name length {name_len}")));
        }
        let mut name = vec![0u8; name_len];
        file.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|_| bad("store name is not UTF-8"))?;
        let mut chunk_target = [0u8; 8];
        file.read_exact(&mut chunk_target)?;
        let chunk_target = u64::from_le_bytes(chunk_target);
        if chunk_target == 0 {
            return Err(bad("zero chunk target"));
        }
        let header_len = header_min + name_len as u64;

        // Trailer: footer length + closing magic.
        file.seek(SeekFrom::End(-(trailer as i64)))?;
        let mut tail = [0u8; 12];
        file.read_exact(&mut tail)?;
        if &tail[8..12] != TRAILER_MAGIC {
            return Err(bad("missing store trailer (truncated file?)"));
        }
        let footer_len = u64::from_le_bytes(tail[0..8].try_into().expect("8 bytes"));
        if footer_len < 1 + 8 + 4 + 4 + 8 || footer_len > size - header_len - trailer {
            return Err(bad(format!("implausible footer length {footer_len}")));
        }

        // Footer: bounded by the validated footer_len, which is bounded
        // by the actual file size — the largest allocation hostile input
        // can cause is the file's own length.
        file.seek(SeekFrom::End(-((trailer + footer_len) as i64)))?;
        let mut footer = vec![0u8; footer_len as usize];
        file.read_exact(&mut footer)?;
        let (body, stored) = footer.split_at(footer.len() - 8);
        let stored = u64::from_le_bytes(stored.try_into().expect("8 bytes"));
        if fnv1a(body) != stored {
            return Err(bad("footer checksum mismatch"));
        }

        let mut c = Cursor::new(body);
        let outcome = match c.u8()? {
            0 => ExecOutcome::Halted,
            1 => ExecOutcome::LimitReached,
            t => return Err(bad(format!("bad outcome tag {t}"))),
        };
        let total = c.u64()?;
        let table_count = c.u32()? as usize;
        // Every table entry is at least one byte.
        if table_count > c.remaining() {
            return Err(bad(format!("impossible instruction-table count {table_count}")));
        }
        let mut table = Vec::with_capacity(table_count);
        for _ in 0..table_count {
            table.push(read_instr(&mut c)?);
        }
        let chunk_count = c.u32()? as u64;
        if chunk_count > c.remaining() as u64 / CHUNK_META_BYTES {
            return Err(bad(format!("impossible chunk count {chunk_count}")));
        }
        let mut chunks = Vec::with_capacity(chunk_count as usize);
        let mut expected_start = 0u64;
        let mut expected_offset = header_len;
        for _ in 0..chunk_count {
            let meta = ChunkMeta {
                start: c.u64()?,
                len: c.u32()?,
                offset: c.u64()?,
                byte_len: c.u64()?,
                checksum: c.u64()?,
            };
            if meta.len == 0
                || meta.start != expected_start
                || meta.offset != expected_offset
                || meta.byte_len > size - trailer - footer_len
            {
                return Err(bad(format!("corrupt chunk index entry at sequence {expected_start}")));
            }
            expected_start += meta.len as u64;
            expected_offset += meta.byte_len;
            chunks.push(meta);
        }
        if expected_start != total {
            return Err(bad(format!(
                "chunk index covers {expected_start} instructions, footer says {total}"
            )));
        }
        if c.remaining() != 0 {
            return Err(bad("trailing bytes in footer"));
        }

        Ok(TraceStore {
            path: path.to_path_buf(),
            name,
            outcome,
            total,
            chunk_target,
            table,
            chunks,
        })
    }

    /// The traced program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// How the traced execution ended.
    pub fn outcome(&self) -> ExecOutcome {
        self.outcome
    }

    /// Total instructions in the store.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether the store holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The nominal instructions-per-chunk the store was written with.
    pub fn chunk_target(&self) -> u64 {
        self.chunk_target
    }

    /// The file the store was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The footer's chunk index, in sequence order.
    pub fn chunks(&self) -> &[ChunkMeta] {
        &self.chunks
    }

    /// The interned static-instruction table.
    pub fn instr_table(&self) -> &[Instr] {
        &self.table
    }

    /// Opens a decoding cursor over the store (its own file handle and
    /// reusable decode buffer).
    ///
    /// # Errors
    ///
    /// Propagates errors from reopening the file.
    pub fn cursor(&self) -> io::Result<ChunkCursor<'_>> {
        let mut cols = TraceColumns::new();
        // Re-intern the table in file order so the stored indices match
        // the buffer's intern indices, and keep the prepared statics for
        // push_prepared.
        let prepared = self.table.iter().map(|&i| cols.prepare(i)).collect();
        Ok(ChunkCursor {
            store: self,
            file: File::open(&self.path)?,
            raw: Vec::new(),
            cols,
            prepared,
            decoded: 0..0,
        })
    }

    /// Fully materializes the store as an in-memory [`Trace`] (the
    /// opposite of out-of-core replay; for code that needs random access
    /// to the whole stream).
    ///
    /// # Errors
    ///
    /// Propagates I/O and corruption errors from chunk decoding.
    pub fn to_trace(&self) -> io::Result<Trace> {
        let mut cursor = self.cursor()?;
        for k in 0..self.chunks.len() {
            cursor.decode_chunk(k)?;
        }
        let ChunkCursor { cols, .. } = cursor;
        Ok(Trace::from_columns(self.name.clone(), cols, self.outcome))
    }
}

/// A chunk-at-a-time decoder over a [`TraceStore`], owning a reusable
/// [`TraceColumns`] window buffer. [`load_window`](ChunkCursor::load_window)
/// re-bases the buffer so its slots report their global sequence numbers —
/// machine models consume the window exactly as they would the full trace.
pub struct ChunkCursor<'s> {
    store: &'s TraceStore,
    file: File,
    /// Reusable raw-payload buffer.
    raw: Vec<u8>,
    /// The decode target; base is the first decoded chunk's start.
    cols: TraceColumns,
    /// Per-table-entry prepared statics, index-aligned with the store's
    /// instruction table (and, by construction, with `cols`'s interns).
    prepared: Vec<PreparedInstr>,
    /// Chunk indices currently decoded in `cols`.
    decoded: std::ops::Range<usize>,
}

impl ChunkCursor<'_> {
    /// Clears the buffer and decodes chunks starting at `first_chunk`
    /// until the window's logical end reaches `min_end` (clamped to the
    /// store length). The buffer's base becomes the first chunk's start.
    ///
    /// # Panics
    ///
    /// Panics if `first_chunk` is out of range.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and chunk corruption (checksum or row-count
    /// mismatches).
    pub fn load_window(&mut self, first_chunk: usize, min_end: u64) -> io::Result<()> {
        let min_end = min_end.min(self.store.total);
        self.cols.clear_rows();
        self.cols.set_base(self.store.chunks[first_chunk].start as usize);
        self.decoded = first_chunk..first_chunk;
        let mut k = first_chunk;
        loop {
            self.decode_chunk(k)?;
            k += 1;
            if self.cols.len() as u64 >= min_end || k == self.store.chunks.len() {
                return Ok(());
            }
        }
    }

    /// Decodes chunk `k` and appends its rows to the buffer. Used through
    /// [`load_window`](ChunkCursor::load_window) in replay; exposed for
    /// whole-store materialization.
    ///
    /// # Panics
    ///
    /// Panics if `k` does not directly follow the decoded range.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and chunk corruption.
    pub fn decode_chunk(&mut self, k: usize) -> io::Result<()> {
        assert_eq!(k, self.decoded.end, "chunks must be appended in order");
        let meta = self.store.chunks[k];
        debug_assert_eq!(self.cols.len() as u64, meta.start);
        self.raw.resize(meta.byte_len as usize, 0);
        self.file.seek(SeekFrom::Start(meta.offset))?;
        self.file.read_exact(&mut self.raw)?;
        if fnv1a(&self.raw) != meta.checksum {
            return Err(bad(format!("chunk at sequence {} fails its checksum", meta.start)));
        }

        let n = meta.len as usize;
        let mut c = Cursor::new(&self.raw);
        if c.u32()? as usize != n {
            return Err(bad(format!(
                "chunk at sequence {} disagrees with the index about its length",
                meta.start
            )));
        }
        let mut idxs = Vec::with_capacity(n);
        for _ in 0..n {
            let idx = c.varint()? as usize;
            if idx >= self.prepared.len() {
                return Err(bad(format!("instruction index {idx} beyond table")));
            }
            idxs.push(idx as u32);
        }
        let mut pcs = Vec::with_capacity(n);
        let mut pc = 0i64;
        for _ in 0..n {
            pc = pc.wrapping_add(unzigzag(c.varint()?));
            pcs.push(pc as u64);
        }
        let mut next_pcs = Vec::with_capacity(n);
        for &pc in &pcs {
            let fallthrough = (pc as i64).wrapping_add(1);
            next_pcs.push(fallthrough.wrapping_add(unzigzag(c.varint()?)) as u64);
        }
        let flag_bytes = c.take_bytes(n.div_ceil(4))?;
        let dyn_bits = |i: usize| -> u8 { (flag_bytes[i / 4] >> ((i % 4) * 2)) & 0b11 };
        let mut results = Vec::with_capacity(n);
        for _ in 0..n {
            results.push(c.varint()?);
        }
        let mut addr = 0i64;
        for i in 0..n {
            let bits = dyn_bits(i);
            let mem_addr = if bits & 0b10 != 0 {
                addr = addr.wrapping_add(unzigzag(c.varint()?));
                Some(addr as u64)
            } else {
                None
            };
            self.cols.push_prepared(
                self.prepared[idxs[i] as usize],
                pcs[i],
                next_pcs[i],
                results[i],
                mem_addr,
                bits & 0b01 != 0,
            );
        }
        if c.remaining() != 0 {
            return Err(bad(format!("trailing bytes in chunk at sequence {}", meta.start)));
        }
        self.decoded.end = k + 1;
        Ok(())
    }

    /// A view over the currently decoded window (logical indices; see
    /// [`TraceColumns::set_base`]).
    pub fn view(&self) -> TraceView<'_> {
        self.cols.view()
    }
}
