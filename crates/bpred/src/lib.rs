//! Branch predictors for the fetchvp machine models.
//!
//! The paper's §5 front-ends use two branch predictors:
//!
//! * an **ideal branch predictor** ([`PerfectBtb`]) that always knows the
//!   direction and target of every control instruction, and
//! * a **2-level BTB in a PAp configuration** ([`TwoLevelBtb`], after Yeh &
//!   Patt, paper reference \[27\]): a 2K-entry, 2-way set-associative first
//!   level in which each branch keeps a 4-bit history register, indexing a
//!   per-address pattern table of 2-bit saturating counters. The paper
//!   reports ~86% average accuracy for this configuration.
//!
//! A [`GshareBtb`] (global-history, shared pattern table) is provided as
//! the "tuned BTB" of §5's closing remark, anchoring the BTB-sensitivity
//! ablation.
//!
//! All predictors allow *multiple* branch predictions per cycle, as the
//! paper assumes ("we assume that our BTB allows predictions of multiple
//! branches at the same cycle", §5).
//!
//! Predictors are trace-driven: [`BranchPredictor::predict`] receives the
//! dynamic instruction's [`Slot`] accessor (which contains the actual
//! outcome) so that the oracle can be expressed, but table-based
//! implementations must consult only the static facts (`pc`, instruction
//! kind — and `next_pc` for direct unconditional transfers, whose next PC
//! *is* their static target) — the unit tests enforce this by checking
//! mispredictions occur.
//!
//! # Example
//!
//! ```
//! use fetchvp_bpred::{BranchPredictor, TwoLevelBtb};
//! use fetchvp_isa::{Cond, Instr, Reg};
//! use fetchvp_trace::{DynInstr, TraceColumns};
//!
//! let mut btb = TwoLevelBtb::paper();
//! let branch = Instr::Branch { cond: Cond::Ne, a: Reg::R1, b: Reg::R0, target: 0 };
//! let cols = TraceColumns::from_records(&[DynInstr {
//!     seq: 0, pc: 10, instr: branch, result: 0, mem_addr: None,
//!     taken: true, next_pc: 0,
//! }]);
//! let rec = cols.slot(0);
//! // Cold: predicted not-taken, actually taken -> misprediction.
//! let p = btb.predict(rec);
//! assert!(!p.taken);
//! assert!(!p.correct_for(rec));
//! btb.update(rec);
//! ```

pub mod gshare;
pub mod perfect;
pub mod two_level;

pub use gshare::{GshareBtb, GshareConfig};
pub use perfect::PerfectBtb;
pub use two_level::{TwoLevelBtb, TwoLevelConfig};

use fetchvp_metrics::{MetricsSink, Registry};
use fetchvp_trace::Slot;

/// The outcome of one branch prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchPrediction {
    /// Predicted direction (`true` = control transfers away from `pc + 1`).
    pub taken: bool,
    /// Predicted target, when a taken direction is predicted. `None` means
    /// the predictor has no target (e.g. a BTB miss on an indirect jump),
    /// which counts as a misprediction if the branch is actually taken.
    pub target: Option<u64>,
}

impl BranchPrediction {
    /// A not-taken (fall-through) prediction.
    pub fn not_taken() -> BranchPrediction {
        BranchPrediction { taken: false, target: None }
    }

    /// A taken prediction to `target`.
    pub fn taken_to(target: u64) -> BranchPrediction {
        BranchPrediction { taken: true, target: Some(target) }
    }

    /// Whether this prediction matches the actual outcome of `rec`:
    /// direction must match, and for a taken outcome the predicted target
    /// must equal the actual next PC.
    #[inline]
    pub fn correct_for(&self, rec: Slot<'_>) -> bool {
        if self.taken != rec.taken() {
            return false;
        }
        !rec.taken() || self.target == Some(rec.next_pc())
    }
}

/// Aggregate branch-prediction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BpredStats {
    /// Control instructions predicted.
    pub predictions: u64,
    /// Predictions whose direction *and* target were correct.
    pub correct: u64,
    /// Conditional branches predicted.
    pub cond_predictions: u64,
    /// Conditional branches predicted correctly.
    pub cond_correct: u64,
}

impl BpredStats {
    /// Overall accuracy across all control instructions.
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.correct as f64 / self.predictions as f64
        }
    }

    /// Accuracy restricted to conditional branches (the figure the paper
    /// quotes: ~86% for the 2-level BTB).
    pub fn cond_accuracy(&self) -> f64 {
        if self.cond_predictions == 0 {
            0.0
        } else {
            self.cond_correct as f64 / self.cond_predictions as f64
        }
    }

    /// Mispredicted control instructions.
    pub fn mispredictions(&self) -> u64 {
        self.predictions - self.correct
    }

    pub(crate) fn record(&mut self, rec: Slot<'_>, prediction: BranchPrediction) {
        self.predictions += 1;
        let correct = prediction.correct_for(rec);
        if correct {
            self.correct += 1;
        }
        if rec.is_cond_branch() {
            self.cond_predictions += 1;
            if correct {
                self.cond_correct += 1;
            }
        }
    }
}

impl MetricsSink for BpredStats {
    fn export_metrics(&self, reg: &mut Registry, prefix: &str) {
        reg.counter(prefix, "predictions", self.predictions);
        reg.counter(prefix, "correct", self.correct);
        reg.counter(prefix, "mispredictions", self.mispredictions());
        reg.counter(prefix, "cond_predictions", self.cond_predictions);
        reg.counter(prefix, "cond_correct", self.cond_correct);
        reg.gauge(prefix, "accuracy", self.accuracy());
        reg.gauge(prefix, "cond_accuracy", self.cond_accuracy());
    }
}

/// A predictor of control-instruction outcomes.
///
/// The machine calls [`predict`](BranchPredictor::predict) for every fetched
/// control instruction and [`update`](BranchPredictor::update) when the
/// instruction resolves.
pub trait BranchPredictor {
    /// A short human-readable name for reports.
    fn name(&self) -> &str;

    /// Predicts the outcome of the control instruction in `rec`.
    ///
    /// Implementations other than the oracle must consult only the static
    /// facts of the slot: its PC and instruction kind (plus `next_pc` for
    /// direct unconditional transfers, where it equals the static target).
    fn predict(&mut self, rec: Slot<'_>) -> BranchPrediction;

    /// Trains the predictor with the resolved outcome.
    fn update(&mut self, rec: Slot<'_>);

    /// Accumulated statistics.
    fn stats(&self) -> BpredStats;
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_isa::{Cond, Instr, Reg};
    use fetchvp_trace::{DynInstr, TraceColumns};

    fn branch_rec(taken: bool, next_pc: u64) -> TraceColumns {
        TraceColumns::from_records(&[DynInstr {
            seq: 0,
            pc: 4,
            instr: Instr::Branch { cond: Cond::Eq, a: Reg::R1, b: Reg::R2, target: next_pc },
            result: 0,
            mem_addr: None,
            taken,
            next_pc: if taken { next_pc } else { 5 },
        }])
    }

    #[test]
    fn correctness_requires_direction_match() {
        let rec = branch_rec(true, 20);
        assert!(!BranchPrediction::not_taken().correct_for(rec.slot(0)));
        assert!(BranchPrediction::taken_to(20).correct_for(rec.slot(0)));
    }

    #[test]
    fn correctness_requires_target_match_when_taken() {
        let rec = branch_rec(true, 20);
        assert!(!BranchPrediction::taken_to(24).correct_for(rec.slot(0)));
        assert!(!BranchPrediction { taken: true, target: None }.correct_for(rec.slot(0)));
    }

    #[test]
    fn not_taken_prediction_ignores_target() {
        let rec = branch_rec(false, 20);
        assert!(BranchPrediction::not_taken().correct_for(rec.slot(0)));
        assert!(!BranchPrediction::taken_to(20).correct_for(rec.slot(0)));
    }

    #[test]
    fn stats_record_splits_conditionals() {
        let mut s = BpredStats::default();
        s.record(branch_rec(true, 20).slot(0), BranchPrediction::taken_to(20));
        s.record(branch_rec(true, 20).slot(0), BranchPrediction::not_taken());
        assert_eq!(s.predictions, 2);
        assert_eq!(s.correct, 1);
        assert_eq!(s.cond_predictions, 2);
        assert!((s.accuracy() - 0.5).abs() < 1e-12);
        assert!((s.cond_accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_accuracy() {
        let s = BpredStats::default();
        assert_eq!(s.accuracy(), 0.0);
        assert_eq!(s.cond_accuracy(), 0.0);
    }
}
