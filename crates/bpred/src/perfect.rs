//! The oracle branch predictor.

use fetchvp_trace::Slot;

use crate::{BpredStats, BranchPrediction, BranchPredictor};

/// An ideal branch predictor: always predicts the actual direction and
/// target.
///
/// Used for the paper's "perfect branch predictor" front-ends (Figures 5.1
/// and the `TC+idealBTB` series of Figure 5.3), isolating the value-
/// prediction effect from branch-prediction accuracy.
///
/// # Example
///
/// ```
/// use fetchvp_bpred::{BranchPredictor, PerfectBtb};
/// use fetchvp_isa::Instr;
/// use fetchvp_trace::{DynInstr, TraceColumns};
///
/// let mut btb = PerfectBtb::new();
/// let cols = TraceColumns::from_records(&[DynInstr {
///     seq: 0, pc: 3, instr: Instr::Jump { target: 9 }, result: 0,
///     mem_addr: None, taken: true, next_pc: 9,
/// }]);
/// let p = btb.predict(cols.slot(0));
/// assert!(p.correct_for(cols.slot(0)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PerfectBtb {
    stats: BpredStats,
}

impl PerfectBtb {
    /// Creates the oracle.
    pub fn new() -> PerfectBtb {
        PerfectBtb::default()
    }
}

impl BranchPredictor for PerfectBtb {
    fn name(&self) -> &str {
        "ideal-btb"
    }

    fn predict(&mut self, rec: Slot<'_>) -> BranchPrediction {
        let prediction = if rec.taken() {
            BranchPrediction::taken_to(rec.next_pc())
        } else {
            BranchPrediction::not_taken()
        };
        self.stats.record(rec, prediction);
        prediction
    }

    fn update(&mut self, _rec: Slot<'_>) {}

    fn stats(&self) -> BpredStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_isa::{Cond, Instr, Reg};
    use fetchvp_trace::{DynInstr, TraceColumns};

    fn rec(taken: bool) -> TraceColumns {
        TraceColumns::from_records(&[DynInstr {
            seq: 0,
            pc: 1,
            instr: Instr::Branch { cond: Cond::Eq, a: Reg::R1, b: Reg::R2, target: 77 },
            result: 0,
            mem_addr: None,
            taken,
            next_pc: if taken { 77 } else { 2 },
        }])
    }

    #[test]
    fn always_correct_on_both_directions() {
        let mut btb = PerfectBtb::new();
        for taken in [true, false, true, true, false] {
            let cols = rec(taken);
            let r = cols.slot(0);
            assert!(btb.predict(r).correct_for(r));
            btb.update(r);
        }
        assert_eq!(btb.stats().accuracy(), 1.0);
        assert_eq!(btb.stats().predictions, 5);
    }

    #[test]
    fn correct_on_indirect_jumps() {
        let mut btb = PerfectBtb::new();
        let cols = TraceColumns::from_records(&[DynInstr {
            seq: 0,
            pc: 5,
            instr: Instr::JumpInd { base: Reg::R31 },
            result: 0,
            mem_addr: None,
            taken: true,
            next_pc: 123,
        }]);
        assert_eq!(btb.predict(cols.slot(0)).target, Some(123));
    }
}
