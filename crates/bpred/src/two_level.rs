//! The 2-level PAp branch target buffer.

use fetchvp_trace::Slot;

use crate::{BpredStats, BranchPrediction, BranchPredictor};

/// Geometry of the [`TwoLevelBtb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TwoLevelConfig {
    /// Total first-level entries (must be a multiple of `assoc`).
    pub entries: usize,
    /// Set associativity.
    pub assoc: usize,
    /// Per-branch history register width in bits.
    pub history_bits: u8,
}

impl TwoLevelConfig {
    /// The paper's §5 configuration: "The first level size of the BTB is 2K
    /// entries organized as a 2-way set associative table. Each branch has a
    /// 4-bit history register."
    pub fn paper() -> TwoLevelConfig {
        TwoLevelConfig { entries: 2048, assoc: 2, history_bits: 4 }
    }

    fn sets(&self) -> usize {
        self.entries / self.assoc
    }

    fn pattern_entries(&self) -> usize {
        1usize << self.history_bits
    }
}

impl Default for TwoLevelConfig {
    fn default() -> TwoLevelConfig {
        TwoLevelConfig::paper()
    }
}

#[derive(Debug, Clone)]
struct Entry {
    tag: u64,
    /// Per-address branch history register (low `history_bits` bits).
    history: u16,
    /// Per-address pattern table of 2-bit counters, indexed by history.
    pattern: Vec<u8>,
    /// Last observed taken-target (serves direct and indirect branches).
    target: u64,
    /// LRU timestamp.
    lru: u64,
}

/// A 2-level adaptive branch predictor in the PAp configuration of Yeh &
/// Patt (paper reference \[27\]), combined with a branch target buffer.
///
/// Each resident branch keeps its own history register *and* its own pattern
/// table of 2-bit saturating counters (per-address history, per-address
/// pattern tables — "PAp"). The BTB also caches the branch's most recent
/// taken target, which is how indirect-jump targets are predicted.
///
/// Misses predict not-taken for conditional branches. Direct unconditional
/// jumps and calls are always predicted correctly (their target is static);
/// indirect jumps hit the BTB for their target and mispredict when the
/// target changes.
///
/// # Example
///
/// ```
/// use fetchvp_bpred::{BranchPredictor, TwoLevelBtb};
/// use fetchvp_isa::{Cond, Instr, Reg};
/// use fetchvp_trace::{DynInstr, TraceColumns};
///
/// let mut btb = TwoLevelBtb::paper();
/// let cols = TraceColumns::from_records(&[DynInstr {
///     seq: 0, pc: 8,
///     instr: Instr::Branch { cond: Cond::Ne, a: Reg::R1, b: Reg::R0, target: 2 },
///     result: 0, mem_addr: None, taken: true, next_pc: 2,
/// }]);
/// let rec = cols.slot(0);
/// // Train an always-taken branch: after a few outcomes it predicts taken.
/// for _ in 0..4 { btb.predict(rec); btb.update(rec); }
/// assert!(btb.predict(rec).correct_for(rec));
/// ```
#[derive(Debug, Clone)]
pub struct TwoLevelBtb {
    config: TwoLevelConfig,
    sets: Vec<Vec<Entry>>,
    clock: u64,
    stats: BpredStats,
}

impl TwoLevelBtb {
    /// Creates a predictor with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `assoc`, or if
    /// `history_bits` is zero or greater than 12.
    pub fn new(config: TwoLevelConfig) -> TwoLevelBtb {
        assert!(config.assoc > 0 && config.entries > 0, "BTB must have entries");
        assert!(config.entries.is_multiple_of(config.assoc), "entries must be a multiple of assoc");
        assert!(
            (1..=12).contains(&config.history_bits),
            "history width must be 1..=12 bits, got {}",
            config.history_bits
        );
        let sets = (0..config.sets()).map(|_| Vec::with_capacity(config.assoc)).collect();
        TwoLevelBtb { config, sets, clock: 0, stats: BpredStats::default() }
    }

    /// The paper's 2K-entry, 2-way, 4-bit-history configuration.
    pub fn paper() -> TwoLevelBtb {
        TwoLevelBtb::new(TwoLevelConfig::paper())
    }

    /// The geometry in use.
    pub fn config(&self) -> TwoLevelConfig {
        self.config
    }

    fn set_index(&self, pc: u64) -> usize {
        (pc as usize) % self.config.sets()
    }

    fn probe(&self, pc: u64) -> Option<&Entry> {
        self.sets[self.set_index(pc)].iter().find(|e| e.tag == pc)
    }

    fn entry_mut(&mut self, pc: u64) -> &mut Entry {
        self.clock += 1;
        let clock = self.clock;
        let pattern_entries = self.config.pattern_entries();
        let assoc = self.config.assoc;
        let set_idx = self.set_index(pc);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|e| e.tag == pc) {
            set[pos].lru = clock;
            return &mut set[pos];
        }
        let fresh = Entry {
            tag: pc,
            history: 0,
            // Weakly-taken initial counters: allocation is triggered by the
            // branch's first resolved outcome, and unseen history patterns
            // of a BTB-resident branch lean taken.
            pattern: vec![2; pattern_entries],
            target: 0,
            lru: clock,
        };
        if set.len() < assoc {
            set.push(fresh);
            let last = set.len() - 1;
            &mut set[last]
        } else {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i)
                .expect("set is non-empty");
            set[victim] = fresh;
            &mut set[victim]
        }
    }

    fn history_mask(&self) -> u16 {
        (1u16 << self.config.history_bits) - 1
    }
}

impl BranchPredictor for TwoLevelBtb {
    fn name(&self) -> &str {
        "2level-btb"
    }

    fn predict(&mut self, rec: Slot<'_>) -> BranchPrediction {
        let prediction = if rec.is_direct_jump() {
            // Direct unconditional transfers have a static target (equal to
            // their next PC); any BTB front-end resolves them in the fetch
            // stage.
            BranchPrediction::taken_to(rec.next_pc())
        } else if rec.is_indirect_jump() {
            match self.probe(rec.pc()) {
                Some(e) => BranchPrediction::taken_to(e.target),
                None => BranchPrediction { taken: true, target: None },
            }
        } else if rec.is_cond_branch() {
            match self.probe(rec.pc()) {
                Some(e) => {
                    let counter = e.pattern[e.history as usize];
                    if counter >= 2 {
                        BranchPrediction::taken_to(e.target)
                    } else {
                        BranchPrediction::not_taken()
                    }
                }
                None => BranchPrediction::not_taken(),
            }
        } else {
            // Non-control instructions are never presented by the machines;
            // treat defensively as fall-through.
            BranchPrediction::not_taken()
        };
        self.stats.record(rec, prediction);
        prediction
    }

    fn update(&mut self, rec: Slot<'_>) {
        if rec.is_indirect_jump() {
            let next_pc = rec.next_pc();
            let e = self.entry_mut(rec.pc());
            e.target = next_pc;
        } else if rec.is_cond_branch() {
            let (taken, next_pc) = (rec.taken(), rec.next_pc());
            let mask = self.history_mask();
            let e = self.entry_mut(rec.pc());
            let idx = e.history as usize;
            if taken {
                e.pattern[idx] = (e.pattern[idx] + 1).min(3);
                e.target = next_pc;
            } else {
                e.pattern[idx] = e.pattern[idx].saturating_sub(1);
            }
            e.history = ((e.history << 1) | taken as u16) & mask;
        }
    }

    fn stats(&self) -> BpredStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_isa::{Cond, Instr, Reg};
    use fetchvp_trace::{DynInstr, TraceColumns};

    fn branch(pc: u64, taken: bool, target: u64) -> DynInstr {
        DynInstr {
            seq: 0,
            pc,
            instr: Instr::Branch { cond: Cond::Ne, a: Reg::R1, b: Reg::R0, target },
            result: 0,
            mem_addr: None,
            taken,
            next_pc: if taken { target } else { pc + 1 },
        }
    }

    fn run(btb: &mut TwoLevelBtb, recs: &[DynInstr]) -> usize {
        let cols = TraceColumns::from_records(recs);
        cols.view()
            .slots()
            .map(|r| {
                let p = btb.predict(r);
                btb.update(r);
                p.correct_for(r) as usize
            })
            .sum()
    }

    /// Drives one record through predict+update, returning correctness.
    fn one(btb: &mut TwoLevelBtb, rec: DynInstr) -> bool {
        run(btb, &[rec]) == 1
    }

    #[test]
    fn always_taken_branch_learns_quickly() {
        let mut btb = TwoLevelBtb::paper();
        let recs: Vec<_> = (0..20).map(|_| branch(4, true, 100)).collect();
        let correct = run(&mut btb, &recs);
        assert!(correct >= 18, "only {correct}/20 correct");
    }

    #[test]
    fn always_not_taken_branch_is_correct_from_cold() {
        let mut btb = TwoLevelBtb::paper();
        let recs: Vec<_> = (0..10).map(|_| branch(4, false, 100)).collect();
        assert_eq!(run(&mut btb, &recs), 10);
    }

    #[test]
    fn alternating_pattern_is_captured_by_history() {
        let mut btb = TwoLevelBtb::paper();
        // T,N,T,N...: PAp with 4-bit history learns this perfectly after
        // warm-up.
        let recs: Vec<_> = (0..60).map(|i| branch(4, i % 2 == 0, 100)).collect();
        let correct = run(&mut btb, &recs);
        let tail: Vec<_> = (60..80).map(|i| branch(4, i % 2 == 0, 100)).collect();
        let tail_correct = run(&mut btb, &tail);
        assert_eq!(tail_correct, 20, "steady state should be perfect (warmup got {correct})");
    }

    #[test]
    fn loop_pattern_with_period_4_is_learned() {
        let mut btb = TwoLevelBtb::paper();
        // A 4-iteration loop: T,T,T,N repeating.
        let mk = |i: usize| branch(4, i % 4 != 3, 100);
        let warm: Vec<_> = (0..80).map(mk).collect();
        run(&mut btb, &warm);
        let tail: Vec<_> = (80..100).map(mk).collect();
        assert_eq!(run(&mut btb, &tail), 20);
    }

    #[test]
    fn cold_taken_branch_mispredicts() {
        let mut btb = TwoLevelBtb::paper();
        let cols = TraceColumns::from_records(&[branch(4, true, 100)]);
        let r = cols.slot(0);
        assert!(!btb.predict(r).correct_for(r));
    }

    #[test]
    fn indirect_jump_predicts_last_target() {
        let mut btb = TwoLevelBtb::paper();
        let mk = |t: u64| DynInstr {
            seq: 0,
            pc: 7,
            instr: Instr::JumpInd { base: Reg::R31 },
            result: 0,
            mem_addr: None,
            taken: true,
            next_pc: t,
        };
        let cols = TraceColumns::from_records(&[mk(50), mk(60)]);
        let a = cols.slot(0);
        assert!(!btb.predict(a).correct_for(a)); // cold miss
        btb.update(a);
        assert!(btb.predict(a).correct_for(a)); // repeats target 50
        btb.update(a);
        let b = cols.slot(1);
        assert!(!btb.predict(b).correct_for(b)); // target changed
    }

    #[test]
    fn direct_jumps_are_always_correct() {
        let mut btb = TwoLevelBtb::paper();
        let cols = TraceColumns::from_records(&[DynInstr {
            seq: 0,
            pc: 9,
            instr: Instr::Jump { target: 44 },
            result: 0,
            mem_addr: None,
            taken: true,
            next_pc: 44,
        }]);
        assert!(btb.predict(cols.slot(0)).correct_for(cols.slot(0)));
    }

    #[test]
    fn capacity_eviction_forgets_branches() {
        let mut btb = TwoLevelBtb::new(TwoLevelConfig { entries: 4, assoc: 2, history_bits: 2 });
        // Train pc 0 taken.
        for _ in 0..6 {
            one(&mut btb, branch(0, true, 9));
        }
        // Fill set 0 (sets = 2; pcs 2 and 4 also map to set 0).
        for pc in [2u64, 4] {
            for _ in 0..3 {
                one(&mut btb, branch(pc, true, 9));
            }
        }
        // pc 0 was LRU-evicted: cold again, predicts not-taken.
        let cols = TraceColumns::from_records(&[branch(0, true, 9)]);
        let r = cols.slot(0);
        assert!(!btb.predict(r).correct_for(r));
    }

    #[test]
    fn distinct_branches_do_not_interfere_in_different_sets() {
        let mut btb = TwoLevelBtb::paper();
        for _ in 0..8 {
            one(&mut btb, branch(10, true, 200));
            one(&mut btb, branch(11, false, 300));
        }
        let cols = TraceColumns::from_records(&[branch(10, true, 200), branch(11, false, 300)]);
        let t = cols.slot(0);
        let n = cols.slot(1);
        assert!(btb.predict(t).correct_for(t));
        assert!(btb.predict(n).correct_for(n));
    }

    #[test]
    #[should_panic(expected = "multiple of assoc")]
    fn bad_geometry_panics() {
        TwoLevelBtb::new(TwoLevelConfig { entries: 3, assoc: 2, history_bits: 4 });
    }

    #[test]
    fn paper_config_values() {
        let c = TwoLevelConfig::paper();
        assert_eq!((c.entries, c.assoc, c.history_bits), (2048, 2, 4));
    }
}
