//! A gshare direction predictor with a branch target buffer.

use fetchvp_trace::Slot;

use crate::{BpredStats, BranchPrediction, BranchPredictor};

/// Geometry of the [`GshareBtb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GshareConfig {
    /// Global-history length in bits; the pattern table holds
    /// `1 << history_bits` two-bit counters.
    pub history_bits: u8,
    /// Branch-target-buffer entries (direct-mapped, tagged).
    pub btb_entries: usize,
}

impl GshareConfig {
    /// A configuration sized like the paper's 2-level BTB budget: 4K-entry
    /// pattern table (12 history bits) plus a 2K-entry target buffer.
    pub fn default_budget() -> GshareConfig {
        GshareConfig { history_bits: 12, btb_entries: 2048 }
    }
}

impl Default for GshareConfig {
    fn default() -> GshareConfig {
        GshareConfig::default_budget()
    }
}

/// McFarling's *gshare*: one global branch-history register XORed with the
/// branch PC indexes a shared table of 2-bit counters.
///
/// The paper closes §5 by noting its results "can be significantly improved
/// by tuning the performance of the BTB"; gshare is the canonical
/// next-generation direction predictor after Yeh & Patt's per-address
/// schemes, so it anchors the BTB-sensitivity ablation
/// (`fetchvp_experiments::ablations::btb_sensitivity`). Targets come from a
/// conventional tagged BTB, exactly as in [`crate::TwoLevelBtb`].
///
/// # Example
///
/// ```
/// use fetchvp_bpred::{BranchPredictor, GshareBtb};
/// use fetchvp_isa::{Cond, Instr, Reg};
/// use fetchvp_trace::{DynInstr, TraceColumns};
///
/// let mut p = GshareBtb::default_budget();
/// let cols = TraceColumns::from_records(&[DynInstr {
///     seq: 0, pc: 5,
///     instr: Instr::Branch { cond: Cond::Ne, a: Reg::R1, b: Reg::R0, target: 2 },
///     result: 0, mem_addr: None, taken: true, next_pc: 2,
/// }]);
/// let rec = cols.slot(0);
/// for _ in 0..4 { p.predict(rec); p.update(rec); }
/// assert!(p.predict(rec).correct_for(rec));
/// ```
#[derive(Debug, Clone)]
pub struct GshareBtb {
    config: GshareConfig,
    /// Global history of recent conditional-branch outcomes.
    history: u64,
    /// Pattern table of 2-bit counters, initialized weakly-taken.
    pht: Vec<u8>,
    /// Tagged direct-mapped target buffer: `(tag, target)`.
    btb: Vec<Option<(u64, u64)>>,
    stats: BpredStats,
}

impl GshareBtb {
    /// Creates a predictor with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is zero or greater than 24, or if
    /// `btb_entries` is not a power of two.
    pub fn new(config: GshareConfig) -> GshareBtb {
        assert!(
            (1..=24).contains(&config.history_bits),
            "history must be 1..=24 bits, got {}",
            config.history_bits
        );
        assert!(config.btb_entries.is_power_of_two(), "BTB entries must be a power of two");
        GshareBtb {
            config,
            history: 0,
            pht: vec![2; 1usize << config.history_bits],
            btb: vec![None; config.btb_entries],
            stats: BpredStats::default(),
        }
    }

    /// The default 12-bit-history configuration.
    pub fn default_budget() -> GshareBtb {
        GshareBtb::new(GshareConfig::default_budget())
    }

    /// The geometry in use.
    pub fn config(&self) -> GshareConfig {
        self.config
    }

    fn pht_index(&self, pc: u64) -> usize {
        let mask = (1u64 << self.config.history_bits) - 1;
        ((pc ^ self.history) & mask) as usize
    }

    fn btb_index(&self, pc: u64) -> usize {
        (pc as usize) & (self.config.btb_entries - 1)
    }

    fn btb_target(&self, pc: u64) -> Option<u64> {
        match self.btb[self.btb_index(pc)] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }
}

impl BranchPredictor for GshareBtb {
    fn name(&self) -> &str {
        "gshare"
    }

    fn predict(&mut self, rec: Slot<'_>) -> BranchPrediction {
        let prediction = if rec.is_direct_jump() {
            // Direct transfers: the static target is the recorded next PC.
            BranchPrediction::taken_to(rec.next_pc())
        } else if rec.is_indirect_jump() {
            BranchPrediction { taken: true, target: self.btb_target(rec.pc()) }
        } else if rec.is_cond_branch() {
            if self.pht[self.pht_index(rec.pc())] >= 2 {
                match self.btb_target(rec.pc()) {
                    Some(t) => BranchPrediction::taken_to(t),
                    None => BranchPrediction::not_taken(), // no target: cannot follow
                }
            } else {
                BranchPrediction::not_taken()
            }
        } else {
            BranchPrediction::not_taken()
        };
        self.stats.record(rec, prediction);
        prediction
    }

    fn update(&mut self, rec: Slot<'_>) {
        if rec.is_cond_branch() {
            let idx = self.pht_index(rec.pc());
            if rec.taken() {
                self.pht[idx] = (self.pht[idx] + 1).min(3);
                let slot = self.btb_index(rec.pc());
                self.btb[slot] = Some((rec.pc(), rec.next_pc()));
            } else {
                self.pht[idx] = self.pht[idx].saturating_sub(1);
            }
            let mask = (1u64 << self.config.history_bits) - 1;
            self.history = ((self.history << 1) | rec.taken() as u64) & mask;
        } else if rec.is_indirect_jump() {
            let slot = self.btb_index(rec.pc());
            self.btb[slot] = Some((rec.pc(), rec.next_pc()));
        }
    }

    fn stats(&self) -> BpredStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_isa::{Cond, Instr, Reg};
    use fetchvp_trace::{DynInstr, TraceColumns};

    fn branch(pc: u64, taken: bool, target: u64) -> DynInstr {
        DynInstr {
            seq: 0,
            pc,
            instr: Instr::Branch { cond: Cond::Ne, a: Reg::R1, b: Reg::R0, target },
            result: 0,
            mem_addr: None,
            taken,
            next_pc: if taken { target } else { pc + 1 },
        }
    }

    fn run(p: &mut GshareBtb, recs: &[DynInstr]) -> usize {
        let cols = TraceColumns::from_records(recs);
        cols.view()
            .slots()
            .map(|r| {
                let pred = p.predict(r);
                p.update(r);
                pred.correct_for(r) as usize
            })
            .sum()
    }

    #[test]
    fn biased_branches_are_learned() {
        let mut p = GshareBtb::default_budget();
        let recs: Vec<_> = (0..40).map(|_| branch(7, true, 100)).collect();
        assert!(run(&mut p, &recs) >= 36);
    }

    #[test]
    fn alternating_pattern_is_captured_by_global_history() {
        let mut p = GshareBtb::default_budget();
        let mk = |i: usize| branch(7, i.is_multiple_of(2), 100);
        run(&mut p, &(0..200).map(mk).collect::<Vec<_>>());
        let tail: Vec<_> = (200..240).map(mk).collect();
        assert_eq!(run(&mut p, &tail), 40);
    }

    #[test]
    fn correlated_branches_benefit_from_shared_history() {
        // Branch B's outcome equals branch A's previous outcome: only a
        // global-history scheme captures this.
        let mut p = GshareBtb::default_budget();
        let mut seq = Vec::new();
        for i in 0..300usize {
            let a_taken = (i / 3) % 2 == 0;
            seq.push(branch(10, a_taken, 50));
            seq.push(branch(11, a_taken, 60));
        }
        run(&mut p, &seq[..400]);
        let correct_tail = run(&mut p, &seq[400..]);
        assert!(
            correct_tail as f64 > (seq.len() - 400) as f64 * 0.9,
            "{correct_tail}/{}",
            seq.len() - 400
        );
    }

    #[test]
    fn taken_prediction_without_a_target_falls_back_to_not_taken() {
        let mut p = GshareBtb::new(GshareConfig { history_bits: 4, btb_entries: 4 });
        // Train PC 1 taken (allocates its BTB slot), then train PC 5 (same
        // BTB set) so PC 1's target is evicted.
        for _ in 0..4 {
            run(&mut p, &[branch(1, true, 30)]);
        }
        for _ in 0..4 {
            run(&mut p, &[branch(5, true, 40)]);
        }
        let cols = TraceColumns::from_records(&[branch(1, true, 30)]);
        let pred = p.predict(cols.slot(0));
        assert!(!pred.taken, "without a target the front-end cannot follow");
    }

    #[test]
    fn indirect_jumps_use_the_btb() {
        let mut p = GshareBtb::default_budget();
        let mk = |t: u64| DynInstr {
            seq: 0,
            pc: 9,
            instr: Instr::JumpInd { base: Reg::R31 },
            result: 0,
            mem_addr: None,
            taken: true,
            next_pc: t,
        };
        let cols = TraceColumns::from_records(&[mk(77)]);
        let a = cols.slot(0);
        assert!(!p.predict(a).correct_for(a));
        p.update(a);
        assert!(p.predict(a).correct_for(a));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_btb_size_panics() {
        GshareBtb::new(GshareConfig { history_bits: 8, btb_entries: 100 });
    }
}
