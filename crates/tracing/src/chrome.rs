//! Deterministic Chrome trace-event JSON export (Perfetto-loadable).
//!
//! The [trace-event format] is the JSON dialect understood by Perfetto and
//! `chrome://tracing`: an object with a `traceEvents` array whose entries
//! carry a phase (`ph`), timestamps in microseconds, and a `pid`/`tid`
//! pair selecting the track. We map one simulated cycle to one microsecond
//! and one [`Lane`] to one thread, so the UI shows the pipeline as stacked
//! per-stage tracks on a cycle axis.
//!
//! [trace-event format]:
//!     https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::witness::{Event, EventKind, Lane};
use fetchvp_metrics::Json;

/// Renders events as a Chrome trace-event document.
///
/// Events are stably sorted by `(lane, ts)` before export, so every lane's
/// timestamps are monotonically non-decreasing regardless of capture order
/// (writeback events, for example, are captured in trace order but complete
/// out of order). The output is deterministic: same events in, same JSON
/// out, byte for byte.
pub fn chrome_trace(events: &[Event], process_name: &str) -> Json {
    let mut sorted: Vec<&Event> = events.iter().collect();
    sorted.sort_by_key(|e| (e.lane, e.ts));

    let mut out: Vec<Json> = Vec::with_capacity(sorted.len() + 1 + Lane::ALL.len());
    out.push(meta(0, "process_name", process_name));
    for lane in Lane::ALL {
        out.push(meta(lane.tid(), "thread_name", lane.name()));
    }
    out.extend(sorted.into_iter().map(event_json));
    Json::object([("traceEvents".to_string(), Json::Array(out))])
}

fn str_json(s: &str) -> Json {
    Json::Str(s.to_string())
}

fn meta(tid: u64, name: &str, value: &str) -> Json {
    Json::object([
        ("name".to_string(), str_json(name)),
        ("ph".to_string(), str_json("M")),
        ("pid".to_string(), Json::UInt(1)),
        ("tid".to_string(), Json::UInt(tid)),
        ("args".to_string(), Json::object([("name".to_string(), str_json(value))])),
    ])
}

fn event_json(ev: &Event) -> Json {
    let mut pairs: Vec<(String, Json)> = vec![
        ("name".to_string(), str_json(ev.name)),
        ("cat".to_string(), str_json("pipeline")),
        ("pid".to_string(), Json::UInt(1)),
        ("tid".to_string(), Json::UInt(ev.lane.tid())),
        ("ts".to_string(), Json::UInt(ev.ts)),
    ];
    match ev.kind {
        EventKind::Span => {
            pairs.push(("ph".to_string(), str_json("X")));
            pairs.push(("dur".to_string(), Json::UInt(ev.dur)));
            pairs.push(("args".to_string(), args(ev)));
        }
        EventKind::Instant => {
            pairs.push(("ph".to_string(), str_json("i")));
            // Thread-scoped instant: drawn inside the lane, not full-height.
            pairs.push(("s".to_string(), str_json("t")));
            pairs.push(("args".to_string(), args(ev)));
        }
        EventKind::Counter => {
            pairs.push(("ph".to_string(), str_json("C")));
            pairs.push((
                "args".to_string(),
                Json::object([("value".to_string(), Json::UInt(ev.seq))]),
            ));
        }
    }
    Json::object(pairs)
}

fn args(ev: &Event) -> Json {
    Json::object([("seq".to_string(), Json::UInt(ev.seq)), ("pc".to_string(), Json::UInt(ev.pc))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::witness::EventSink;
    use crate::Ring;

    #[test]
    fn output_parses_and_sorts_each_lane_monotonically() {
        let mut ring = Ring::new(8);
        // Captured out of ts order within the Issue lane.
        ring.record(Event::span(Lane::Issue, 5, 1, "instr", 1, 0x10));
        ring.record(Event::span(Lane::Issue, 3, 1, "instr", 2, 0x14));
        ring.record(Event::instant(Lane::Predict, 4, "vp_correct", 2, 0x14));
        let doc = chrome_trace(&ring.drain(), "test");
        let text = doc.to_json();
        let parsed = Json::parse(&text).expect("chrome trace must be valid JSON");
        let events = match parsed.get("traceEvents") {
            Some(Json::Array(items)) => items,
            other => panic!("expected traceEvents array, got {other:?}"),
        };
        // 1 process + 7 lane metadata events + 3 captured events.
        assert_eq!(events.len(), 1 + Lane::ALL.len() + 3);
        let mut last_ts: Vec<Option<u64>> = vec![None; Lane::ALL.len() + 2];
        for ev in events {
            if ev.get("ph").and_then(Json::as_str) == Some("M") {
                continue;
            }
            let tid = ev.get("tid").and_then(Json::as_u64).unwrap() as usize;
            let ts = ev.get("ts").and_then(Json::as_u64).unwrap();
            assert!(last_ts[tid].is_none_or(|prev| prev <= ts), "lane {tid} not monotone");
            last_ts[tid] = Some(ts);
        }
    }

    #[test]
    fn export_is_deterministic() {
        let events = vec![
            Event::counter(Lane::Window, 2, "occupancy", 7),
            Event::span(Lane::Fetch, 0, 1, "instr", 0, 0x4),
        ];
        let a = chrome_trace(&events, "p").to_json();
        let b = chrome_trace(&events, "p").to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"ph\": \"C\"") || a.contains("\"ph\":\"C\""));
    }
}
