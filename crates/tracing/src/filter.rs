//! `FETCHVP_LOG` parsing and the global leveled log entry point.

use std::fmt;
use std::io::Write as _;
use std::sync::OnceLock;

/// Log severity, from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Unrecoverable or clearly-wrong conditions.
    Error,
    /// Suspicious conditions the run survives.
    Warn,
    /// High-level progress (one line per request / experiment).
    Info,
    /// Per-operation detail.
    Debug,
    /// Per-instruction / per-cycle detail.
    Trace,
}

impl Level {
    /// Fixed-width upper-case name (`ERROR`, `WARN`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    /// Parses a level name case-insensitively (`None` for unknown names).
    pub fn parse(text: &str) -> Option<Level> {
        match text.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(self.as_str())
    }
}

/// A parsed `FETCHVP_LOG` spec: a default maximum level plus per-target
/// overrides.
///
/// Grammar (comma-separated directives, whitespace ignored):
///
/// - `off` — disable everything (also the behaviour when the variable is
///   unset or empty);
/// - `<level>` — set the default maximum level (`error`…`trace`);
/// - `<target>=<level>` / `<target>=off` — override one target and its
///   dot-separated children (`server=debug` also enables `server.http`).
///
/// Unknown level names are ignored rather than rejected, so a typo degrades
/// to "no directive" instead of killing the process.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Filter {
    default: Option<Level>,
    directives: Vec<(String, Option<Level>)>,
}

impl Filter {
    /// The all-off filter (everything disabled).
    pub fn off() -> Filter {
        Filter::default()
    }

    /// Parses a spec string (see the type-level grammar).
    pub fn parse(spec: &str) -> Filter {
        let mut filter = Filter::default();
        for token in spec.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            match token.split_once('=') {
                None => {
                    if token.eq_ignore_ascii_case("off") {
                        filter.default = None;
                    } else if let Some(level) = Level::parse(token) {
                        filter.default = Some(level);
                    }
                }
                Some((target, level)) => {
                    let target = target.trim();
                    if target.is_empty() {
                        continue;
                    }
                    if level.trim().eq_ignore_ascii_case("off") {
                        filter.directives.push((target.to_string(), None));
                    } else if let Some(level) = Level::parse(level) {
                        filter.directives.push((target.to_string(), Some(level)));
                    }
                }
            }
        }
        filter
    }

    /// Parses the `FETCHVP_LOG` environment variable (unset / empty → off).
    pub fn from_env() -> Filter {
        match std::env::var("FETCHVP_LOG") {
            Ok(spec) => Filter::parse(&spec),
            Err(_) => Filter::off(),
        }
    }

    /// Whether `level` messages for `target` pass the filter. The most
    /// specific matching directive wins; the default level applies
    /// otherwise.
    pub fn enabled(&self, target: &str, level: Level) -> bool {
        let mut best: Option<(usize, Option<Level>)> = None;
        for (name, max) in &self.directives {
            let matches = target == name
                || (target.len() > name.len()
                    && target.starts_with(name.as_str())
                    && target.as_bytes()[name.len()] == b'.');
            if matches && best.is_none_or(|(len, _)| name.len() >= len) {
                best = Some((name.len(), *max));
            }
        }
        let max = match best {
            Some((_, max)) => max,
            None => self.default,
        };
        max.is_some_and(|max| level <= max)
    }
}

static GLOBAL: OnceLock<Filter> = OnceLock::new();

/// The process-wide filter, initialised from `FETCHVP_LOG` on first use.
fn global() -> &'static Filter {
    GLOBAL.get_or_init(Filter::from_env)
}

/// Whether `level` messages for `target` would be emitted.
pub fn enabled(target: &str, level: Level) -> bool {
    global().enabled(target, level)
}

/// Emits one log line to stderr if `(target, level)` passes the global
/// filter. The message closure is only invoked when enabled, so a disabled
/// call costs one filter lookup — no formatting, no allocation.
pub fn log_with(target: &str, level: Level, message: impl FnOnce() -> String) {
    if enabled(target, level) {
        let line = format!("[{level:<5} {target}] {}\n", message());
        let _ = std::io::stderr().lock().write_all(line.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_and_off_disable_everything() {
        for filter in [Filter::off(), Filter::parse(""), Filter::parse("off")] {
            assert!(!filter.enabled("server", Level::Error));
            assert!(!filter.enabled("sched", Level::Trace));
        }
    }

    #[test]
    fn bare_level_sets_the_default() {
        let filter = Filter::parse("info");
        assert!(filter.enabled("anything", Level::Error));
        assert!(filter.enabled("anything", Level::Info));
        assert!(!filter.enabled("anything", Level::Debug));
    }

    #[test]
    fn target_directives_override_the_default() {
        let filter = Filter::parse("warn,server=debug,sched=off");
        assert!(filter.enabled("server", Level::Debug));
        assert!(filter.enabled("server.http", Level::Debug));
        assert!(!filter.enabled("server.http", Level::Trace));
        assert!(!filter.enabled("sched", Level::Error));
        assert!(filter.enabled("fetch", Level::Warn));
        assert!(!filter.enabled("fetch", Level::Info));
    }

    #[test]
    fn most_specific_directive_wins() {
        let filter = Filter::parse("server=error,server.http=trace");
        assert!(filter.enabled("server.http", Level::Trace));
        assert!(!filter.enabled("server.jobs", Level::Info));
    }

    #[test]
    fn prefix_match_requires_a_dot_boundary() {
        let filter = Filter::parse("sched=trace");
        assert!(filter.enabled("sched.window", Level::Trace));
        assert!(!filter.enabled("scheduler", Level::Error));
    }

    #[test]
    fn unknown_levels_are_ignored() {
        let filter = Filter::parse("bogus,server=verbose,info");
        assert!(filter.enabled("server", Level::Info));
        assert!(!filter.enabled("server", Level::Debug));
    }

    #[test]
    fn levels_parse_case_insensitively_and_order_by_severity() {
        assert_eq!(Level::parse("TRACE"), Some(Level::Trace));
        assert_eq!(Level::parse("Warning"), Some(Level::Warn));
        assert!(Level::Error < Level::Trace);
        assert_eq!(format!("{:<5}", Level::Warn), "WARN ");
    }
}
