//! Shared job-progress events and the drop-oldest ring they travel
//! through.
//!
//! The batch kernel reports bare "instructions retired" ticks through
//! `fetchvp_core::ProgressSink`; the sweep layer decorates them with the
//! workload, config chunk and out-of-core chunk in flight; the server
//! attaches the job id and phase and pushes the resulting
//! [`ProgressEvent`]s into a per-job [`ProgressRing`]. Readers (the
//! `GET /jobs/<id>/events` stream) follow the ring with a cursor:
//! a reader that falls behind loses the *oldest* events — never the
//! terminal one, which is always the newest — and is told exactly how
//! many it lost.
//!
//! Unlike [`Ring`](crate::Ring) (single-owner, lock-free, one per sweep
//! worker), a `ProgressRing` is shared: one writer side (the job's sweep
//! threads) and any number of cursor readers, synchronized by a mutex
//! that is held only for the few queue operations.

use std::collections::VecDeque;
use std::sync::Mutex;

use fetchvp_metrics::Json;

/// One structured progress event of a running job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressEvent {
    /// Ring sequence number, assigned on push: strictly increasing per
    /// job, starting at 0. Gaps visible to a reader mean its cursor fell
    /// behind and events were dropped.
    pub seq: u64,
    /// The job this event belongs to.
    pub job: u64,
    /// Lifecycle phase: `"queued"`, `"running"`, `"done"` or `"failed"`.
    pub phase: &'static str,
    /// The workload (benchmark) the reporting cell is walking; empty for
    /// pure lifecycle events.
    pub workload: String,
    /// Config-chunk index of the reporting cell within the sweep.
    pub chunk: usize,
    /// On-disk chunk index for out-of-core replay (0 for in-memory runs).
    pub store_chunk: usize,
    /// Instructions retired so far across the whole job.
    pub instructions_done: u64,
    /// Instructions the whole job will retire (0 until known).
    pub instructions_total: u64,
    /// Sweep cells finished so far.
    pub cells_done: u64,
    /// Total sweep cells of the job (0 until known).
    pub cells_total: u64,
    /// True when this event marks a cell crossing the finish line.
    pub cell_completed: bool,
}

impl ProgressEvent {
    /// Renders the event as one compact JSON line (deterministic key
    /// order, no trailing newline) — the wire format of the server's
    /// `GET /jobs/<id>/events` NDJSON stream. The output parses with
    /// [`fetchvp_metrics::Json::parse`].
    pub fn to_line(&self) -> String {
        let workload = Json::Str(self.workload.clone()).to_json();
        format!(
            "{{\"seq\": {}, \"job\": {}, \"phase\": \"{}\", \"workload\": {}, \
             \"chunk\": {}, \"store_chunk\": {}, \"instructions_done\": {}, \
             \"instructions_total\": {}, \"cells_done\": {}, \"cells_total\": {}, \
             \"cell_completed\": {}}}",
            self.seq,
            self.job,
            self.phase,
            workload,
            self.chunk,
            self.store_chunk,
            self.instructions_done,
            self.instructions_total,
            self.cells_done,
            self.cells_total,
            self.cell_completed,
        )
    }
}

/// What a cursor read out of a [`ProgressRing`]: the events at or past
/// the cursor, the cursor to pass next time, and how many events the
/// cursor missed because the ring dropped them first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressBatch {
    /// Events with `seq >= cursor`, oldest first.
    pub events: Vec<ProgressEvent>,
    /// The cursor for the next read (one past the newest returned seq).
    pub next_cursor: u64,
    /// Events between the cursor and the oldest retained seq, evicted
    /// before this reader got to them (slow-reader drop-oldest).
    pub dropped: u64,
}

/// A bounded, shared, drop-oldest ring of [`ProgressEvent`]s.
///
/// Writers [`push`](ProgressRing::push); when full, the *oldest* event is
/// evicted so the newest (ultimately the terminal event) is always
/// retained. Readers poll with [`since`](ProgressRing::since) using their
/// own cursor; the ring never blocks on a slow reader.
#[derive(Debug)]
pub struct ProgressRing {
    capacity: usize,
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    events: VecDeque<ProgressEvent>,
    /// Sequence number the next push will be assigned.
    next_seq: u64,
}

impl ProgressRing {
    /// Creates a ring retaining at most `capacity` events (minimum 1, so
    /// the terminal event always survives).
    pub fn new(capacity: usize) -> ProgressRing {
        ProgressRing {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner { events: VecDeque::new(), next_seq: 0 }),
        }
    }

    /// Appends an event (its `seq` field is assigned by the ring),
    /// evicting the oldest event when full. Returns the assigned seq.
    pub fn push(&self, mut event: ProgressEvent) -> u64 {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let seq = inner.next_seq;
        event.seq = seq;
        inner.next_seq += 1;
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
        }
        inner.events.push_back(event);
        seq
    }

    /// Returns every retained event with `seq >= cursor` (oldest first)
    /// plus the next cursor and the count of events this cursor missed.
    pub fn since(&self, cursor: u64) -> ProgressBatch {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let oldest = inner.next_seq - inner.events.len() as u64;
        let dropped = oldest.saturating_sub(cursor);
        let events: Vec<ProgressEvent> =
            inner.events.iter().filter(|e| e.seq >= cursor).cloned().collect();
        ProgressBatch { events, next_cursor: inner.next_seq.max(cursor), dropped }
    }

    /// The newest retained event, if any.
    pub fn last(&self) -> Option<ProgressEvent> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.events.back().cloned()
    }

    /// How many events this ring retains at most.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(job: u64) -> ProgressEvent {
        ProgressEvent {
            seq: 0,
            job,
            phase: "running",
            workload: "gcc".to_string(),
            chunk: 1,
            store_chunk: 2,
            instructions_done: 4096,
            instructions_total: 20_000_000,
            cells_done: 0,
            cells_total: 16,
            cell_completed: false,
        }
    }

    #[test]
    fn push_assigns_increasing_seqs_and_since_reads_them_back() {
        let ring = ProgressRing::new(8);
        for i in 0..5 {
            assert_eq!(ring.push(event(7)), i);
        }
        let batch = ring.since(0);
        assert_eq!(batch.dropped, 0);
        assert_eq!(batch.next_cursor, 5);
        assert_eq!(batch.events.len(), 5);
        assert!(batch.events.windows(2).all(|w| w[0].seq + 1 == w[1].seq));

        // A caught-up cursor reads nothing and keeps its position.
        let again = ring.since(batch.next_cursor);
        assert!(again.events.is_empty());
        assert_eq!(again.next_cursor, 5);
        assert_eq!(again.dropped, 0);
    }

    #[test]
    fn overflow_drops_oldest_and_reports_the_gap() {
        let ring = ProgressRing::new(3);
        for _ in 0..10 {
            ring.push(event(1));
        }
        // Seqs 0..7 were evicted; a cursor at 0 lost exactly those.
        let batch = ring.since(0);
        assert_eq!(batch.dropped, 7);
        assert_eq!(batch.events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![7, 8, 9]);
        assert_eq!(batch.next_cursor, 10);
        // The newest event always survives.
        assert_eq!(ring.last().unwrap().seq, 9);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let ring = ProgressRing::new(0);
        ring.push(event(1));
        ring.push(event(1));
        assert_eq!(ring.capacity(), 1);
        assert_eq!(ring.since(0).events.len(), 1);
        assert_eq!(ring.last().unwrap().seq, 1);
    }

    #[test]
    fn event_line_is_one_parseable_line_with_the_fields_in_order() {
        let text = event(9).to_line();
        assert!(!text.contains('\n'), "NDJSON events must be single lines: {text}");
        assert!(text.starts_with(r#"{"seq": 0, "job": 9, "phase": "running""#), "{text}");
        assert!(text.contains(r#""instructions_done": 4096"#));
        assert!(text.ends_with(r#""cell_completed": false}"#), "{text}");
        let doc = Json::parse(&text).expect("event lines parse with our own Json");
        assert_eq!(doc.get("workload").and_then(Json::as_str), Some("gcc"));
        assert_eq!(doc.get("instructions_total").and_then(Json::as_u64), Some(20_000_000));
    }
}
