//! Prometheus text exposition over a [`fetchvp_metrics::Registry`].
//!
//! Renders the registry in the [text-based exposition format] version
//! 0.0.4: counters and gauges as single samples, histograms as
//! summary-style quantile samples (`{quantile="0.5"}` / `0.95` / `0.99`,
//! derived deterministically from the log₂ bucket layout) plus `_sum` and
//! `_count`. Every sample is preceded by `# HELP` (a per-family
//! description, see [`help_text`]) and `# TYPE` lines. Dotted metric
//! keys are sanitised to underscores and prefixed with `fetchvp_`, so
//! `server.jobs_completed` becomes `fetchvp_server_jobs_completed`.
//!
//! [text-based exposition format]:
//!     https://prometheus.io/docs/instrumenting/exposition_formats/

use fetchvp_metrics::{Metric, Registry};
use std::fmt::Write as _;

/// The `Content-Type` a Prometheus scraper expects for this format.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Maps a dotted registry key to a Prometheus metric name.
pub fn metric_name(key: &str) -> String {
    let mut name = String::with_capacity(key.len() + 8);
    name.push_str("fetchvp_");
    for c in key.chars() {
        if c.is_ascii_alphanumeric() {
            name.push(c);
        } else {
            name.push('_');
        }
    }
    name
}

/// Known metric families and their operator-facing descriptions. A key
/// matches an entry when it equals the family or extends it with a
/// dotted suffix; longer (more specific) prefixes are listed first and
/// win.
const FAMILY_HELP: &[(&str, &str)] = &[
    ("server.request_latency_us", "Request latency in microseconds, accept to last byte"),
    ("server.requests", "Requests answered, by endpoint and status or failure class"),
    ("server.queue", "Bounded job queue admissions, rejections and occupancy"),
    ("server.jobs", "Job lifecycle totals"),
    ("server.workers", "Worker pool activity"),
    ("server.peers", "Fleet proxy hops, relay streams, failures and health transitions"),
    ("server.result_cache", "Content-addressed result cache traffic and residency"),
    ("server.trace_cache", "Shared trace cache residency"),
    ("server.connections", "Listener-level connection accounting"),
    ("server.uptime_seconds", "Seconds since the daemon bound its listening socket"),
    ("server", "fetchvp daemon internals"),
    ("build", "Build identity: crate version and on-disk format versions"),
];

/// The `# HELP` description for a dotted registry key: the most
/// specific matching `FAMILY_HELP` entry, or a generic fallback
/// naming the key. Deterministic, so scrapes diff cleanly.
pub fn help_text(key: &str) -> String {
    for (family, help) in FAMILY_HELP {
        let matches =
            key.strip_prefix(family).is_some_and(|rest| rest.is_empty() || rest.starts_with('.'));
        if matches {
            return format!("{help} (registry key {key})");
        }
    }
    format!("fetchvp registry key {key}")
}

fn float(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{value}")
    }
}

/// Renders the whole registry as Prometheus exposition text.
///
/// Deterministic: the registry iterates in sorted key order and every
/// number formats identically run to run.
pub fn render(registry: &Registry) -> String {
    let mut out = String::new();
    for (key, metric) in registry.iter() {
        let name = metric_name(key);
        let _ = writeln!(out, "# HELP {name} {}", help_text(key));
        match metric {
            Metric::Counter(n) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {n}");
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {}", float(*g));
            }
            Metric::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {name} summary");
                for (q, v) in [("0.5", h.p50()), ("0.95", h.p95()), ("0.99", h.p99())] {
                    let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
                }
                let _ = writeln!(out, "{name}_sum {}", h.sum());
                let _ = writeln!(out, "{name}_count {}", h.count());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitises_dotted_keys() {
        assert_eq!(metric_name("server.jobs_completed"), "fetchvp_server_jobs_completed");
        assert_eq!(metric_name("machine.did_hist.useful"), "fetchvp_machine_did_hist_useful");
    }

    #[test]
    fn renders_all_three_metric_kinds() {
        let mut reg = Registry::new();
        reg.counter("server", "requests", 3);
        reg.gauge("machine", "ipc", 2.5);
        for v in [1, 2, 3, 100] {
            reg.observe("server", "request_latency_us", v);
        }
        let text = render(&reg);
        assert!(
            text.contains("# TYPE fetchvp_server_requests counter\nfetchvp_server_requests 3\n")
        );
        assert!(text.contains("# TYPE fetchvp_machine_ipc gauge\nfetchvp_machine_ipc 2.5\n"));
        assert!(text.contains("# TYPE fetchvp_server_request_latency_us summary"));
        assert!(text.contains("fetchvp_server_request_latency_us{quantile=\"0.5\"} "));
        assert!(text.contains("fetchvp_server_request_latency_us_sum 106\n"));
        assert!(text.contains("fetchvp_server_request_latency_us_count 4\n"));
    }

    #[test]
    fn every_family_gets_help_before_type() {
        let mut reg = Registry::new();
        reg.counter("server.requests", "run.202", 1);
        reg.gauge("server", "uptime_seconds", 12.0);
        reg.observe("server", "request_latency_us", 5);
        reg.counter("build", "info", 1);
        reg.counter("something.else", "entirely", 1);
        let text = render(&reg);
        for line in text.lines().filter(|l| l.starts_with("# TYPE ")) {
            let name = line.split_whitespace().nth(2).unwrap();
            assert!(text.contains(&format!("# HELP {name} ")), "missing HELP for {name}:\n{text}");
        }
        // HELP precedes TYPE for the same family (exposition-format order).
        let help_at = text.find("# HELP fetchvp_server_requests_run_202").unwrap();
        let type_at = text.find("# TYPE fetchvp_server_requests_run_202").unwrap();
        assert!(help_at < type_at);
        assert!(text.contains(
            "# HELP fetchvp_server_uptime_seconds Seconds since the daemon bound its \
             listening socket (registry key server.uptime_seconds)"
        ));
        // Unknown families still get a (generic) description.
        assert!(text.contains(
            "# HELP fetchvp_something_else_entirely fetchvp registry key something.else.entirely"
        ));
    }

    #[test]
    fn help_prefers_the_most_specific_family() {
        assert!(help_text("server.request_latency_us").starts_with("Request latency"));
        assert!(help_text("server.requests.run.202").starts_with("Requests answered"));
        assert!(help_text("server.started").starts_with("fetchvp daemon internals"));
        assert!(help_text("server_suffixless").starts_with("fetchvp registry key"));
    }

    #[test]
    fn non_finite_gauges_render_prometheus_style() {
        let mut reg = Registry::new();
        reg.gauge("x", "nan", f64::NAN);
        reg.gauge("x", "inf", f64::INFINITY);
        let text = render(&reg);
        assert!(text.contains("fetchvp_x_nan NaN"));
        assert!(text.contains("fetchvp_x_inf +Inf"));
    }

    #[test]
    fn render_is_deterministic() {
        let mut reg = Registry::new();
        reg.counter("a", "b", 1);
        reg.observe("c", "d", 9);
        assert_eq!(render(&reg), render(&reg));
    }
}
