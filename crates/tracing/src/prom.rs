//! Prometheus text exposition over a [`fetchvp_metrics::Registry`].
//!
//! Renders the registry in the [text-based exposition format] version
//! 0.0.4: counters and gauges as single samples, histograms as
//! summary-style quantile samples (`{quantile="0.5"}` / `0.95` / `0.99`,
//! derived deterministically from the log₂ bucket layout) plus `_sum` and
//! `_count`. Dotted metric keys are sanitised to underscores and prefixed
//! with `fetchvp_`, so `server.jobs_completed` becomes
//! `fetchvp_server_jobs_completed`.
//!
//! [text-based exposition format]:
//!     https://prometheus.io/docs/instrumenting/exposition_formats/

use fetchvp_metrics::{Metric, Registry};
use std::fmt::Write as _;

/// The `Content-Type` a Prometheus scraper expects for this format.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Maps a dotted registry key to a Prometheus metric name.
pub fn metric_name(key: &str) -> String {
    let mut name = String::with_capacity(key.len() + 8);
    name.push_str("fetchvp_");
    for c in key.chars() {
        if c.is_ascii_alphanumeric() {
            name.push(c);
        } else {
            name.push('_');
        }
    }
    name
}

fn float(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{value}")
    }
}

/// Renders the whole registry as Prometheus exposition text.
///
/// Deterministic: the registry iterates in sorted key order and every
/// number formats identically run to run.
pub fn render(registry: &Registry) -> String {
    let mut out = String::new();
    for (key, metric) in registry.iter() {
        let name = metric_name(key);
        match metric {
            Metric::Counter(n) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {n}");
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {}", float(*g));
            }
            Metric::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {name} summary");
                for (q, v) in [("0.5", h.p50()), ("0.95", h.p95()), ("0.99", h.p99())] {
                    let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
                }
                let _ = writeln!(out, "{name}_sum {}", h.sum());
                let _ = writeln!(out, "{name}_count {}", h.count());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitises_dotted_keys() {
        assert_eq!(metric_name("server.jobs_completed"), "fetchvp_server_jobs_completed");
        assert_eq!(metric_name("machine.did_hist.useful"), "fetchvp_machine_did_hist_useful");
    }

    #[test]
    fn renders_all_three_metric_kinds() {
        let mut reg = Registry::new();
        reg.counter("server", "requests", 3);
        reg.gauge("machine", "ipc", 2.5);
        for v in [1, 2, 3, 100] {
            reg.observe("server", "request_latency_us", v);
        }
        let text = render(&reg);
        assert!(
            text.contains("# TYPE fetchvp_server_requests counter\nfetchvp_server_requests 3\n")
        );
        assert!(text.contains("# TYPE fetchvp_machine_ipc gauge\nfetchvp_machine_ipc 2.5\n"));
        assert!(text.contains("# TYPE fetchvp_server_request_latency_us summary"));
        assert!(text.contains("fetchvp_server_request_latency_us{quantile=\"0.5\"} "));
        assert!(text.contains("fetchvp_server_request_latency_us_sum 106\n"));
        assert!(text.contains("fetchvp_server_request_latency_us_count 4\n"));
    }

    #[test]
    fn non_finite_gauges_render_prometheus_style() {
        let mut reg = Registry::new();
        reg.gauge("x", "nan", f64::NAN);
        reg.gauge("x", "inf", f64::INFINITY);
        let text = render(&reg);
        assert!(text.contains("fetchvp_x_nan NaN"));
        assert!(text.contains("fetchvp_x_inf +Inf"));
    }

    #[test]
    fn render_is_deterministic() {
        let mut reg = Registry::new();
        reg.counter("a", "b", 1);
        reg.observe("c", "d", 9);
        assert_eq!(render(&reg), render(&reg));
    }
}
