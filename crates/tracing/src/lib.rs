//! Observability for the fetchvp simulators: leveled env-filtered logging,
//! cycle-level pipeline event capture, and deterministic exporters.
//!
//! Three layers, all zero-dependency:
//!
//! - [`Level`] / [`Filter`] / [`log_with`] — a structured, leveled log API
//!   filtered by the `FETCHVP_LOG` environment variable (same grammar as
//!   `env_logger`-style specs: `info`, `off`, `server=debug,sched=trace`).
//!   Logging defaults to **off**; the message closure is only invoked when
//!   the (target, level) pair is enabled, so the disabled path performs no
//!   allocation and no formatting.
//! - [`Event`] / [`Ring`] / [`EventSink`] — a fixed-size, allocation-free
//!   pipeline event record plus a drop-oldest ring buffer. Each simulation
//!   run (and therefore each sweep worker thread) owns its own ring, so
//!   capture is lock-free by construction.
//! - [`ProgressEvent`] / [`ProgressRing`] — structured job-progress
//!   events in a *shared* drop-oldest ring with cursor readers: the
//!   transport between the batch kernel's progress seam and the server's
//!   live `GET /jobs/<id>/events` stream.
//! - [`chrome::chrome_trace`] and [`prom::render`] — deterministic
//!   exporters: Chrome trace-event JSON (loadable in Perfetto / `chrome://
//!   tracing`) and Prometheus text exposition over a
//!   [`fetchvp_metrics::Registry`].
//!
//! # Example
//!
//! ```
//! use fetchvp_tracing::{chrome, Event, EventSink, Lane, Ring};
//!
//! let mut ring = Ring::new(16);
//! ring.record(Event::span(Lane::Fetch, 0, 1, "instr", 0, 0x4000));
//! ring.record(Event::span(Lane::Dispatch, 1, 1, "instr", 0, 0x4000));
//! let json = chrome::chrome_trace(&ring.drain(), "example");
//! assert!(json.to_json().contains("traceEvents"));
//! ```

pub mod chrome;
pub mod prom;

mod filter;
mod progress;
mod witness;

pub use filter::{enabled, log_with, Filter, Level};
pub use progress::{ProgressBatch, ProgressEvent, ProgressRing};
pub use witness::{Event, EventKind, EventSink, Lane, Ring};
