//! Pipeline witness events and the drop-oldest ring buffer.

/// A pipeline lane — one horizontal track in the exported trace.
///
/// The discriminant order is the display order (top to bottom in Perfetto).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lane {
    /// Instructions entering the front end.
    Fetch,
    /// Instructions entering the scheduling window.
    Dispatch,
    /// Instructions beginning execution.
    Issue,
    /// Results written back / available for bypass.
    Writeback,
    /// Value-prediction outcomes (correct / wrong instants).
    Predict,
    /// Address-router bank conflicts in the banked predictor.
    BankConflict,
    /// Derived counters (window occupancy).
    Window,
}

impl Lane {
    /// Every lane, in display order.
    pub const ALL: [Lane; 7] = [
        Lane::Fetch,
        Lane::Dispatch,
        Lane::Issue,
        Lane::Writeback,
        Lane::Predict,
        Lane::BankConflict,
        Lane::Window,
    ];

    /// Human-readable lane name used for Chrome `thread_name` metadata.
    pub fn name(self) -> &'static str {
        match self {
            Lane::Fetch => "fetch",
            Lane::Dispatch => "dispatch",
            Lane::Issue => "issue",
            Lane::Writeback => "writeback",
            Lane::Predict => "predict",
            Lane::BankConflict => "bank_conflict",
            Lane::Window => "window",
        }
    }

    /// The Chrome `tid` assigned to this lane (1-based; 0 is the process).
    pub fn tid(self) -> u64 {
        self as u64 + 1
    }
}

/// How an [`Event`] renders in the Chrome trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A duration (`ph: "X"`) — e.g. an instruction occupying a stage.
    Span,
    /// A point-in-time marker (`ph: "i"`) — e.g. a prediction outcome.
    Instant,
    /// A sampled counter (`ph: "C"`) — e.g. window occupancy.
    Counter,
}

/// One captured pipeline event. `Copy` and allocation-free by design: the
/// hot path moves 7 machine words into a preallocated ring, nothing more.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Event {
    /// Start cycle (exported as microseconds: 1 cycle = 1 µs).
    pub ts: u64,
    /// Duration in cycles (0 for instants and counters).
    pub dur: u64,
    /// The lane this event belongs to.
    pub lane: Lane,
    /// Render style in the exported trace.
    pub kind: EventKind,
    /// Event name (static so capture never allocates).
    pub name: &'static str,
    /// Dynamic instruction sequence number — or the sampled value for
    /// [`EventKind::Counter`] events.
    pub seq: u64,
    /// Program counter (0 when not applicable).
    pub pc: u64,
}

impl Event {
    /// A duration event covering cycles `[ts, ts + dur)`.
    pub fn span(lane: Lane, ts: u64, dur: u64, name: &'static str, seq: u64, pc: u64) -> Event {
        Event { ts, dur, lane, kind: EventKind::Span, name, seq, pc }
    }

    /// A point-in-time event at cycle `ts`.
    pub fn instant(lane: Lane, ts: u64, name: &'static str, seq: u64, pc: u64) -> Event {
        Event { ts, dur: 0, lane, kind: EventKind::Instant, name, seq, pc }
    }

    /// A counter sample: at cycle `ts`, `name` has `value`.
    pub fn counter(lane: Lane, ts: u64, name: &'static str, value: u64) -> Event {
        Event { ts, dur: 0, lane, kind: EventKind::Counter, name, seq: value, pc: 0 }
    }
}

/// Anything that can absorb captured events.
///
/// The simulators take `Option<&mut dyn EventSink>`; passing `None` is the
/// zero-cost disabled path (one predictable branch per instruction, no
/// allocation, no formatting).
pub trait EventSink {
    /// Records one event.
    fn record(&mut self, ev: Event);
}

impl EventSink for Vec<Event> {
    fn record(&mut self, ev: Event) {
        self.push(ev);
    }
}

/// A bounded, single-owner ring buffer of [`Event`]s.
///
/// On overflow the **oldest** event is dropped and counted — a witness
/// window that always shows the most recent activity, never blocks, and
/// reports exactly how much history it lost. Each simulation run owns its
/// own ring (sweep workers never share one), so capture needs no locks.
#[derive(Debug, Clone)]
pub struct Ring {
    buf: Vec<Event>,
    capacity: usize,
    /// Index of the oldest event when the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl Ring {
    /// An empty ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Ring {
        assert!(capacity > 0, "ring capacity must be non-zero");
        Ring { buf: Vec::with_capacity(capacity), capacity, head: 0, dropped: 0 }
    }

    /// Appends an event, dropping (and counting) the oldest on overflow.
    pub fn push(&mut self, ev: Event) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of events the ring can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events evicted by overflow since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Removes and returns all events in arrival order (oldest first).
    pub fn drain(&mut self) -> Vec<Event> {
        let head = std::mem::take(&mut self.head);
        let mut events = std::mem::replace(&mut self.buf, Vec::with_capacity(self.capacity));
        events.rotate_left(head);
        events
    }
}

impl EventSink for Ring {
    fn record(&mut self, ev: Event) {
        self.push(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64) -> Event {
        Event::instant(Lane::Fetch, ts, "e", ts, 0)
    }

    #[test]
    fn ring_keeps_arrival_order_below_capacity() {
        let mut ring = Ring::new(4);
        for t in 0..3 {
            ring.push(ev(t));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 0);
        let ts: Vec<u64> = ring.drain().iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![0, 1, 2]);
    }

    #[test]
    fn ring_drops_oldest_and_counts_on_overflow() {
        let mut ring = Ring::new(3);
        for t in 0..7 {
            ring.push(ev(t));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 4);
        let ts: Vec<u64> = ring.drain().iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![4, 5, 6]);
        assert!(ring.is_empty());
    }

    #[test]
    fn drain_resets_the_ring_for_reuse() {
        let mut ring = Ring::new(2);
        ring.push(ev(0));
        ring.push(ev(1));
        ring.push(ev(2));
        assert_eq!(ring.drain().len(), 2);
        ring.push(ev(9));
        assert_eq!(ring.drain().first().map(|e| e.ts), Some(9));
    }

    #[test]
    fn lane_tids_are_unique_and_nonzero() {
        let mut tids: Vec<u64> = Lane::ALL.iter().map(|l| l.tid()).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), Lane::ALL.len());
        assert!(tids.iter().all(|&t| t > 0));
    }
}
