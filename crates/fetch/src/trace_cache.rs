//! The trace cache fetch mechanism (paper reference \[18\]).

use fetchvp_bpred::{BpredStats, BranchPredictor};
use fetchvp_trace::{Slot, TraceView};

use crate::{FetchEngine, FetchGroup};

/// Geometry and policy of the [`TraceCacheFetch`] engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCacheConfig {
    /// Number of direct-mapped lines (power of two).
    pub entries: usize,
    /// Maximum instructions per line.
    pub max_instrs: usize,
    /// Maximum basic blocks per line.
    pub max_blocks: usize,
    /// Whether a line whose embedded path disagrees with the branch
    /// predictor still supplies its prefix up to the disagreeing branch
    /// (the *partial matching* of paper reference \[6\]). When `false`
    /// (the base scheme of \[18\] used in §5), such an access is a miss.
    pub partial_matching: bool,
    /// Width of the conventional core fetch used on a trace-cache miss.
    pub core_width: usize,
    /// Taken-transfer allowance of the core fetch (conventionally 1).
    pub core_max_taken: u32,
}

impl TraceCacheConfig {
    /// The §5 configuration: "64 entries organized as a direct-mapped
    /// cache. Each entry can store up to 32 instructions or up to 6 basic
    /// blocks", with a single-taken-branch, 16-wide core fetch miss path.
    pub fn paper() -> TraceCacheConfig {
        TraceCacheConfig {
            entries: 64,
            max_instrs: 32,
            max_blocks: 6,
            partial_matching: false,
            core_width: 16,
            core_max_taken: 1,
        }
    }
}

impl Default for TraceCacheConfig {
    fn default() -> TraceCacheConfig {
        TraceCacheConfig::paper()
    }
}

/// Hit/miss statistics of the trace cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCacheStats {
    /// Fetch cycles that probed the cache.
    pub accesses: u64,
    /// Accesses that supplied a (possibly capacity-bounded) full line.
    pub hits: u64,
    /// Hits cut short by a branch misprediction inside the line.
    pub hits_cut_by_mispredict: u64,
    /// Accesses with a resident line rejected because the branch predictor
    /// disagreed with the line's embedded path.
    pub rejects: u64,
    /// Accesses with no resident line for the fetch address.
    pub misses: u64,
    /// Lines installed by the fill unit.
    pub fills: u64,
    /// Instructions supplied by trace-cache lines.
    pub line_instrs: u64,
    /// Instructions supplied by the core fetch path.
    pub core_instrs: u64,
}

impl TraceCacheStats {
    /// Fraction of accesses served by a line.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

impl fetchvp_metrics::MetricsSink for TraceCacheStats {
    fn export_metrics(&self, reg: &mut fetchvp_metrics::Registry, prefix: &str) {
        reg.counter(prefix, "accesses", self.accesses);
        reg.counter(prefix, "hits", self.hits);
        reg.counter(prefix, "hits_cut_by_mispredict", self.hits_cut_by_mispredict);
        reg.counter(prefix, "rejects", self.rejects);
        reg.counter(prefix, "misses", self.misses);
        reg.counter(prefix, "fills", self.fills);
        reg.counter(prefix, "line_instrs", self.line_instrs);
        reg.counter(prefix, "core_instrs", self.core_instrs);
        reg.gauge(prefix, "hit_rate", self.hit_rate());
    }
}

/// One trace-cache line: a snapshot of the dynamic instruction stream.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Line {
    start_pc: u64,
    /// Per-instruction PCs, in trace order.
    pcs: Vec<u64>,
    /// Per-instruction control flag.
    control: Vec<bool>,
    /// Per-instruction embedded outcome (meaningful for control slots).
    taken: Vec<bool>,
}

impl Line {
    fn len(&self) -> usize {
        self.pcs.len()
    }
}

/// The fill unit: packs the consumed instruction stream into candidate
/// lines.
///
/// Collection is *fetch-aligned*: a new line starts at the address of a
/// trace-cache miss, so that installed lines begin exactly where future
/// fetches will probe (the trace-selection policy of \[18\]).
#[derive(Debug, Clone, Default)]
struct FillUnit {
    collecting: bool,
    pcs: Vec<u64>,
    control: Vec<bool>,
    taken: Vec<bool>,
    blocks: usize,
}

impl FillUnit {
    /// Begins collecting a new line (called on a trace-cache miss). A
    /// collection already in progress continues instead.
    fn begin(&mut self) {
        if !self.collecting {
            self.collecting = true;
            self.pcs.clear();
            self.control.clear();
            self.taken.clear();
            self.blocks = 0;
        }
    }

    /// Adds one consumed instruction; returns a finalized line when the
    /// line-size limits are reached, after which collection stops until the
    /// next [`begin`](FillUnit::begin).
    fn push(&mut self, rec: Slot<'_>, config: &TraceCacheConfig) -> Option<Line> {
        if !self.collecting {
            return None;
        }
        self.pcs.push(rec.pc());
        self.control.push(rec.is_control());
        self.taken.push(rec.taken());
        if rec.is_control() {
            self.blocks += 1;
        }
        // Indirect jumps end a trace: their successor is not statically
        // predictable at fill time.
        let ends = self.pcs.len() >= config.max_instrs
            || self.blocks >= config.max_blocks
            || rec.is_indirect_jump();
        if ends {
            self.collecting = false;
            Some(self.take_line())
        } else {
            None
        }
    }

    fn take_line(&mut self) -> Line {
        let line = Line {
            start_pc: self.pcs[0],
            pcs: std::mem::take(&mut self.pcs),
            control: std::mem::take(&mut self.control),
            taken: std::mem::take(&mut self.taken),
        };
        self.blocks = 0;
        line
    }
}

/// The trace-cache fetch engine of Rotenberg, Bennett & Smith (\[18\]).
///
/// Each cycle the cache is probed with the fetch PC. A resident line whose
/// embedded branch outcomes all agree with the branch predictor's (multiple)
/// predictions supplies up to 32 instructions spanning up to 6 basic blocks
/// — possibly several loop iterations, which is precisely the situation that
/// defeats a conventional interleaved value-prediction table (§4). On a miss
/// or a predictor/line disagreement, a conventional core fetch supplies up
/// to `core_width` instructions ending at the first taken transfer. A fill
/// unit packs the consumed instruction stream into new lines.
///
/// Timing simplification: the fill unit observes instructions at fetch-group
/// granularity rather than at retirement, making lines available a few
/// cycles earlier than in hardware; over multi-thousand-cycle runs the
/// effect on hit rate is negligible.
///
/// # Example
///
/// ```
/// use fetchvp_bpred::PerfectBtb;
/// use fetchvp_fetch::{FetchEngine, TraceCacheConfig, TraceCacheFetch};
/// use fetchvp_isa::{AluOp, Cond, ProgramBuilder, Reg};
/// use fetchvp_trace::trace_program;
///
/// # fn main() -> Result<(), fetchvp_isa::ProgramError> {
/// let mut b = ProgramBuilder::new("loop");
/// b.load_imm(Reg::R1, 1000);
/// let head = b.bind_label("head");
/// b.alu_imm(AluOp::Sub, Reg::R1, Reg::R1, 1);
/// b.branch(Cond::Ne, Reg::R1, Reg::R0, head);
/// let trace = trace_program(&b.build()?, 401);
/// let mut f = TraceCacheFetch::new(TraceCacheConfig::paper(), PerfectBtb::new());
/// let mut pos = 0;
/// while pos < trace.len() {
///     pos += f.fetch(trace.view(), pos, usize::MAX).len;
/// }
/// // After warm-up, the tight loop is served from trace-cache lines that
/// // span multiple iterations.
/// assert!(f.cache_stats().hit_rate() > 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TraceCacheFetch<P> {
    config: TraceCacheConfig,
    lines: Vec<Option<Line>>,
    fill: FillUnit,
    bpred: P,
    stats: TraceCacheStats,
}

impl<P: BranchPredictor> TraceCacheFetch<P> {
    /// Creates a trace-cache engine with the given configuration and branch
    /// predictor.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or any size field is zero.
    pub fn new(config: TraceCacheConfig, bpred: P) -> TraceCacheFetch<P> {
        assert!(config.entries.is_power_of_two(), "entry count must be a power of two");
        assert!(config.max_instrs > 0 && config.max_blocks > 0, "line limits must be positive");
        assert!(config.core_width > 0 && config.core_max_taken > 0, "core fetch must be usable");
        TraceCacheFetch {
            lines: vec![None; config.entries],
            fill: FillUnit::default(),
            config,
            bpred,
            stats: TraceCacheStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> TraceCacheConfig {
        self.config
    }

    /// Accumulated cache statistics.
    pub fn cache_stats(&self) -> TraceCacheStats {
        self.stats
    }

    fn line_index(&self, pc: u64) -> usize {
        (pc as usize) & (self.config.entries - 1)
    }

    fn probe(&self, pc: u64) -> Option<&Line> {
        self.lines[self.line_index(pc)].as_ref().filter(|l| l.start_pc == pc)
    }

    fn install(&mut self, line: Line) {
        let idx = self.line_index(line.start_pc);
        self.lines[idx] = Some(line);
        self.stats.fills += 1;
    }

    /// Feeds the consumed fetch group to the fill unit.
    fn fill_from(&mut self, trace: TraceView<'_>, range: std::ops::Range<usize>) {
        for rec in trace.slots_in(range) {
            if let Some(line) = self.fill.push(rec, &self.config) {
                self.install(line);
            }
        }
    }

    /// Whether the branch prediction `taken`/`target` agrees with the
    /// line's embedded path at offset `i`.
    fn prediction_agrees(line: &Line, i: usize, taken: bool, target: Option<u64>) -> bool {
        if taken != line.taken[i] {
            return false;
        }
        // For a taken prediction inside the line, the predicted target must
        // be the line's next instruction.
        !taken || i + 1 >= line.len() || target == Some(line.pcs[i + 1])
    }
}

impl<P: BranchPredictor> FetchEngine for TraceCacheFetch<P> {
    fn name(&self) -> &str {
        "trace-cache"
    }

    fn fetch(&mut self, trace: TraceView<'_>, pos: usize, max: usize) -> FetchGroup {
        let remaining = trace.len().saturating_sub(pos);
        if remaining == 0 || max == 0 {
            return FetchGroup::empty();
        }
        self.stats.accesses += 1;

        let fetch_pc = trace.slot(pos).pc();
        // Clone the candidate line out so the walk below can borrow freely;
        // lines are at most 32 instructions.
        let line = self.probe(fetch_pc).cloned();
        let line_bound = line.as_ref().map(|l| l.len().min(max).min(remaining)).unwrap_or(0);
        let core_bound = self.config.core_width.min(max).min(remaining);

        // Single walk over the actual path. Every control instruction is
        // predicted exactly once per cycle (the multiple-branch predictor);
        // the walk simultaneously validates the line (if any) and computes
        // where the core fetch would stop, so the miss path reuses the same
        // predictions instead of double-training the predictor.
        let mut line_ok = line.is_some();
        let mut line_reject_at = None; // control offset where the line was rejected
        let mut mispredict = None;
        let mut core_end = None;
        let mut taken_transfers = 0u32;
        let mut i = 0;
        loop {
            let target_len = if line_ok { line_bound } else { core_bound };
            if i >= target_len {
                break;
            }
            let rec = trace.slot(pos + i);
            if line_ok {
                let l = line.as_ref().expect("line_ok implies a line");
                if rec.pc() != l.pcs[i] {
                    // The actual path diverged from the line without a
                    // detected control disagreement; treat as a reject.
                    debug_assert!(false, "line/path divergence outside a control instruction");
                    line_ok = false;
                    line_reject_at = Some(i);
                    continue;
                }
            }
            if rec.is_control() {
                let pred = self.bpred.predict(rec);
                self.bpred.update(rec);
                if line_ok {
                    let l = line.as_ref().expect("line_ok implies a line");
                    if !Self::prediction_agrees(l, i, pred.taken, pred.target) {
                        line_ok = false;
                        line_reject_at = Some(i);
                    }
                }
                if !pred.correct_for(rec) {
                    mispredict = Some(i);
                    i += 1;
                    break;
                }
                if pred.taken {
                    taken_transfers += 1;
                    if core_end.is_none() && taken_transfers >= self.config.core_max_taken {
                        core_end = Some(i + 1);
                    }
                }
            }
            i += 1;
        }

        // Decide what this cycle actually delivered.
        let had_line = line.is_some();
        let group = if let Some(k) = mispredict {
            // The group ends at the mispredicted control regardless of
            // source.
            FetchGroup { len: k + 1, mispredict: Some(k) }
        } else if had_line && line_ok {
            FetchGroup { len: line_bound, mispredict: None }
        } else if had_line && self.config.partial_matching && line_reject_at.is_some_and(|k| k > 0)
        {
            // Partial matching: the line supplies its prefix up to and
            // including the disagreeing branch.
            let k = line_reject_at.expect("checked");
            FetchGroup { len: k + 1, mispredict: None }
        } else {
            // Core fetch result from the same walk.
            let len = core_end.unwrap_or_else(|| i.min(core_bound));
            FetchGroup { len, mispredict: None }
        };

        // Classify for statistics.
        if !had_line {
            self.stats.misses += 1;
            self.stats.core_instrs += group.len as u64;
        } else if line_ok || (self.config.partial_matching && line_reject_at.is_some_and(|k| k > 0))
        {
            self.stats.hits += 1;
            self.stats.line_instrs += group.len as u64;
            if mispredict.is_some() {
                self.stats.hits_cut_by_mispredict += 1;
            }
        } else {
            self.stats.rejects += 1;
            self.stats.core_instrs += group.len as u64;
        }

        // The consumed instructions flow to the fill unit; a miss starts a
        // new fetch-aligned collection at this cycle's fetch address.
        if !had_line {
            self.fill.begin();
        }
        self.fill_from(trace, pos..pos + group.len);
        group
    }

    fn bpred_stats(&self) -> BpredStats {
        self.bpred.stats()
    }

    fn trace_cache_stats(&self) -> Option<TraceCacheStats> {
        Some(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_bpred::{PerfectBtb, TwoLevelBtb};
    use fetchvp_isa::{AluOp, Cond, ProgramBuilder, Reg};
    use fetchvp_trace::{trace_program, Trace};

    /// A counted loop with `body_nops + 2` instructions per iteration.
    fn loop_trace(body_nops: usize, iters: i64) -> Trace {
        let mut b = ProgramBuilder::new("loop");
        b.load_imm(Reg::R1, iters);
        let head = b.bind_label("head");
        for _ in 0..body_nops {
            b.nop();
        }
        b.alu_imm(AluOp::Sub, Reg::R1, Reg::R1, 1);
        b.branch(Cond::Ne, Reg::R1, Reg::R0, head);
        b.halt();
        trace_program(&b.build().unwrap(), u64::MAX)
    }

    fn drive<P: BranchPredictor>(f: &mut TraceCacheFetch<P>, trace: &Trace) -> Vec<FetchGroup> {
        let mut pos = 0;
        let mut groups = Vec::new();
        while pos < trace.len() {
            let g = f.fetch(trace.view(), pos, usize::MAX);
            assert!(g.len > 0, "fetch must make progress");
            pos += g.len;
            groups.push(g);
        }
        groups
    }

    #[test]
    fn cold_cache_misses_then_hits() {
        let trace = loop_trace(2, 200);
        let mut f = TraceCacheFetch::new(TraceCacheConfig::paper(), PerfectBtb::new());
        drive(&mut f, &trace);
        let s = f.cache_stats();
        assert!(s.misses > 0, "cold start must miss");
        assert!(s.hits > 0, "steady-state loop must hit");
        assert!(s.hit_rate() > 0.5, "hit rate {:.2} too low", s.hit_rate());
    }

    #[test]
    fn lines_span_multiple_loop_iterations() {
        // 4-instruction body: a 32-instruction line holds 8 iterations
        // (6-block limit binds first: 6 blocks = 6 iterations = 24 instrs).
        let trace = loop_trace(2, 400);
        let mut f = TraceCacheFetch::new(TraceCacheConfig::paper(), PerfectBtb::new());
        let groups = drive(&mut f, &trace);
        let max_group = groups.iter().map(|g| g.len).max().unwrap();
        assert_eq!(max_group, 24, "6-block line should span 6 iterations");
    }

    #[test]
    fn line_instr_limit_binds_for_large_bodies() {
        // 14-instruction body: two blocks do not fit 32? 2 iterations = 28
        // fit; 3 would be 42 > 32, and 6 blocks = 6 iterations never binds.
        let trace = loop_trace(12, 400);
        let mut f = TraceCacheFetch::new(TraceCacheConfig::paper(), PerfectBtb::new());
        let groups = drive(&mut f, &trace);
        let max_group = groups.iter().map(|g| g.len).max().unwrap();
        assert!(max_group <= 32);
        assert!(max_group >= 28, "expected 2-iteration lines, got {max_group}");
    }

    #[test]
    fn miss_path_is_single_taken_branch_core_fetch() {
        let trace = loop_trace(2, 50);
        let mut f = TraceCacheFetch::new(TraceCacheConfig::paper(), PerfectBtb::new());
        // First fetch: cold miss; body is 4 instructions ending in a taken
        // branch -> core fetch delivers exactly one iteration.
        let g = f.fetch(trace.view(), 0, usize::MAX);
        assert_eq!(g.len, 1 + 4); // prologue li + first iteration
        assert_eq!(f.cache_stats().misses, 1);
    }

    #[test]
    fn machine_capacity_bounds_line_delivery() {
        let trace = loop_trace(2, 200);
        let mut f = TraceCacheFetch::new(TraceCacheConfig::paper(), PerfectBtb::new());
        drive(&mut f, &trace); // warm the cache
        let mut f2 = f.clone();
        // Re-fetch from a warmed cache with a small capacity.
        let g = f2.fetch(trace.view(), 1, 5);
        assert!(g.len <= 5);
    }

    #[test]
    fn mispredictions_truncate_line_hits() {
        let trace = loop_trace(2, 300);
        let mut f = TraceCacheFetch::new(TraceCacheConfig::paper(), TwoLevelBtb::paper());
        let groups = drive(&mut f, &trace);
        // The final iteration's branch falls through: the BTB (trained
        // taken) mispredicts it somewhere, so at least one group carries a
        // mispredict marker.
        assert!(groups.iter().any(|g| g.mispredict.is_some()));
    }

    #[test]
    fn rejects_occur_when_predictor_disagrees_with_line() {
        // A loop over two alternating inner paths: lines embed one path,
        // and a cold/weak predictor will sometimes disagree.
        let mut b = ProgramBuilder::new("alt");
        b.load_imm(Reg::R1, 300); // counter
        let head = b.bind_label("head");
        let odd = b.label("odd");
        let join = b.label("join");
        b.alu_imm(AluOp::And, Reg::R2, Reg::R1, 1);
        b.branch(Cond::Ne, Reg::R2, Reg::R0, odd);
        b.nop();
        b.nop();
        b.jump(join);
        b.bind(odd);
        b.nop();
        b.bind(join);
        b.alu_imm(AluOp::Sub, Reg::R1, Reg::R1, 1);
        b.branch(Cond::Ne, Reg::R1, Reg::R0, head);
        b.halt();
        let trace = trace_program(&b.build().unwrap(), u64::MAX);
        let mut f = TraceCacheFetch::new(TraceCacheConfig::paper(), TwoLevelBtb::paper());
        drive(&mut f, &trace);
        let s = f.cache_stats();
        assert!(s.rejects > 0, "alternating path should cause line rejects: {s:?}");
    }

    #[test]
    fn partial_matching_recovers_line_prefixes() {
        let cfg = TraceCacheConfig { partial_matching: true, ..TraceCacheConfig::paper() };
        let trace = loop_trace(2, 300);
        let mut base = TraceCacheFetch::new(TraceCacheConfig::paper(), TwoLevelBtb::paper());
        let mut part = TraceCacheFetch::new(cfg, TwoLevelBtb::paper());
        drive(&mut base, &trace);
        drive(&mut part, &trace);
        assert!(
            part.cache_stats().line_instrs >= base.cache_stats().line_instrs,
            "partial matching should not reduce line-supplied instructions"
        );
    }

    #[test]
    fn indirect_jumps_terminate_fill_lines() {
        // call/return loop: returns are indirect jumps, so no line may
        // extend past one.
        let mut b = ProgramBuilder::new("calls");
        b.load_imm(Reg::R1, 100);
        let head = b.bind_label("head");
        let f_ = b.label("f");
        b.call(f_, Reg::R31);
        b.alu_imm(AluOp::Sub, Reg::R1, Reg::R1, 1);
        b.branch(Cond::Ne, Reg::R1, Reg::R0, head);
        b.halt();
        b.bind(f_);
        b.nop();
        b.jump_ind(Reg::R31);
        let trace = trace_program(&b.build().unwrap(), u64::MAX);
        let mut f = TraceCacheFetch::new(TraceCacheConfig::paper(), PerfectBtb::new());
        let groups = drive(&mut f, &trace);
        // Lines end at the return: no group may cross more than one return.
        // (Groups come either from lines or single-taken-branch core fetch.)
        for (gi, g) in groups.iter().enumerate() {
            let _ = (gi, g);
        }
        assert!(f.cache_stats().fills > 0);
    }

    #[test]
    fn fetch_at_end_of_trace_is_empty() {
        let trace = loop_trace(1, 5);
        let mut f = TraceCacheFetch::new(TraceCacheConfig::paper(), PerfectBtb::new());
        assert_eq!(f.fetch(trace.view(), trace.len(), usize::MAX), FetchGroup::empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_entry_count_panics() {
        let cfg = TraceCacheConfig { entries: 48, ..TraceCacheConfig::paper() };
        TraceCacheFetch::new(cfg, PerfectBtb::new());
    }

    #[test]
    fn paper_config_matches_section_5() {
        let c = TraceCacheConfig::paper();
        assert_eq!((c.entries, c.max_instrs, c.max_blocks), (64, 32, 6));
        assert!(!c.partial_matching);
    }
}
