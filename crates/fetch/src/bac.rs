//! Branch-address-cache fetch (paper reference \[28\]).

use fetchvp_bpred::{BpredStats, BranchPredictor};
use fetchvp_metrics::{MetricsSink, Registry};
use fetchvp_trace::TraceView;

use crate::{FetchEngine, FetchGroup};

/// Geometry of the [`BacFetch`] engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BacConfig {
    /// Maximum instructions fetched per cycle.
    pub width: usize,
    /// Maximum basic blocks fetched per cycle (the number of target
    /// addresses the branch address cache can produce).
    pub max_blocks: u32,
    /// Interleaved instruction-cache banks (power of two). Two blocks whose
    /// start addresses fall in the same bank cannot be fetched in the same
    /// cycle.
    pub icache_banks: u64,
}

impl BacConfig {
    /// A configuration in the spirit of Yeh, Marr & Patt: up to 3 basic
    /// blocks per cycle from a 16-way interleaved instruction cache.
    pub fn classic() -> BacConfig {
        BacConfig { width: 40, max_blocks: 3, icache_banks: 16 }
    }
}

impl Default for BacConfig {
    fn default() -> BacConfig {
        BacConfig::classic()
    }
}

/// Statistics specific to the branch-address-cache front-end.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BacStats {
    /// Fetch cycles.
    pub cycles: u64,
    /// Basic blocks delivered.
    pub blocks: u64,
    /// Fetch groups cut short by an instruction-cache bank conflict.
    pub bank_conflicts: u64,
}

impl BacStats {
    /// Basic blocks delivered per fetch cycle.
    pub fn blocks_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.blocks as f64 / self.cycles as f64
        }
    }
}

impl MetricsSink for BacStats {
    fn export_metrics(&self, reg: &mut Registry, prefix: &str) {
        reg.counter(prefix, "cycles", self.cycles);
        reg.counter(prefix, "blocks", self.blocks);
        reg.counter(prefix, "bank_conflicts", self.bank_conflicts);
        reg.gauge(prefix, "blocks_per_cycle", self.blocks_per_cycle());
    }
}

/// The branch address cache of Yeh, Marr & Patt (\[28\]): an extension of
/// the branch target buffer that produces *multiple* basic-block target
/// addresses per cycle, which a highly interleaved instruction cache then
/// fetches together.
///
/// Compared to [`crate::ConventionalFetch`] with a taken-branch allowance,
/// this engine is limited by *basic blocks* (every control instruction ends
/// one, taken or not) and by instruction-cache bank conflicts between the
/// blocks of one cycle — the two structural costs §2.2 attributes to the
/// scheme. Like the other engines it is trace-driven and charges a
/// misprediction by ending the group at the offending branch.
///
/// # Example
///
/// ```
/// use fetchvp_bpred::PerfectBtb;
/// use fetchvp_fetch::{BacConfig, BacFetch, FetchEngine};
/// use fetchvp_isa::{Cond, ProgramBuilder, Reg};
/// use fetchvp_trace::trace_program;
///
/// # fn main() -> Result<(), fetchvp_isa::ProgramError> {
/// let mut b = ProgramBuilder::new("loop");
/// let head = b.bind_label("head");
/// b.nop();
/// b.nop();
/// b.branch(Cond::Eq, Reg::R0, Reg::R0, head);
/// let trace = trace_program(&b.build()?, 90);
/// let mut f = BacFetch::new(BacConfig::classic(), PerfectBtb::new());
/// // Three 3-instruction blocks per cycle... but they all start at the
/// // same PC, so the interleaved icache delivers only one per cycle.
/// assert_eq!(f.fetch(trace.view(), 0, usize::MAX).len, 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BacFetch<P> {
    config: BacConfig,
    bpred: P,
    stats: BacStats,
}

impl<P: BranchPredictor> BacFetch<P> {
    /// Creates a branch-address-cache front-end.
    ///
    /// # Panics
    ///
    /// Panics if any size field is zero or `icache_banks` is not a power of
    /// two.
    pub fn new(config: BacConfig, bpred: P) -> BacFetch<P> {
        assert!(config.width > 0, "width must be positive");
        assert!(config.max_blocks > 0, "block allowance must be positive");
        assert!(config.icache_banks.is_power_of_two(), "banks must be a power of two");
        BacFetch { config, bpred, stats: BacStats::default() }
    }

    /// The configuration in use.
    pub fn config(&self) -> BacConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn bac_stats(&self) -> BacStats {
        self.stats
    }

    fn bank_of(&self, pc: u64) -> u64 {
        pc & (self.config.icache_banks - 1)
    }
}

impl<P: BranchPredictor> FetchEngine for BacFetch<P> {
    fn name(&self) -> &str {
        "branch-address-cache"
    }

    fn fetch(&mut self, trace: TraceView<'_>, pos: usize, max: usize) -> FetchGroup {
        let limit = self.config.width.min(max).min(trace.len().saturating_sub(pos));
        if limit == 0 {
            return FetchGroup::empty();
        }
        self.stats.cycles += 1;

        let mut blocks = 0u32;
        let mut banks_used = 0u64; // bitmask over icache banks
        let mut block_start = true;
        let mut i = 0;
        while i < limit {
            let rec = trace.slot(pos + i);
            if block_start {
                // The interleaved icache fetches each block from the bank
                // of its start address; a repeat visit to a bank ends the
                // cycle.
                let bank_bit = 1u64 << self.bank_of(rec.pc());
                if banks_used & bank_bit != 0 {
                    self.stats.bank_conflicts += 1;
                    break;
                }
                banks_used |= bank_bit;
                self.stats.blocks += 1;
                block_start = false;
            }
            if rec.is_control() {
                let prediction = self.bpred.predict(rec);
                self.bpred.update(rec);
                if !prediction.correct_for(rec) {
                    return FetchGroup { len: i + 1, mispredict: Some(i) };
                }
                blocks += 1;
                if blocks >= self.config.max_blocks {
                    return FetchGroup { len: i + 1, mispredict: None };
                }
                block_start = true;
            }
            i += 1;
        }
        FetchGroup { len: i, mispredict: None }
    }

    fn bpred_stats(&self) -> BpredStats {
        self.bpred.stats()
    }

    fn bac_stats(&self) -> Option<BacStats> {
        Some(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_bpred::{PerfectBtb, TwoLevelBtb};
    use fetchvp_isa::{Cond, ProgramBuilder, Reg};
    use fetchvp_trace::{trace_program, Trace};

    /// An endless loop of `n` blocks, each `body + 1` instructions, laid
    /// out contiguously so consecutive block starts land in different
    /// icache banks.
    fn multi_block_trace(n: usize, body: usize, len: u64) -> Trace {
        let mut b = ProgramBuilder::new("blocks");
        let head = b.bind_label("head");
        for k in 0..n {
            for _ in 0..body {
                b.nop();
            }
            if k + 1 < n {
                b.layout_break();
            } else {
                b.branch(Cond::Eq, Reg::R0, Reg::R0, head);
            }
        }
        trace_program(&b.build().unwrap(), len)
    }

    #[test]
    fn fetches_multiple_blocks_per_cycle() {
        let t = multi_block_trace(4, 3, 200);
        let mut f = BacFetch::new(BacConfig::classic(), PerfectBtb::new());
        // 3 blocks of 4 instructions each.
        assert_eq!(f.fetch(t.view(), 0, usize::MAX).len, 12);
        assert_eq!(f.bac_stats().blocks, 3);
    }

    #[test]
    fn block_allowance_is_the_binding_limit() {
        let t = multi_block_trace(8, 1, 300);
        for max_blocks in [1u32, 2, 4] {
            let cfg = BacConfig { max_blocks, ..BacConfig::classic() };
            let mut f = BacFetch::new(cfg, PerfectBtb::new());
            assert_eq!(f.fetch(t.view(), 0, usize::MAX).len as u32, 2 * max_blocks);
        }
    }

    #[test]
    fn bank_conflicts_cut_the_group() {
        // Two copies of the same loop iteration start at the same PC: bank
        // conflict on the second.
        let mut b = ProgramBuilder::new("tiny");
        let head = b.bind_label("head");
        b.nop();
        b.branch(Cond::Eq, Reg::R0, Reg::R0, head);
        let t = trace_program(&b.build().unwrap(), 100);
        let mut f = BacFetch::new(BacConfig::classic(), PerfectBtb::new());
        let g = f.fetch(t.view(), 0, usize::MAX);
        assert_eq!(g.len, 2, "second iteration hits the same bank");
        assert_eq!(f.bac_stats().bank_conflicts, 1);
    }

    #[test]
    fn untaken_branches_also_consume_a_block_slot() {
        let mut b = ProgramBuilder::new("p");
        let dead = b.label("dead");
        let head = b.bind_label("head");
        b.branch(Cond::Ne, Reg::R0, Reg::R0, dead); // never taken: ends block 1
        b.nop();
        b.branch(Cond::Eq, Reg::R0, Reg::R0, head); // taken: ends block 2
        b.bind(dead);
        b.halt();
        let t = trace_program(&b.build().unwrap(), 60);
        let cfg = BacConfig { max_blocks: 2, ..BacConfig::classic() };
        let mut f = BacFetch::new(cfg, PerfectBtb::new());
        assert_eq!(f.fetch(t.view(), 0, usize::MAX).len, 3);
    }

    #[test]
    fn mispredictions_truncate_the_group() {
        let t = multi_block_trace(4, 2, 200);
        let mut f = BacFetch::new(BacConfig::classic(), TwoLevelBtb::paper());
        // The cold BTB mispredicts the loop backedge eventually; walk the
        // trace and expect at least one truncated group.
        let mut pos = 0;
        let mut saw_mispredict = false;
        while pos < t.len() {
            let g = f.fetch(t.view(), pos, usize::MAX);
            assert!(g.len > 0);
            saw_mispredict |= g.mispredict.is_some();
            pos += g.len;
        }
        assert!(saw_mispredict);
    }

    #[test]
    fn walks_the_whole_trace() {
        let t = multi_block_trace(3, 5, 500);
        let mut f = BacFetch::new(BacConfig::classic(), PerfectBtb::new());
        let mut pos = 0;
        while pos < t.len() {
            pos += f.fetch(t.view(), pos, usize::MAX).len;
        }
        assert_eq!(pos, t.len());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_bank_count_panics() {
        BacFetch::new(BacConfig { icache_banks: 12, ..BacConfig::classic() }, PerfectBtb::new());
    }
}
