//! Instruction fetch engines.
//!
//! The paper's central claim is that *fetch bandwidth* gates the usefulness
//! of value prediction, so the fetch front-end is a first-class, pluggable
//! component of the machine models. Three engines are provided:
//!
//! * [`ConventionalFetch`] — fetches up to `width` instructions per cycle
//!   and, optionally, at most `n` taken control transfers per cycle (the §5
//!   sweep `n ∈ {1, 2, 3, 4, unlimited}`). With an unlimited taken-branch
//!   allowance it also models the §3 ideal front-end.
//! * [`BacFetch`] — the branch address cache of Yeh, Marr & Patt (paper
//!   reference \[28\]): multiple basic-block targets per cycle from an
//!   interleaved instruction cache, the §2.2 alternative to the trace
//!   cache.
//! * [`TraceCacheFetch`] — the trace cache of Rotenberg, Bennett & Smith
//!   (paper reference \[18\]) with the §5 configuration: 64 direct-mapped
//!   entries, each holding up to 32 instructions or 6 basic blocks, filled
//!   by a fill unit observing the retired stream, with a conventional core
//!   fetch as the miss path.
//!
//! Engines are *trace-driven*: they walk the captured dynamic stream and
//! consult a [`fetchvp_bpred::BranchPredictor`] to decide where the fetch
//! group ends and whether a misprediction occurred (the machine charges the
//! pipeline penalty). Each engine owns its branch predictor; predictor
//! state is updated at fetch time, the standard trace-driven
//! simplification.
//!
//! # Example
//!
//! ```
//! use fetchvp_bpred::PerfectBtb;
//! use fetchvp_fetch::{ConventionalFetch, FetchEngine};
//! use fetchvp_isa::ProgramBuilder;
//! use fetchvp_trace::trace_program;
//!
//! # fn main() -> Result<(), fetchvp_isa::ProgramError> {
//! let mut b = ProgramBuilder::new("p");
//! for _ in 0..10 { b.nop(); }
//! b.halt();
//! let trace = trace_program(&b.build()?, 100);
//! let mut fetch = ConventionalFetch::new(4, None, PerfectBtb::new());
//! let group = fetch.fetch(trace.view(), 0, usize::MAX);
//! assert_eq!(group.len, 4); // width-limited
//! # Ok(())
//! # }
//! ```

pub mod bac;
pub mod conventional;
pub mod trace_cache;

pub use bac::{BacConfig, BacFetch, BacStats};
pub use conventional::ConventionalFetch;
pub use trace_cache::{TraceCacheConfig, TraceCacheFetch, TraceCacheStats};

use fetchvp_bpred::BpredStats;
use fetchvp_trace::TraceView;

/// One cycle's fetch group.
///
/// The group covers `trace[pos .. pos + len]`; `mispredict` is the index
/// *within the group* of a control instruction whose prediction was wrong,
/// in which case the group ends at that instruction and the machine must
/// stall fetch until it resolves (plus the misprediction penalty).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchGroup {
    /// Number of instructions fetched this cycle.
    pub len: usize,
    /// Index within the group of a mispredicted control instruction, if any.
    pub mispredict: Option<usize>,
}

impl FetchGroup {
    /// An empty group (nothing fetched this cycle).
    pub fn empty() -> FetchGroup {
        FetchGroup { len: 0, mispredict: None }
    }
}

/// A pluggable instruction-fetch front-end.
pub trait FetchEngine {
    /// A short human-readable name for reports.
    fn name(&self) -> &str;

    /// Produces the fetch group for one cycle, starting at the trace's
    /// instruction `pos`, fetching at most `max` instructions (the
    /// machine's remaining decode/window capacity).
    fn fetch(&mut self, trace: TraceView<'_>, pos: usize, max: usize) -> FetchGroup;

    /// Statistics of the engine's embedded branch predictor.
    fn bpred_stats(&self) -> BpredStats;

    /// Trace-cache statistics, for engines that have one.
    fn trace_cache_stats(&self) -> Option<TraceCacheStats> {
        None
    }

    /// Branch-address-cache statistics, for engines that have one.
    fn bac_stats(&self) -> Option<BacStats> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_group_has_no_mispredict() {
        let g = FetchGroup::empty();
        assert_eq!(g.len, 0);
        assert_eq!(g.mispredict, None);
    }
}
