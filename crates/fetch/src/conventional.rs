//! Width- and taken-branch-limited conventional fetch.

use fetchvp_bpred::{BpredStats, BranchPredictor};
use fetchvp_trace::TraceView;

use crate::{FetchEngine, FetchGroup};

/// A conventional fetch front-end.
///
/// Each cycle it fetches up to `width` consecutive-on-the-predicted-path
/// instructions, ending the group early when:
///
/// * the configured number of *taken* control transfers for one cycle has
///   been included (`max_taken`, the paper's §5 parameter `n`; `None`
///   removes the limit, as in the §3 ideal model where "the number of taken
///   branches per cycle is unlimited"), or
/// * the embedded branch predictor mispredicts a control instruction, in
///   which case the group ends at that instruction and
///   [`FetchGroup::mispredict`] is set.
///
/// # Example
///
/// ```
/// use fetchvp_bpred::PerfectBtb;
/// use fetchvp_fetch::{ConventionalFetch, FetchEngine};
/// use fetchvp_isa::{Cond, ProgramBuilder, Reg};
/// use fetchvp_trace::trace_program;
///
/// # fn main() -> Result<(), fetchvp_isa::ProgramError> {
/// // An infinite loop over 2 instructions: every 2nd instruction is a
/// // taken branch.
/// let mut b = ProgramBuilder::new("loop");
/// let head = b.bind_label("head");
/// b.nop();
/// b.branch(Cond::Eq, Reg::R0, Reg::R0, head);
/// let trace = trace_program(&b.build()?, 64);
/// // One taken branch per cycle: the fetch group is [nop, branch].
/// let mut f = ConventionalFetch::new(16, Some(1), PerfectBtb::new());
/// assert_eq!(f.fetch(trace.view(), 0, usize::MAX).len, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ConventionalFetch<P> {
    width: usize,
    max_taken: Option<u32>,
    bpred: P,
}

impl<P: BranchPredictor> ConventionalFetch<P> {
    /// Creates a front-end fetching up to `width` instructions and up to
    /// `max_taken` taken control transfers per cycle (`None` = unlimited).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `max_taken` is `Some(0)`.
    pub fn new(width: usize, max_taken: Option<u32>, bpred: P) -> ConventionalFetch<P> {
        assert!(width > 0, "fetch width must be positive");
        assert!(max_taken != Some(0), "a zero taken-branch allowance can never fetch past a loop");
        ConventionalFetch { width, max_taken, bpred }
    }

    /// The per-cycle instruction width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The per-cycle taken-transfer allowance.
    pub fn max_taken(&self) -> Option<u32> {
        self.max_taken
    }

    /// Access to the embedded branch predictor.
    pub fn bpred_mut(&mut self) -> &mut P {
        &mut self.bpred
    }
}

impl<P: BranchPredictor> FetchEngine for ConventionalFetch<P> {
    fn name(&self) -> &str {
        "conventional"
    }

    fn fetch(&mut self, trace: TraceView<'_>, pos: usize, max: usize) -> FetchGroup {
        let limit = self.width.min(max).min(trace.len().saturating_sub(pos));
        let mut taken = 0u32;
        for i in 0..limit {
            let rec = trace.slot(pos + i);
            if !rec.is_control() {
                continue;
            }
            let prediction = self.bpred.predict(rec);
            self.bpred.update(rec);
            if !prediction.correct_for(rec) {
                return FetchGroup { len: i + 1, mispredict: Some(i) };
            }
            if prediction.taken {
                taken += 1;
                if Some(taken) == self.max_taken {
                    return FetchGroup { len: i + 1, mispredict: None };
                }
            }
        }
        FetchGroup { len: limit, mispredict: None }
    }

    fn bpred_stats(&self) -> BpredStats {
        self.bpred.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_bpred::{PerfectBtb, TwoLevelBtb};
    use fetchvp_isa::{Cond, ProgramBuilder, Reg};
    use fetchvp_trace::{trace_program, Trace};

    /// An infinite loop whose body is `body_nops` nops plus a taken branch.
    fn loop_trace(body_nops: usize, len: u64) -> Trace {
        let mut b = ProgramBuilder::new("loop");
        let head = b.bind_label("head");
        for _ in 0..body_nops {
            b.nop();
        }
        b.branch(Cond::Eq, Reg::R0, Reg::R0, head);
        trace_program(&b.build().unwrap(), len)
    }

    #[test]
    fn width_limits_the_group() {
        let t = loop_trace(7, 64);
        let mut f = ConventionalFetch::new(4, None, PerfectBtb::new());
        assert_eq!(f.fetch(t.view(), 0, usize::MAX), FetchGroup { len: 4, mispredict: None });
    }

    #[test]
    fn machine_capacity_caps_below_width() {
        let t = loop_trace(7, 64);
        let mut f = ConventionalFetch::new(16, None, PerfectBtb::new());
        assert_eq!(f.fetch(t.view(), 0, 3).len, 3);
    }

    #[test]
    fn taken_branch_limit_ends_the_group() {
        // Body of 2 (1 nop + branch): with max_taken = 2 the group covers
        // two full iterations.
        let t = loop_trace(1, 64);
        let mut f = ConventionalFetch::new(40, Some(2), PerfectBtb::new());
        assert_eq!(f.fetch(t.view(), 0, usize::MAX).len, 4);
    }

    #[test]
    fn unlimited_taken_branches_fetch_full_width() {
        let t = loop_trace(1, 64);
        let mut f = ConventionalFetch::new(40, None, PerfectBtb::new());
        assert_eq!(f.fetch(t.view(), 0, usize::MAX).len, 40);
    }

    #[test]
    fn untaken_branches_do_not_consume_the_allowance() {
        // A loop with an inner never-taken branch.
        let mut b = ProgramBuilder::new("p");
        let head = b.bind_label("head");
        let dead = b.label("dead");
        b.branch(Cond::Ne, Reg::R0, Reg::R0, dead); // never taken
        b.nop();
        b.branch(Cond::Eq, Reg::R0, Reg::R0, head); // always taken
        b.bind(dead);
        b.halt();
        let t = trace_program(&b.build().unwrap(), 60);
        let mut f = ConventionalFetch::new(40, Some(2), PerfectBtb::new());
        // Two iterations of 3 instructions each.
        assert_eq!(f.fetch(t.view(), 0, usize::MAX).len, 6);
    }

    #[test]
    fn misprediction_truncates_the_group() {
        let t = loop_trace(2, 64);
        // A cold 2-level BTB mispredicts the first taken branch.
        let mut f = ConventionalFetch::new(40, None, TwoLevelBtb::paper());
        let g = f.fetch(t.view(), 0, usize::MAX);
        assert_eq!(g.len, 3); // 2 nops + the mispredicted branch
        assert_eq!(g.mispredict, Some(2));
    }

    #[test]
    fn end_of_trace_bounds_the_group() {
        let t = loop_trace(1, 5);
        let mut f = ConventionalFetch::new(40, None, PerfectBtb::new());
        assert_eq!(f.fetch(t.view(), 4, usize::MAX).len, 1);
        assert_eq!(f.fetch(t.view(), 5, usize::MAX).len, 0);
    }

    #[test]
    fn groups_walk_the_whole_trace() {
        let t = loop_trace(3, 100);
        let mut f = ConventionalFetch::new(8, Some(1), PerfectBtb::new());
        let mut pos = 0;
        let mut groups = 0;
        while pos < t.len() {
            let g = f.fetch(t.view(), pos, usize::MAX);
            assert!(g.len > 0);
            pos += g.len;
            groups += 1;
        }
        assert_eq!(pos, t.len());
        // Each iteration is 4 instructions with one taken branch: one group
        // per iteration.
        assert_eq!(groups, 25);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        ConventionalFetch::new(0, None, PerfectBtb::new());
    }

    mod properties {
        use super::*;
        use fetchvp_isa::AluOp;
        use fetchvp_testutil::for_cases;

        /// A random loop nest: an outer counted loop whose body mixes nops
        /// with an inner loop.
        fn random_trace(body: usize, inner: i64, outer: i64) -> Trace {
            let mut b = ProgramBuilder::new("p");
            b.load_imm(Reg::R1, outer);
            let ohead = b.bind_label("outer");
            for _ in 0..body {
                b.nop();
            }
            b.load_imm(Reg::R2, inner);
            let ihead = b.bind_label("inner");
            b.alu_imm(AluOp::Sub, Reg::R2, Reg::R2, 1);
            b.branch(Cond::Ne, Reg::R2, Reg::R0, ihead);
            b.alu_imm(AluOp::Sub, Reg::R1, Reg::R1, 1);
            b.branch(Cond::Ne, Reg::R1, Reg::R0, ohead);
            b.halt();
            trace_program(&b.build().unwrap(), 4_000)
        }

        /// With a perfect predictor, fetch groups tile the trace, never
        /// exceed the width, and respect the taken-branch allowance.
        #[test]
        fn groups_tile_and_respect_limits() {
            for_cases(32, |case, rng| {
                let body = rng.range_usize(0, 12);
                let inner = rng.range_i64(1, 8);
                let outer = rng.range_i64(1, 40);
                let width = rng.range_usize(1, 40);
                let max_taken = if rng.flip() { Some(rng.range_u64(1, 5) as u32) } else { None };
                let trace = random_trace(body, inner, outer);
                let mut f = ConventionalFetch::new(width, max_taken, PerfectBtb::new());
                let mut pos = 0;
                while pos < trace.len() {
                    let g = f.fetch(trace.view(), pos, usize::MAX);
                    assert!(g.len > 0, "case {case}: no progress at {pos}");
                    assert!(g.len <= width, "case {case}");
                    assert_eq!(g.mispredict, None, "case {case}"); // oracle never wrong
                    let taken =
                        trace.view().slots_in(pos..pos + g.len).filter(|r| r.taken()).count()
                            as u32;
                    if let Some(limit) = max_taken {
                        assert!(taken <= limit, "case {case}: {taken} taken in a group");
                    }
                    pos += g.len;
                }
                assert_eq!(pos, trace.len(), "case {case}");
            });
        }

        /// With a real predictor, every group that does not end the trace
        /// either fills the width, stops at the allowance, or flags a
        /// misprediction at its final slot.
        #[test]
        fn truncated_groups_are_justified() {
            for_cases(32, |case, rng| {
                let body = rng.range_usize(0, 10);
                let inner = rng.range_i64(1, 6);
                let width = rng.range_usize(4, 40);
                let trace = random_trace(body, inner, 30);
                let mut f = ConventionalFetch::new(width, Some(2), TwoLevelBtb::paper());
                let mut pos = 0;
                while pos < trace.len() {
                    let g = f.fetch(trace.view(), pos, usize::MAX);
                    assert!(g.len > 0, "case {case}");
                    if let Some(k) = g.mispredict {
                        assert_eq!(k, g.len - 1, "case {case}: mispredict must end the group");
                    } else if pos + g.len < trace.len() && g.len < width {
                        let taken =
                            trace.view().slots_in(pos..pos + g.len).filter(|r| r.taken()).count()
                                as u32;
                        assert_eq!(taken, 2, "case {case}: short group without a cause");
                    }
                    pos += g.len;
                }
            });
        }
    }

    #[test]
    #[should_panic(expected = "zero taken-branch allowance")]
    fn zero_taken_allowance_panics() {
        ConventionalFetch::new(4, Some(0), PerfectBtb::new());
    }
}
