//! A minimal JSON value, serializer and parser.
//!
//! The workspace builds offline with no external crates, so the benchmark
//! reports (`BENCH_*.json`) are produced and consumed by this hand-rolled
//! implementation instead of serde. Design constraints, in order:
//!
//! 1. **Deterministic output.** Objects serialize in insertion order and
//!    [`Registry`](crate::Registry) inserts keys in sorted order, so two
//!    runs with identical counters produce byte-identical documents — the
//!    property the `--jobs` determinism test asserts.
//! 2. **Integer fidelity.** Counters are `u64` end to end; integers are
//!    never round-tripped through `f64`.
//! 3. **Greppable reports.** Serialization is pretty-printed with two-space
//!    indentation so `BENCH_*.json` diffs line up in code review.
//! 4. **Safe on untrusted input.** The parser now sits on a network
//!    boundary (`fetchvp serve` feeds request bodies straight into
//!    [`Json::parse`]), so malformed input must always surface as a
//!    [`ParseError`], never a panic, and nesting is capped at
//!    [`MAX_DEPTH`] so adversarial `[[[[…` documents cannot overflow the
//!    stack. The parser imposes **no byte-size limit** of its own — memory
//!    use is linear in the input — so network callers must bound the body
//!    they accept *before* parsing (the server caps request bodies at its
//!    `max_body_bytes`, 256 KiB by default).
//!
//! ```
//! use fetchvp_metrics::json::Json;
//!
//! let doc = Json::object([
//!     ("hits".to_string(), Json::UInt(3)),
//!     ("rate".to_string(), Json::Float(0.75)),
//! ]);
//! let text = doc.to_json();
//! assert_eq!(Json::parse(&text).unwrap(), doc);
//! ```

use std::fmt;

/// A JSON document.
///
/// Numbers are split into [`Json::UInt`] (unsigned integers, used for
/// counters) and [`Json::Float`] (everything else): the reports this crate
/// serves never contain negative integers, and keeping counters out of
/// `f64` preserves them exactly up to `u64::MAX`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (counters).
    UInt(u64),
    /// Any other number (gauges, throughput). Non-finite values serialize
    /// as `null` (JSON has no NaN/Infinity).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. Pairs keep insertion order; builders that need canonical
    /// output insert keys pre-sorted.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, keeping their order.
    pub fn object(pairs: impl IntoIterator<Item = (String, Json)>) -> Json {
        Json::Object(pairs.into_iter().collect())
    }

    /// Looks up a key of an object (`None` for missing keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walks a dotted path of object keys.
    pub fn get_path(&self, path: &str) -> Option<&Json> {
        path.split('.').try_fold(self, |v, key| v.get(key))
    }

    /// The value as an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a float (integers widen losslessly where possible).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(n) => Some(n as f64),
            Json::Float(x) => Some(x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value's object pairs.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes to pretty-printed JSON (two-space indent, trailing
    /// newline omitted).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let mut buf = [0u8; 20];
                out.push_str(fmt_u64(*n, &mut buf));
            }
            Json::Float(x) => write_f64(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// Malformed input of any shape returns a [`ParseError`] — this
    /// function never panics — and documents nested deeper than
    /// [`MAX_DEPTH`] are rejected before recursion can exhaust the stack.
    /// No byte-size limit is enforced here; callers parsing untrusted
    /// input must cap its size first.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn fmt_u64(mut n: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    // The buffer holds only ASCII digits, so this cannot fail; fall back
    // to "0" rather than keeping a panic path in the serializer.
    std::str::from_utf8(&buf[i..]).unwrap_or("0")
}

/// Writes a float using Rust's shortest round-trip formatting; the output
/// always contains a `.` or an exponent so it parses back as a float.
fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{x:?}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Maximum container nesting depth [`Json::parse`] accepts.
///
/// The parser recurses once per nested array/object, so untrusted input
/// like `[[[[…` could otherwise overflow the stack; 64 levels is far
/// deeper than any report this workspace produces (bench reports nest 4).
pub const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting depth, checked against [`MAX_DEPTH`].
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { offset: self.pos, message: message.to_string() }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(&format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.leave();
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.leave();
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.leave();
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.leave();
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let c = match std::str::from_utf8(rest)
                .map_err(|_| self.err("invalid UTF-8"))?
                .chars()
                .next()
            {
                Some(c) => c,
                None => return Err(self.err("unterminated string")),
            };
            self.pos += c.len_utf8();
            match c {
                '"' => return Ok(s),
                '\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // serializer; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                c => s.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // Only ASCII digits, sign and exponent bytes were consumed, so the
        // slice is valid UTF-8; surface a ParseError instead of keeping a
        // panic path on the network boundary.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        text.parse::<f64>().map(Json::Float).map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_stay_integers() {
        let big = u64::MAX;
        let doc = Json::UInt(big);
        let back = Json::parse(&doc.to_json()).unwrap();
        assert_eq!(back, doc, "u64::MAX must not round-trip through f64");
        assert!(!doc.to_json().contains('.'));
    }

    #[test]
    fn floats_round_trip_shortest_form() {
        for x in [0.1, 1.0 / 3.0, 1e-12, 12345.6789, -2.5] {
            let text = Json::Float(x).to_json();
            assert_eq!(Json::parse(&text).unwrap(), Json::Float(x), "{text}");
        }
        // Whole floats keep a `.0` so they re-parse as floats.
        assert_eq!(Json::Float(3.0).to_json(), "3.0");
        assert_eq!(Json::Float(f64::NAN).to_json(), "null");
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let nasty = "quote\" backslash\\ newline\n tab\t ctrl\u{1} unicode\u{00e9}";
        let text = Json::Str(nasty.to_string()).to_json();
        assert_eq!(Json::parse(&text).unwrap(), Json::Str(nasty.to_string()));
        assert!(text.contains("\\u0001"));
    }

    #[test]
    fn nested_document_round_trips_byte_identically() {
        let doc = Json::object([
            ("counters".to_string(), Json::object([("a.b".to_string(), Json::UInt(7))])),
            ("list".to_string(), Json::Array(vec![Json::Bool(true), Json::Null])),
            ("empty".to_string(), Json::object([])),
        ]);
        let text = doc.to_json();
        let reparsed = Json::parse(&text).unwrap();
        assert_eq!(reparsed, doc);
        assert_eq!(reparsed.to_json(), text, "serialize∘parse must be the identity on output");
    }

    #[test]
    fn get_path_walks_objects() {
        let doc =
            Json::object([("a".to_string(), Json::object([("b".to_string(), Json::UInt(9))]))]);
        assert_eq!(doc.get_path("a.b").and_then(Json::as_u64), Some(9));
        assert_eq!(doc.get_path("a.missing"), None);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parse_rejects_deep_nesting_without_overflowing() {
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(Json::parse(&ok).is_ok(), "exactly MAX_DEPTH levels must parse");
        let too_deep = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        assert!(Json::parse(&too_deep).is_err(), "MAX_DEPTH + 1 levels must be rejected");
        // An adversarial open-bracket flood must error, not blow the stack.
        for adversarial in ["[".repeat(1_000_000), "{\"k\":".repeat(1_000_000)] {
            assert!(Json::parse(&adversarial).is_err());
        }
    }

    #[test]
    fn parse_accepts_whitespace_and_nesting() {
        let doc = Json::parse(" { \"a\" : [ 1 , 2.5 , \"x\" ] } ").unwrap();
        assert_eq!(
            doc.get_path("a").unwrap(),
            &Json::Array(vec![Json::UInt(1), Json::Float(2.5), Json::Str("x".to_string()),])
        );
    }
}
