//! A fast, deterministic, non-cryptographic hasher for simulator-internal
//! maps.
//!
//! The standard library's default hasher (SipHash-1-3) is keyed and
//! DoS-resistant — properties the simulator's internal tables do not need.
//! Every map in the hot simulation path (prediction tables keyed by PC, the
//! sparse data memory, store-address tracking) is keyed by values the
//! simulator itself generates, so a much cheaper multiply-rotate hash is
//! safe and measurably faster. The algorithm is the well-known "Fx" hash
//! used by rustc (one `rotate ^ mul` round per machine word), implemented
//! here from scratch to keep the workspace dependency-free.
//!
//! Determinism matters more than speed here: unlike `RandomState`, this
//! hasher has **no per-process seed**, so iteration-order-independent
//! results stay reproducible across runs (the workspace never iterates hash
//! maps when producing output, but a fixed hash function removes a whole
//! class of accidental nondeterminism).
//!
//! # Example
//!
//! ```
//! use fetchvp_metrics::hash::FxHashMap;
//!
//! let mut last_store: FxHashMap<u64, u64> = FxHashMap::default();
//! last_store.insert(0x40, 7);
//! assert_eq!(last_store.get(&0x40), Some(&7));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplicative constant of the Fx hash round (64-bit variant):
/// `⌊2^64 / φ⌋` adjusted to be odd, the classic Fibonacci-hashing constant.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A streaming Fx hasher: one `rotate_left(5) ^ word` then multiply per
/// input word.
///
/// Not cryptographic and not DoS-resistant — use only for maps whose keys
/// the program itself produces.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A [`std::hash::BuildHasher`] producing [`FxHasher`]s (no per-process
/// randomness).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A [`HashMap`] using the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A [`HashSet`] using the Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn hashing_is_deterministic_across_builders() {
        assert_eq!(hash_of(0xdead_beefu64), hash_of(0xdead_beefu64));
        assert_eq!(hash_of("a string"), hash_of("a string"));
    }

    #[test]
    fn different_keys_hash_differently() {
        // Not a collision-resistance claim — just a smoke test that the
        // mixing rounds are actually wired in.
        let hashes: FxHashSet<u64> = (0u64..1000).map(hash_of).collect();
        assert_eq!(hashes.len(), 1000);
    }

    #[test]
    fn byte_stream_matches_word_stream_for_whole_words() {
        let mut a = FxHasher::default();
        a.write(&42u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn maps_and_sets_behave_like_std() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
        let s: FxHashSet<u64> = [1, 1, 2, 3].into_iter().collect();
        assert_eq!(s.len(), 3);
    }
}
