//! A unified metrics layer for the fetchvp simulators.
//!
//! The paper's argument rests on counting the right things — fetch-slot
//! utilization, bank conflicts in the interleaved prediction table (§4),
//! predictability breakdowns (§3.3) — and every subsystem of this workspace
//! accumulates its own ad-hoc stats struct. This crate gives those structs
//! one export surface:
//!
//! * [`Registry`] — an ordered map from dotted metric names
//!   (`predictor.correct`, `fetch.bac.bank_conflicts`) to [`Metric`]s:
//!   integer [`Metric::Counter`]s, float [`Metric::Gauge`]s and log₂-bucket
//!   [`Histogram`]s.
//! * [`MetricsSink`] — implemented by each stats producer
//!   (`PredictorStats`, `BankedStats`, `BacStats`, `TraceCacheStats`,
//!   `SchedStats`, `TraceStats`, …) to write its counters under a caller
//!   supplied namespace prefix.
//! * [`json`] — a hand-rolled serializer/parser (the workspace builds
//!   offline, so no serde) producing the `BENCH_*.json` reports that
//!   `scripts/bench_compare.sh` gates CI with.
//!
//! Counters **accumulate**: exporting two machine runs into one registry
//! sums their counts, which is how the bench reports aggregate a workload's
//! machine configurations. Gauges **overwrite**: they are derived rates
//! recomputed from final counter values.
//!
//! # Example
//!
//! ```
//! use fetchvp_metrics::{MetricsSink, Registry};
//!
//! struct HitStats { hits: u64, misses: u64 }
//! impl MetricsSink for HitStats {
//!     fn export_metrics(&self, reg: &mut Registry, prefix: &str) {
//!         reg.counter(prefix, "hits", self.hits);
//!         reg.counter(prefix, "misses", self.misses);
//!     }
//! }
//!
//! let mut reg = Registry::new();
//! HitStats { hits: 3, misses: 1 }.export_metrics(&mut reg, "cache.l1");
//! assert_eq!(reg.get_counter("cache.l1.hits"), Some(3));
//! assert!(reg.counters_json().to_json().contains("\"cache.l1.hits\": 3"));
//! ```

// Public API of the hot path: every item must explain itself.
#![deny(missing_docs)]

pub mod hash;
pub mod json;

pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use json::{Json, ParseError, MAX_DEPTH};

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

/// One recorded metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A monotonically accumulated integer count.
    Counter(u64),
    /// A derived floating-point quantity (rates, ratios, throughput).
    Gauge(f64),
    /// A distribution over log₂ buckets.
    Histogram(Histogram),
}

/// A histogram over power-of-two buckets.
///
/// Bucket `i` counts samples whose bit length is `i`: bucket 0 holds the
/// value 0, bucket 1 holds 1, bucket 2 holds 2–3, bucket 3 holds 4–7, and
/// so on — the right shape for the paper's distance and run-length
/// distributions, which span several orders of magnitude.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// `counts[i]` = samples with bit length `i` (65 buckets cover `u64`).
    counts: Vec<u64>,
    /// Total samples.
    count: u64,
    /// Sum of all samples (saturating).
    sum: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        if self.counts.len() <= bucket {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The mean sample (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merges another histogram into this one. Counts saturate at
    /// [`u64::MAX`] rather than wrapping (or panicking in debug builds):
    /// merge trees over long-running shards can exceed what any single
    /// recording ever could.
    pub fn merge(&mut self, other: &Histogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst = dst.saturating_add(*src);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Per-bucket counts, lowest bucket first (no trailing zero buckets).
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`) as the upper bound of the bucket
    /// holding the rank-`⌈q·count⌉` sample — deterministic, derived purely
    /// from the bucket layout (bucket 0 → 0, bucket `i` → `2^i − 1`). An
    /// empty histogram reports 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // The rank `⌈q·count⌉` is taken in integer arithmetic: `q` equals
        // `qn / 2^64` exactly (scaling a float by a power of two only
        // shifts its exponent), while `count as f64` rounds above 2^53 and
        // can shift the rank by hundreds of samples on merged histograms.
        let qn = (q.clamp(0.0, 1.0) * 2f64.powi(64)) as u128;
        let rank_wide = (self.count as u128 * qn).div_ceil(1u128 << 64);
        let rank = (rank_wide.min(self.count as u128) as u64).max(1);
        let mut seen = 0u64;
        for (bucket, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if bucket == 0 {
                    0
                } else if bucket >= 64 {
                    u64::MAX
                } else {
                    (1u64 << bucket) - 1
                };
            }
        }
        u64::MAX // unreachable: count equals the bucket sum
    }

    /// The median bucket upper bound ([`Histogram::quantile`] at 0.5).
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// The 95th-percentile bucket upper bound.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// The 99th-percentile bucket upper bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    fn to_json(&self) -> Json {
        Json::object([
            ("count".to_string(), Json::UInt(self.count)),
            ("sum".to_string(), Json::UInt(self.sum)),
            ("p50".to_string(), Json::UInt(self.p50())),
            ("p95".to_string(), Json::UInt(self.p95())),
            ("p99".to_string(), Json::UInt(self.p99())),
            (
                "log2_buckets".to_string(),
                Json::Array(self.counts.iter().map(|&c| Json::UInt(c)).collect()),
            ),
        ])
    }
}

/// Anything that can export its statistics into a [`Registry`].
///
/// Implementors write each field under `prefix` (a dotted namespace with no
/// trailing dot, e.g. `"fetch.trace_cache"`); derived rates go in as gauges
/// so the counter section of a report stays integer-only.
pub trait MetricsSink {
    /// Writes this producer's metrics under `prefix`.
    fn export_metrics(&self, reg: &mut Registry, prefix: &str);
}

/// An ordered name → metric map; the snapshot a simulation returns
/// alongside its IPC result.
///
/// Keys are dotted paths. Iteration (and therefore JSON output) is in
/// lexicographic key order, which makes reports deterministic and diffable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    metrics: BTreeMap<String, Metric>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn key(prefix: &str, name: &str) -> String {
        debug_assert!(!name.is_empty(), "metric name must be non-empty");
        if prefix.is_empty() {
            name.to_string()
        } else {
            format!("{prefix}.{name}")
        }
    }

    /// Adds `value` to the counter `prefix.name` (creating it at 0).
    ///
    /// # Panics
    ///
    /// Panics if the key already holds a gauge or histogram.
    pub fn counter(&mut self, prefix: &str, name: &str, value: u64) {
        let key = Registry::key(prefix, name);
        match self.metrics.entry(key).or_insert(Metric::Counter(0)) {
            Metric::Counter(n) => *n += value,
            other => panic!("metric type conflict: counter vs {other:?}"),
        }
    }

    /// Sets the gauge `prefix.name` to `value` (overwriting).
    ///
    /// # Panics
    ///
    /// Panics if the key already holds a counter or histogram.
    pub fn gauge(&mut self, prefix: &str, name: &str, value: f64) {
        let key = Registry::key(prefix, name);
        match self.metrics.entry(key).or_insert(Metric::Gauge(0.0)) {
            Metric::Gauge(g) => *g = value,
            other => panic!("metric type conflict: gauge vs {other:?}"),
        }
    }

    /// Records `value` into the histogram `prefix.name` (creating it empty).
    ///
    /// # Panics
    ///
    /// Panics if the key already holds a counter or gauge.
    pub fn observe(&mut self, prefix: &str, name: &str, value: u64) {
        let key = Registry::key(prefix, name);
        match self.metrics.entry(key).or_insert_with(|| Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h.record(value),
            other => panic!("metric type conflict: histogram vs {other:?}"),
        }
    }

    /// Merges a whole pre-built histogram into `prefix.name` bucket-wise
    /// (creating it empty) — for exporting distributions accumulated outside
    /// the registry, such as the schedulers' DID histograms.
    ///
    /// # Panics
    ///
    /// Panics if the key already holds a counter or gauge.
    pub fn histogram(&mut self, prefix: &str, name: &str, value: &Histogram) {
        let key = Registry::key(prefix, name);
        match self.metrics.entry(key).or_insert_with(|| Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h.merge(value),
            other => panic!("metric type conflict: histogram vs {other:?}"),
        }
    }

    /// A clone of the histogram stored under `key`, if present.
    pub fn get_histogram(&self, key: &str) -> Option<Histogram> {
        match self.metrics.get(key) {
            Some(Metric::Histogram(h)) => Some(h.clone()),
            _ => None,
        }
    }

    /// Merges another registry: counters add, gauges overwrite, histograms
    /// merge bucket-wise.
    ///
    /// # Panics
    ///
    /// Panics when the same key holds different metric types.
    pub fn merge(&mut self, other: &Registry) {
        for (key, metric) in &other.metrics {
            match (self.metrics.get_mut(key), metric) {
                (None, m) => {
                    self.metrics.insert(key.clone(), m.clone());
                }
                (Some(Metric::Counter(a)), Metric::Counter(b)) => *a += b,
                (Some(Metric::Gauge(a)), Metric::Gauge(b)) => *a = *b,
                (Some(Metric::Histogram(a)), Metric::Histogram(b)) => a.merge(b),
                (Some(a), b) => panic!("metric type conflict on `{key}`: {a:?} vs {b:?}"),
            }
        }
    }

    /// The value of a counter, if present.
    pub fn get_counter(&self, key: &str) -> Option<u64> {
        match self.metrics.get(key) {
            Some(Metric::Counter(n)) => Some(*n),
            _ => None,
        }
    }

    /// The value of a gauge, if present.
    pub fn get_gauge(&self, key: &str) -> Option<f64> {
        match self.metrics.get(key) {
            Some(Metric::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Number of metrics recorded.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Iterates `(key, metric)` in lexicographic key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, m)| (k.as_str(), m))
    }

    /// The distinct top-level namespaces (`predictor`, `fetch`, …), sorted.
    pub fn namespaces(&self) -> Vec<&str> {
        let mut spaces: Vec<&str> =
            self.metrics.keys().map(|k| k.split('.').next().unwrap_or(k)).collect();
        spaces.dedup();
        spaces
    }

    /// The counter section as a flat JSON object (sorted dotted keys,
    /// integers only) — the deterministic part of a bench report.
    pub fn counters_json(&self) -> Json {
        Json::object(self.metrics.iter().filter_map(|(k, m)| match m {
            Metric::Counter(n) => Some((k.clone(), Json::UInt(*n))),
            _ => None,
        }))
    }

    /// The gauge section as a flat JSON object (sorted dotted keys).
    pub fn gauges_json(&self) -> Json {
        Json::object(self.metrics.iter().filter_map(|(k, m)| match m {
            Metric::Gauge(g) => Some((k.clone(), Json::Float(*g))),
            _ => None,
        }))
    }

    /// The histogram section as a JSON object of `{count, sum, log2_buckets}`.
    pub fn histograms_json(&self) -> Json {
        Json::object(self.metrics.iter().filter_map(|(k, m)| match m {
            Metric::Histogram(h) => Some((k.clone(), h.to_json())),
            _ => None,
        }))
    }

    /// The full snapshot: `{"counters": …, "gauges": …, "histograms": …}`
    /// (empty sections omitted).
    pub fn to_json(&self) -> Json {
        let mut sections = Vec::new();
        for (name, section) in [
            ("counters", self.counters_json()),
            ("gauges", self.gauges_json()),
            ("histograms", self.histograms_json()),
        ] {
            if section.as_object().is_some_and(|pairs| !pairs.is_empty()) {
                sections.push((name.to_string(), section));
            }
        }
        Json::object(sections)
    }
}

/// A thread-safe, cheaply cloneable [`Registry`] for concurrent sinks.
///
/// The long-lived `fetchvp serve` daemon has many producers — connection
/// handlers counting requests, pool workers merging whole simulation
/// snapshots — writing into one live registry that `GET /metrics` reads.
/// `SharedRegistry` wraps `Arc<Mutex<Registry>>` with the same write verbs
/// as [`Registry`] plus [`SharedRegistry::snapshot`] for consistent reads.
///
/// Locking is poison-proof: a panicking worker (the server isolates job
/// panics with `catch_unwind`) never takes the metrics endpoint down with
/// it — the mutex's inner data is recovered and the registry stays live.
///
/// # Example
///
/// ```
/// use fetchvp_metrics::SharedRegistry;
///
/// let shared = SharedRegistry::new();
/// let clone = shared.clone();
/// std::thread::spawn(move || clone.counter("server.requests", "run", 1))
///     .join()
///     .unwrap();
/// shared.counter("server.requests", "run", 1);
/// assert_eq!(shared.snapshot().get_counter("server.requests.run"), Some(2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedRegistry {
    inner: Arc<Mutex<Registry>>,
}

impl SharedRegistry {
    /// An empty shared registry.
    pub fn new() -> SharedRegistry {
        SharedRegistry::default()
    }

    fn lock(&self) -> MutexGuard<'_, Registry> {
        // Recover from poisoning: metrics must outlive panicking writers.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Adds `value` to the counter `prefix.name` (creating it at 0).
    ///
    /// # Panics
    ///
    /// Panics if the key already holds a gauge or histogram.
    pub fn counter(&self, prefix: &str, name: &str, value: u64) {
        self.lock().counter(prefix, name, value);
    }

    /// Sets the gauge `prefix.name` to `value` (overwriting).
    ///
    /// # Panics
    ///
    /// Panics if the key already holds a counter or histogram.
    pub fn gauge(&self, prefix: &str, name: &str, value: f64) {
        self.lock().gauge(prefix, name, value);
    }

    /// Records `value` into the histogram `prefix.name` (creating it
    /// empty).
    ///
    /// # Panics
    ///
    /// Panics if the key already holds a counter or gauge.
    pub fn observe(&self, prefix: &str, name: &str, value: u64) {
        self.lock().observe(prefix, name, value);
    }

    /// Merges a whole [`Registry`] (counters add, gauges overwrite,
    /// histograms merge) — how a pool worker publishes one finished job's
    /// simulator snapshot.
    ///
    /// # Panics
    ///
    /// Panics when the same key holds different metric types.
    pub fn merge(&self, other: &Registry) {
        self.lock().merge(other);
    }

    /// Exports a [`MetricsSink`] under `prefix`, like
    /// [`MetricsSink::export_metrics`] on a plain registry.
    pub fn export_from(&self, sink: &dyn MetricsSink, prefix: &str) {
        sink.export_metrics(&mut self.lock(), prefix);
    }

    /// A copy of the histogram stored at `key`, if any — how the server
    /// reads its live latency distribution (e.g. to derive a
    /// `Retry-After` hint from the observed drain rate) without cloning
    /// the whole registry.
    pub fn get_histogram(&self, key: &str) -> Option<Histogram> {
        self.lock().get_histogram(key)
    }

    /// A point-in-time copy of the whole registry — what `GET /metrics`
    /// serializes. Concurrent writers block only for the duration of the
    /// clone, never for the serialization.
    pub fn snapshot(&self) -> Registry {
        self.lock().clone()
    }
}

impl fmt::Display for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (key, metric) in &self.metrics {
            match metric {
                Metric::Counter(n) => writeln!(f, "{key} = {n}")?,
                Metric::Gauge(g) => writeln!(f, "{key} = {g:.6}")?,
                Metric::Histogram(h) => {
                    writeln!(f, "{key} = histogram(count {}, mean {:.2})", h.count(), h.mean())?
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut reg = Registry::new();
        reg.counter("a", "hits", 2);
        reg.counter("a", "hits", 3);
        reg.gauge("a", "rate", 0.5);
        reg.gauge("a", "rate", 0.7);
        assert_eq!(reg.get_counter("a.hits"), Some(5));
        assert_eq!(reg.get_gauge("a.rate"), Some(0.7));
    }

    #[test]
    fn merge_sums_counters_and_merges_histograms() {
        let mut a = Registry::new();
        a.counter("x", "n", 1);
        a.observe("x", "h", 4);
        let mut b = Registry::new();
        b.counter("x", "n", 2);
        b.observe("x", "h", 5);
        b.gauge("x", "g", 1.5);
        a.merge(&b);
        assert_eq!(a.get_counter("x.n"), Some(3));
        assert_eq!(a.get_gauge("x.g"), Some(1.5));
        match a.metrics.get("x.h") {
            Some(Metric::Histogram(h)) => {
                assert_eq!(h.count(), 2);
                assert_eq!(h.sum(), 9);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "type conflict")]
    fn type_conflicts_panic() {
        let mut reg = Registry::new();
        reg.counter("a", "x", 1);
        reg.gauge("a", "x", 1.0);
    }

    #[test]
    fn counter_section_is_sorted_and_integer_only() {
        let mut reg = Registry::new();
        reg.counter("z", "late", 1);
        reg.counter("a", "early", 2);
        reg.gauge("m", "rate", 0.25);
        let text = reg.counters_json().to_json();
        let a = text.find("a.early").unwrap();
        let z = text.find("z.late").unwrap();
        assert!(a < z, "keys must be sorted: {text}");
        assert!(!text.contains("rate"), "gauges must not leak into counters: {text}");
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1 << 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.buckets()[0], 1); // 0
        assert_eq!(h.buckets()[1], 1); // 1
        assert_eq!(h.buckets()[2], 2); // 2, 3
        assert_eq!(h.buckets()[3], 2); // 4, 7
        assert_eq!(h.buckets()[4], 1); // 8
        assert_eq!(h.buckets()[41], 1); // 2^40
        assert!((h.mean() - (h.sum() as f64 / 8.0)).abs() < 1e-12);
    }

    /// A histogram whose fields are set directly — recording 2^63 samples
    /// is not an option in a unit test.
    fn synthetic(counts: Vec<u64>, sum: u64) -> Histogram {
        let count = counts.iter().fold(0u64, |acc, &c| acc.saturating_add(c));
        Histogram { counts, count, sum }
    }

    #[test]
    fn merge_saturates_instead_of_overflowing() {
        // Regression: merging two near-full histograms used to wrap (or
        // panic in debug builds) on `count` and the per-bucket counts.
        let mut a = synthetic(vec![u64::MAX - 1, 2], u64::MAX);
        let b = synthetic(vec![3, u64::MAX - 1], 10);
        a.merge(&b);
        assert_eq!(a.count(), u64::MAX);
        assert_eq!(a.buckets(), [u64::MAX, u64::MAX]);
        assert_eq!(a.sum(), u64::MAX);
    }

    #[test]
    fn quantile_rank_is_exact_above_f64_precision() {
        // 2^53 samples of 0 and one sample of 1: the maximum is rank
        // 2^53 + 1, but `count as f64` rounds that count down to 2^53, so
        // the old float rank landed on the last zero and p100 reported
        // bucket 0 instead of the bucket holding the real maximum.
        let h = synthetic(vec![1u64 << 53, 1], 1);
        assert_eq!(h.quantile(1.0), 1, "the maximum sample lives in bucket 1");
        assert_eq!(h.p50(), 0);

        // Near u64::MAX the f64 rank drifts by thousands of samples; the
        // integer rank must still resolve the single-sample tail bucket.
        let h = synthetic(vec![u64::MAX - 1, 1], u64::MAX);
        assert_eq!(h.quantile(1.0), 1);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn quantile_boundaries_are_sane() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // Quantiles are bucket upper bounds: rank 50 is the value 50, in
        // bucket 6 (32..=63) whose bound is 63.
        assert_eq!(h.p50(), 63);
        assert_eq!(h.quantile(1.0), 127);
        // q = 0 clamps to rank 1 (the minimum sample's bucket).
        assert_eq!(h.quantile(0.0), 1);
    }

    #[test]
    fn namespaces_lists_top_level_prefixes() {
        let mut reg = Registry::new();
        reg.counter("predictor", "hits", 1);
        reg.counter("predictor.banked", "denied", 1);
        reg.counter("fetch.bac", "blocks", 1);
        assert_eq!(reg.namespaces(), ["fetch", "predictor"]);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let mut reg = Registry::new();
        reg.counter("a", "n", 7);
        reg.gauge("a", "r", 0.875);
        reg.observe("a", "h", 12);
        let doc = reg.to_json();
        let text = doc.to_json();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        // Keys are flat dotted names inside each section.
        let n = doc.get("counters").and_then(|c| c.get("a.n")).and_then(Json::as_u64);
        assert_eq!(n, Some(7));
    }

    #[test]
    fn shared_registry_accumulates_across_threads() {
        let shared = SharedRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let shared = shared.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        shared.counter("server.requests", "run", 1);
                        shared.observe("server", "latency_ms", 3);
                    }
                    let mut local = Registry::new();
                    local.counter("sched", "retired", 5);
                    shared.merge(&local);
                });
            }
        });
        let snap = shared.snapshot();
        assert_eq!(snap.get_counter("server.requests.run"), Some(800));
        assert_eq!(snap.get_counter("sched.retired"), Some(40));
        match snap.to_json().get("histograms").and_then(|h| h.get("server.latency_ms")) {
            Some(h) => assert_eq!(h.get("count").and_then(Json::as_u64), Some(800)),
            None => panic!("missing histogram"),
        }
    }

    #[test]
    fn shared_registry_survives_a_poisoned_lock() {
        let shared = SharedRegistry::new();
        shared.counter("server", "before", 1);
        let clone = shared.clone();
        // Poison the mutex by panicking while holding it (via a type
        // conflict); the registry must stay readable and writable.
        let _ = std::thread::spawn(move || clone.gauge("server", "before", 1.0)).join();
        shared.counter("server", "after", 1);
        assert_eq!(shared.snapshot().get_counter("server.after"), Some(1));
    }

    #[test]
    fn empty_registry_renders_empty_snapshot() {
        let reg = Registry::new();
        assert!(reg.is_empty());
        assert_eq!(reg.to_json().to_json(), "{}");
    }
}
