//! Property tests for the JSON layer, in `fetchvp-testutil` style.
//!
//! `Json::parse` sits on a network boundary (`fetchvp serve` parses request
//! bodies with it), so beyond the unit tests these properties assert the
//! two contracts an adversarial client cares about:
//!
//! 1. **Round trip** — any document the serializer can produce reparses to
//!    an equal value, and re-serializing the parse is byte-identical.
//! 2. **Total on garbage** — malformed input of any shape returns
//!    `ParseError`; it never panics and never overflows the stack.

use fetchvp_metrics::Json;
use fetchvp_testutil::{for_cases, Rng};

/// A random finite float built from two bounded integers, so every
/// generated value serializes and reparses exactly (NaN/∞ serialize as
/// `null` by design and are excluded).
fn finite_float(rng: &mut Rng) -> f64 {
    let numerator = rng.range_i64(-1_000_000, 1_000_000) as f64;
    let denominator = rng.range_u64(1, 1_000) as f64;
    numerator / denominator
}

fn random_string(rng: &mut Rng) -> String {
    let alphabet: Vec<char> =
        "abz09 _.\"\\\n\r\t\u{1}\u{7f}\u{e9}\u{4e16}\u{1f600}".chars().collect();
    rng.vec_with(0, 12, |r| *r.pick(&alphabet)).into_iter().collect()
}

/// A random JSON document of bounded depth and fanout.
fn random_doc(rng: &mut Rng, depth: usize) -> Json {
    let leaf_only = depth == 0;
    match if leaf_only { rng.below(5) } else { rng.below(7) } {
        0 => Json::Null,
        1 => Json::Bool(rng.flip()),
        2 => Json::UInt(rng.next_u64()),
        3 => Json::Float(finite_float(rng)),
        4 => Json::Str(random_string(rng)),
        5 => Json::Array(rng.vec_with(0, 5, |r| random_doc(r, depth - 1))),
        _ => Json::object(
            rng.vec_with(0, 5, |r| (random_string(r), random_doc(r, depth - 1)))
                .into_iter()
                .enumerate()
                // Disambiguate keys: `get`-based equality is positional
                // anyway, but unique keys keep the documents realistic.
                .map(|(i, (k, v))| (format!("{k}#{i}"), v)),
        ),
    }
}

#[test]
fn random_documents_round_trip() {
    for_cases(256, |case, rng| {
        let doc = random_doc(rng, 4);
        let text = doc.to_json();
        let reparsed = Json::parse(&text)
            .unwrap_or_else(|e| panic!("case {case}: serializer output failed to parse: {e}"));
        assert_eq!(reparsed, doc, "case {case}: parse(to_json(doc)) != doc");
        assert_eq!(reparsed.to_json(), text, "case {case}: re-serialization is not byte-identical");
    });
}

#[test]
fn mutated_documents_never_panic() {
    for_cases(512, |_case, rng| {
        let mut bytes = random_doc(rng, 3).to_json().into_bytes();
        // Flip, delete or truncate a few random bytes; the result may or
        // may not still be valid JSON — parse must return, not panic.
        for _ in 0..rng.range_usize(1, 5) {
            if bytes.is_empty() {
                break;
            }
            let at = rng.range_usize(0, bytes.len());
            match rng.below(3) {
                0 => bytes[at] = rng.next_u64() as u8,
                1 => {
                    bytes.remove(at);
                }
                _ => bytes.truncate(at),
            }
        }
        if let Ok(text) = String::from_utf8(bytes) {
            let _ = Json::parse(&text);
        }
    });
}

#[test]
fn random_garbage_never_panics() {
    let alphabet: Vec<char> = "{}[]\",:.-+eE0123456789nulltruefalse \\ \u{e9}".chars().collect();
    for_cases(512, |_case, rng| {
        let text: String = rng.vec_with(0, 64, |r| *r.pick(&alphabet)).into_iter().collect();
        let _ = Json::parse(&text);
    });
}

#[test]
fn malformed_inputs_return_parse_error() {
    for bad in [
        "",
        "   ",
        "{",
        "}",
        "[1,",
        "[1 2]",
        "{\"a\":}",
        "{\"a\" 1}",
        "{1: 2}",
        "nul",
        "truth",
        "01x",
        "-",
        "1e",
        "\"\\q\"",
        "\"\\u12\"",
        "\u{7f}",
        "[]]",
        "{} {}",
    ] {
        assert!(Json::parse(bad).is_err(), "{bad:?} must be a ParseError, not a success");
    }
}

#[test]
fn depth_limit_is_enforced_for_mixed_nesting() {
    // Alternating object/array nesting also counts against MAX_DEPTH.
    let mut text = String::new();
    for _ in 0..fetchvp_metrics::MAX_DEPTH {
        text.push_str("{\"a\":[");
    }
    text.push('0');
    for _ in 0..fetchvp_metrics::MAX_DEPTH {
        text.push_str("]}");
    }
    assert!(Json::parse(&text).is_err(), "2*MAX_DEPTH mixed levels must be rejected");
}
