//! A text assembler for the [`crate::Program`] disassembly syntax.
//!
//! The grammar is exactly what [`crate::Program`]'s `Display` prints, plus
//! labels, named label references, comments and a `.word` directive for the
//! initial memory image — so any disassembly listing round-trips, and
//! workloads can be written as plain `.s` files:
//!
//! ```text
//! ; sum the numbers 1..=10
//! .word 0x100 0        ; addr value
//!     li   r1, 0       ; acc
//!     li   r2, 10      ; counter
//! head:
//!     add  r1, r1, r2
//!     subi r2, r2, 1
//!     bne  r2, r0, head
//!     halt
//! ```
//!
//! Control-flow targets may be written as `@12` (absolute program index,
//! the disassembly form) or as a label name.

use std::error::Error;
use std::fmt;

use crate::instr::Instr;
use crate::op::{AluOp, Cond};
use crate::program::{Label, Program, ProgramBuilder};
use crate::reg::Reg;

/// An assembly-parse error, with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError { line, message: message.into() }
}

/// Parses assembly text into a [`Program`] named `name`.
///
/// # Errors
///
/// Returns an [`AsmError`] with the offending line for any syntax problem,
/// unknown mnemonic, bad register, malformed immediate, or unresolved
/// label.
///
/// # Example
///
/// ```
/// use fetchvp_isa::asm::parse_program;
///
/// let program = parse_program(
///     "counter",
///     "
///         li   r1, 3
///     head:
///         subi r1, r1, 1
///         bne  r1, r0, head
///         halt
///     ",
/// ).unwrap();
/// assert_eq!(program.len(), 4);
/// ```
pub fn parse_program(name: &str, source: &str) -> Result<Program, AsmError> {
    let mut parser = Parser { b: ProgramBuilder::new(name), labels: Vec::new() };
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        parser.parse_line(line_no, line)?;
    }
    parser.b.build().map_err(|e| err(0, e.to_string()))
}

fn strip_comment(line: &str) -> &str {
    match line.find([';', '#']) {
        Some(i) => &line[..i],
        None => line,
    }
}

struct Parser {
    b: ProgramBuilder,
    labels: Vec<(String, Label)>,
}

impl Parser {
    fn label_named(&mut self, name: &str) -> Label {
        if let Some((_, l)) = self.labels.iter().find(|(n, _)| n == name) {
            return *l;
        }
        let l = self.b.label(name);
        self.labels.push((name.to_string(), l));
        l
    }

    fn parse_line(&mut self, line_no: usize, line: &str) -> Result<(), AsmError> {
        // Label definition(s) may prefix an instruction: `head: nop`.
        let mut rest = line;
        while let Some(colon) = rest.find(':') {
            let (candidate, tail) = rest.split_at(colon);
            let candidate = candidate.trim();
            if candidate.is_empty() || !is_ident(candidate) {
                break;
            }
            let l = self.label_named(candidate);
            self.b.bind(l);
            rest = tail[1..].trim_start();
        }
        if rest.is_empty() {
            return Ok(());
        }
        self.parse_instr(line_no, rest)
    }

    fn parse_instr(&mut self, line_no: usize, text: &str) -> Result<(), AsmError> {
        let (mnemonic, args) = match text.split_once(char::is_whitespace) {
            Some((m, a)) => (m.trim(), a.trim()),
            None => (text, ""),
        };
        let args: Vec<&str> = args.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
        let argc = |n: usize| -> Result<(), AsmError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(err(
                    line_no,
                    format!("`{mnemonic}` expects {n} operand(s), got {}", args.len()),
                ))
            }
        };

        // Register-register ALU operations.
        if let Some(op) = AluOp::ALL.iter().find(|o| o.mnemonic() == mnemonic) {
            argc(3)?;
            self.b.alu(*op, reg(line_no, args[0])?, reg(line_no, args[1])?, reg(line_no, args[2])?);
            return Ok(());
        }
        // Immediate ALU operations: mnemonic + "i".
        if let Some(base) = mnemonic.strip_suffix('i') {
            if let Some(op) = AluOp::ALL.iter().find(|o| o.mnemonic() == base) {
                argc(3)?;
                self.b.alu_imm(
                    *op,
                    reg(line_no, args[0])?,
                    reg(line_no, args[1])?,
                    imm(line_no, args[2])?,
                );
                return Ok(());
            }
        }
        // Conditional branches: `b` + condition mnemonic.
        if let Some(cond_name) = mnemonic.strip_prefix('b') {
            if let Some(cond) = Cond::ALL.iter().find(|c| c.mnemonic() == cond_name) {
                argc(3)?;
                let target = self.target(line_no, args[2])?;
                self.b.branch(*cond, reg(line_no, args[0])?, reg(line_no, args[1])?, target);
                return Ok(());
            }
        }

        match mnemonic {
            "li" => {
                argc(2)?;
                self.b.load_imm(reg(line_no, args[0])?, imm(line_no, args[1])?);
            }
            "ld" => {
                argc(2)?;
                let (offset, base) = mem_operand(line_no, args[1])?;
                self.b.load(reg(line_no, args[0])?, base, offset);
            }
            "st" => {
                argc(2)?;
                let (offset, base) = mem_operand(line_no, args[1])?;
                self.b.store(reg(line_no, args[0])?, base, offset);
            }
            "j" => {
                argc(1)?;
                let target = self.target(line_no, args[0])?;
                self.b.jump(target);
            }
            "jr" => {
                argc(1)?;
                self.b.jump_ind(reg(line_no, args[0])?);
            }
            "call" => {
                argc(2)?;
                let target = self.target(line_no, args[0])?;
                self.b.call(target, reg(line_no, args[1])?);
            }
            "halt" => {
                argc(0)?;
                self.b.halt();
            }
            "nop" => {
                argc(0)?;
                self.b.nop();
            }
            ".word" => {
                // `.word <addr> <value>` — whitespace-separated pair.
                let parts: Vec<&str> = args.iter().flat_map(|a| a.split_whitespace()).collect();
                if parts.len() != 2 {
                    return Err(err(line_no, ".word expects: .word <addr> <value>"));
                }
                let addr = uimm(line_no, parts[0])?;
                let value = uimm(line_no, parts[1])?;
                self.b.data_word(addr, value);
            }
            other => return Err(err(line_no, format!("unknown mnemonic `{other}`"))),
        }
        Ok(())
    }

    /// A control-flow target: `@index` or a label name.
    fn target(&mut self, line_no: usize, text: &str) -> Result<Label, AsmError> {
        if let Some(index) = text.strip_prefix('@') {
            let pos: u64 =
                index.parse().map_err(|_| err(line_no, format!("bad target `{text}`")))?;
            // Represent an absolute index as a synthetic label bound later;
            // simplest correct handling: remember it by name.
            let name = format!("@{pos}");
            if let Some((_, l)) = self.labels.iter().find(|(n, _)| n == &name) {
                return Ok(*l);
            }
            // Absolute targets refer to final instruction indices; bind is
            // deferred until the builder reaches that index, which only
            // works for *backward* references at parse time — so instead we
            // reject them unless already definable.
            if pos <= self.b.here() {
                return Err(err(
                    line_no,
                    "absolute @targets are only supported via labels; name the target instead",
                ));
            }
            Err(err(
                line_no,
                "absolute @targets are only supported via labels; name the target instead",
            ))
        } else if is_ident(text) {
            Ok(self.label_named(text))
        } else {
            Err(err(line_no, format!("bad target `{text}`")))
        }
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn reg(line_no: usize, text: &str) -> Result<Reg, AsmError> {
    let idx = text
        .strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .ok_or_else(|| err(line_no, format!("bad register `{text}`")))?;
    Reg::new(idx).ok_or_else(|| err(line_no, format!("register `{text}` out of range")))
}

fn imm(line_no: usize, text: &str) -> Result<i64, AsmError> {
    let (negative, digits) = match text.strip_prefix('-') {
        Some(d) => (true, d),
        None => (false, text),
    };
    let value = if let Some(hex) = digits.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        digits.parse()
    }
    .map_err(|_| err(line_no, format!("bad immediate `{text}`")))?;
    Ok(if negative { -value } else { value })
}

fn uimm(line_no: usize, text: &str) -> Result<u64, AsmError> {
    if let Some(hex) = text.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        text.parse()
    }
    .map_err(|_| err(line_no, format!("bad value `{text}`")))
}

/// A memory operand `offset(base)`, e.g. `-8(r3)` or `0x100(r1)`.
fn mem_operand(line_no: usize, text: &str) -> Result<(i64, Reg), AsmError> {
    let open = text
        .find('(')
        .ok_or_else(|| err(line_no, format!("bad memory operand `{text}` (want offset(base))")))?;
    if !text.ends_with(')') {
        return Err(err(line_no, format!("bad memory operand `{text}`")));
    }
    let offset_text = &text[..open];
    let offset = if offset_text.is_empty() { 0 } else { imm(line_no, offset_text)? };
    let base = reg(line_no, &text[open + 1..text.len() - 1])?;
    Ok((offset, base))
}

/// Renders a program as parseable assembly (labels for all control-flow
/// targets), the inverse of [`parse_program`].
///
/// # Example
///
/// ```
/// use fetchvp_isa::asm::{parse_program, to_assembly};
///
/// let p = parse_program("t", "head: nop\n j head\n halt").unwrap();
/// let text = to_assembly(&p);
/// let reparsed = parse_program("t", &text).unwrap();
/// assert_eq!(p, reparsed);
/// ```
pub fn to_assembly(program: &Program) -> String {
    use std::collections::BTreeSet;
    let targets: BTreeSet<u64> = program.instrs().iter().filter_map(Instr::static_target).collect();
    let label = |pc: u64| format!("L{pc}");
    let mut out = String::new();
    for (&addr, &value) in program.data() {
        out.push_str(&format!(".word {addr} {value}\n"));
    }
    for (pc, instr) in program.instrs().iter().enumerate() {
        if targets.contains(&(pc as u64)) {
            out.push_str(&format!("{}:\n", label(pc as u64)));
        }
        let text = match *instr {
            Instr::Branch { cond, a, b, target } => {
                format!("b{cond} {a}, {b}, {}", label(target))
            }
            Instr::Jump { target } => format!("j {}", label(target)),
            Instr::Call { target, link } => format!("call {}, {link}", label(target)),
            other => other.to_string(),
        };
        out.push_str("    ");
        out.push_str(&text);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_module_example() {
        let p = parse_program(
            "sum",
            "
            ; sum the numbers 1..=10
            .word 0x100 0
                li   r1, 0
                li   r2, 10
            head:
                add  r1, r1, r2
                subi r2, r2, 1
                bne  r2, r0, head
                halt
            ",
        )
        .unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(p.data().get(&0x100), Some(&0));
        match p.get(4).unwrap() {
            Instr::Branch { target, .. } => assert_eq!(*target, 2),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn executes_correctly_after_parsing() {
        let p = parse_program(
            "sum",
            "li r1, 0\nli r2, 10\nhead: add r1, r1, r2\nsubi r2, r2, 1\nbne r2, r0, head\nhalt",
        )
        .unwrap();
        // 10 + 9 + ... + 1 = 55, computed by running the program.
        // (The executor lives in fetchvp-trace; emulate the few steps here.)
        let mut regs = [0u64; 32];
        let mut pc = 0u64;
        for _ in 0..200 {
            match p.get(pc) {
                Some(Instr::LoadImm { dst, imm }) => {
                    regs[dst.index()] = *imm as u64;
                    pc += 1;
                }
                Some(Instr::Alu { op, dst, a, b }) => {
                    regs[dst.index()] = op.apply(regs[a.index()], regs[b.index()]);
                    pc += 1;
                }
                Some(Instr::AluImm { op, dst, a, imm }) => {
                    regs[dst.index()] = op.apply(regs[a.index()], *imm as u64);
                    pc += 1;
                }
                Some(Instr::Branch { cond, a, b, target }) => {
                    pc =
                        if cond.holds(regs[a.index()], regs[b.index()]) { *target } else { pc + 1 };
                }
                _ => break,
            }
        }
        assert_eq!(regs[1], 55);
    }

    #[test]
    fn every_mnemonic_parses() {
        let p = parse_program(
            "all",
            "
            f:
                add r1, r2, r3
                subi r4, r5, -7
                muli r6, r7, 0x10
                li r8, -1
                ld r9, 8(r10)
                ld r11, (r12)
                st r13, -16(r14)
                bgeu r15, r16, f
                j f
                jr r31
                call f, r31
                nop
                halt
            ",
        )
        .unwrap();
        assert_eq!(p.len(), 13);
    }

    #[test]
    fn forward_labels_resolve() {
        let p = parse_program("fwd", "j end\nnop\nend: halt").unwrap();
        assert_eq!(p.get(0), Some(&Instr::Jump { target: 2 }));
    }

    #[test]
    fn label_and_instruction_share_a_line() {
        let p = parse_program("inline", "head: nop\nj head").unwrap();
        assert_eq!(p.get(1), Some(&Instr::Jump { target: 0 }));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let p = parse_program("c", "# hash comment\n\n  ; semi comment\nnop ; trailing\n").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn unknown_mnemonic_is_reported_with_line() {
        let e = parse_program("bad", "nop\nfrobnicate r1").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn bad_register_is_reported() {
        let e = parse_program("bad", "li r99, 0").unwrap_err();
        assert!(e.message.contains("out of range"), "{e}");
        let e = parse_program("bad", "li rx, 0").unwrap_err();
        assert!(e.message.contains("bad register"), "{e}");
    }

    #[test]
    fn operand_count_is_checked() {
        let e = parse_program("bad", "add r1, r2").unwrap_err();
        assert!(e.message.contains("expects 3"), "{e}");
    }

    #[test]
    fn unresolved_label_is_an_error() {
        let e = parse_program("bad", "j nowhere\nhalt").unwrap_err();
        assert!(e.message.contains("nowhere"), "{e}");
    }

    #[test]
    fn round_trip_through_to_assembly() {
        let original = parse_program(
            "rt",
            "
            .word 5 77
            start:
                li r1, 100
            loop:
                subi r1, r1, 1
                ld r2, 3(r1)
                st r2, (r1)
                bne r1, r0, loop
                call start, r31
                jr r31
                halt
            ",
        )
        .unwrap();
        let text = to_assembly(&original);
        let reparsed = parse_program("rt", &text).unwrap();
        assert_eq!(original, reparsed);
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = parse_program("imm", "li r1, 0x1f\nli r2, -0x10\nli r3, -5\nhalt").unwrap();
        assert_eq!(p.get(0), Some(&Instr::LoadImm { dst: Reg::R1, imm: 31 }));
        assert_eq!(p.get(1), Some(&Instr::LoadImm { dst: Reg::R2, imm: -16 }));
        assert_eq!(p.get(2), Some(&Instr::LoadImm { dst: Reg::R3, imm: -5 }));
    }
}
