//! Operation kinds: ALU operations and branch conditions.

use std::fmt;

/// An arithmetic/logic operation.
///
/// All operations act on 64-bit values with wrapping semantics (overflow
/// never traps), mirroring the behaviour of machine-level integer units.
///
/// # Example
///
/// ```
/// use fetchvp_isa::AluOp;
///
/// assert_eq!(AluOp::Add.apply(3, 4), 7);
/// assert_eq!(AluOp::Sub.apply(3, 4), 3u64.wrapping_sub(4));
/// assert_eq!(AluOp::Shl.apply(1, 70), 1 << 6); // shift amounts are mod 64
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left; the shift amount is taken modulo 64.
    Shl,
    /// Logical shift right; the shift amount is taken modulo 64.
    Shr,
    /// Set-less-than (signed): `1` if `a < b`, else `0`.
    Slt,
}

impl AluOp {
    /// Applies the operation to two operand values.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl(b as u32 & 63),
            AluOp::Shr => a.wrapping_shr(b as u32 & 63),
            AluOp::Slt => ((a as i64) < (b as i64)) as u64,
        }
    }

    /// All ALU operations, useful for exhaustive tests.
    pub const ALL: [AluOp; 9] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Slt,
    ];

    /// The assembly mnemonic for this operation.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Slt => "slt",
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A branch condition comparing two register operands.
///
/// # Example
///
/// ```
/// use fetchvp_isa::Cond;
///
/// assert!(Cond::Lt.holds(1, 2));
/// assert!(Cond::Lt.holds(u64::MAX, 0)); // signed: -1 < 0
/// assert!(Cond::Ltu.holds(0, u64::MAX)); // unsigned
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl Cond {
    /// Evaluates the condition on two operand values.
    pub fn holds(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i64) < (b as i64),
            Cond::Ge => (a as i64) >= (b as i64),
            Cond::Ltu => a < b,
            Cond::Geu => a >= b,
        }
    }

    /// The condition that holds exactly when `self` does not.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Ltu => Cond::Geu,
            Cond::Geu => Cond::Ltu,
        }
    }

    /// All branch conditions, useful for exhaustive tests.
    pub const ALL: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu];

    /// The assembly mnemonic for this condition (used as a `b<cond>` suffix).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
            Cond::Ltu => "ltu",
            Cond::Geu => "geu",
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_wraps() {
        assert_eq!(AluOp::Add.apply(u64::MAX, 1), 0);
    }

    #[test]
    fn sub_wraps() {
        assert_eq!(AluOp::Sub.apply(0, 1), u64::MAX);
    }

    #[test]
    fn mul_wraps() {
        assert_eq!(AluOp::Mul.apply(u64::MAX, 2), u64::MAX.wrapping_mul(2));
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn shifts_mask_amount() {
        assert_eq!(AluOp::Shl.apply(1, 64), 1);
        assert_eq!(AluOp::Shr.apply(1 << 63, 63), 1);
    }

    #[test]
    fn slt_is_signed() {
        assert_eq!(AluOp::Slt.apply(u64::MAX, 0), 1); // -1 < 0
        assert_eq!(AluOp::Slt.apply(0, u64::MAX), 0);
    }

    #[test]
    fn cond_signed_vs_unsigned() {
        assert!(Cond::Lt.holds(u64::MAX, 0));
        assert!(!Cond::Ltu.holds(u64::MAX, 0));
        assert!(Cond::Geu.holds(u64::MAX, 0));
    }

    #[test]
    fn negate_is_involution_and_exclusive() {
        for cond in Cond::ALL {
            assert_eq!(cond.negate().negate(), cond);
            for (a, b) in [(0u64, 0u64), (1, 2), (u64::MAX, 0), (5, 5)] {
                assert_ne!(cond.holds(a, b), cond.negate().holds(a, b));
            }
        }
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in AluOp::ALL {
            assert!(seen.insert(op.mnemonic()));
        }
        seen.clear();
        for cond in Cond::ALL {
            assert!(seen.insert(cond.mnemonic()));
        }
    }
}
