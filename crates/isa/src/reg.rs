//! Architectural registers.

use std::fmt;

/// Number of architectural general-purpose registers.
pub const NUM_REGS: usize = 32;

/// An architectural general-purpose register.
///
/// The machine has [`NUM_REGS`] 64-bit registers. [`Reg::R0`] is hardwired to
/// zero: writes to it are discarded and reads always return `0`, exactly like
/// MIPS/RISC-V `x0`.
///
/// # Example
///
/// ```
/// use fetchvp_isa::Reg;
///
/// let r = Reg::new(5).unwrap();
/// assert_eq!(r, Reg::R5);
/// assert_eq!(r.index(), 5);
/// assert!(Reg::new(32).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register from its index, returning `None` if the index is
    /// out of range.
    pub fn new(index: u8) -> Option<Reg> {
        if (index as usize) < NUM_REGS {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// The register's index in `0..NUM_REGS`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired-zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over all architectural registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_REGS as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

macro_rules! named_regs {
    ($($name:ident = $idx:expr),* $(,)?) => {
        impl Reg {
            $(
                #[doc = concat!("Register `r", stringify!($idx), "`.")]
                pub const $name: Reg = Reg($idx);
            )*
        }
    };
}

named_regs! {
    R0 = 0, R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5, R6 = 6, R7 = 7,
    R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14, R15 = 15,
    R16 = 16, R17 = 17, R18 = 18, R19 = 19, R20 = 20, R21 = 21, R22 = 22, R23 = 23,
    R24 = 24, R25 = 25, R26 = 26, R27 = 27, R28 = 28, R29 = 29, R30 = 30, R31 = 31,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_valid_indices() {
        for i in 0..NUM_REGS as u8 {
            let r = Reg::new(i).expect("index in range");
            assert_eq!(r.index(), i as usize);
        }
    }

    #[test]
    fn new_rejects_out_of_range() {
        assert!(Reg::new(NUM_REGS as u8).is_none());
        assert!(Reg::new(u8::MAX).is_none());
    }

    #[test]
    fn zero_register_is_identified() {
        assert!(Reg::R0.is_zero());
        assert!(!Reg::R1.is_zero());
    }

    #[test]
    fn display_uses_r_prefix() {
        assert_eq!(Reg::R17.to_string(), "r17");
    }

    #[test]
    fn all_enumerates_every_register_once() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), NUM_REGS);
        assert_eq!(regs[0], Reg::R0);
        assert_eq!(regs[31], Reg::R31);
    }

    #[test]
    fn named_constants_match_indices() {
        assert_eq!(Reg::R0.index(), 0);
        assert_eq!(Reg::R15.index(), 15);
        assert_eq!(Reg::R31.index(), 31);
    }
}
