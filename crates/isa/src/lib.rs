//! Instruction-set architecture for the `fetchvp` simulation stack.
//!
//! This crate defines a small, word-oriented RISC instruction set that the
//! rest of the workspace uses to express workloads, execute them functionally
//! and drive the microarchitectural models. The design goals are:
//!
//! * **Simplicity** — 32 general-purpose 64-bit registers, unit-size
//!   instructions addressed by their index in the program, and a handful of
//!   operation classes (ALU, immediate ALU, load/store, control flow).
//! * **Analyzability** — every instruction exposes its register reads and its
//!   register write through [`Instr::srcs`] / [`Instr::dst`], which is what
//!   the dataflow-graph and value-prediction analyses consume.
//! * **Determinism** — programs built with [`ProgramBuilder`] execute
//!   identically on every run, so experiment results are reproducible.
//!
//! # Example
//!
//! Build a loop that sums the first ten integers and inspect it:
//!
//! ```
//! use fetchvp_isa::{AluOp, Cond, ProgramBuilder, Reg};
//!
//! # fn main() -> Result<(), fetchvp_isa::ProgramError> {
//! let mut b = ProgramBuilder::new("sum");
//! let (sum, i, limit) = (Reg::R1, Reg::R2, Reg::R3);
//! b.load_imm(sum, 0);
//! b.load_imm(i, 0);
//! b.load_imm(limit, 10);
//! let head = b.bind_label("head");
//! b.alu(AluOp::Add, sum, sum, i);
//! b.alu_imm(AluOp::Add, i, i, 1);
//! b.branch(Cond::Lt, i, limit, head);
//! b.halt();
//! let program = b.build()?;
//! assert_eq!(program.len(), 7);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod instr;
pub mod op;
pub mod program;
pub mod reg;

pub use asm::{parse_program, to_assembly, AsmError};
pub use instr::Instr;
pub use op::{AluOp, Cond};
pub use program::{Label, Program, ProgramBuilder, ProgramError};
pub use reg::Reg;
