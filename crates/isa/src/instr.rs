//! Instruction definitions.

use std::fmt;

use crate::op::{AluOp, Cond};
use crate::reg::Reg;

/// A machine instruction.
///
/// Instructions are unit-sized and addressed by their index in the program
/// ([`crate::Program`]), so a "PC" throughout the workspace is simply a `u64`
/// program index. Control-flow targets are therefore program indices too.
///
/// # Example
///
/// ```
/// use fetchvp_isa::{AluOp, Instr, Reg};
///
/// let i = Instr::Alu { op: AluOp::Add, dst: Reg::R3, a: Reg::R1, b: Reg::R2 };
/// assert_eq!(i.dst(), Some(Reg::R3));
/// assert_eq!(i.srcs(), [Some(Reg::R1), Some(Reg::R2)]);
/// assert!(!i.is_control());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Register-register ALU operation: `dst = a <op> b`.
    Alu {
        /// The operation to apply.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// First source register.
        a: Reg,
        /// Second source register.
        b: Reg,
    },
    /// Register-immediate ALU operation: `dst = a <op> imm`.
    AluImm {
        /// The operation to apply.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Source register.
        a: Reg,
        /// Immediate operand (sign-extended to 64 bits).
        imm: i64,
    },
    /// Load immediate: `dst = imm`.
    LoadImm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// Memory load: `dst = mem[base + offset]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset added to the base.
        offset: i64,
    },
    /// Memory store: `mem[base + offset] = src`.
    Store {
        /// Register whose value is stored.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset added to the base.
        offset: i64,
    },
    /// Conditional branch: `if a <cond> b goto target`.
    Branch {
        /// The comparison to evaluate.
        cond: Cond,
        /// First comparison operand.
        a: Reg,
        /// Second comparison operand.
        b: Reg,
        /// Branch target (program index).
        target: u64,
    },
    /// Unconditional direct jump.
    Jump {
        /// Jump target (program index).
        target: u64,
    },
    /// Unconditional indirect jump to the address held in `base`.
    JumpInd {
        /// Register holding the target program index.
        base: Reg,
    },
    /// Direct call: `link = pc + 1; goto target`.
    Call {
        /// Call target (program index).
        target: u64,
        /// Register receiving the return address.
        link: Reg,
    },
    /// Stops execution.
    Halt,
    /// No operation.
    Nop,
}

impl Instr {
    /// The register written by this instruction, if any.
    ///
    /// Writes to the hardwired-zero register [`Reg::R0`] are architectural
    /// no-ops and reported as `None`.
    pub fn dst(&self) -> Option<Reg> {
        let d = match *self {
            Instr::Alu { dst, .. }
            | Instr::AluImm { dst, .. }
            | Instr::LoadImm { dst, .. }
            | Instr::Load { dst, .. } => dst,
            Instr::Call { link, .. } => link,
            _ => return None,
        };
        if d.is_zero() {
            None
        } else {
            Some(d)
        }
    }

    /// The (up to two) registers read by this instruction.
    ///
    /// Reads of the hardwired-zero register are still reported; they carry no
    /// true dependence because [`Reg::R0`] has no producer.
    pub fn srcs(&self) -> [Option<Reg>; 2] {
        match *self {
            Instr::Alu { a, b, .. } => [Some(a), Some(b)],
            Instr::AluImm { a, .. } => [Some(a), None],
            Instr::LoadImm { .. } => [None, None],
            Instr::Load { base, .. } => [Some(base), None],
            Instr::Store { src, base, .. } => [Some(src), Some(base)],
            Instr::Branch { a, b, .. } => [Some(a), Some(b)],
            Instr::Jump { .. } => [None, None],
            Instr::JumpInd { base } => [Some(base), None],
            Instr::Call { .. } => [None, None],
            Instr::Halt | Instr::Nop => [None, None],
        }
    }

    /// Whether this instruction can redirect control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Branch { .. }
                | Instr::Jump { .. }
                | Instr::JumpInd { .. }
                | Instr::Call { .. }
                | Instr::Halt
        )
    }

    /// Whether this is a *conditional* branch.
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Instr::Branch { .. })
    }

    /// The statically known control-flow target, if there is one.
    ///
    /// Indirect jumps have no static target; conditional branches report
    /// their taken target.
    pub fn static_target(&self) -> Option<u64> {
        match *self {
            Instr::Branch { target, .. } | Instr::Jump { target } | Instr::Call { target, .. } => {
                Some(target)
            }
            _ => None,
        }
    }

    /// Whether this instruction produces a register value that a value
    /// predictor would attempt to predict.
    pub fn produces_value(&self) -> bool {
        self.dst().is_some()
    }

    /// Whether this instruction accesses memory.
    pub fn is_mem(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Store { .. })
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Alu { op, dst, a, b } => write!(f, "{op} {dst}, {a}, {b}"),
            Instr::AluImm { op, dst, a, imm } => write!(f, "{op}i {dst}, {a}, {imm}"),
            Instr::LoadImm { dst, imm } => write!(f, "li {dst}, {imm}"),
            Instr::Load { dst, base, offset } => write!(f, "ld {dst}, {offset}({base})"),
            Instr::Store { src, base, offset } => write!(f, "st {src}, {offset}({base})"),
            Instr::Branch { cond, a, b, target } => write!(f, "b{cond} {a}, {b}, @{target}"),
            Instr::Jump { target } => write!(f, "j @{target}"),
            Instr::JumpInd { base } => write!(f, "jr {base}"),
            Instr::Call { target, link } => write!(f, "call @{target}, {link}"),
            Instr::Halt => f.write_str("halt"),
            Instr::Nop => f.write_str("nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dst_of_alu_is_reported() {
        let i = Instr::Alu { op: AluOp::Add, dst: Reg::R4, a: Reg::R1, b: Reg::R2 };
        assert_eq!(i.dst(), Some(Reg::R4));
    }

    #[test]
    fn write_to_zero_register_has_no_dst() {
        let i = Instr::AluImm { op: AluOp::Add, dst: Reg::R0, a: Reg::R1, imm: 1 };
        assert_eq!(i.dst(), None);
        assert!(!i.produces_value());
    }

    #[test]
    fn store_has_no_dst_but_two_srcs() {
        let i = Instr::Store { src: Reg::R2, base: Reg::R3, offset: 8 };
        assert_eq!(i.dst(), None);
        assert_eq!(i.srcs(), [Some(Reg::R2), Some(Reg::R3)]);
    }

    #[test]
    fn call_writes_link_register() {
        let i = Instr::Call { target: 10, link: Reg::R31 };
        assert_eq!(i.dst(), Some(Reg::R31));
        assert_eq!(i.static_target(), Some(10));
        assert!(i.is_control());
    }

    #[test]
    fn control_classification() {
        assert!(Instr::Jump { target: 0 }.is_control());
        assert!(Instr::JumpInd { base: Reg::R1 }.is_control());
        assert!(Instr::Halt.is_control());
        assert!(!Instr::Nop.is_control());
        let b = Instr::Branch { cond: Cond::Eq, a: Reg::R1, b: Reg::R2, target: 3 };
        assert!(b.is_cond_branch() && b.is_control());
    }

    #[test]
    fn indirect_jump_has_no_static_target() {
        assert_eq!(Instr::JumpInd { base: Reg::R1 }.static_target(), None);
    }

    #[test]
    fn mem_classification() {
        assert!(Instr::Load { dst: Reg::R1, base: Reg::R2, offset: 0 }.is_mem());
        assert!(Instr::Store { src: Reg::R1, base: Reg::R2, offset: 0 }.is_mem());
        assert!(!Instr::Nop.is_mem());
    }

    #[test]
    fn display_formats() {
        let i = Instr::Branch { cond: Cond::Ne, a: Reg::R1, b: Reg::R0, target: 7 };
        assert_eq!(i.to_string(), "bne r1, r0, @7");
        let i = Instr::Load { dst: Reg::R2, base: Reg::R3, offset: -8 };
        assert_eq!(i.to_string(), "ld r2, -8(r3)");
    }
}
