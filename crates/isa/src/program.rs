//! Programs and the assembler-style [`ProgramBuilder`].

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::instr::Instr;
use crate::op::{AluOp, Cond};
use crate::reg::Reg;

/// A forward-declarable position in a program under construction.
///
/// Labels are created by [`ProgramBuilder::label`] (or bound immediately by
/// [`ProgramBuilder::bind_label`]) and used as control-flow targets before or
/// after the position they name is known.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// An assembled, immutable program.
///
/// A program is a sequence of [`Instr`]s addressed by index ("PC") plus an
/// optional initial memory image. Programs are produced by
/// [`ProgramBuilder::build`], which guarantees that every control-flow target
/// points at a real instruction.
///
/// # Example
///
/// ```
/// use fetchvp_isa::{ProgramBuilder, Reg};
///
/// # fn main() -> Result<(), fetchvp_isa::ProgramError> {
/// let mut b = ProgramBuilder::new("tiny");
/// b.load_imm(Reg::R1, 42);
/// b.halt();
/// let p = b.build()?;
/// assert_eq!(p.name(), "tiny");
/// assert_eq!(p.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    instrs: Vec<Instr>,
    data: BTreeMap<u64, u64>,
}

impl Program {
    /// The program's name (used in experiment reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction at program index `pc`, if in range.
    pub fn get(&self, pc: u64) -> Option<&Instr> {
        usize::try_from(pc).ok().and_then(|i| self.instrs.get(i))
    }

    /// All instructions in program order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// The initial memory image: `(word address, value)` pairs.
    pub fn data(&self) -> &BTreeMap<u64, u64> {
        &self.data
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; program `{}` ({} instructions)", self.name, self.instrs.len())?;
        for (pc, instr) in self.instrs.iter().enumerate() {
            writeln!(f, "{pc:6}: {instr}")?;
        }
        Ok(())
    }
}

/// An error produced while assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A label was used as a target but never bound to a position.
    UnboundLabel {
        /// The label's name.
        name: String,
    },
    /// A label was bound twice.
    DuplicateBind {
        /// The label's name.
        name: String,
    },
    /// The program contains no instructions.
    Empty,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnboundLabel { name } => {
                write!(f, "label `{name}` is used but never bound")
            }
            ProgramError::DuplicateBind { name } => write!(f, "label `{name}` is bound twice"),
            ProgramError::Empty => f.write_str("program has no instructions"),
        }
    }
}

impl Error for ProgramError {}

/// Incrementally builds a [`Program`], resolving labels at [`build`] time.
///
/// The builder offers one method per instruction form plus label management
/// and initial-memory population. Branch/jump/call targets are [`Label`]s;
/// they may be bound before or after use.
///
/// [`build`]: ProgramBuilder::build
///
/// # Example
///
/// ```
/// use fetchvp_isa::{AluOp, Cond, ProgramBuilder, Reg};
///
/// # fn main() -> Result<(), fetchvp_isa::ProgramError> {
/// let mut b = ProgramBuilder::new("countdown");
/// b.load_imm(Reg::R1, 5);
/// let head = b.bind_label("head");
/// b.alu_imm(AluOp::Sub, Reg::R1, Reg::R1, 1);
/// b.branch(Cond::Ne, Reg::R1, Reg::R0, head);
/// b.halt();
/// let p = b.build()?;
/// assert_eq!(p.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    instrs: Vec<Instr>,
    data: BTreeMap<u64, u64>,
    label_names: Vec<String>,
    label_pos: Vec<Option<u64>>,
    /// Instructions whose target field holds a label id awaiting patching.
    patches: Vec<(usize, Label)>,
}

impl ProgramBuilder {
    /// Creates an empty builder for a program called `name`.
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            instrs: Vec::new(),
            data: BTreeMap::new(),
            label_names: Vec::new(),
            label_pos: Vec::new(),
            patches: Vec::new(),
        }
    }

    /// Declares a label without binding it to a position yet.
    pub fn label(&mut self, name: impl Into<String>) -> Label {
        let id = self.label_names.len();
        self.label_names.push(name.into());
        self.label_pos.push(None);
        Label(id)
    }

    /// Binds a previously declared label to the *next* instruction position.
    ///
    /// # Panics
    ///
    /// Panics if the label was created by a different builder.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        assert!(label.0 < self.label_pos.len(), "label from another builder");
        // A duplicate bind is recorded and reported at build() time so that
        // workload code does not need to handle it inline.
        if self.label_pos[label.0].is_some() {
            self.label_pos[label.0] = Some(u64::MAX); // poisoned; detected in build
            self.patches.push((usize::MAX, label));
        } else {
            self.label_pos[label.0] = Some(self.instrs.len() as u64);
        }
        self
    }

    /// Declares a label and binds it to the next instruction position.
    pub fn bind_label(&mut self, name: impl Into<String>) -> Label {
        let l = self.label(name);
        self.bind(l);
        l
    }

    /// The program index the next pushed instruction will occupy.
    pub fn here(&self) -> u64 {
        self.instrs.len() as u64
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, instr: Instr) -> &mut Self {
        self.instrs.push(instr);
        self
    }

    /// Appends `dst = a <op> b`.
    pub fn alu(&mut self, op: AluOp, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.push(Instr::Alu { op, dst, a, b })
    }

    /// Appends `dst = a <op> imm`.
    pub fn alu_imm(&mut self, op: AluOp, dst: Reg, a: Reg, imm: i64) -> &mut Self {
        self.push(Instr::AluImm { op, dst, a, imm })
    }

    /// Appends `dst = imm`.
    pub fn load_imm(&mut self, dst: Reg, imm: i64) -> &mut Self {
        self.push(Instr::LoadImm { dst, imm })
    }

    /// Appends `dst = mem[base + offset]`.
    pub fn load(&mut self, dst: Reg, base: Reg, offset: i64) -> &mut Self {
        self.push(Instr::Load { dst, base, offset })
    }

    /// Appends `mem[base + offset] = src`.
    pub fn store(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Self {
        self.push(Instr::Store { src, base, offset })
    }

    /// Appends a conditional branch to `target`.
    pub fn branch(&mut self, cond: Cond, a: Reg, b: Reg, target: Label) -> &mut Self {
        let idx = self.instrs.len();
        self.patches.push((idx, target));
        self.push(Instr::Branch { cond, a, b, target: 0 })
    }

    /// Appends an unconditional jump to `target`.
    pub fn jump(&mut self, target: Label) -> &mut Self {
        let idx = self.instrs.len();
        self.patches.push((idx, target));
        self.push(Instr::Jump { target: 0 })
    }

    /// Appends an indirect jump through `base`.
    pub fn jump_ind(&mut self, base: Reg) -> &mut Self {
        self.push(Instr::JumpInd { base })
    }

    /// Appends a call to `target`, writing the return address into `link`.
    pub fn call(&mut self, target: Label, link: Reg) -> &mut Self {
        let idx = self.instrs.len();
        self.patches.push((idx, target));
        self.push(Instr::Call { target: 0, link })
    }

    /// Appends a `halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Instr::Halt)
    }

    /// Appends a `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instr::Nop)
    }

    /// Appends an unconditional jump to the immediately following
    /// instruction — a *layout break*.
    ///
    /// Compiled code transfers control away from the fall-through path
    /// every few instructions (calls, loop structure, code placed in other
    /// sections). Workloads use layout breaks to give their dynamic
    /// instruction stream a realistic taken-branch density without
    /// affecting the dataflow, which is what taken-branch-limited fetch
    /// mechanisms are sensitive to.
    pub fn layout_break(&mut self) -> &mut Self {
        let target = self.here() + 1;
        self.push(Instr::Jump { target })
    }

    /// Sets one word of the initial memory image.
    pub fn data_word(&mut self, addr: u64, value: u64) -> &mut Self {
        self.data.insert(addr, value);
        self
    }

    /// Resolves all labels and produces the immutable [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::Empty`] for a program with no instructions,
    /// [`ProgramError::UnboundLabel`] if a used label was never bound and
    /// [`ProgramError::DuplicateBind`] if a label was bound more than once.
    pub fn build(mut self) -> Result<Program, ProgramError> {
        if self.instrs.is_empty() {
            return Err(ProgramError::Empty);
        }
        for &(idx, label) in &self.patches {
            if idx == usize::MAX {
                return Err(ProgramError::DuplicateBind {
                    name: self.label_names[label.0].clone(),
                });
            }
            let pos = match self.label_pos[label.0] {
                Some(p) if p != u64::MAX => p,
                Some(_) => {
                    return Err(ProgramError::DuplicateBind {
                        name: self.label_names[label.0].clone(),
                    })
                }
                None => {
                    return Err(ProgramError::UnboundLabel {
                        name: self.label_names[label.0].clone(),
                    })
                }
            };
            match &mut self.instrs[idx] {
                Instr::Branch { target, .. }
                | Instr::Jump { target }
                | Instr::Call { target, .. } => {
                    *target = pos;
                }
                other => unreachable!("patch recorded for non-control instruction {other}"),
            }
        }
        Ok(Program { name: self.name, instrs: self.instrs, data: self.data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_label_is_patched() {
        let mut b = ProgramBuilder::new("fwd");
        let end = b.label("end");
        b.jump(end);
        b.nop();
        b.bind(end);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.get(0), Some(&Instr::Jump { target: 2 }));
    }

    #[test]
    fn backward_label_is_patched() {
        let mut b = ProgramBuilder::new("bwd");
        let head = b.bind_label("head");
        b.nop();
        b.branch(Cond::Eq, Reg::R0, Reg::R0, head);
        let p = b.build().unwrap();
        match p.get(1).unwrap() {
            Instr::Branch { target, .. } => assert_eq!(*target, 0),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new("bad");
        let l = b.label("nowhere");
        b.jump(l);
        assert_eq!(b.build(), Err(ProgramError::UnboundLabel { name: "nowhere".into() }));
    }

    #[test]
    fn duplicate_bind_is_an_error() {
        let mut b = ProgramBuilder::new("dup");
        let l = b.bind_label("twice");
        b.nop();
        b.bind(l);
        b.jump(l);
        assert_eq!(b.build(), Err(ProgramError::DuplicateBind { name: "twice".into() }));
    }

    #[test]
    fn empty_program_is_an_error() {
        assert_eq!(ProgramBuilder::new("empty").build(), Err(ProgramError::Empty));
    }

    #[test]
    fn data_words_are_recorded() {
        let mut b = ProgramBuilder::new("data");
        b.data_word(0x100, 7).data_word(0x108, 9);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.data().get(&0x100), Some(&7));
        assert_eq!(p.data().get(&0x108), Some(&9));
    }

    #[test]
    fn call_target_is_patched() {
        let mut b = ProgramBuilder::new("call");
        let f = b.label("f");
        b.call(f, Reg::R31);
        b.halt();
        b.bind(f);
        b.jump_ind(Reg::R31);
        let p = b.build().unwrap();
        assert_eq!(p.get(0), Some(&Instr::Call { target: 2, link: Reg::R31 }));
    }

    #[test]
    fn display_lists_instructions() {
        let mut b = ProgramBuilder::new("show");
        b.load_imm(Reg::R1, 3);
        b.halt();
        let p = b.build().unwrap();
        let text = p.to_string();
        assert!(text.contains("program `show`"));
        assert!(text.contains("li r1, 3"));
        assert!(text.contains("halt"));
    }

    #[test]
    fn here_tracks_position() {
        let mut b = ProgramBuilder::new("pos");
        assert_eq!(b.here(), 0);
        b.nop();
        assert_eq!(b.here(), 1);
    }
}
