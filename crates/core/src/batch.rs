//! The batch simulation kernel: one pass over a trace advances many
//! machine configurations in lockstep.
//!
//! Every figure and ablation in the paper is a cartesian product of
//! benchmarks × machine configurations, and before this module each cell
//! re-walked its trace from scratch. [`run_batch`] instead walks the
//! shared [`Trace`] **once** per batch, stepping each configuration's
//! `Pipeline` at every trace slot, so the structure-of-arrays pc/result
//! columns are read once per batch and stay hot in cache while the (small)
//! predictor tables and scheduler state of each config are advanced.
//!
//! The serial machines are thin wrappers over the same stepper:
//! [`IdealMachine::run`](crate::IdealMachine::run) and
//! [`RealisticMachine::run_traced`](crate::RealisticMachine::run_traced)
//! construct a single `Pipeline` and drive it to completion, which is
//! what makes batch-vs-serial byte-identity a structural property rather
//! than a testing aspiration (the differential test in
//! `fetchvp-experiments` checks it anyway).
//!
//! # Example
//!
//! ```
//! use fetchvp_core::{run_batch, IdealConfig, MachineConfig, VpConfig};
//! use fetchvp_isa::{AluOp, Cond, ProgramBuilder, Reg};
//! use fetchvp_trace::trace_program;
//!
//! # fn main() -> Result<(), fetchvp_isa::ProgramError> {
//! let mut b = ProgramBuilder::new("chain");
//! b.load_imm(Reg::R1, 0);
//! b.load_imm(Reg::R2, 1_000);
//! let head = b.bind_label("head");
//! b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 3);
//! b.branch(Cond::Lt, Reg::R1, Reg::R2, head);
//! b.halt();
//! let trace = trace_program(&b.build()?, 10_000);
//!
//! // One walk of the trace, two machines.
//! let configs = [
//!     MachineConfig::Ideal(IdealConfig { fetch_rate: 16, ..IdealConfig::default() }),
//!     MachineConfig::Ideal(IdealConfig {
//!         fetch_rate: 16,
//!         vp: VpConfig::stride_infinite(),
//!         ..IdealConfig::default()
//!     }),
//! ];
//! let results = run_batch(&trace, &configs);
//! assert!(results[1].ipc() >= results[0].ipc());
//! # Ok(())
//! # }
//! ```

use fetchvp_fetch::FetchEngine;
use fetchvp_predictor::{BankedFrontEnd, SlotGrant, ValuePredictor};
use fetchvp_trace::{Trace, TraceView};
use fetchvp_tracing::{Event, EventSink, Lane};

use crate::ideal::{disposition_for, IdealConfig};
use crate::realistic::RealisticConfig;
use crate::sched::{Scheduler, VpDisposition};
use crate::vp::VpConfig;
use crate::MachineResult;

/// One machine configuration a [`run_batch`] call can advance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineConfig {
    /// The §3 ideal (implementation-independent) machine.
    Ideal(IdealConfig),
    /// The §5 realistic machine.
    Realistic(RealisticConfig),
}

impl From<IdealConfig> for MachineConfig {
    fn from(config: IdealConfig) -> MachineConfig {
        MachineConfig::Ideal(config)
    }
}

impl From<RealisticConfig> for MachineConfig {
    fn from(config: RealisticConfig) -> MachineConfig {
        MachineConfig::Realistic(config)
    }
}

/// The value-prediction path of one pipeline: an optional real predictor,
/// optionally behind the §4 banked front-end.
enum ValuePath {
    Banked(BankedFrontEnd<Box<dyn ValuePredictor>>),
    Plain(Option<Box<dyn ValuePredictor>>),
}

/// The fetch front-end state of one pipeline. The ideal machine's fetch is
/// a pure function of the slot index; the realistic machine carries the
/// fetch engine plus the in-flight group's bookkeeping between steps.
enum Front {
    Ideal {
        fetch_rate: usize,
    },
    Realistic {
        engine: Box<dyn FetchEngine>,
        issue_width: usize,
        branch_penalty: u64,
        /// Cycle the current fetch group was fetched in.
        fetch_cycle: u64,
        /// Trace index of the current group's first instruction.
        group_start: usize,
        /// Trace index one past the current group's last instruction; a
        /// step at this index fetches the next group.
        group_end: usize,
        /// Index within the group of a mispredicted control transfer.
        mispredict: Option<usize>,
        /// Cycle fetch may resume after the group's misprediction.
        resume_after: Option<u64>,
        /// Per-group scratch, allocated once and reused every group.
        dispositions: Vec<VpDisposition>,
        pcs: Vec<u64>,
        /// Bank conflicts of the current group (tracing runs only).
        conflicts: Vec<(u64, u32)>,
    },
}

/// One machine configuration's complete execution state, advanced one
/// trace slot at a time so many pipelines can share a single trace walk.
pub(crate) struct Pipeline {
    sched: Scheduler,
    vp_mode: VpConfig,
    value_path: ValuePath,
    front: Front,
}

impl Pipeline {
    /// Builds the execution state for one configuration.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as the corresponding machine
    /// constructor: a zero fetch rate, window or issue width.
    pub(crate) fn new(config: &MachineConfig) -> Pipeline {
        match *config {
            MachineConfig::Ideal(cfg) => {
                assert!(cfg.fetch_rate > 0, "fetch rate must be positive");
                assert!(cfg.window > 0, "window must be positive");
                let mut sched = Scheduler::new(cfg.window, Some(cfg.fetch_rate));
                sched.set_exec_width(cfg.exec_units);
                sched.set_memory_deps(cfg.memory_deps);
                let vp = match cfg.vp {
                    VpConfig::Predictor(kind) => Some(kind.build()),
                    _ => None,
                };
                Pipeline {
                    sched,
                    vp_mode: cfg.vp,
                    value_path: ValuePath::Plain(vp),
                    front: Front::Ideal { fetch_rate: cfg.fetch_rate },
                }
            }
            MachineConfig::Realistic(cfg) => {
                assert!(cfg.window > 0, "window must be positive");
                assert!(cfg.issue_width > 0, "issue width must be positive");
                let mut sched = Scheduler::with_value_penalty(
                    cfg.window,
                    Some(cfg.issue_width),
                    cfg.value_penalty,
                );
                sched.set_exec_width(cfg.exec_units);
                sched.set_memory_deps(cfg.memory_deps);
                let predictor = match cfg.vp {
                    VpConfig::Predictor(kind) => Some(kind.build()),
                    _ => None,
                };
                let value_path = match (predictor, cfg.banked) {
                    (Some(p), Some(bcfg)) => ValuePath::Banked(BankedFrontEnd::new(bcfg, p)),
                    (p, _) => ValuePath::Plain(p),
                };
                Pipeline {
                    sched,
                    vp_mode: cfg.vp,
                    value_path,
                    front: Front::Realistic {
                        engine: cfg.front_end.build(),
                        issue_width: cfg.issue_width,
                        branch_penalty: cfg.branch_penalty,
                        fetch_cycle: 0,
                        group_start: 0,
                        group_end: 0,
                        mispredict: None,
                        resume_after: None,
                        dispositions: Vec::new(),
                        pcs: Vec::new(),
                        conflicts: Vec::new(),
                    },
                }
            }
        }
    }

    /// Advances this pipeline over the trace slots `start..end`. Callers
    /// must cover every slot of `view` exactly once, in order (any block
    /// partitioning), before calling [`Pipeline::finish`]. The sink is
    /// passed as `&mut Option<…>` so a tracing caller can lend the same
    /// sink to every block.
    ///
    /// The front-end and value-path variants are resolved once per block,
    /// not per slot — at one trace slot per call the dispatch overhead
    /// dominates the work, and the batch loop tiles thousands of slots per
    /// call precisely so it doesn't.
    pub(crate) fn run_block(
        &mut self,
        view: TraceView<'_>,
        start: usize,
        end: usize,
        sink: &mut Option<&mut dyn EventSink>,
    ) {
        let Pipeline { sched, vp_mode, value_path, front } = self;
        match front {
            Front::Ideal { fetch_rate } => {
                let ValuePath::Plain(predictor) = value_path else {
                    unreachable!("the ideal machine has no banked path")
                };
                for rec in view.slots_in(start..end) {
                    let fetch_cycle = (rec.index() / *fetch_rate) as u64;
                    let disposition = disposition_for(rec, vp_mode, predictor);
                    sched.schedule(rec, fetch_cycle, disposition);
                }
            }
            Front::Realistic {
                engine,
                issue_width,
                branch_penalty,
                fetch_cycle,
                group_start,
                group_end,
                mispredict,
                resume_after,
                dispositions,
                pcs,
                conflicts,
            } => {
                // Group-at-a-time, clamped to the block: a group that spans
                // the block boundary is resumed by the next call, its
                // bookkeeping deferred until its last slot is scheduled.
                let mut i = start;
                while i < end {
                    if i == *group_end {
                        let group = engine.fetch(view, i, *issue_width);
                        assert!(group.len > 0, "fetch engine must make progress");
                        *group_start = i;
                        *group_end = i + group.len;
                        *mispredict = group.mispredict;
                        *resume_after = None;
                        let group_range = i..*group_end;

                        // Value predictions for the whole fetch group. With
                        // the banked front-end the group's PCs contend for
                        // table banks; otherwise each instruction performs
                        // a private lookup.
                        dispositions.clear();
                        match value_path {
                            ValuePath::Banked(fe) => {
                                pcs.clear();
                                pcs.extend(
                                    view.slots_in(group_range.clone())
                                        .filter(|r| r.produces_value())
                                        .map(|r| r.pc()),
                                );
                                let outcomes = fe.predict_group(pcs);
                                let mut it = outcomes.into_iter();
                                let tracing = sink.is_some();
                                dispositions.extend(view.slots_in(group_range).map(|rec| {
                                    if !rec.produces_value() {
                                        return VpDisposition::None;
                                    }
                                    let slot = it.next().expect("one outcome per value producer");
                                    if tracing && slot.grant == SlotGrant::DeniedConflict {
                                        conflicts.push((rec.pc(), slot.bank));
                                    }
                                    fe.commit(rec.pc(), rec.result(), slot.prediction);
                                    match slot.prediction {
                                        None => VpDisposition::None,
                                        Some(v) if v == rec.result() => VpDisposition::Correct,
                                        Some(_) => VpDisposition::Wrong,
                                    }
                                }));
                            }
                            ValuePath::Plain(predictor) => {
                                dispositions.extend(
                                    view.slots_in(group_range)
                                        .map(|rec| disposition_for(rec, vp_mode, predictor)),
                                );
                            }
                        }
                    }

                    let stop = (*group_end).min(end);
                    let base = *group_start;
                    for (rec, j) in view.slots_in(i..stop).zip(i..stop) {
                        let k = j - base;
                        let t = sched.schedule(rec, *fetch_cycle, dispositions[k]);
                        if let Some(sink) = sink.as_deref_mut() {
                            let (seq, pc) = (rec.seq(), rec.pc());
                            sink.record(Event::span(
                                Lane::Fetch,
                                *fetch_cycle,
                                1,
                                "instr",
                                seq,
                                pc,
                            ));
                            sink.record(Event::span(
                                Lane::Dispatch,
                                t.dispatch,
                                1,
                                "instr",
                                seq,
                                pc,
                            ));
                            sink.record(Event::span(Lane::Issue, t.execute, 1, "instr", seq, pc));
                            sink.record(Event::span(
                                Lane::Writeback,
                                t.complete,
                                1,
                                "instr",
                                seq,
                                pc,
                            ));
                            match dispositions[k] {
                                VpDisposition::Correct => sink.record(Event::instant(
                                    Lane::Predict,
                                    *fetch_cycle,
                                    "vp_correct",
                                    seq,
                                    pc,
                                )),
                                VpDisposition::Wrong => sink.record(Event::instant(
                                    Lane::Predict,
                                    *fetch_cycle,
                                    "vp_wrong",
                                    seq,
                                    pc,
                                )),
                                VpDisposition::None => {}
                            }
                        }
                        if *mispredict == Some(k) {
                            *resume_after = Some(t.execute + *branch_penalty);
                        }
                    }

                    if stop == *group_end {
                        if let Some(sink) = sink.as_deref_mut() {
                            for &(pc, bank) in conflicts.iter() {
                                sink.record(Event::instant(
                                    Lane::BankConflict,
                                    *fetch_cycle,
                                    "bank_conflict",
                                    bank as u64,
                                    pc,
                                ));
                            }
                            conflicts.clear();
                        }
                        *fetch_cycle = match *resume_after {
                            Some(resume) => resume.max(*fetch_cycle + 1),
                            None => *fetch_cycle + 1,
                        };
                    }
                    i = stop;
                }
            }
        }
    }

    /// Retires the pipeline and assembles its [`MachineResult`].
    pub(crate) fn finish(mut self) -> MachineResult {
        self.sched.finish();
        let stats = self.sched.stats();
        let (vp_stats, banked_stats) = match self.value_path {
            ValuePath::Banked(fe) => (Some(fe.predictor_stats()), Some(fe.banked_stats())),
            ValuePath::Plain(Some(p)) => (Some(p.stats()), None),
            ValuePath::Plain(None) => (None, None),
        };
        let (bpred_stats, trace_cache_stats, bac_stats) = match &self.front {
            Front::Ideal { .. } => (None, None, None),
            Front::Realistic { engine, .. } => {
                (Some(engine.bpred_stats()), engine.trace_cache_stats(), engine.bac_stats())
            }
        };
        MachineResult {
            instructions: stats.instructions,
            cycles: stats.last_complete,
            vp_stats,
            deps: stats.deps,
            usefulness: self.sched.usefulness().clone(),
            value_replays: stats.value_replays,
            bpred_stats,
            trace_cache_stats,
            banked_stats,
            bac_stats,
            cycle_breakdown: None,
        }
    }
}

/// Slots each pipeline advances before the batch loop moves to the next
/// pipeline. Tiling trades the two locality costs against each other: a
/// block of trace columns is read once and stays cache-hot while every
/// pipeline consumes it, and each pipeline's scheduler and predictor state
/// stays hot for a whole block instead of being evicted between
/// single-slot turns. Purely a performance knob — results are independent
/// of it, because pipelines share nothing.
const BATCH_BLOCK_SLOTS: usize = 4096;

/// A passive observer of batch progress: called once per
/// `BATCH_BLOCK_SLOTS` block with the logical trace index the batch has
/// advanced past (so values are strictly increasing within one run and
/// the last call reports the fed length).
///
/// The sink must never influence results — it sees only how far the walk
/// has come, not any pipeline state — and it must be cheap: it is invoked
/// from the hot loop, once per ~4096 slots. When no sink is attached the
/// kernel pays exactly one `Option` branch per block (the bench gate
/// holds `run_batch` to the no-sink baseline).
pub trait ProgressSink: Sync {
    /// `retired` logical trace slots have been fully stepped by every
    /// pipeline in the batch.
    fn retired(&self, retired: u64);
}

/// Runs every configuration in `configs` over `trace` with a **single**
/// pass over the trace, advancing all pipelines in lockstep per block of
/// `BATCH_BLOCK_SLOTS` slots.
///
/// Results come back in `configs` order and are byte-identical to running
/// each configuration alone through [`IdealMachine::run`] or
/// [`RealisticMachine::run`] — the machines are thin wrappers over the
/// same per-slot stepper, and no state is shared between pipelines.
///
/// Callers batching very many configurations should chunk them (the
/// experiments crate uses chunks of 8) so each batch's working set stays
/// cache-resident; correctness does not depend on the chunk size.
///
/// [`IdealMachine::run`]: crate::IdealMachine::run
/// [`RealisticMachine::run`]: crate::RealisticMachine::run
///
/// # Panics
///
/// Panics if any configuration is invalid (zero fetch rate, window or
/// issue width), exactly as the machine constructors do.
pub fn run_batch(trace: &Trace, configs: &[MachineConfig]) -> Vec<MachineResult> {
    let view = trace.view();
    let mut runner = BatchRunner::new(configs);
    runner.feed(view, 0, view.len());
    runner.finish()
}

/// A resumable [`run_batch`]: the same lockstep pipelines, but fed the
/// trace in caller-chosen contiguous segments instead of one call. This is
/// the out-of-core replay seam — `fetchvp-tracestore` decodes an on-disk
/// trace one chunk at a time into a re-based window buffer and feeds each
/// chunk here, and the results are byte-identical to [`run_batch`] over
/// the fully materialized trace.
///
/// # Window requirements
///
/// Each [`feed`](BatchRunner::feed) call advances every pipeline over the
/// logical slots `start..end` of `view`. Calls must be contiguous (each
/// `start` equals the previous `end`, beginning at 0). Because realistic
/// front-ends fetch up to [`lookahead`](BatchRunner::lookahead) slots past
/// the instruction being stepped, `view` must extend to at least
/// `min(end + lookahead, total)` where `total` is the full trace length —
/// i.e. either reach the true end of the trace or overshoot `end` by the
/// lookahead. A whole-trace view (as in [`run_batch`]) always qualifies.
///
/// # Example
///
/// ```
/// use fetchvp_core::{run_batch, BatchRunner, IdealConfig, MachineConfig};
/// use fetchvp_isa::{AluOp, ProgramBuilder, Reg};
/// use fetchvp_trace::trace_program;
///
/// # fn main() -> Result<(), fetchvp_isa::ProgramError> {
/// let mut b = ProgramBuilder::new("p");
/// let head = b.bind_label("head");
/// b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 1);
/// b.jump(head);
/// let trace = trace_program(&b.build()?, 10_000);
///
/// let configs = [MachineConfig::Ideal(IdealConfig::default())];
/// let mut runner = BatchRunner::new(&configs);
/// runner.feed(trace.view(), 0, 6_000);
/// runner.feed(trace.view(), 6_000, 10_000);
/// assert_eq!(runner.finish(), run_batch(&trace, &configs));
/// # Ok(())
/// # }
/// ```
pub struct BatchRunner {
    pipes: Vec<Pipeline>,
    lookahead: usize,
    next: usize,
}

impl BatchRunner {
    /// Builds one pipeline per configuration.
    ///
    /// # Panics
    ///
    /// Panics if any configuration is invalid, exactly as [`run_batch`].
    pub fn new(configs: &[MachineConfig]) -> BatchRunner {
        let lookahead = configs
            .iter()
            .map(|c| match c {
                MachineConfig::Ideal(_) => 0,
                MachineConfig::Realistic(cfg) => cfg.issue_width,
            })
            .max()
            .unwrap_or(0);
        BatchRunner { pipes: configs.iter().map(Pipeline::new).collect(), lookahead, next: 0 }
    }

    /// The furthest any pipeline's front-end may read past the instruction
    /// currently being stepped (the widest realistic issue width — every
    /// fetch engine clamps its group to the issue width it is handed, and
    /// the ideal front-end never looks ahead at all).
    pub fn lookahead(&self) -> usize {
        self.lookahead
    }

    /// The logical index the next [`feed`](BatchRunner::feed) must start at.
    pub fn position(&self) -> usize {
        self.next
    }

    /// Advances every pipeline over the logical slots `start..end`, tiled
    /// into the same cache-sized blocks as [`run_batch`] (block boundaries
    /// are a pure performance knob; results are independent of them).
    ///
    /// # Panics
    ///
    /// Panics if `start` is not the previous call's `end`, if the range is
    /// inverted, or if `view` does not cover it.
    pub fn feed(&mut self, view: TraceView<'_>, start: usize, end: usize) {
        self.feed_with_progress(view, start, end, None);
    }

    /// [`feed`](BatchRunner::feed) with an optional [`ProgressSink`]
    /// notified once per block. `None` is exactly `feed` — results are
    /// byte-identical either way, the sink only observes how far the walk
    /// has come.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`feed`](BatchRunner::feed).
    pub fn feed_with_progress(
        &mut self,
        view: TraceView<'_>,
        start: usize,
        end: usize,
        progress: Option<&dyn ProgressSink>,
    ) {
        assert_eq!(start, self.next, "feed must continue where the previous one stopped");
        assert!(start <= end, "inverted feed range {start}..{end}");
        assert!(end <= view.len(), "feed range end {end} beyond view length {}", view.len());
        let mut no_sink: Option<&mut dyn EventSink> = None;
        for block_start in (start..end).step_by(BATCH_BLOCK_SLOTS) {
            let block_end = (block_start + BATCH_BLOCK_SLOTS).min(end);
            for pipe in &mut self.pipes {
                pipe.run_block(view, block_start, block_end, &mut no_sink);
            }
            if let Some(sink) = progress {
                sink.retired(block_end as u64);
            }
        }
        self.next = end;
    }

    /// Retires every pipeline and returns the results in `configs` order.
    pub fn finish(self) -> Vec<MachineResult> {
        self.pipes.into_iter().map(Pipeline::finish).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::realistic::{BtbKind, FrontEnd};
    use crate::{IdealMachine, RealisticMachine};
    use fetchvp_fetch::TraceCacheConfig;
    use fetchvp_isa::{AluOp, Cond, ProgramBuilder, Reg};
    use fetchvp_predictor::BankedConfig;
    use fetchvp_trace::trace_program;

    fn chain_trace(iters: i64) -> Trace {
        let mut b = ProgramBuilder::new("chain");
        b.load_imm(Reg::R1, 0);
        b.load_imm(Reg::R2, iters);
        let head = b.bind_label("head");
        b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 7);
        b.alu_imm(AluOp::Sub, Reg::R2, Reg::R2, 1);
        b.branch(Cond::Ne, Reg::R2, Reg::R0, head);
        b.halt();
        trace_program(&b.build().unwrap(), u64::MAX)
    }

    fn mixed_configs() -> Vec<MachineConfig> {
        let conv = FrontEnd::Conventional { width: 40, max_taken: Some(4), btb: BtbKind::Perfect };
        let tc = FrontEnd::TraceCache {
            config: TraceCacheConfig::paper(),
            btb: BtbKind::two_level_paper(),
        };
        vec![
            MachineConfig::Ideal(IdealConfig { fetch_rate: 16, ..IdealConfig::default() }),
            MachineConfig::Ideal(IdealConfig {
                fetch_rate: 16,
                vp: VpConfig::stride_infinite(),
                ..IdealConfig::default()
            }),
            MachineConfig::Realistic(RealisticConfig::paper(conv, VpConfig::None)),
            MachineConfig::Realistic(RealisticConfig::paper(tc, VpConfig::stride_infinite())),
            MachineConfig::Realistic(
                RealisticConfig::paper(tc, VpConfig::stride_infinite())
                    .with_banked(BankedConfig::new(2)),
            ),
        ]
    }

    #[test]
    fn batch_matches_serial_runs_exactly() {
        let t = chain_trace(2_000);
        let configs = mixed_configs();
        let batch = run_batch(&t, &configs);
        for (config, batched) in configs.iter().zip(&batch) {
            let serial = match *config {
                MachineConfig::Ideal(cfg) => IdealMachine::new(cfg).run(&t),
                MachineConfig::Realistic(cfg) => RealisticMachine::new(cfg).run(&t),
            };
            assert_eq!(&serial, batched, "batched run diverged for {config:?}");
        }
    }

    #[test]
    fn batch_order_and_duplicates_are_preserved() {
        let t = chain_trace(500);
        let cfg = IdealConfig { fetch_rate: 8, vp: VpConfig::Perfect, ..IdealConfig::default() };
        let configs = [
            MachineConfig::Ideal(cfg),
            MachineConfig::Ideal(IdealConfig { fetch_rate: 4, ..cfg }),
            MachineConfig::Ideal(cfg),
        ];
        let results = run_batch(&t, &configs);
        assert_eq!(results[0], results[2], "duplicate configs must agree");
        assert_ne!(results[0].cycles, results[1].cycles);
    }

    #[test]
    fn empty_batch_and_empty_trace_are_fine() {
        let t = chain_trace(10);
        assert!(run_batch(&t, &[]).is_empty());
        let short = trace_program(
            &{
                let mut b = ProgramBuilder::new("halt");
                b.halt();
                b.build().unwrap()
            },
            1,
        );
        let r = run_batch(&short, &[MachineConfig::Ideal(IdealConfig::default())]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn windowed_feeds_match_one_shot_batch() {
        let t = chain_trace(2_000);
        let configs = mixed_configs();
        let expected = run_batch(&t, &configs);
        // Feed through re-based window buffers — the out-of-core replay
        // shape: each segment's view holds only segment + lookahead slots,
        // with the store's base carrying the global indices.
        for window in [1usize, 100, 4096, t.len()] {
            let mut runner = BatchRunner::new(&configs);
            let lookahead = runner.lookahead();
            let mut start = 0;
            while start < t.len() {
                let end = (start + window).min(t.len());
                let window_end = (end + lookahead).min(t.len());
                let mut buf = t.columns().slice(start..window_end);
                buf.set_base(start);
                runner.feed(buf.view(), start, end);
                start = end;
            }
            assert_eq!(runner.finish(), expected, "window {window} diverged");
        }
    }

    #[test]
    fn progress_sink_sees_monotone_block_ends_and_changes_nothing() {
        use std::sync::Mutex;

        struct Recorder(Mutex<Vec<u64>>);
        impl ProgressSink for Recorder {
            fn retired(&self, retired: u64) {
                self.0.lock().unwrap().push(retired);
            }
        }

        let t = chain_trace(3_000);
        let configs = mixed_configs();
        let expected = run_batch(&t, &configs);

        let recorder = Recorder(Mutex::new(Vec::new()));
        let mut runner = BatchRunner::new(&configs);
        runner.feed_with_progress(t.view(), 0, t.len(), Some(&recorder));
        assert_eq!(runner.finish(), expected, "the sink must not perturb results");

        let seen = recorder.0.into_inner().unwrap();
        assert!(!seen.is_empty(), "a non-empty trace must report progress");
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "progress must be strictly increasing");
        assert_eq!(*seen.last().unwrap() as usize, t.len(), "the last report covers the trace");
        assert_eq!(seen[0] as usize, BATCH_BLOCK_SLOTS.min(t.len()), "first report is one block");
    }

    #[test]
    #[should_panic(expected = "must continue")]
    fn non_contiguous_feed_panics() {
        let t = chain_trace(100);
        let mut runner = BatchRunner::new(&mixed_configs());
        runner.feed(t.view(), 0, 10);
        runner.feed(t.view(), 20, 30);
    }

    #[test]
    #[should_panic(expected = "fetch rate must be positive")]
    fn invalid_config_panics_like_the_machine_constructor() {
        let t = chain_trace(10);
        run_batch(
            &t,
            &[MachineConfig::Ideal(IdealConfig { fetch_rate: 0, ..IdealConfig::default() })],
        );
    }
}
