//! The dataflow scheduling core shared by both machine models.
//!
//! Instructions are scheduled one at a time in trace order. For each
//! instruction the caller supplies the cycle it was fetched and the
//! disposition of the value prediction made for its *own* result; the
//! scheduler derives dispatch, execute and completion cycles from:
//!
//! * the pipeline shape of Table 3.2 (dispatch = fetch + 1; execute at
//!   dispatch + 1 at the earliest; results available one cycle after
//!   execute),
//! * the instruction-window constraint (an instruction dispatches only when
//!   the instruction `window` places earlier has retired),
//! * an optional per-cycle dispatch-width cap, and
//! * register dataflow, where a consumer of a *correctly predicted* value is
//!   freed from the dependence, and a consumer that speculatively executed
//!   on a *wrong* predicted value replays one cycle after the correct value
//!   appears (the paper's 1-cycle value-misprediction penalty: "the machine
//!   invalidates only the dependent instructions and reschedules them").

use fetchvp_isa::reg::NUM_REGS;
use fetchvp_metrics::{FxHashMap, Histogram};
use fetchvp_trace::{Slot, NO_REG};

/// The value-prediction disposition of one dynamic instruction's result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VpDisposition {
    /// No prediction was issued for this result.
    None,
    /// A prediction was issued and is correct.
    Correct,
    /// A prediction was issued and is wrong.
    Wrong,
}

/// The scheduled stage times of one instruction (absolute cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sched {
    /// Dispatch (decode/issue) cycle.
    pub dispatch: u64,
    /// Execute cycle.
    pub execute: u64,
    /// Cycle the result becomes available / the instruction may commit.
    pub complete: u64,
}

/// Classification of register true dependencies by how value prediction
/// served them — the quantity behind the paper's central observation that
/// correct predictions are often *useless* at low fetch bandwidth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DepStats {
    /// Register true dependencies observed.
    pub total: u64,
    /// Producer correctly predicted *and* the consumer would otherwise have
    /// waited: the prediction was exploited.
    pub useful: u64,
    /// Producer correctly predicted but the value was ready anyway (the
    /// consumer was fetched too late for the prediction to matter).
    pub useless_correct: u64,
    /// Producer mispredicted.
    pub wrong: u64,
    /// Producer not predicted (cold entry or low classifier confidence).
    pub unpredicted: u64,
}

impl DepStats {
    /// Fraction of dependencies where a correct prediction went unused.
    pub fn useless_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.useless_correct as f64 / self.total as f64
        }
    }
}

/// Aggregate scheduling statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Instructions scheduled.
    pub instructions: u64,
    /// The latest completion cycle seen (total run length).
    pub last_complete: u64,
    /// Consumers that replayed on a wrong predicted value.
    pub value_replays: u64,
    /// Dependence classification.
    pub deps: DepStats,
}

impl fetchvp_metrics::MetricsSink for DepStats {
    fn export_metrics(&self, reg: &mut fetchvp_metrics::Registry, prefix: &str) {
        reg.counter(prefix, "total", self.total);
        reg.counter(prefix, "useful", self.useful);
        reg.counter(prefix, "useless_correct", self.useless_correct);
        reg.counter(prefix, "wrong", self.wrong);
        reg.counter(prefix, "unpredicted", self.unpredicted);
        reg.gauge(prefix, "useless_fraction", self.useless_fraction());
    }
}

impl fetchvp_metrics::MetricsSink for SchedStats {
    fn export_metrics(&self, reg: &mut fetchvp_metrics::Registry, prefix: &str) {
        reg.counter(prefix, "instructions", self.instructions);
        reg.counter(prefix, "last_complete", self.last_complete);
        reg.counter(prefix, "value_replays", self.value_replays);
        self.deps.export_metrics(reg, &format!("{prefix}.deps"));
    }
}

/// Per-*prediction* usefulness attribution — the observable behind the
/// paper's §3.3 mechanism. Where [`DepStats`] classifies every register
/// dependence, this classifies every **correct prediction** exactly once,
/// by its *first* consumer: the prediction was useful iff that consumer
/// dispatched before the producer's writeback (otherwise the value was
/// architecturally available and the prediction bought nothing). Correct
/// predictions whose value is never read before being overwritten (or
/// before the run ends) are useless by definition — no consumer existed to
/// exploit them.
///
/// The invariant `useful + useless == predictor.correct` holds for every
/// machine model; the DID histograms cover only *consumed* predictions
/// (unconsumed ones have no consumer, hence no instruction distance).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UsefulnessStats {
    /// Correct predictions whose first consumer dispatched before the
    /// producer's writeback.
    pub useful: u64,
    /// Correct predictions consumed too late — or never consumed at all.
    pub useless: u64,
    /// Dynamic instruction distance (producer → first consumer) of useful
    /// predictions.
    pub did_useful: Histogram,
    /// Dynamic instruction distance of useless consumed predictions.
    pub did_useless: Histogram,
}

impl UsefulnessStats {
    /// Fraction of correct predictions that were useful (0 when none).
    pub fn useful_fraction(&self) -> f64 {
        let total = self.useful + self.useless;
        if total == 0 {
            0.0
        } else {
            self.useful as f64 / total as f64
        }
    }

    /// Merges another run's attribution (for aggregating across workloads).
    pub fn merge(&mut self, other: &UsefulnessStats) {
        self.useful += other.useful;
        self.useless += other.useless;
        self.did_useful.merge(&other.did_useful);
        self.did_useless.merge(&other.did_useless);
    }

    /// Exports the counters under `predictor.*` and the DID histograms
    /// under `machine.did_hist.*`.
    pub fn export(&self, reg: &mut fetchvp_metrics::Registry) {
        reg.counter("predictor", "useful", self.useful);
        reg.counter("predictor", "useless", self.useless);
        reg.gauge("predictor", "useful_fraction", self.useful_fraction());
        reg.histogram("machine.did_hist", "useful", &self.did_useful);
        reg.histogram("machine.did_hist", "useless", &self.did_useless);
    }
}

#[derive(Debug, Clone, Copy)]
struct Producer {
    complete: u64,
    vp: VpDisposition,
    /// Trace index of the producing instruction (for DID).
    seq: u64,
    /// Whether a first consumer has already classified this prediction.
    consumed: bool,
}

/// The incremental dataflow scheduler.
///
/// # Example
///
/// ```
/// use fetchvp_core::sched::{Scheduler, VpDisposition};
/// use fetchvp_isa::{AluOp, Instr, Reg};
/// use fetchvp_trace::{DynInstr, TraceColumns};
///
/// let mut s = Scheduler::new(40, None);
/// let add = Instr::Alu { op: AluOp::Add, dst: Reg::R1, a: Reg::R1, b: Reg::R1 };
/// let cols = TraceColumns::from_records(&[DynInstr {
///     seq: 0, pc: 0, instr: add, result: 0, mem_addr: None,
///     taken: false, next_pc: 1,
/// }]);
/// let t0 = s.schedule(cols.slot(0), 0, VpDisposition::None);
/// assert_eq!((t0.dispatch, t0.execute, t0.complete), (1, 2, 3));
/// ```
#[derive(Debug, Clone)]
pub struct Scheduler {
    window: usize,
    dispatch_width: Option<usize>,
    value_penalty: u64,
    /// Execution units per cycle (`None` = unlimited, the §3 ideal model).
    exec_width: Option<usize>,
    /// Executions booked per cycle: a ring of per-cycle counts covering the
    /// live span `[exec_base, exec_base + ring.len())`. Probes are bounded
    /// below by `dispatch + 1`, which is non-decreasing, so cycles sliding
    /// out of the span are dead; the ring grows if the live span ever
    /// outruns it.
    exec_booked: Vec<u32>,
    /// Cycle whose booking count sits at ring index `exec_base % len`.
    exec_base: u64,
    /// When set, loads additionally wait for the completion of the last
    /// store to the same address (perfect memory disambiguation with
    /// store-to-load forwarding at completion time).
    memory_deps: bool,
    /// Completion time of the last store per address (Fx-hashed: probed
    /// once per memory instruction when memory dependencies are enabled).
    last_store: FxHashMap<u64, u64>,
    /// Ring of retire cycles for the last `window` instructions.
    retire_ring: Vec<u64>,
    /// Retire cycle of the previous instruction (in-order commit).
    prev_retire: u64,
    scheduled: u64,
    last_writer: [Option<Producer>; NUM_REGS],
    /// Dispatch-width bookkeeping: instructions already dispatched in
    /// `disp_cursor_cycle`.
    disp_cursor_cycle: u64,
    disp_cursor_count: usize,
    stats: SchedStats,
    usefulness: UsefulnessStats,
}

impl Scheduler {
    /// Creates a scheduler with an instruction window of `window` entries
    /// and an optional per-cycle dispatch-width cap.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `dispatch_width` is `Some(0)`.
    pub fn new(window: usize, dispatch_width: Option<usize>) -> Scheduler {
        Scheduler::with_value_penalty(window, dispatch_width, 1)
    }

    /// Creates a scheduler with an explicit value-misprediction penalty
    /// (the paper's machines use 1 cycle; sensitivity studies sweep it).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `dispatch_width` is `Some(0)`.
    pub fn with_value_penalty(
        window: usize,
        dispatch_width: Option<usize>,
        value_penalty: u64,
    ) -> Scheduler {
        assert!(window > 0, "window must be positive");
        assert!(dispatch_width != Some(0), "dispatch width must be positive");
        Scheduler {
            window,
            dispatch_width,
            value_penalty,
            exec_width: None,
            // Execute cycles trail dispatch by at most ~window (the window
            // constraint forces dispatch past the retire of instruction
            // i - W), so 4x the window covers the live span with slack.
            exec_booked: vec![0; (4 * window).next_power_of_two()],
            exec_base: 0,
            memory_deps: false,
            last_store: FxHashMap::default(),
            retire_ring: vec![0; window],
            prev_retire: 0,
            scheduled: 0,
            last_writer: [None; NUM_REGS],
            disp_cursor_cycle: 0,
            disp_cursor_count: 0,
            stats: SchedStats::default(),
            usefulness: UsefulnessStats::default(),
        }
    }

    /// Caps the number of instructions that may execute in one cycle
    /// (structural hazard on the execution units). `None` — the default —
    /// models the paper's "free from structural resources conflicts".
    ///
    /// # Panics
    ///
    /// Panics if `exec_width` is `Some(0)`.
    pub fn set_exec_width(&mut self, exec_width: Option<usize>) {
        assert!(exec_width != Some(0), "execution width must be positive");
        self.exec_width = exec_width;
    }

    /// Enables memory dependencies: a load additionally waits for the last
    /// store to its address to complete. The paper's models (and its DFG
    /// analysis) consider register dataflow only, so this is off by
    /// default.
    pub fn set_memory_deps(&mut self, enabled: bool) {
        self.memory_deps = enabled;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Per-prediction usefulness attribution accumulated so far. Complete
    /// only after [`Scheduler::finish`] has flushed unconsumed producers.
    pub fn usefulness(&self) -> &UsefulnessStats {
        &self.usefulness
    }

    /// Ends the run: correct predictions still live in the register file —
    /// issued but never consumed — are flushed as useless. Call once after
    /// the last instruction; the scheduler must not be reused afterwards
    /// (the dataflow state is cleared).
    pub fn finish(&mut self) {
        for slot in 0..NUM_REGS {
            if let Some(p) = self.last_writer[slot].take() {
                self.flush_unconsumed(p);
            }
        }
    }

    /// An overwritten or end-of-run producer: if it carried a correct
    /// prediction nobody read, the prediction was useless.
    fn flush_unconsumed(&mut self, p: Producer) {
        if p.vp == VpDisposition::Correct && !p.consumed {
            self.usefulness.useless += 1;
        }
    }

    /// Books an execution slot at the earliest cycle >= `candidate`.
    ///
    /// `min_live` is the lowest cycle any *future* probe can ask for
    /// (`dispatch + 1`, which is non-decreasing): ring slots below it are
    /// dead and may be reclaimed.
    fn book_exec(&mut self, candidate: u64, min_live: u64) -> u64 {
        let Some(width) = self.exec_width else { return candidate };
        let width = width as u32;
        let mut cycle = candidate;
        self.make_live(cycle, min_live);
        loop {
            let mask = self.exec_booked.len() as u64 - 1;
            let slot = (cycle & mask) as usize;
            if self.exec_booked[slot] < width {
                self.exec_booked[slot] += 1;
                return cycle;
            }
            cycle += 1;
            self.make_live(cycle, min_live);
        }
    }

    /// Makes `cycle` addressable in the booking ring: slides the base
    /// forward over dead cycles (zeroing their counts), and doubles the
    /// ring if the live span `[min_live, cycle]` outgrows it.
    #[inline]
    fn make_live(&mut self, cycle: u64, min_live: u64) {
        debug_assert!(cycle >= self.exec_base, "booking probe below the live span");
        if cycle < self.exec_base + self.exec_booked.len() as u64 {
            return;
        }
        self.make_live_slow(cycle, min_live);
    }

    #[cold]
    fn make_live_slow(&mut self, cycle: u64, min_live: u64) {
        // Reclaim dead cycles first.
        let len = self.exec_booked.len() as u64;
        while self.exec_base < min_live && cycle >= self.exec_base + len {
            self.exec_booked[(self.exec_base & (len - 1)) as usize] = 0;
            self.exec_base += 1;
        }
        // Still not enough span: double the ring, re-hashing live slots.
        while cycle >= self.exec_base + self.exec_booked.len() as u64 {
            let old = std::mem::take(&mut self.exec_booked);
            let old_mask = old.len() as u64 - 1;
            self.exec_booked = vec![0; old.len() * 2];
            let new_mask = self.exec_booked.len() as u64 - 1;
            for c in self.exec_base..self.exec_base + old.len() as u64 {
                self.exec_booked[(c & new_mask) as usize] = old[(c & old_mask) as usize];
            }
        }
    }

    /// Schedules the next instruction in trace order.
    ///
    /// `fetch_cycle` is the cycle the front-end delivered it; `vp` is the
    /// disposition of the value prediction issued for *this instruction's
    /// result* (use [`VpDisposition::None`] when value prediction is off or
    /// the instruction produces no value).
    pub fn schedule(&mut self, rec: Slot<'_>, fetch_cycle: u64, vp: VpDisposition) -> Sched {
        let idx = self.scheduled as usize;

        // Window constraint: the entry vacated by instruction (i - W).
        let window_free = if idx >= self.window { self.retire_ring[idx % self.window] } else { 0 };
        let mut dispatch = (fetch_cycle + 1).max(window_free);

        // Dispatch-width cap.
        if let Some(width) = self.dispatch_width {
            if dispatch < self.disp_cursor_cycle {
                dispatch = self.disp_cursor_cycle;
            }
            if dispatch == self.disp_cursor_cycle {
                if self.disp_cursor_count >= width {
                    dispatch += 1;
                    self.disp_cursor_cycle = dispatch;
                    self.disp_cursor_count = 1;
                } else {
                    self.disp_cursor_count += 1;
                }
            } else {
                self.disp_cursor_cycle = dispatch;
                self.disp_cursor_count = 1;
            }
        }

        // Operand readiness. `spec_time` is when the instruction issues
        // believing every predicted operand; `repair_time` additionally
        // waits for the true values of mispredicted operands.
        let mut spec_time = dispatch + 1;
        let mut repair_time = dispatch + 1;
        let mut any_wrong = false;
        for src in [rec.src1_byte(), rec.src2_byte()] {
            if src == NO_REG || src == 0 {
                continue; // absent operand or the hardwired zero register
            }
            let Some(p) = self.last_writer[src as usize] else { continue };
            self.stats.deps.total += 1;
            match p.vp {
                VpDisposition::None => {
                    self.stats.deps.unpredicted += 1;
                    spec_time = spec_time.max(p.complete);
                    repair_time = repair_time.max(p.complete);
                }
                VpDisposition::Correct => {
                    // The dependence is freed (no spec_time update). The
                    // *dependence*-level usefulness is classified after exec
                    // is known, below; the *prediction*-level attribution is
                    // decided here by the first consumer: useful iff this
                    // consumer dispatched before the producer's writeback.
                    if !p.consumed {
                        self.last_writer[src as usize] = Some(Producer { consumed: true, ..p });
                        let did = self.scheduled - p.seq;
                        if dispatch < p.complete {
                            self.usefulness.useful += 1;
                            self.usefulness.did_useful.record(did);
                        } else {
                            self.usefulness.useless += 1;
                            self.usefulness.did_useless.record(did);
                        }
                    }
                }
                VpDisposition::Wrong => {
                    any_wrong = true;
                    repair_time = repair_time.max(p.complete);
                }
            }
        }

        // Memory dependence: a load waits for the last store to its
        // address (when enabled).
        if self.memory_deps && rec.is_mem() && rec.dst_byte() != NO_REG {
            if let Some(addr) = rec.mem_addr() {
                if let Some(&store_done) = self.last_store.get(&addr) {
                    spec_time = spec_time.max(store_done);
                    repair_time = repair_time.max(store_done);
                }
            }
        }

        let execute_candidate = if !any_wrong {
            spec_time
        } else if spec_time >= repair_time {
            // The wrong value resolved before this consumer issued; no
            // speculative execution happened, hence no replay penalty.
            spec_time
        } else {
            self.stats.value_replays += 1;
            repair_time + self.value_penalty
        };
        let execute = self.book_exec(execute_candidate, dispatch + 1);
        let complete = execute + 1;
        if self.memory_deps && rec.is_mem() && rec.dst_byte() == NO_REG {
            if let Some(addr) = rec.mem_addr() {
                self.last_store.insert(addr, complete);
            }
        }

        // Classify correctly-predicted dependencies as useful vs useless
        // now that the execute cycle is known.
        for src in [rec.src1_byte(), rec.src2_byte()] {
            if src == NO_REG || src == 0 {
                continue;
            }
            let Some(p) = self.last_writer[src as usize] else { continue };
            match p.vp {
                VpDisposition::Correct => {
                    if p.complete > execute {
                        self.stats.deps.useful += 1;
                    } else {
                        self.stats.deps.useless_correct += 1;
                    }
                }
                VpDisposition::Wrong => self.stats.deps.wrong += 1,
                VpDisposition::None => {}
            }
        }

        // In-order retirement.
        let retire = complete.max(self.prev_retire);
        self.prev_retire = retire;
        self.retire_ring[idx % self.window] = retire;

        let dst = rec.dst_byte();
        if dst != NO_REG {
            let fresh = Producer { complete, vp, seq: self.scheduled, consumed: false };
            if let Some(prev) = self.last_writer[dst as usize].replace(fresh) {
                self.flush_unconsumed(prev);
            }
        }

        self.scheduled += 1;
        self.stats.instructions += 1;
        self.stats.last_complete = self.stats.last_complete.max(retire);
        Sched { dispatch, execute, complete }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_isa::{AluOp, Instr, Reg};
    use fetchvp_trace::{DynInstr, TraceColumns};

    /// Wraps one record into columnar form and schedules it.
    fn sched1(s: &mut Scheduler, rec: DynInstr, fetch_cycle: u64, vp: VpDisposition) -> Sched {
        let cols = TraceColumns::from_records(&[rec]);
        s.schedule(cols.slot(0), fetch_cycle, vp)
    }

    fn alu(dst: Reg, a: Reg, b: Reg) -> DynInstr {
        DynInstr {
            seq: 0,
            pc: 0,
            instr: Instr::Alu { op: AluOp::Add, dst, a, b },
            result: 0,
            mem_addr: None,
            taken: false,
            next_pc: 1,
        }
    }

    #[test]
    fn independent_instructions_pipeline_cleanly() {
        let mut s = Scheduler::new(40, None);
        for i in 0..4 {
            let rec = alu(Reg::new(i + 1).unwrap(), Reg::R0, Reg::R0);
            let t = sched1(&mut s, rec, 0, VpDisposition::None);
            assert_eq!((t.dispatch, t.execute, t.complete), (1, 2, 3));
        }
    }

    #[test]
    fn true_dependence_serializes() {
        let mut s = Scheduler::new(40, None);
        let p = sched1(&mut s, alu(Reg::R1, Reg::R0, Reg::R0), 0, VpDisposition::None);
        let c = sched1(&mut s, alu(Reg::R2, Reg::R1, Reg::R0), 0, VpDisposition::None);
        assert_eq!(c.execute, p.complete); // waits for the producer
    }

    #[test]
    fn correct_prediction_breaks_the_dependence() {
        let mut s = Scheduler::new(40, None);
        let p = sched1(&mut s, alu(Reg::R1, Reg::R0, Reg::R0), 0, VpDisposition::Correct);
        let c = sched1(&mut s, alu(Reg::R2, Reg::R1, Reg::R0), 0, VpDisposition::None);
        assert_eq!(c.execute, 2); // same cycle as the producer
        assert_eq!(p.execute, 2);
        assert_eq!(s.stats().deps.useful, 1);
    }

    #[test]
    fn correct_prediction_for_a_late_consumer_is_useless() {
        let mut s = Scheduler::new(40, None);
        sched1(&mut s, alu(Reg::R1, Reg::R0, Reg::R0), 0, VpDisposition::Correct);
        // Consumer fetched 10 cycles later: the value is long since ready.
        let c = sched1(&mut s, alu(Reg::R2, Reg::R1, Reg::R0), 10, VpDisposition::None);
        assert_eq!(c.execute, 12); // dispatch+1, unconstrained
        let d = s.stats().deps;
        assert_eq!((d.useful, d.useless_correct), (0, 1));
    }

    #[test]
    fn wrong_prediction_costs_one_replay_cycle() {
        let mut s = Scheduler::new(40, None);
        let p = sched1(&mut s, alu(Reg::R1, Reg::R0, Reg::R0), 0, VpDisposition::Wrong);
        let c = sched1(&mut s, alu(Reg::R2, Reg::R1, Reg::R0), 0, VpDisposition::None);
        // Without VP the consumer would execute at p.complete; the replay
        // adds one cycle.
        assert_eq!(c.execute, p.complete + 1);
        assert_eq!(s.stats().value_replays, 1);
        assert_eq!(s.stats().deps.wrong, 1);
    }

    #[test]
    fn wrong_prediction_resolved_before_issue_has_no_penalty() {
        let mut s = Scheduler::new(40, None);
        let p = sched1(&mut s, alu(Reg::R1, Reg::R0, Reg::R0), 0, VpDisposition::Wrong);
        // Consumer fetched far later: it never speculated on the bad value.
        let c = sched1(&mut s, alu(Reg::R2, Reg::R1, Reg::R0), 20, VpDisposition::None);
        assert!(c.execute > p.complete);
        assert_eq!(s.stats().value_replays, 0);
    }

    #[test]
    fn window_limits_inflight_instructions() {
        let mut s = Scheduler::new(2, None);
        // A serial chain through R1: completes at 3, 5, 7, ...
        let mut times = Vec::new();
        for _ in 0..5 {
            let t = sched1(&mut s, alu(Reg::R1, Reg::R1, Reg::R0), 0, VpDisposition::None);
            times.push(t);
        }
        // With window 2, instruction i cannot dispatch before i-2 retired.
        assert!(times[2].dispatch >= times[0].complete);
        assert!(times[4].dispatch >= times[2].complete);
    }

    #[test]
    fn dispatch_width_spreads_across_cycles() {
        let mut s = Scheduler::new(40, Some(2));
        let d: Vec<u64> = (0..6)
            .map(|_| {
                sched1(&mut s, alu(Reg::R1, Reg::R0, Reg::R0), 0, VpDisposition::None).dispatch
            })
            .collect();
        assert_eq!(d, [1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn zero_register_reads_carry_no_dependence() {
        let mut s = Scheduler::new(40, None);
        sched1(&mut s, alu(Reg::R1, Reg::R0, Reg::R0), 0, VpDisposition::None);
        assert_eq!(s.stats().deps.total, 0);
    }

    #[test]
    fn dep_classification_is_exhaustive() {
        let mut s = Scheduler::new(40, None);
        sched1(&mut s, alu(Reg::R1, Reg::R0, Reg::R0), 0, VpDisposition::Correct);
        sched1(&mut s, alu(Reg::R2, Reg::R1, Reg::R0), 0, VpDisposition::Wrong);
        sched1(&mut s, alu(Reg::R3, Reg::R2, Reg::R1), 0, VpDisposition::None);
        let d = s.stats().deps;
        assert_eq!(d.total, d.useful + d.useless_correct + d.wrong + d.unpredicted);
        assert_eq!(d.total, 3);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        Scheduler::new(0, None);
    }

    fn load(dst: Reg, base: Reg, addr_hint: u64) -> DynInstr {
        DynInstr {
            seq: 0,
            pc: 0,
            instr: Instr::Load { dst, base, offset: 0 },
            result: 0,
            mem_addr: Some(addr_hint),
            taken: false,
            next_pc: 1,
        }
    }

    fn store(src: Reg, base: Reg, addr_hint: u64) -> DynInstr {
        DynInstr {
            seq: 0,
            pc: 0,
            instr: Instr::Store { src, base, offset: 0 },
            result: 0,
            mem_addr: Some(addr_hint),
            taken: false,
            next_pc: 1,
        }
    }

    #[test]
    fn exec_width_serializes_independent_instructions() {
        let mut s = Scheduler::new(40, None);
        s.set_exec_width(Some(1));
        let e: Vec<u64> = (0..4)
            .map(|_| sched1(&mut s, alu(Reg::R1, Reg::R0, Reg::R0), 0, VpDisposition::None).execute)
            .collect();
        assert_eq!(e, [2, 3, 4, 5]);
    }

    #[test]
    fn unlimited_exec_width_runs_independents_together() {
        let mut s = Scheduler::new(40, None);
        let e: Vec<u64> = (0..4)
            .map(|_| sched1(&mut s, alu(Reg::R1, Reg::R0, Reg::R0), 0, VpDisposition::None).execute)
            .collect();
        assert_eq!(e, [2, 2, 2, 2]);
    }

    #[test]
    fn memory_deps_order_store_then_load() {
        let mut s = Scheduler::new(40, None);
        s.set_memory_deps(true);
        let st = sched1(&mut s, store(Reg::R1, Reg::R2, 0x100), 0, VpDisposition::None);
        let ld = sched1(&mut s, load(Reg::R3, Reg::R4, 0x100), 0, VpDisposition::None);
        assert!(
            ld.execute >= st.complete,
            "load at {} before store done {}",
            ld.execute,
            st.complete
        );
        // A load from a different address is unconstrained.
        let other = sched1(&mut s, load(Reg::R5, Reg::R6, 0x200), 0, VpDisposition::None);
        assert_eq!(other.execute, other.dispatch + 1);
    }

    #[test]
    fn first_consumer_classifies_a_prediction_once() {
        let mut s = Scheduler::new(40, None);
        sched1(&mut s, alu(Reg::R1, Reg::R0, Reg::R0), 0, VpDisposition::Correct);
        // First consumer dispatches at 1, producer writes back at 3: useful.
        sched1(&mut s, alu(Reg::R2, Reg::R1, Reg::R0), 0, VpDisposition::None);
        // A second consumer must not re-classify the same prediction.
        sched1(&mut s, alu(Reg::R3, Reg::R1, Reg::R0), 0, VpDisposition::None);
        s.finish();
        let u = s.usefulness();
        assert_eq!((u.useful, u.useless), (1, 0));
        assert_eq!(u.did_useful.count(), 1);
        assert_eq!(u.did_useful.sum(), 1); // DID = 1
    }

    #[test]
    fn late_first_consumer_makes_the_prediction_useless() {
        let mut s = Scheduler::new(40, None);
        sched1(&mut s, alu(Reg::R1, Reg::R0, Reg::R0), 0, VpDisposition::Correct);
        // Dispatch at 11, long after the writeback at 3.
        sched1(&mut s, alu(Reg::R2, Reg::R1, Reg::R0), 10, VpDisposition::None);
        s.finish();
        let u = s.usefulness();
        assert_eq!((u.useful, u.useless), (0, 1));
        assert_eq!(u.did_useless.count(), 1);
    }

    #[test]
    fn unconsumed_correct_predictions_flush_as_useless() {
        let mut s = Scheduler::new(40, None);
        // Overwritten before any read.
        sched1(&mut s, alu(Reg::R1, Reg::R0, Reg::R0), 0, VpDisposition::Correct);
        sched1(&mut s, alu(Reg::R1, Reg::R0, Reg::R0), 0, VpDisposition::None);
        // Still live at end of run.
        sched1(&mut s, alu(Reg::R2, Reg::R0, Reg::R0), 0, VpDisposition::Correct);
        s.finish();
        let u = s.usefulness();
        assert_eq!((u.useful, u.useless), (0, 2));
        // Unconsumed predictions carry no DID sample.
        assert_eq!(u.did_useful.count() + u.did_useless.count(), 0);
    }

    #[test]
    fn attribution_covers_every_correct_prediction() {
        let mut s = Scheduler::new(40, None);
        let dispositions = [
            VpDisposition::Correct,
            VpDisposition::Wrong,
            VpDisposition::Correct,
            VpDisposition::None,
            VpDisposition::Correct,
        ];
        for (i, vp) in dispositions.iter().enumerate() {
            let dst = Reg::new((i % 3 + 1) as u8).unwrap();
            let src = Reg::new((i % 2 + 1) as u8).unwrap();
            sched1(&mut s, alu(dst, src, Reg::R0), i as u64, *vp);
        }
        s.finish();
        let correct = dispositions.iter().filter(|v| **v == VpDisposition::Correct).count();
        let u = s.usefulness();
        assert_eq!(u.useful + u.useless, correct as u64);
    }

    #[test]
    fn memory_deps_off_by_default() {
        let mut s = Scheduler::new(40, None);
        sched1(&mut s, store(Reg::R1, Reg::R2, 0x100), 0, VpDisposition::None);
        let ld = sched1(&mut s, load(Reg::R3, Reg::R4, 0x100), 0, VpDisposition::None);
        assert_eq!(ld.execute, ld.dispatch + 1);
    }
}
