//! The §3 ideal (implementation-independent) machine model.

use fetchvp_trace::{Slot, Trace};

use crate::sched::{Scheduler, VpDisposition};
use crate::vp::VpConfig;
use crate::MachineResult;

/// Configuration of the [`IdealMachine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdealConfig {
    /// Fetch/issue rate in instructions per cycle (the paper sweeps
    /// 4, 8, 16, 32, 40).
    pub fetch_rate: usize,
    /// Instruction-window size ("limited to up to 40 instructions").
    pub window: usize,
    /// Value-prediction mode.
    pub vp: VpConfig,
    /// Execution units per cycle. `None` (the default) matches §3.1's
    /// "free from structural resources conflicts".
    pub exec_units: Option<usize>,
    /// When `true`, loads also wait for the last store to their address.
    /// §3's model considers register dataflow only, so the default is
    /// `false`.
    pub memory_deps: bool,
}

impl Default for IdealConfig {
    fn default() -> IdealConfig {
        IdealConfig {
            fetch_rate: 4,
            window: 40,
            vp: VpConfig::None,
            exec_units: None,
            memory_deps: false,
        }
    }
}

/// The ideal execution model of §3.1: free from control dependencies, name
/// dependencies and structural conflicts, limited only by true data
/// dependencies, the instruction window and an artificial fetch/issue rate.
///
/// Instruction `i` is fetched in cycle `i / fetch_rate` (the number of taken
/// branches per cycle is unlimited), dispatches the following cycle subject
/// to window occupancy, and executes with unit latency when its operands are
/// ready — or immediately, when its operands were correctly value-predicted.
///
/// # Example
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct IdealMachine {
    config: IdealConfig,
}

impl IdealMachine {
    /// Creates a machine with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `fetch_rate` or `window` is zero.
    pub fn new(config: IdealConfig) -> IdealMachine {
        assert!(config.fetch_rate > 0, "fetch rate must be positive");
        assert!(config.window > 0, "window must be positive");
        IdealMachine { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> IdealConfig {
        self.config
    }

    /// Runs the model over a captured trace.
    ///
    /// This is a single-config [`crate::run_batch`]: both paths drive the
    /// same per-slot pipeline stepper, so batched and serial runs are
    /// byte-identical by construction.
    pub fn run(&self, trace: &Trace) -> MachineResult {
        crate::batch::run_batch(trace, &[crate::batch::MachineConfig::Ideal(self.config)])
            .pop()
            .expect("one result per config")
    }
}

/// Computes the VP disposition for one instruction, performing the
/// lookup/commit protocol when a real predictor is in use.
pub(crate) fn disposition_for(
    rec: Slot<'_>,
    mode: &VpConfig,
    predictor: &mut Option<Box<dyn fetchvp_predictor::ValuePredictor>>,
) -> VpDisposition {
    if !rec.produces_value() {
        return VpDisposition::None;
    }
    match mode {
        VpConfig::None => VpDisposition::None,
        VpConfig::Perfect => VpDisposition::Correct,
        VpConfig::Predictor(_) => {
            let p = predictor.as_mut().expect("predictor mode requires a predictor");
            let predicted = p.lookup(rec.pc());
            p.commit(rec.pc(), rec.result(), predicted);
            match predicted {
                None => VpDisposition::None,
                Some(v) if v == rec.result() => VpDisposition::Correct,
                Some(_) => VpDisposition::Wrong,
            }
        }
    }
}

/// Stage times of one instruction, in the 1-based cycle numbering of the
/// paper's Table 3.2 (fetch of the first group happens in cycle 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTimes {
    /// Position in the dynamic stream.
    pub seq: u64,
    /// Program counter.
    pub pc: u64,
    /// Fetch cycle.
    pub fetch: u64,
    /// Decode/issue cycle.
    pub decode: u64,
    /// Execute cycle.
    pub execute: u64,
    /// Commit cycle.
    pub commit: u64,
}

/// Reproduces the paper's Table 3.2: the cycle-by-cycle progress of a short
/// instruction sequence through the 4-stage pipeline of the ideal machine.
///
/// # Example
///
/// Reproduce the paper's example — a machine with fetch/issue width 4 and a
/// perfect value predictor (the paper's assumption for the walk-through):
///
/// ```
/// use fetchvp_core::{pipeline_trace, VpConfig};
/// use fetchvp_isa::{AluOp, Instr, ProgramBuilder, Reg};
/// use fetchvp_trace::trace_program;
///
/// # fn main() -> Result<(), fetchvp_isa::ProgramError> {
/// // The 8-instruction DFG of Figure 3.2 (dependencies via registers).
/// let mut b = ProgramBuilder::new("fig32");
/// b.load_imm(Reg::R1, 1); // 1
/// b.alu_imm(AluOp::Add, Reg::R2, Reg::R1, 1); // 2: dep on 1 (DID 1)
/// b.load_imm(Reg::R3, 3); // 3
/// b.alu_imm(AluOp::Add, Reg::R4, Reg::R2, 1); // 4: dep on 2 (DID 2)
/// b.alu_imm(AluOp::Add, Reg::R5, Reg::R1, 1); // 5: dep on 1 (DID 4)
/// b.alu_imm(AluOp::Add, Reg::R6, Reg::R5, 1); // 6: dep on 5 (DID 1)
/// b.alu_imm(AluOp::Add, Reg::R7, Reg::R3, 1); // 7: dep on 3 (DID 4)
/// b.alu_imm(AluOp::Add, Reg::R8, Reg::R7, 1); // 8: dep on 7 (DID 1)
/// b.halt();
/// let trace = trace_program(&b.build()?, 100);
/// let stages = pipeline_trace(&trace, 4, VpConfig::Perfect);
/// // Exactly the table: group 1 fetches in cycle 1, decodes in 2,
/// // executes in 3 (value prediction collapses the chains), commits in 4.
/// assert!(stages[..4].iter().all(|s| (s.fetch, s.decode, s.execute, s.commit) == (1, 2, 3, 4)));
/// assert!(stages[4..8].iter().all(|s| (s.fetch, s.decode, s.execute, s.commit) == (2, 3, 4, 5)));
/// # Ok(())
/// # }
/// ```
pub fn pipeline_trace(trace: &Trace, fetch_rate: usize, vp: VpConfig) -> Vec<StageTimes> {
    assert!(fetch_rate > 0, "fetch rate must be positive");
    let mut sched = Scheduler::new(40, Some(fetch_rate));
    let mut predictor = match vp {
        VpConfig::Predictor(kind) => Some(kind.build()),
        _ => None,
    };
    trace
        .view()
        .slots()
        .map(|rec| {
            let fetch_cycle = (rec.index() / fetch_rate) as u64;
            let disposition = disposition_for(rec, &vp, &mut predictor);
            let t = sched.schedule(rec, fetch_cycle, disposition);
            StageTimes {
                seq: rec.seq(),
                pc: rec.pc(),
                fetch: fetch_cycle + 1,
                decode: t.dispatch + 1,
                execute: t.execute + 1,
                commit: t.complete + 1,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_isa::{AluOp, Cond, ProgramBuilder, Reg};
    use fetchvp_trace::trace_program;

    /// A strided dependence chain: every iteration's add depends on the
    /// previous one, but the values are perfectly stride-predictable.
    fn chain_trace(iters: i64) -> Trace {
        let mut b = ProgramBuilder::new("chain");
        b.load_imm(Reg::R1, 0);
        b.load_imm(Reg::R2, iters);
        let head = b.bind_label("head");
        b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 7);
        b.alu_imm(AluOp::Sub, Reg::R2, Reg::R2, 1);
        b.branch(Cond::Ne, Reg::R2, Reg::R0, head);
        b.halt();
        trace_program(&b.build().unwrap(), u64::MAX)
    }

    fn run(fetch_rate: usize, vp: VpConfig, trace: &Trace) -> MachineResult {
        IdealMachine::new(IdealConfig { fetch_rate, window: 40, vp, ..IdealConfig::default() })
            .run(trace)
    }

    #[test]
    fn ipc_is_bounded_by_fetch_rate() {
        let t = chain_trace(5_000);
        for rate in [4, 8, 16] {
            let r = run(rate, VpConfig::Perfect, &t);
            assert!(r.ipc() <= rate as f64 + 1e-9, "rate {rate}: ipc {}", r.ipc());
        }
    }

    #[test]
    fn perfect_vp_reaches_the_fetch_bound_on_serial_code() {
        let t = chain_trace(5_000);
        let r = run(8, VpConfig::Perfect, &t);
        assert!(r.ipc() > 7.5, "ipc {}", r.ipc());
    }

    #[test]
    fn vp_speedup_grows_with_fetch_rate() {
        let t = chain_trace(20_000);
        let mut speedups = Vec::new();
        for rate in [4, 8, 16, 32] {
            let base = run(rate, VpConfig::None, &t);
            let vp = run(rate, VpConfig::stride_infinite(), &t);
            speedups.push(vp.speedup_over(&base));
        }
        for w in speedups.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "speedups not monotone: {speedups:?}");
        }
        assert!(*speedups.last().unwrap() > 0.3, "high-bandwidth speedup too small: {speedups:?}");
    }

    #[test]
    fn baseline_and_vp_run_the_same_instruction_count() {
        let t = chain_trace(1_000);
        let base = run(16, VpConfig::None, &t);
        let vp = run(16, VpConfig::stride_infinite(), &t);
        assert_eq!(base.instructions, vp.instructions);
        assert_eq!(base.instructions, t.len() as u64);
    }

    #[test]
    fn perfect_vp_is_at_least_as_fast_as_real_vp() {
        let t = chain_trace(2_000);
        let real = run(16, VpConfig::stride_infinite(), &t);
        let perfect = run(16, VpConfig::Perfect, &t);
        assert!(perfect.cycles <= real.cycles);
    }

    #[test]
    fn vp_never_slows_down_serial_chains_substantially() {
        // The 1-cycle replay penalty can cost a little, but on a stride-
        // predictable chain VP must win.
        let t = chain_trace(5_000);
        let base = run(32, VpConfig::None, &t);
        let vp = run(32, VpConfig::stride_infinite(), &t);
        assert!(vp.cycles < base.cycles);
    }

    #[test]
    fn deps_classification_tracks_fetch_bandwidth() {
        // At fetch 4 the window rarely holds producer and consumer of the
        // same dependence together, so correct predictions are largely
        // useless; at fetch 40 they become useful.
        let t = chain_trace(10_000);
        let narrow = run(4, VpConfig::Perfect, &t);
        let wide = run(40, VpConfig::Perfect, &t);
        assert!(wide.deps.useful > narrow.deps.useful);
    }

    #[test]
    fn vp_stats_are_reported_for_real_predictors_only() {
        let t = chain_trace(100);
        assert!(run(4, VpConfig::None, &t).vp_stats.is_none());
        assert!(run(4, VpConfig::Perfect, &t).vp_stats.is_none());
        let r = run(4, VpConfig::stride_infinite(), &t);
        let s = r.vp_stats.expect("stride predictor reports stats");
        assert!(s.lookups > 0);
    }

    #[test]
    fn usefulness_attribution_covers_all_correct_predictions() {
        let t = chain_trace(2_000);
        let narrow = run(4, VpConfig::stride_infinite(), &t);
        let s = narrow.vp_stats.as_ref().expect("stride predictor reports stats");
        assert_eq!(narrow.usefulness.useful + narrow.usefulness.useless, s.correct);
        let wide = run(40, VpConfig::stride_infinite(), &t);
        let ws = wide.vp_stats.as_ref().unwrap();
        assert_eq!(wide.usefulness.useful + wide.usefulness.useless, ws.correct);
        // DID samples exist only for consumed predictions.
        let u = &narrow.usefulness;
        assert!(u.did_useful.count() + u.did_useless.count() <= s.correct);
        assert!(u.useful > 0, "a stride chain exploits its predictions");
    }

    #[test]
    #[should_panic(expected = "fetch rate must be positive")]
    fn zero_fetch_rate_panics() {
        IdealMachine::new(IdealConfig { fetch_rate: 0, ..IdealConfig::default() });
    }

    #[test]
    fn pipeline_trace_without_vp_serializes_chains() {
        let mut b = ProgramBuilder::new("p");
        b.load_imm(Reg::R1, 1);
        b.alu_imm(AluOp::Add, Reg::R2, Reg::R1, 1);
        b.alu_imm(AluOp::Add, Reg::R3, Reg::R2, 1);
        b.halt();
        let t = trace_program(&b.build().unwrap(), 10);
        let stages = pipeline_trace(&t, 4, VpConfig::None);
        assert_eq!(stages[0].execute, 3);
        assert_eq!(stages[1].execute, 4); // waits for 0
        assert_eq!(stages[2].execute, 5); // waits for 1
    }
}
