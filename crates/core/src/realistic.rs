//! The §5 realistic machine model.

use fetchvp_bpred::{GshareBtb, GshareConfig, PerfectBtb, TwoLevelBtb, TwoLevelConfig};
use fetchvp_fetch::{
    BacConfig, BacFetch, ConventionalFetch, FetchEngine, TraceCacheConfig, TraceCacheFetch,
};
use fetchvp_predictor::BankedConfig;
use fetchvp_trace::Trace;
use fetchvp_tracing::EventSink;

use crate::vp::VpConfig;
use crate::MachineResult;

/// Which branch predictor the front-end uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BtbKind {
    /// The ideal branch predictor.
    Perfect,
    /// The 2-level PAp BTB (2K entries, 2-way, 4-bit history by default).
    TwoLevel(TwoLevelConfig),
    /// A gshare predictor — the "tuned BTB" of §5's closing remark.
    Gshare(GshareConfig),
}

impl BtbKind {
    /// The paper's realistic BTB.
    pub fn two_level_paper() -> BtbKind {
        BtbKind::TwoLevel(TwoLevelConfig::paper())
    }
}

/// The fetch front-end of the realistic machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontEnd {
    /// Conventional fetch: up to `width` instructions and up to `max_taken`
    /// taken transfers per cycle (`None` = unlimited, the paper's
    /// "unlimited" sweep point).
    Conventional {
        /// Instructions per cycle.
        width: usize,
        /// Taken-transfer allowance per cycle (the paper's `n`).
        max_taken: Option<u32>,
        /// Branch predictor.
        btb: BtbKind,
    },
    /// The trace cache of §5 (Figure 5.3).
    TraceCache {
        /// Cache geometry and policies.
        config: TraceCacheConfig,
        /// Branch predictor.
        btb: BtbKind,
    },
    /// The branch address cache of §2.2 (reference \[28\]).
    BranchAddressCache {
        /// Front-end geometry.
        config: BacConfig,
        /// Branch predictor.
        btb: BtbKind,
    },
}

impl FrontEnd {
    pub(crate) fn build(&self) -> Box<dyn FetchEngine> {
        match *self {
            FrontEnd::Conventional { width, max_taken, btb } => match btb {
                BtbKind::Perfect => {
                    Box::new(ConventionalFetch::new(width, max_taken, PerfectBtb::new()))
                }
                BtbKind::TwoLevel(cfg) => {
                    Box::new(ConventionalFetch::new(width, max_taken, TwoLevelBtb::new(cfg)))
                }
                BtbKind::Gshare(cfg) => {
                    Box::new(ConventionalFetch::new(width, max_taken, GshareBtb::new(cfg)))
                }
            },
            FrontEnd::TraceCache { config, btb } => match btb {
                BtbKind::Perfect => Box::new(TraceCacheFetch::new(config, PerfectBtb::new())),
                BtbKind::TwoLevel(cfg) => {
                    Box::new(TraceCacheFetch::new(config, TwoLevelBtb::new(cfg)))
                }
                BtbKind::Gshare(cfg) => Box::new(TraceCacheFetch::new(config, GshareBtb::new(cfg))),
            },
            FrontEnd::BranchAddressCache { config, btb } => match btb {
                BtbKind::Perfect => Box::new(BacFetch::new(config, PerfectBtb::new())),
                BtbKind::TwoLevel(cfg) => Box::new(BacFetch::new(config, TwoLevelBtb::new(cfg))),
                BtbKind::Gshare(cfg) => Box::new(BacFetch::new(config, GshareBtb::new(cfg))),
            },
        }
    }
}

/// Configuration of the [`RealisticMachine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RealisticConfig {
    /// Instruction-window entries ("a finite instruction window of 40
    /// instructions").
    pub window: usize,
    /// Decode/issue width ("limited to up to 40 instructions").
    pub issue_width: usize,
    /// Cycles between a mispredicted branch executing and fetch resuming
    /// ("a branch misprediction penalty is 3 clock cycles").
    pub branch_penalty: u64,
    /// The fetch front-end.
    pub front_end: FrontEnd,
    /// Value-prediction mode.
    pub vp: VpConfig,
    /// Extra cycles a consumer that executed on a wrong predicted value
    /// waits beyond the correct value's availability ("value misprediction
    /// penalty is 1 clock cycle", §5).
    pub value_penalty: u64,
    /// Execution units per cycle ("40 execution units", §5 — with a
    /// 40-entry window this never binds, but smaller machines can be
    /// modelled).
    pub exec_units: Option<usize>,
    /// When `true`, loads also wait for the last store to their address
    /// (perfect disambiguation). Off by default, matching the paper.
    pub memory_deps: bool,
    /// When set, value predictions flow through the §4 banked front-end
    /// (trace addresses buffer → address router → interleaved table → value
    /// distributor), so bank conflicts deny predictions and merged same-PC
    /// requests receive the stride expansion. `None` models an
    /// unconstrained (fully ported) prediction table.
    pub banked: Option<BankedConfig>,
}

impl RealisticConfig {
    /// The paper's base machine with a given front-end and VP mode.
    pub fn paper(front_end: FrontEnd, vp: VpConfig) -> RealisticConfig {
        RealisticConfig {
            window: 40,
            issue_width: 40,
            branch_penalty: 3,
            front_end,
            vp,
            value_penalty: 1,
            exec_units: Some(40),
            memory_deps: false,
            banked: None,
        }
    }

    /// Enables the §4 banked prediction front-end.
    pub fn with_banked(mut self, banked: BankedConfig) -> RealisticConfig {
        self.banked = Some(banked);
        self
    }
}

/// The realistic machine of §5: a 40-entry window, 40 execution units,
/// register renaming, pluggable branch prediction and fetch mechanisms,
/// 3-cycle branch-misprediction penalty and 1-cycle value-misprediction
/// penalty.
///
/// Trace-driven: wrong-path instructions are not executed; a misprediction
/// stalls fetch until `branch_penalty` cycles after the offending branch
/// executes. The fetch queue between the front-end and dispatch is
/// unbounded, so the configured fetch bandwidth constrains the *average*
/// delivery rate (the quantity the paper studies) rather than introducing
/// back-pressure stalls.
///
/// # Example
///
/// ```
/// use fetchvp_core::{BtbKind, FrontEnd, RealisticConfig, RealisticMachine, VpConfig};
/// use fetchvp_isa::{AluOp, Cond, ProgramBuilder, Reg};
/// use fetchvp_trace::trace_program;
///
/// # fn main() -> Result<(), fetchvp_isa::ProgramError> {
/// let mut b = ProgramBuilder::new("loop");
/// b.load_imm(Reg::R1, 5_000);
/// let head = b.bind_label("head");
/// b.alu_imm(AluOp::Sub, Reg::R1, Reg::R1, 1);
/// b.branch(Cond::Ne, Reg::R1, Reg::R0, head);
/// b.halt();
/// let trace = trace_program(&b.build()?, u64::MAX);
///
/// let fe = FrontEnd::Conventional { width: 40, max_taken: Some(4), btb: BtbKind::Perfect };
/// let base = RealisticMachine::new(RealisticConfig::paper(fe, VpConfig::None)).run(&trace);
/// let vp = RealisticMachine::new(RealisticConfig::paper(fe, VpConfig::stride_infinite())).run(&trace);
/// assert!(vp.ipc() >= base.ipc());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RealisticMachine {
    config: RealisticConfig,
}

impl RealisticMachine {
    /// Creates a machine with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `issue_width` is zero.
    pub fn new(config: RealisticConfig) -> RealisticMachine {
        assert!(config.window > 0, "window must be positive");
        assert!(config.issue_width > 0, "issue width must be positive");
        RealisticMachine { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> RealisticConfig {
        self.config
    }

    /// Runs the model over a captured trace.
    pub fn run(&self, trace: &Trace) -> MachineResult {
        self.run_traced(trace, None)
    }

    /// Runs the model, streaming a cycle-level pipeline witness into `sink`
    /// when one is given: per-instruction fetch/dispatch/issue/writeback
    /// spans, per-prediction outcome instants, and address-router
    /// bank-conflict instants (banked front-end only).
    ///
    /// Passing `None` is the zero-cost disabled path — one predictable
    /// branch per instruction, no allocation, no formatting — and is
    /// exactly what [`RealisticMachine::run`] does. The event stream is
    /// deterministic: same trace, same configuration, same events.
    pub fn run_traced(&self, trace: &Trace, mut sink: Option<&mut dyn EventSink>) -> MachineResult {
        // A single-config batch pipeline: the group-based fetch loop
        // (whole-group dispositions, misprediction stalls, bank-conflict
        // tracing) lives in `crate::batch::Pipeline`, shared with
        // `run_batch` so serial and batched runs cannot diverge.
        let view = trace.view();
        let mut pipe =
            crate::batch::Pipeline::new(&crate::batch::MachineConfig::Realistic(self.config));
        pipe.run_block(view, 0, view.len(), &mut sink);
        pipe.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_isa::{AluOp, Cond, ProgramBuilder, Reg};
    use fetchvp_trace::trace_program;
    use fetchvp_tracing::{Event, Lane};

    /// A loop with a strided dependence chain and a small body.
    fn chain_trace(iters: i64) -> Trace {
        let mut b = ProgramBuilder::new("chain");
        b.load_imm(Reg::R1, 0);
        b.load_imm(Reg::R2, iters);
        let head = b.bind_label("head");
        b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 5);
        b.alu_imm(AluOp::Sub, Reg::R2, Reg::R2, 1);
        b.branch(Cond::Ne, Reg::R2, Reg::R0, head);
        b.halt();
        trace_program(&b.build().unwrap(), u64::MAX)
    }

    fn conventional(max_taken: Option<u32>, btb: BtbKind) -> FrontEnd {
        FrontEnd::Conventional { width: 40, max_taken, btb }
    }

    fn run(fe: FrontEnd, vp: VpConfig, trace: &Trace) -> MachineResult {
        RealisticMachine::new(RealisticConfig::paper(fe, vp)).run(trace)
    }

    #[test]
    fn more_taken_branches_per_cycle_means_more_ipc() {
        let t = chain_trace(3_000);
        let one = run(conventional(Some(1), BtbKind::Perfect), VpConfig::Perfect, &t);
        let four = run(conventional(Some(4), BtbKind::Perfect), VpConfig::Perfect, &t);
        let unlimited = run(conventional(None, BtbKind::Perfect), VpConfig::Perfect, &t);
        assert!(one.ipc() < four.ipc());
        assert!(four.ipc() <= unlimited.ipc() + 1e-9);
    }

    #[test]
    fn vp_speedup_grows_with_taken_branch_allowance() {
        let t = chain_trace(5_000);
        let mut speedups = Vec::new();
        for n in [Some(1), Some(2), Some(4), None] {
            let base = run(conventional(n, BtbKind::Perfect), VpConfig::None, &t);
            let vp = run(conventional(n, BtbKind::Perfect), VpConfig::stride_infinite(), &t);
            speedups.push(vp.speedup_over(&base));
        }
        for w in speedups.windows(2) {
            assert!(w[1] >= w[0] - 0.02, "speedups not (weakly) monotone: {speedups:?}");
        }
        assert!(speedups[0] < *speedups.last().unwrap(), "{speedups:?}");
    }

    #[test]
    fn realistic_btb_is_no_faster_than_perfect() {
        let t = chain_trace(3_000);
        let perfect = run(conventional(Some(4), BtbKind::Perfect), VpConfig::None, &t);
        let real = run(conventional(Some(4), BtbKind::two_level_paper()), VpConfig::None, &t);
        assert!(real.cycles >= perfect.cycles);
        let bp = real.bpred_stats.expect("bpred stats present");
        assert!(bp.accuracy() < 1.0); // the loop exit always mispredicts once
    }

    #[test]
    fn branch_penalty_costs_cycles() {
        let t = chain_trace(2_000);
        let fe = conventional(Some(4), BtbKind::two_level_paper());
        let base = RealisticMachine::new(RealisticConfig {
            branch_penalty: 0,
            ..RealisticConfig::paper(fe, VpConfig::None)
        })
        .run(&t);
        let penalized = RealisticMachine::new(RealisticConfig {
            branch_penalty: 10,
            ..RealisticConfig::paper(fe, VpConfig::None)
        })
        .run(&t);
        assert!(penalized.cycles > base.cycles);
    }

    #[test]
    fn trace_cache_front_end_runs_and_reports_stats() {
        let t = chain_trace(3_000);
        let fe = FrontEnd::TraceCache { config: TraceCacheConfig::paper(), btb: BtbKind::Perfect };
        let r = run(fe, VpConfig::stride_infinite(), &t);
        let tc = r.trace_cache_stats.expect("trace cache stats present");
        assert!(tc.hit_rate() > 0.5, "hit rate {:.2}", tc.hit_rate());
        assert_eq!(r.instructions, t.len() as u64);
    }

    #[test]
    fn trace_cache_beats_single_taken_branch_fetch() {
        let t = chain_trace(5_000);
        let conv = run(conventional(Some(1), BtbKind::Perfect), VpConfig::Perfect, &t);
        let tc = run(
            FrontEnd::TraceCache { config: TraceCacheConfig::paper(), btb: BtbKind::Perfect },
            VpConfig::Perfect,
            &t,
        );
        assert!(
            tc.ipc() > conv.ipc(),
            "trace cache {:.2} vs conventional {:.2}",
            tc.ipc(),
            conv.ipc()
        );
    }

    #[test]
    fn banked_front_end_denies_some_predictions_under_trace_cache() {
        let t = chain_trace(5_000);
        let fe = FrontEnd::TraceCache { config: TraceCacheConfig::paper(), btb: BtbKind::Perfect };
        let cfg = RealisticConfig::paper(fe, VpConfig::stride_infinite())
            .with_banked(BankedConfig::new(4));
        let r = RealisticMachine::new(cfg).run(&t);
        let banked = r.banked_stats.expect("banked stats present");
        assert!(banked.slots > 0);
        // The 3-instruction loop body maps its value producers to fixed
        // banks; multi-iteration trace lines produce merges.
        assert!(banked.merged > 0, "{banked:?}");
    }

    #[test]
    fn banked_with_one_bank_loses_performance() {
        let t = chain_trace(5_000);
        let fe = FrontEnd::TraceCache { config: TraceCacheConfig::paper(), btb: BtbKind::Perfect };
        let unconstrained =
            RealisticMachine::new(RealisticConfig::paper(fe, VpConfig::stride_infinite())).run(&t);
        let one_bank = RealisticMachine::new(
            RealisticConfig::paper(fe, VpConfig::stride_infinite())
                .with_banked(BankedConfig::new(1)),
        )
        .run(&t);
        assert!(one_bank.cycles >= unconstrained.cycles);
        assert!(one_bank.banked_stats.unwrap().denied > 0);
    }

    #[test]
    fn all_instructions_are_scheduled_exactly_once() {
        let t = chain_trace(1_000);
        for fe in [
            conventional(Some(1), BtbKind::Perfect),
            conventional(None, BtbKind::two_level_paper()),
            FrontEnd::TraceCache {
                config: TraceCacheConfig::paper(),
                btb: BtbKind::two_level_paper(),
            },
        ] {
            let r = run(fe, VpConfig::stride_infinite(), &t);
            assert_eq!(r.instructions, t.len() as u64);
        }
    }

    #[test]
    fn run_traced_matches_run_and_emits_all_pipeline_lanes() {
        let t = chain_trace(500);
        let fe = FrontEnd::TraceCache { config: TraceCacheConfig::paper(), btb: BtbKind::Perfect };
        let cfg = RealisticConfig::paper(fe, VpConfig::stride_infinite())
            .with_banked(BankedConfig::new(1));
        let machine = RealisticMachine::new(cfg);
        let plain = machine.run(&t);
        let mut events: Vec<Event> = Vec::new();
        let traced = machine.run_traced(&t, Some(&mut events));
        assert_eq!(plain, traced, "tracing must not perturb the simulation");
        // Four spans per instruction.
        let spans = events.iter().filter(|e| e.kind == fetchvp_tracing::EventKind::Span).count();
        assert_eq!(spans as u64, 4 * traced.instructions);
        for lane in [Lane::Fetch, Lane::Dispatch, Lane::Issue, Lane::Writeback, Lane::Predict] {
            assert!(events.iter().any(|e| e.lane == lane), "no events in {lane:?}");
        }
        // One bank forces conflicts on this workload (denied > 0 asserted
        // in `banked_with_one_bank_loses_performance`).
        assert!(events.iter().any(|e| e.lane == Lane::BankConflict));
    }

    #[test]
    fn usefulness_attribution_covers_all_correct_predictions() {
        let t = chain_trace(2_000);
        for banked in [None, Some(BankedConfig::new(2))] {
            let fe = conventional(Some(4), BtbKind::two_level_paper());
            let mut cfg = RealisticConfig::paper(fe, VpConfig::stride_infinite());
            cfg.banked = banked;
            let r = RealisticMachine::new(cfg).run(&t);
            let s = r.vp_stats.as_ref().expect("vp stats present");
            assert_eq!(
                r.usefulness.useful + r.usefulness.useless,
                s.correct,
                "attribution must cover every correct prediction (banked: {banked:?})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let fe = conventional(None, BtbKind::Perfect);
        RealisticMachine::new(RealisticConfig {
            window: 0,
            ..RealisticConfig::paper(fe, VpConfig::None)
        });
    }
}
