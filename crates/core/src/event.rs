//! An explicitly cycle-stepped (event-driven) realization of the §5
//! machine, used to cross-validate [`crate::RealisticMachine`].
//!
//! [`crate::RealisticMachine`] derives stage times *analytically* (closed-form
//! dispatch/execute/complete recurrences with an unbounded fetch queue).
//! [`EventMachine`] instead steps one cycle at a time with explicit
//! structures — a **bounded fetch queue** with back-pressure on the fetch
//! engine, a reorder window with per-entry state, per-cycle execute and
//! retire limits — the way a hardware-validation simulator would. The two
//! models embody different buffering assumptions, so their cycle counts
//! differ in the third significant digit, but every ordering the paper's
//! conclusions rest on (value prediction helps, bandwidth scales the gain)
//! must agree; `tests/model_cross_validation.rs` asserts exactly that.

use fetchvp_isa::reg::NUM_REGS;
use fetchvp_predictor::ValuePredictor;
use fetchvp_trace::{Trace, NO_REG};

use crate::ideal::disposition_for;
use crate::realistic::RealisticConfig;
use crate::sched::{DepStats, UsefulnessStats, VpDisposition};
use crate::{CycleBreakdown, MachineResult};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// In the window, waiting for operands.
    Waiting,
    /// Executed; result available at the recorded cycle.
    Done {
        /// Cycle the result is available / the entry may retire.
        at: u64,
    },
}

/// Per-register producer record for prediction-usefulness attribution.
/// Unlike the `producer` id array, it survives the producer's retirement
/// (carrying its disposition), so the first consumer can always classify
/// the prediction exactly — no retired-producer approximation.
#[derive(Debug, Clone, Copy)]
struct RegAttr {
    /// Entry id (= trace index) of the producing instruction.
    id: usize,
    vp: VpDisposition,
    consumed: bool,
}

#[derive(Debug, Clone)]
struct Entry {
    vp: VpDisposition,
    /// Window slots of in-flight producers (by entry id), with whether the
    /// producer's prediction lets this consumer issue early.
    srcs: Vec<(usize, VpDisposition)>,
    state: State,
    /// Set while this entry executed on a not-yet-verified wrong value.
    speculative_on: Vec<usize>,
}

/// The event-driven §5 machine.
///
/// Shares [`RealisticConfig`] with the analytic model; the additional
/// `fetch_queue` capacity (in instructions) is fixed at twice the issue
/// width, a typical decode-buffer depth.
///
/// # Example
///
/// ```
/// use fetchvp_core::event::EventMachine;
/// use fetchvp_core::{BtbKind, FrontEnd, RealisticConfig, VpConfig};
/// use fetchvp_isa::{AluOp, Cond, ProgramBuilder, Reg};
/// use fetchvp_trace::trace_program;
///
/// # fn main() -> Result<(), fetchvp_isa::ProgramError> {
/// let mut b = ProgramBuilder::new("loop");
/// b.load_imm(Reg::R1, 2_000);
/// let head = b.bind_label("head");
/// b.alu_imm(AluOp::Sub, Reg::R1, Reg::R1, 1);
/// b.branch(Cond::Ne, Reg::R1, Reg::R0, head);
/// b.halt();
/// let trace = trace_program(&b.build()?, u64::MAX);
/// let fe = FrontEnd::Conventional { width: 40, max_taken: Some(4), btb: BtbKind::Perfect };
/// let r = EventMachine::new(RealisticConfig::paper(fe, VpConfig::stride_infinite())).run(&trace);
/// assert_eq!(r.instructions, trace.len() as u64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EventMachine {
    config: RealisticConfig,
}

impl EventMachine {
    /// Creates a machine with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `issue_width` is zero, or if the configuration
    /// requests the banked §4 front-end (the event model keeps value
    /// prediction per-instruction; use [`crate::RealisticMachine`] for
    /// banked studies).
    pub fn new(config: RealisticConfig) -> EventMachine {
        assert!(config.window > 0, "window must be positive");
        assert!(config.issue_width > 0, "issue width must be positive");
        assert!(config.banked.is_none(), "the event model does not support the banked front-end");
        EventMachine { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> RealisticConfig {
        self.config
    }

    /// Runs the model over a captured trace.
    pub fn run(&self, trace: &Trace) -> MachineResult {
        let cfg = &self.config;
        let view = trace.view();
        let mut engine = cfg.front_end.build();
        let mut predictor: Option<Box<dyn ValuePredictor>> = match cfg.vp {
            crate::VpConfig::Predictor(kind) => Some(kind.build()),
            _ => None,
        };

        let queue_capacity = cfg.issue_width * 2;
        let mut fetch_queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        // Window entries, retired from the front. Entry ids are stable
        // (monotonic) via an offset.
        let mut window: std::collections::VecDeque<Entry> = std::collections::VecDeque::new();
        let mut retired_entries = 0usize; // id offset of window[0]
                                          // Per-register: id of the in-flight producer entry, if any.
        let mut producer: [Option<usize>; NUM_REGS] = [None; NUM_REGS];
        let mut attr: [Option<RegAttr>; NUM_REGS] = [None; NUM_REGS];

        let mut pos = 0usize; // next trace index to fetch
        let mut cycle = 0u64;
        let mut last_retire_cycle = 0u64;
        // Fetch stall: resume once entry `id` is done, plus the penalty.
        let mut stall_on: Option<usize> = None;
        let mut stall_until = 0u64;

        let mut deps = DepStats::default();
        let mut usefulness = UsefulnessStats::default();
        let mut value_replays = 0u64;
        let mut retired = 0u64;
        let total = view.len() as u64;
        let mut breakdown = CycleBreakdown::default();

        while retired < total {
            // -- retire: in-order, up to issue_width per cycle --
            let retired_before = retired;
            let mut can_retire = cfg.issue_width;
            while can_retire > 0 {
                match window.front() {
                    Some(e) if matches!(e.state, State::Done { at } if at <= cycle) => {
                        window.pop_front();
                        retired_entries += 1;
                        retired += 1;
                        can_retire -= 1;
                        last_retire_cycle = cycle;
                    }
                    _ => break,
                }
            }

            // -- execute: issue ready entries, bounded by the unit count --
            let mut units = cfg.exec_units.unwrap_or(usize::MAX);
            for i in 0..window.len() {
                if units == 0 {
                    break;
                }
                if window[i].state != State::Waiting {
                    continue;
                }
                // Ready when every in-flight producer is done — or was
                // predicted (speculation covers both correct and wrong).
                let mut ready = true;
                let mut spec_on = Vec::new();
                for &(pid, pvp) in &window[i].srcs {
                    if pid < retired_entries {
                        continue; // producer already retired
                    }
                    let p = &window[pid - retired_entries];
                    let done = matches!(p.state, State::Done { at } if at <= cycle);
                    match pvp {
                        VpDisposition::None if !done => ready = false,
                        VpDisposition::Wrong if !done => spec_on.push(pid),
                        _ => {}
                    }
                }
                if ready {
                    window[i].state = State::Done { at: cycle + 1 };
                    window[i].speculative_on = spec_on;
                    units -= 1;
                }
            }

            // -- verify speculation: a consumer that executed on a wrong
            //    value re-completes `value_penalty` after the producer --
            for i in 0..window.len() {
                let State::Done { at } = window[i].state else { continue };
                if window[i].speculative_on.is_empty() {
                    continue;
                }
                let mut worst = at;
                let mut unresolved = Vec::new();
                for &pid in &window[i].speculative_on {
                    if pid < retired_entries {
                        continue;
                    }
                    match window[pid - retired_entries].state {
                        State::Done { at: pdone } => {
                            worst = worst.max(pdone + cfg.value_penalty);
                        }
                        State::Waiting => unresolved.push(pid),
                    }
                }
                if worst > at {
                    value_replays += 1;
                }
                window[i].state = State::Done { at: worst };
                window[i].speculative_on = unresolved;
            }

            // -- dispatch: move fetched instructions into the window --
            let mut can_dispatch = cfg.issue_width;
            while can_dispatch > 0 && window.len() < cfg.window {
                let Some(idx) = fetch_queue.pop_front() else { break };
                let rec = view.slot(idx);
                let vp = disposition_for(rec, &cfg.vp, &mut predictor);
                let id = retired_entries + window.len();
                let mut srcs = Vec::new();
                for src in [rec.src1_byte(), rec.src2_byte()] {
                    if src == NO_REG || src == 0 {
                        continue;
                    }
                    // First-consumer prediction attribution: useful iff this
                    // consumer dispatches (now, at `cycle`) before the
                    // producer's writeback.
                    if let Some(a) = attr[src as usize] {
                        if a.vp == VpDisposition::Correct && !a.consumed {
                            attr[src as usize] = Some(RegAttr { consumed: true, ..a });
                            let did = (id - a.id) as u64;
                            let useful = a.id >= retired_entries
                                && match window[a.id - retired_entries].state {
                                    State::Waiting => true,
                                    State::Done { at } => cycle < at,
                                };
                            if useful {
                                usefulness.useful += 1;
                                usefulness.did_useful.record(did);
                            } else {
                                usefulness.useless += 1;
                                usefulness.did_useless.record(did);
                            }
                        }
                    }
                    if let Some(pid) = producer[src as usize] {
                        deps.total += 1;
                        if pid >= retired_entries {
                            let pvp = window[pid - retired_entries].vp;
                            match pvp {
                                VpDisposition::Correct => deps.useful += 1,
                                VpDisposition::Wrong => deps.wrong += 1,
                                VpDisposition::None => deps.unpredicted += 1,
                            }
                            srcs.push((pid, pvp));
                        } else {
                            // Producer already retired: the value was ready
                            // long before this consumer dispatched.
                            match self.retired_disposition() {
                                VpDisposition::Correct => deps.useless_correct += 1,
                                VpDisposition::Wrong => deps.wrong += 1,
                                VpDisposition::None => deps.unpredicted += 1,
                            }
                        }
                    }
                }
                let dst = rec.dst_byte();
                if dst != NO_REG {
                    producer[dst as usize] = Some(id);
                    let fresh = RegAttr { id, vp, consumed: false };
                    if let Some(prev) = attr[dst as usize].replace(fresh) {
                        if prev.vp == VpDisposition::Correct && !prev.consumed {
                            usefulness.useless += 1;
                        }
                    }
                }
                window.push_back(Entry {
                    vp,
                    srcs,
                    state: State::Waiting,
                    speculative_on: Vec::new(),
                });
                can_dispatch -= 1;
            }

            // -- fetch: refill the queue unless stalled on a mispredict --
            if let Some(bid) = stall_on {
                if bid < retired_entries {
                    stall_on = None; // branch retired: stall resolved earlier
                } else if let Some(entry) = window.get(bid - retired_entries) {
                    // Not yet dispatched entries keep the stall pending.
                    if let State::Done { at } = entry.state {
                        stall_until = at + cfg.branch_penalty;
                        stall_on = None;
                    }
                }
            }
            if stall_on.is_none() && cycle >= stall_until && pos < view.len() {
                let space = queue_capacity.saturating_sub(fetch_queue.len());
                if space > 0 {
                    let group = engine.fetch(view, pos, space);
                    for k in 0..group.len {
                        fetch_queue.push_back(pos + k);
                    }
                    if let Some(k) = group.mispredict {
                        // The offending branch will dispatch as entry:
                        let branch_id =
                            retired_entries + window.len() + fetch_queue.len() - (group.len - k);
                        stall_on = Some(branch_id);
                        stall_until = u64::MAX; // until the branch resolves
                    }
                    pos += group.len;
                }
            }

            // -- slot accounting: attribute every retire slot --
            let used = (retired - retired_before) as usize;
            breakdown.retiring += used as u64;
            let idle = (cfg.issue_width - used) as u64;
            if stall_on.is_some() || cycle < stall_until {
                breakdown.mispredict_stall += idle;
            } else if window.is_empty() && fetch_queue.is_empty() {
                breakdown.fetch_starved += idle;
            } else {
                breakdown.dataflow_stall += idle;
            }

            cycle += 1;
            assert!(
                cycle < total.saturating_mul(64) + 1_000_000,
                "event machine failed to make progress"
            );
        }

        // End of run: correct predictions never consumed are useless.
        for a in attr.iter().flatten() {
            if a.vp == VpDisposition::Correct && !a.consumed {
                usefulness.useless += 1;
            }
        }

        MachineResult {
            instructions: total,
            cycles: last_retire_cycle,
            vp_stats: predictor.map(|p| p.stats()),
            deps,
            usefulness,
            value_replays,
            bpred_stats: Some(engine.bpred_stats()),
            trace_cache_stats: engine.trace_cache_stats(),
            banked_stats: None,
            bac_stats: engine.bac_stats(),
            cycle_breakdown: Some(breakdown),
        }
    }

    /// The disposition a *retired* producer had. The analytic model tracks
    /// this exactly; here it is recomputed conservatively: a retired
    /// producer's value was ready before the consumer dispatched, so a
    /// correct prediction for it was by definition useless. We cannot
    /// cheaply recover whether a prediction was made, so classify from the
    /// machine's VP mode.
    fn retired_disposition(&self) -> VpDisposition {
        match self.config.vp {
            crate::VpConfig::None => VpDisposition::None,
            // Approximation: count it as a (useless) correct prediction.
            _ => VpDisposition::Correct,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::realistic::{BtbKind, FrontEnd};
    use crate::VpConfig;
    use fetchvp_isa::{AluOp, Cond, ProgramBuilder, Reg};
    use fetchvp_trace::trace_program;

    fn chain_trace(iters: i64) -> Trace {
        let mut b = ProgramBuilder::new("chain");
        b.load_imm(Reg::R1, 0);
        b.load_imm(Reg::R2, iters);
        let head = b.bind_label("head");
        b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 5);
        b.alu_imm(AluOp::Sub, Reg::R2, Reg::R2, 1);
        b.branch(Cond::Ne, Reg::R2, Reg::R0, head);
        b.halt();
        trace_program(&b.build().unwrap(), u64::MAX)
    }

    fn fe(max_taken: Option<u32>) -> FrontEnd {
        FrontEnd::Conventional { width: 40, max_taken, btb: BtbKind::Perfect }
    }

    #[test]
    fn retires_every_instruction() {
        let t = chain_trace(2_000);
        let r = EventMachine::new(RealisticConfig::paper(fe(Some(4)), VpConfig::None)).run(&t);
        assert_eq!(r.instructions, t.len() as u64);
        assert!(r.ipc() > 0.5);
        let b = r.cycle_breakdown.expect("event machine attributes cycles");
        assert!(b.total() > 0);
        assert!(b.retiring > 0);
    }

    #[test]
    fn value_prediction_converts_dataflow_stalls_into_retirement() {
        let t = chain_trace(4_000);
        let base = EventMachine::new(RealisticConfig::paper(fe(Some(4)), VpConfig::None))
            .run(&t)
            .cycle_breakdown
            .unwrap();
        let vp = EventMachine::new(RealisticConfig::paper(fe(Some(4)), VpConfig::Perfect))
            .run(&t)
            .cycle_breakdown
            .unwrap();
        assert!(
            vp.dataflow_stall < base.dataflow_stall,
            "VP should remove dataflow stalls: {} -> {}",
            base.dataflow_stall,
            vp.dataflow_stall
        );
    }

    #[test]
    fn value_prediction_helps_here_too() {
        let t = chain_trace(4_000);
        let base = EventMachine::new(RealisticConfig::paper(fe(Some(4)), VpConfig::None)).run(&t);
        let vp =
            EventMachine::new(RealisticConfig::paper(fe(Some(4)), VpConfig::stride_infinite()))
                .run(&t);
        assert!(vp.cycles < base.cycles, "VP {} cycles vs base {}", vp.cycles, base.cycles);
    }

    #[test]
    fn bandwidth_scales_the_gain() {
        let t = chain_trace(4_000);
        let speedup = |n| {
            let base = EventMachine::new(RealisticConfig::paper(fe(n), VpConfig::None)).run(&t);
            let vp = EventMachine::new(RealisticConfig::paper(fe(n), VpConfig::stride_infinite()))
                .run(&t);
            vp.speedup_over(&base)
        };
        assert!(speedup(None) >= speedup(Some(1)) - 0.02);
    }

    #[test]
    fn ipc_respects_the_issue_width() {
        let t = chain_trace(2_000);
        let cfg = RealisticConfig {
            issue_width: 4,
            ..RealisticConfig::paper(fe(None), VpConfig::Perfect)
        };
        let r = EventMachine::new(cfg).run(&t);
        assert!(r.ipc() <= 4.0 + 1e-9, "IPC {}", r.ipc());
    }

    #[test]
    fn usefulness_attribution_covers_all_correct_predictions() {
        let t = chain_trace(2_000);
        let r = EventMachine::new(RealisticConfig::paper(fe(Some(4)), VpConfig::stride_infinite()))
            .run(&t);
        let s = r.vp_stats.as_ref().expect("vp stats present");
        assert_eq!(r.usefulness.useful + r.usefulness.useless, s.correct);
        assert!(s.correct > 0);
    }

    #[test]
    #[should_panic(expected = "banked front-end")]
    fn banked_configuration_is_rejected() {
        let cfg = RealisticConfig::paper(fe(None), VpConfig::stride_infinite())
            .with_banked(fetchvp_predictor::BankedConfig::new(4));
        EventMachine::new(cfg);
    }
}
