//! Machine models reproducing Gabbay & Mendelson, *"The Effect of
//! Instruction Fetch Bandwidth on Value Prediction"*, ISCA 1998.
//!
//! Two execution models are provided:
//!
//! * [`IdealMachine`] (§3) — an implementation-independent limit model that
//!   is "only limited by true-data dependencies in the program and the
//!   instruction window size", with the fetch/issue rate artificially capped
//!   at 4–40 instructions per cycle. It reproduces Figure 3.1 and the
//!   pipeline walk-through of Table 3.2.
//! * [`RealisticMachine`] (§5) — a 40-entry-window, 40-unit machine with
//!   register renaming, a pluggable fetch engine (taken-branch-limited
//!   conventional fetch or trace cache), a pluggable branch predictor
//!   (3-cycle misprediction penalty) and value prediction with a 1-cycle
//!   value-misprediction penalty. It reproduces Figures 5.1–5.3.
//!
//! A third, [`event`]-driven realization of the §5 machine cross-validates
//! the analytic one with explicit per-cycle structures and fetch-queue
//! back-pressure.
//!
//! Both primary machines are thin wrappers over the [`batch`] module's
//! per-slot pipeline stepper; [`run_batch`] advances many configurations
//! in lockstep over a single trace walk, which is how the experiment
//! sweeps amortize trace traversal across configs.
//!
//! Both primary models share the same dataflow [`sched`]uling core, and both follow
//! the paper's pipeline of Table 3.2 (Fetch → Decode/Issue → Execute →
//! Commit, unit execution latency).
//!
//! Modelling notes (see `DESIGN.md` for the full list):
//!
//! * True dependencies are carried through registers; memory disambiguation
//!   is assumed perfect and store-to-load forwarding free, matching the
//!   paper's dataflow-graph analysis, which is built over register
//!   dependencies.
//! * Wrong-path instructions are not simulated; a branch misprediction
//!   stalls fetch until the branch executes plus the 3-cycle penalty.
//!
//! # Example
//!
//! Measure the value-prediction speedup of an ideal fetch-16 machine:
//!
//! ```
//! use fetchvp_core::{IdealConfig, IdealMachine, VpConfig};
//! use fetchvp_isa::{AluOp, Cond, ProgramBuilder, Reg};
//! use fetchvp_trace::trace_program;
//!
//! # fn main() -> Result<(), fetchvp_isa::ProgramError> {
//! let mut b = ProgramBuilder::new("chain");
//! b.load_imm(Reg::R1, 0);
//! b.load_imm(Reg::R2, 10_000);
//! let head = b.bind_label("head");
//! b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 3); // strided chain
//! b.branch(Cond::Lt, Reg::R1, Reg::R2, head);
//! b.halt();
//! let trace = trace_program(&b.build()?, 100_000);
//!
//! let base = IdealMachine::new(IdealConfig { fetch_rate: 16, vp: VpConfig::None, ..IdealConfig::default() });
//! let vp = IdealMachine::new(IdealConfig { fetch_rate: 16, vp: VpConfig::stride_infinite(), ..IdealConfig::default() });
//! let (b_res, v_res) = (base.run(&trace), vp.run(&trace));
//! assert!(v_res.ipc() > b_res.ipc());
//! # Ok(())
//! # }
//! ```

// Public API of the hot path: every item must explain itself.
#![deny(missing_docs)]

pub mod batch;
pub mod event;
pub mod ideal;
pub mod realistic;
pub mod sched;
pub mod vp;

pub use batch::{run_batch, BatchRunner, MachineConfig, ProgressSink};
pub use event::EventMachine;
pub use ideal::{pipeline_trace, IdealConfig, IdealMachine, StageTimes};
pub use realistic::{BtbKind, FrontEnd, RealisticConfig, RealisticMachine};
pub use sched::{DepStats, SchedStats, UsefulnessStats};
pub use vp::{PredictorKind, VpConfig};

use std::fmt;

use fetchvp_bpred::BpredStats;
use fetchvp_fetch::{BacStats, TraceCacheStats};
use fetchvp_metrics::{MetricsSink, Registry};
use fetchvp_predictor::{BankedStats, PredictorStats};

/// Attribution of every *retire slot* (issue width × cycles) to the
/// resource that filled or squandered it, as recorded by the event-driven
/// machine (the analytic models do not step cycles and leave this `None`).
///
/// This is the classic simulator cycle-accounting view of the paper's
/// story: value prediction converts `dataflow_stall` slots into `retiring`
/// ones — but only the slots that fetch bandwidth actually delivered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Slots that retired an instruction.
    pub retiring: u64,
    /// Slots lost while fetch waited on a mispredicted branch.
    pub mispredict_stall: u64,
    /// Slots lost with an empty window and queue (fetch bandwidth).
    pub fetch_starved: u64,
    /// Slots lost while in-flight instructions waited on true data
    /// dependencies — the stall value prediction attacks.
    pub dataflow_stall: u64,
}

impl CycleBreakdown {
    /// Total attributed slots.
    pub fn total(&self) -> u64 {
        self.retiring + self.mispredict_stall + self.fetch_starved + self.dataflow_stall
    }

    /// The fraction of slots attributed to `count`.
    pub fn fraction(&self, count: u64) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            count as f64 / self.total() as f64
        }
    }
}

impl MetricsSink for CycleBreakdown {
    fn export_metrics(&self, reg: &mut Registry, prefix: &str) {
        reg.counter(prefix, "retiring", self.retiring);
        reg.counter(prefix, "mispredict_stall", self.mispredict_stall);
        reg.counter(prefix, "fetch_starved", self.fetch_starved);
        reg.counter(prefix, "dataflow_stall", self.dataflow_stall);
    }
}

/// The outcome of one machine run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MachineResult {
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Value-predictor statistics, when value prediction was enabled.
    pub vp_stats: Option<PredictorStats>,
    /// Dependence-level usefulness classification.
    pub deps: DepStats,
    /// Per-prediction usefulness attribution (first-consumer rule). All
    /// zero when value prediction is off.
    pub usefulness: UsefulnessStats,
    /// Consumers replayed due to a value misprediction (1-cycle penalty).
    pub value_replays: u64,
    /// Branch-predictor statistics (realistic machine only).
    pub bpred_stats: Option<BpredStats>,
    /// Trace-cache statistics (realistic machine with trace cache only).
    pub trace_cache_stats: Option<TraceCacheStats>,
    /// Banked prediction front-end statistics (when the §4 front-end is in
    /// use).
    pub banked_stats: Option<BankedStats>,
    /// Branch-address-cache statistics (realistic machine with the §2.2
    /// BAC front-end only).
    pub bac_stats: Option<BacStats>,
    /// Per-cycle stall attribution (event machine only).
    pub cycle_breakdown: Option<CycleBreakdown>,
}

impl MachineResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Exports every statistic this run produced into one namespaced
    /// [`Registry`] snapshot.
    ///
    /// Sections present on every run: `machine.*` (instructions, cycles,
    /// IPC) and `sched.*` (scheduling and dependence-classification
    /// counters). Optional sections appear when the corresponding hardware
    /// was configured: `predictor.*` (value predictor),
    /// `predictor.banked.*` (§4 banked front-end), `fetch.bpred.*`,
    /// `fetch.trace_cache.*`, `fetch.bac.*` and `machine.slots.*` (event
    /// machine cycle accounting).
    ///
    /// ```
    /// use fetchvp_core::{IdealConfig, IdealMachine, VpConfig};
    /// use fetchvp_isa::{ProgramBuilder, Reg};
    /// use fetchvp_trace::trace_program;
    ///
    /// # fn main() -> Result<(), fetchvp_isa::ProgramError> {
    /// let mut b = ProgramBuilder::new("p");
    /// b.load_imm(Reg::R1, 1);
    /// b.halt();
    /// let trace = trace_program(&b.build()?, 10);
    /// let cfg = IdealConfig { vp: VpConfig::stride_infinite(), ..IdealConfig::default() };
    /// let reg = IdealMachine::new(cfg).run(&trace).metrics();
    /// assert_eq!(reg.get_counter("machine.instructions"), Some(1));
    /// assert!(reg.get_counter("predictor.lookups").is_some());
    /// # Ok(())
    /// # }
    /// ```
    pub fn metrics(&self) -> Registry {
        let mut reg = Registry::new();
        reg.counter("machine", "instructions", self.instructions);
        reg.counter("machine", "cycles", self.cycles);
        reg.gauge("machine", "ipc", self.ipc());
        let sched = SchedStats {
            instructions: self.instructions,
            last_complete: self.cycles,
            value_replays: self.value_replays,
            deps: self.deps,
        };
        sched.export_metrics(&mut reg, "sched");
        if let Some(s) = &self.vp_stats {
            s.export_metrics(&mut reg, "predictor");
        }
        // Prediction-level attribution: `predictor.useful` /
        // `predictor.useless` (summing to the correct predictions) and the
        // DID histograms under `machine.did_hist.*`. Omitted entirely when
        // no prediction was made, like the other optional sections.
        if self.vp_stats.is_some() || self.usefulness != UsefulnessStats::default() {
            self.usefulness.export(&mut reg);
        }
        if let Some(s) = &self.banked_stats {
            s.export_metrics(&mut reg, "predictor.banked");
        }
        if let Some(s) = &self.bpred_stats {
            s.export_metrics(&mut reg, "fetch.bpred");
        }
        if let Some(s) = &self.trace_cache_stats {
            s.export_metrics(&mut reg, "fetch.trace_cache");
        }
        if let Some(s) = &self.bac_stats {
            s.export_metrics(&mut reg, "fetch.bac");
        }
        if let Some(s) = &self.cycle_breakdown {
            s.export_metrics(&mut reg, "machine.slots");
        }
        reg
    }

    /// The speedup of `self` over `baseline` (same workload, same fetch
    /// configuration, value prediction off), expressed as a fraction:
    /// `0.5` means 50% faster, the unit the paper's figures use.
    ///
    /// # Panics
    ///
    /// Panics if the two results ran different instruction counts.
    pub fn speedup_over(&self, baseline: &MachineResult) -> f64 {
        assert_eq!(
            self.instructions, baseline.instructions,
            "speedup requires identical workloads"
        );
        if self.cycles == 0 {
            return 0.0;
        }
        baseline.cycles as f64 / self.cycles as f64 - 1.0
    }
}

impl fmt::Display for MachineResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} instructions in {} cycles (IPC {:.2})",
            self.instructions,
            self.cycles,
            self.ipc()
        )?;
        if let Some(s) = &self.vp_stats {
            writeln!(
                f,
                "value prediction : coverage {:.1}%, accuracy {:.1}%, {} replays",
                100.0 * s.coverage(),
                100.0 * s.accuracy(),
                self.value_replays
            )?;
        }
        let d = self.deps;
        writeln!(
            f,
            "dependencies     : {} total — {} useful, {} correct-but-useless, {} wrong, {} unpredicted",
            d.total, d.useful, d.useless_correct, d.wrong, d.unpredicted
        )?;
        let u = &self.usefulness;
        if u.useful + u.useless > 0 {
            writeln!(
                f,
                "prediction use   : {} useful, {} useless ({:.1}% useful)",
                u.useful,
                u.useless,
                100.0 * u.useful_fraction()
            )?;
        }
        if let Some(b) = &self.bpred_stats {
            writeln!(
                f,
                "branch prediction: {:.1}% ({:.1}% conditional)",
                100.0 * b.accuracy(),
                100.0 * b.cond_accuracy()
            )?;
        }
        if let Some(tc) = &self.trace_cache_stats {
            writeln!(
                f,
                "trace cache      : {:.1}% hit rate, {} fills",
                100.0 * tc.hit_rate(),
                tc.fills
            )?;
        }
        if let Some(bk) = &self.banked_stats {
            writeln!(f, "banked predictor : {bk}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_mentions_ipc() {
        let r = MachineResult { instructions: 100, cycles: 50, ..MachineResult::default() };
        let text = r.to_string();
        assert!(text.contains("IPC 2.00"), "{text}");
        assert!(text.contains("dependencies"));
    }

    #[test]
    fn ipc_and_speedup() {
        let base = MachineResult { instructions: 100, cycles: 200, ..MachineResult::default() };
        let fast = MachineResult { instructions: 100, cycles: 100, ..MachineResult::default() };
        assert!((base.ipc() - 0.5).abs() < 1e-12);
        assert!((fast.speedup_over(&base) - 1.0).abs() < 1e-12);
        assert!((base.speedup_over(&base)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "identical workloads")]
    fn speedup_rejects_mismatched_runs() {
        let a = MachineResult { instructions: 10, cycles: 10, ..MachineResult::default() };
        let b = MachineResult { instructions: 20, cycles: 10, ..MachineResult::default() };
        let _ = a.speedup_over(&b);
    }

    #[test]
    fn zero_cycles_guards() {
        let z = MachineResult::default();
        assert_eq!(z.ipc(), 0.0);
        assert_eq!(z.speedup_over(&z), 0.0);
    }
}
