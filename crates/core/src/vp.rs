//! Value-prediction configuration shared by both machine models.

use fetchvp_predictor::{
    ConfidenceConfig, FcmPredictor, HybridPredictor, LastValuePredictor, StrideKind,
    StridePredictor, TableGeometry, ValuePredictor,
};

/// Which concrete value predictor to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictorKind {
    /// Last-value prediction (\[13\], \[14\]).
    LastValue {
        /// Prediction-table geometry.
        geometry: TableGeometry,
        /// Classification configuration.
        confidence: ConfidenceConfig,
    },
    /// Stride prediction (\[7\], \[8\]) — the paper's workhorse.
    Stride {
        /// Prediction-table geometry.
        geometry: TableGeometry,
        /// Classification configuration.
        confidence: ConfidenceConfig,
        /// Stride-update policy.
        kind: StrideKind,
    },
    /// The §4.2 hybrid (large last-value table + small stride table).
    Hybrid,
    /// The finite-context-method predictor of reference \[22\].
    Fcm {
        /// Classification configuration.
        confidence: ConfidenceConfig,
    },
}

impl PredictorKind {
    /// Instantiates the predictor.
    pub fn build(&self) -> Box<dyn ValuePredictor> {
        match *self {
            PredictorKind::LastValue { geometry, confidence } => {
                Box::new(LastValuePredictor::new(geometry, confidence))
            }
            PredictorKind::Stride { geometry, confidence, kind } => {
                Box::new(StridePredictor::with_kind(geometry, confidence, kind))
            }
            PredictorKind::Hybrid => Box::new(HybridPredictor::paper()),
            PredictorKind::Fcm { confidence } => {
                Box::new(FcmPredictor::with_confidence(confidence))
            }
        }
    }
}

/// The machine's value-prediction mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VpConfig {
    /// Value prediction disabled (the baseline of every figure).
    None,
    /// An oracle predictor with 100% accuracy, used for the §3.3 worked
    /// example (Table 3.2) and for isolating fetch effects from accuracy.
    Perfect,
    /// A real predictor.
    Predictor(PredictorKind),
}

impl VpConfig {
    /// The §3 configuration: infinite stride prediction table with 2-bit
    /// saturating-counter classification.
    pub fn stride_infinite() -> VpConfig {
        VpConfig::Predictor(PredictorKind::Stride {
            geometry: TableGeometry::Infinite,
            confidence: ConfidenceConfig::paper(),
            kind: StrideKind::Simple,
        })
    }

    /// Whether any form of value prediction is active.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, VpConfig::None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_infinite_builds_a_stride_predictor() {
        match VpConfig::stride_infinite() {
            VpConfig::Predictor(kind) => assert_eq!(kind.build().name(), "stride"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn all_kinds_build() {
        let kinds = [
            PredictorKind::LastValue {
                geometry: TableGeometry::Infinite,
                confidence: ConfidenceConfig::paper(),
            },
            PredictorKind::Stride {
                geometry: TableGeometry::Infinite,
                confidence: ConfidenceConfig::paper(),
                kind: StrideKind::TwoDelta,
            },
            PredictorKind::Hybrid,
            PredictorKind::Fcm { confidence: ConfidenceConfig::paper() },
        ];
        let names: Vec<_> = kinds.iter().map(|k| k.build().name().to_owned()).collect();
        assert_eq!(names, ["last-value", "stride-2delta", "hybrid", "fcm"]);
    }

    #[test]
    fn enablement() {
        assert!(!VpConfig::None.is_enabled());
        assert!(VpConfig::Perfect.is_enabled());
        assert!(VpConfig::stride_infinite().is_enabled());
    }
}
