//! Dependency-free deterministic property-testing helpers.
//!
//! The workspace must build and test with `cargo build --offline` on a
//! machine that has never reached crates.io, so the test suites cannot use
//! `proptest`. This crate provides the two pieces those suites actually
//! need: a seedable generator of random test data ([`Rng`], SplitMix64) and
//! a driver that runs a property over many deterministically-seeded cases
//! ([`for_cases`]).
//!
//! Failures are ordinary assertion panics; because every case is derived
//! from a fixed seed and a case index, a failing case reproduces exactly on
//! any machine — include the case index in the assertion message to name
//! it.
//!
//! # Example
//!
//! ```
//! use fetchvp_testutil::for_cases;
//!
//! for_cases(32, |case, rng| {
//!     let x = rng.below(100);
//!     assert!(x < 100, "case {case}: {x}");
//! });
//! ```

/// A SplitMix64 pseudo-random generator for test data.
///
/// Identical seeds produce identical streams on every platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value uniform in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }

    /// A value uniform in the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// A signed value uniform in the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// A `usize` uniform in the half-open range `lo..hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// An unbiased coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniform float in `[0, 1)`, built from the top 53 bits of one
    /// draw so every representable value is an exact dyadic rational.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A vector of `self.range_usize(len_lo, len_hi)` elements, each drawn
    /// by `f`.
    pub fn vec_with<T>(
        &mut self,
        len_lo: usize,
        len_hi: usize,
        mut f: impl FnMut(&mut Rng) -> T,
    ) -> Vec<T> {
        let len = self.range_usize(len_lo, len_hi);
        (0..len).map(|_| f(self)).collect()
    }

    /// A uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "cannot pick from an empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// Runs a property over `cases` deterministically-seeded random cases.
///
/// The closure receives the case index (for assertion messages) and a
/// generator seeded from that index, so every run of the suite explores the
/// same cases in the same order.
pub fn for_cases(cases: usize, mut f: impl FnMut(usize, &mut Rng)) {
    for case in 0..cases {
        // Decorate the index so consecutive cases start far apart in the
        // SplitMix64 sequence.
        let mut rng = Rng::new((case as u64).wrapping_mul(0xA076_1D64_78BD_642F) ^ 0x1998);
        f(case, &mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng::new(3);
        for _ in 0..1000 {
            assert!((5..9).contains(&r.range_u64(5, 9)));
            assert!((-4..7).contains(&r.range_i64(-4, 7)));
            assert!((1..3).contains(&r.range_usize(1, 3)));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::new(0).range_u64(4, 4);
    }

    #[test]
    fn vec_with_honours_length_range() {
        let mut r = Rng::new(7);
        for _ in 0..100 {
            let v = r.vec_with(2, 6, |r| r.below(10));
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn unit_f64_stays_in_range_and_varies() {
        let mut r = Rng::new(3);
        let draws: Vec<f64> = (0..200).map(|_| r.unit_f64()).collect();
        assert!(draws.iter().all(|x| (0.0..1.0).contains(x)));
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn pick_returns_member() {
        let xs = [10, 20, 30];
        let mut r = Rng::new(1);
        for _ in 0..50 {
            assert!(xs.contains(r.pick(&xs)));
        }
    }

    #[test]
    fn for_cases_is_reproducible() {
        let mut first = Vec::new();
        for_cases(5, |_, rng| first.push(rng.next_u64()));
        let mut second = Vec::new();
        for_cases(5, |_, rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
        // Distinct cases see distinct streams.
        assert_ne!(first[0], first[1]);
    }
}
