//! A bounded multi-producer/multi-consumer job queue with backpressure.
//!
//! Producers are connection-handler threads calling
//! [`BoundedQueue::try_push`], which **never blocks**: when the queue is at
//! capacity the item comes straight back and the handler answers `503
//! Retry-After` — admission control instead of unbounded buffering.
//! Consumers are pool workers calling [`BoundedQueue::pop`], which blocks
//! on a condvar until work arrives or the queue is closed. Closing
//! ([`BoundedQueue::close`]) rejects new pushes but lets consumers drain
//! every item already admitted — the graceful-shutdown contract: a job the
//! server `202`-accepted is never dropped.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue (see the module docs for the contract).
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    ready: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (`0` is clamped to 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            capacity: capacity.max(1),
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current queue depth.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to enqueue without blocking. Returns the new depth, or the
    /// item back if the queue is full or closed — the caller's `503`.
    pub fn try_push(&self, item: T) -> Result<usize, T> {
        let mut state = self.lock();
        if state.closed || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Dequeues the oldest item, blocking while the queue is open and
    /// empty. Returns `None` once the queue is closed **and** drained —
    /// the worker's signal to exit.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: future pushes fail, and blocked consumers wake to
    /// drain what remains and then exit.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn backpressure_rejects_without_blocking() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(3), "full queue must bounce the item back");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(4), Ok(2));
    }

    #[test]
    fn close_drains_admitted_items_then_stops() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(3), "closed queue must reject new work");
        assert_eq!(q.pop(), Some(1), "admitted work must still drain");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "drained + closed ends the consumer");
    }

    #[test]
    fn items_flow_producers_to_consumers() {
        let q = Arc::new(BoundedQueue::new(64));
        let consumed: Vec<u64> = std::thread::scope(|s| {
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let q = Arc::clone(&q);
                    s.spawn(move || {
                        let mut seen = Vec::new();
                        while let Some(item) = q.pop() {
                            seen.push(item);
                        }
                        seen
                    })
                })
                .collect();
            let producers: Vec<_> = (0..4u64)
                .map(|producer| {
                    let q = Arc::clone(&q);
                    s.spawn(move || {
                        for i in 0..16u64 {
                            // Capacity 64 fits all 64 items even if no
                            // consumer has started, so every push succeeds.
                            q.try_push(producer * 16 + i).unwrap();
                        }
                    })
                })
                .collect();
            for p in producers {
                p.join().unwrap();
            }
            q.close();
            let mut all = Vec::new();
            for c in consumers {
                all.extend(c.join().unwrap());
            }
            all
        });
        let mut sorted = consumed;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u64>>());
    }
}
