//! The job table: every submitted job's lifecycle and result.
//!
//! `POST /run` creates a [`JobRecord`] in [`JobStatus::Queued`], a pool
//! worker moves it through [`JobStatus::Running`] to [`JobStatus::Done`]
//! (or [`JobStatus::Failed`] — job panics are isolated with
//! `catch_unwind` and recorded here instead of killing the worker), and
//! `GET /jobs/<id>` serializes the record. Live records (queued or
//! running) are never evicted — the `202` contract — but terminal ones
//! are retained only up to [`MAX_TERMINAL_RECORDS`], oldest-completed
//! first, so a long-lived daemon's job table stays bounded no matter how
//! many jobs flow through it; a record evicted before its client polled
//! it answers `404`, and the client re-submits (deterministic repeats
//! are then result-cache hits).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use fetchvp_experiments::JobSpec;
use fetchvp_metrics::Json;

use crate::progress::JobProgress;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; the record holds the result document.
    Done,
    /// The runner errored or panicked; the record holds the message.
    Failed,
}

impl JobStatus {
    /// The status as the wire string (`"queued"`, `"running"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }

    /// Whether the job has reached a terminal state.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobStatus::Done | JobStatus::Failed)
    }
}

/// One job's full state.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The id handed back by `POST /run`.
    pub id: u64,
    /// The validated spec the job was created from.
    pub spec: JobSpec,
    /// Lifecycle state.
    pub status: JobStatus,
    /// The result document, once [`JobStatus::Done`].
    pub result: Option<Json>,
    /// The failure message, once [`JobStatus::Failed`].
    pub error: Option<String>,
    /// Live progress: totals for the `progress` snapshot plus the event
    /// ring behind `GET /jobs/<id>/events`.
    pub progress: Arc<JobProgress>,
}

impl JobRecord {
    /// The `GET /jobs/<id>` document.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("job".to_string(), Json::UInt(self.id)),
            ("status".to_string(), Json::Str(self.status.as_str().to_string())),
            ("spec".to_string(), self.spec.to_json()),
            ("progress".to_string(), self.progress.snapshot_json()),
        ];
        if let Some(result) = &self.result {
            pairs.push(("result".to_string(), result.clone()));
        }
        if let Some(error) = &self.error {
            pairs.push(("error".to_string(), Json::Str(error.clone())));
        }
        Json::object(pairs)
    }
}

/// How many terminal (done/failed) records a table retains by default
/// before the oldest-completed are evicted. Result documents are a few
/// KiB each, so the ceiling bounds the table at a few tens of MB while
/// still giving a polling client minutes of slack at any realistic
/// drain rate.
pub const MAX_TERMINAL_RECORDS: usize = 4096;

/// How many progress events each job's ring retains by default for
/// `GET /jobs/<id>/events` readers. A reader that falls further behind
/// loses the oldest events (and is told how many); the terminal event is
/// always the newest, so it is never lost.
pub const DEFAULT_PROGRESS_EVENTS: usize = 512;

/// The records plus the completion-order ring that bounds them.
#[derive(Debug)]
struct Records {
    by_id: HashMap<u64, JobRecord>,
    /// Terminal ids oldest-completed first — the eviction order.
    terminal: VecDeque<u64>,
}

/// Thread-safe id allocation and record storage.
///
/// In a fleet, job ids double as a routing tag: a table built with
/// [`JobTable::sharded`]`(stride, offset)` hands out `offset + k·stride`
/// (for `k = 1, 2, 3, …`), so `id % stride` recovers which member
/// created the record and `GET /jobs/<id>` can be proxied to its owner
/// without any shared id service. A standalone daemon uses stride 1,
/// offset 0 — the plain `1, 2, 3, …` sequence.
#[derive(Debug)]
pub struct JobTable {
    next_serial: AtomicU64,
    stride: u64,
    offset: u64,
    terminal_cap: usize,
    progress_capacity: usize,
    records: Mutex<Records>,
}

impl Default for JobTable {
    fn default() -> JobTable {
        JobTable::new()
    }
}

impl JobTable {
    /// An empty table; ids start at 1.
    pub fn new() -> JobTable {
        JobTable::sharded(1, 0)
    }

    /// An empty table handing out ids `offset + k·stride`, for a fleet
    /// member at index `offset` of a `stride`-member fleet.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= stride` — the encoding would be ambiguous.
    pub fn sharded(stride: u64, offset: u64) -> JobTable {
        assert!(stride > 0 && offset < stride, "job-id shard offset must be < stride");
        JobTable {
            next_serial: AtomicU64::new(1),
            stride,
            offset,
            terminal_cap: MAX_TERMINAL_RECORDS,
            progress_capacity: DEFAULT_PROGRESS_EVENTS,
            records: Mutex::new(Records { by_id: HashMap::new(), terminal: VecDeque::new() }),
        }
    }

    /// Overrides how many terminal records are retained (clamped to at
    /// least 1) — eviction tuning, and how tests exercise it without
    /// completing [`MAX_TERMINAL_RECORDS`] jobs.
    pub fn with_terminal_cap(mut self, cap: usize) -> JobTable {
        self.terminal_cap = cap.max(1);
        self
    }

    /// Overrides how many progress events each job's ring retains
    /// (clamped to at least 1, so the terminal event always survives).
    pub fn with_progress_capacity(mut self, capacity: usize) -> JobTable {
        self.progress_capacity = capacity.max(1);
        self
    }

    /// The member index encoded in `id` for a `stride`-member fleet.
    pub fn owner_of(id: u64, stride: u64) -> u64 {
        if stride <= 1 {
            0
        } else {
            id % stride
        }
    }

    fn lock(&self) -> MutexGuard<'_, Records> {
        self.records.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn next_id(&self) -> u64 {
        self.next_serial.fetch_add(1, Ordering::Relaxed) * self.stride + self.offset
    }

    /// Records `id` as terminal and evicts the oldest-completed records
    /// beyond the cap. Must run under the table lock.
    fn retire(&self, records: &mut Records, id: u64) {
        records.terminal.push_back(id);
        while records.terminal.len() > self.terminal_cap {
            if let Some(evicted) = records.terminal.pop_front() {
                records.by_id.remove(&evicted);
            }
        }
    }

    /// Allocates an id and inserts a [`JobStatus::Queued`] record. The
    /// record's progress ring opens with a `"queued"` lifecycle event.
    pub fn create(&self, spec: JobSpec) -> u64 {
        let id = self.next_id();
        let progress = Arc::new(JobProgress::new(id, self.progress_capacity));
        progress.set_phase("queued");
        let record =
            JobRecord { id, spec, status: JobStatus::Queued, result: None, error: None, progress };
        self.lock().by_id.insert(id, record);
        id
    }

    /// Removes a record — the rollback when the queue rejects the push
    /// that was supposed to follow [`JobTable::create`].
    pub fn remove(&self, id: u64) {
        self.lock().by_id.remove(&id);
    }

    /// Marks a job running and publishes the `"running"` event.
    pub fn set_running(&self, id: u64) {
        let progress = {
            let mut records = self.lock();
            let Some(record) = records.by_id.get_mut(&id) else { return };
            record.status = JobStatus::Running;
            Arc::clone(&record.progress)
        };
        progress.set_phase("running");
    }

    /// Marks a job done with its result document.
    ///
    /// The terminal `"done"` event is published only after the record
    /// itself is terminal, so a streamer that reacts to the event by
    /// polling `GET /jobs/<id>` always sees the finished record.
    pub fn finish(&self, id: u64, result: Json) {
        let progress = {
            let mut records = self.lock();
            let Some(record) = records.by_id.get_mut(&id) else { return };
            record.status = JobStatus::Done;
            record.result = Some(result);
            let progress = Arc::clone(&record.progress);
            self.retire(&mut records, id);
            progress
        };
        progress.set_phase("done");
    }

    /// Marks a job failed with a message (terminal event ordering as in
    /// [`JobTable::finish`]).
    pub fn fail(&self, id: u64, error: String) {
        let progress = {
            let mut records = self.lock();
            let Some(record) = records.by_id.get_mut(&id) else { return };
            record.status = JobStatus::Failed;
            record.error = Some(error);
            let progress = Arc::clone(&record.progress);
            self.retire(&mut records, id);
            progress
        };
        progress.set_phase("failed");
    }

    /// The job's progress handle — what the worker attaches to its sweep
    /// and the event loop streams from. `None` for unknown (or evicted)
    /// ids.
    pub fn progress(&self, id: u64) -> Option<Arc<JobProgress>> {
        self.lock().by_id.get(&id).map(|record| Arc::clone(&record.progress))
    }

    /// The live (queued or running) jobs as `{job, status, progress}`
    /// documents sorted by id — the `live_jobs` section of a fleet
    /// member's `/fleet/metrics` report.
    pub fn live_json(&self) -> Json {
        let mut live: Vec<&JobRecord> = Vec::new();
        let records = self.lock();
        for record in records.by_id.values() {
            if !record.status.is_terminal() {
                live.push(record);
            }
        }
        live.sort_by_key(|record| record.id);
        Json::Array(
            live.into_iter()
                .map(|record| {
                    Json::object([
                        ("job".to_string(), Json::UInt(record.id)),
                        ("status".to_string(), Json::Str(record.status.as_str().to_string())),
                        ("progress".to_string(), record.progress.snapshot_json()),
                    ])
                })
                .collect(),
        )
    }

    /// The record's wire document, if the id exists.
    pub fn get_json(&self, id: u64) -> Option<Json> {
        self.lock().by_id.get(&id).map(JobRecord::to_json)
    }

    /// `(queued, running, done, failed)` record counts — the health
    /// endpoint's summary.
    pub fn counts(&self) -> (u64, u64, u64, u64) {
        let mut counts = (0, 0, 0, 0);
        for record in self.lock().by_id.values() {
            match record.status {
                JobStatus::Queued => counts.0 += 1,
                JobStatus::Running => counts.1 += 1,
                JobStatus::Done => counts.2 += 1,
                JobStatus::Failed => counts.3 += 1,
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec { trace_len: 1000, ..JobSpec::default() }
    }

    #[test]
    fn lifecycle_is_reflected_in_json() {
        let table = JobTable::new();
        let id = table.create(spec());
        assert_eq!(id, 1);
        let doc = table.get_json(id).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("queued"));
        table.set_running(id);
        table.finish(id, Json::UInt(42));
        let doc = table.get_json(id).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"));
        assert_eq!(doc.get("result").and_then(Json::as_u64), Some(42));
        assert_eq!(doc.get_path("spec.trace_len").and_then(Json::as_u64), Some(1000));
    }

    #[test]
    fn failures_record_the_message() {
        let table = JobTable::new();
        let id = table.create(spec());
        table.fail(id, "boom".to_string());
        let doc = table.get_json(id).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("failed"));
        assert_eq!(doc.get("error").and_then(Json::as_str), Some("boom"));
        assert_eq!(table.counts(), (0, 0, 0, 1));
    }

    #[test]
    fn sharded_ids_encode_their_owner() {
        let node0 = JobTable::sharded(3, 0);
        let node2 = JobTable::sharded(3, 2);
        assert_eq!((node0.create(spec()), node0.create(spec())), (3, 6));
        assert_eq!((node2.create(spec()), node2.create(spec())), (5, 8));
        for id in [3, 6] {
            assert_eq!(JobTable::owner_of(id, 3), 0);
        }
        for id in [5, 8] {
            assert_eq!(JobTable::owner_of(id, 3), 2);
        }
        // Standalone tables keep the historical 1, 2, 3, … sequence.
        let standalone = JobTable::new();
        assert_eq!((standalone.create(spec()), standalone.create(spec())), (1, 2));
        assert_eq!(JobTable::owner_of(7, 1), 0);
    }

    #[test]
    fn terminal_records_beyond_the_cap_are_evicted_oldest_first() {
        let table = JobTable::new().with_terminal_cap(2);
        let first = table.create(spec());
        table.finish(first, Json::UInt(1));
        let second = table.create(spec());
        table.fail(second, "boom".to_string());
        // A live record never counts against the terminal cap.
        let live = table.create(spec());
        let third = table.create(spec());
        table.finish(third, Json::UInt(3));
        assert!(table.get_json(first).is_none(), "oldest terminal record must be evicted");
        assert!(table.get_json(second).is_some());
        assert!(table.get_json(third).is_some());
        assert!(table.get_json(live).is_some(), "queued records are exempt from eviction");
        assert_eq!(table.counts(), (1, 0, 1, 1));
    }

    #[test]
    fn remove_rolls_back_a_rejected_submission() {
        let table = JobTable::new();
        let id = table.create(spec());
        table.remove(id);
        assert!(table.get_json(id).is_none());
        let next = table.create(spec());
        assert!(next > id, "ids are never reused, even after rollback");
    }
}
