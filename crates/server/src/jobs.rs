//! The job table: every submitted job's lifecycle and result.
//!
//! `POST /run` creates a [`JobRecord`] in [`JobStatus::Queued`], a pool
//! worker moves it through [`JobStatus::Running`] to [`JobStatus::Done`]
//! (or [`JobStatus::Failed`] — job panics are isolated with
//! `catch_unwind` and recorded here instead of killing the worker), and
//! `GET /jobs/<id>` serializes the record. Records are kept for the
//! lifetime of the daemon; at the trace lengths the spec admits, results
//! are small JSON documents, and a bounded queue already rate-limits how
//! fast they can accumulate.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use fetchvp_experiments::JobSpec;
use fetchvp_metrics::Json;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; the record holds the result document.
    Done,
    /// The runner errored or panicked; the record holds the message.
    Failed,
}

impl JobStatus {
    /// The status as the wire string (`"queued"`, `"running"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }

    /// Whether the job has reached a terminal state.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobStatus::Done | JobStatus::Failed)
    }
}

/// One job's full state.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The id handed back by `POST /run`.
    pub id: u64,
    /// The validated spec the job was created from.
    pub spec: JobSpec,
    /// Lifecycle state.
    pub status: JobStatus,
    /// The result document, once [`JobStatus::Done`].
    pub result: Option<Json>,
    /// The failure message, once [`JobStatus::Failed`].
    pub error: Option<String>,
}

impl JobRecord {
    /// The `GET /jobs/<id>` document.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("job".to_string(), Json::UInt(self.id)),
            ("status".to_string(), Json::Str(self.status.as_str().to_string())),
            ("spec".to_string(), self.spec.to_json()),
        ];
        if let Some(result) = &self.result {
            pairs.push(("result".to_string(), result.clone()));
        }
        if let Some(error) = &self.error {
            pairs.push(("error".to_string(), Json::Str(error.clone())));
        }
        Json::object(pairs)
    }
}

/// Thread-safe id allocation and record storage.
#[derive(Debug, Default)]
pub struct JobTable {
    next_id: AtomicU64,
    records: Mutex<HashMap<u64, JobRecord>>,
}

impl JobTable {
    /// An empty table; ids start at 1.
    pub fn new() -> JobTable {
        JobTable { next_id: AtomicU64::new(1), records: Mutex::new(HashMap::new()) }
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<u64, JobRecord>> {
        self.records.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Allocates an id and inserts a [`JobStatus::Queued`] record.
    pub fn create(&self, spec: JobSpec) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let record = JobRecord { id, spec, status: JobStatus::Queued, result: None, error: None };
        self.lock().insert(id, record);
        id
    }

    /// Removes a record — the rollback when the queue rejects the push
    /// that was supposed to follow [`JobTable::create`].
    pub fn remove(&self, id: u64) {
        self.lock().remove(&id);
    }

    /// Marks a job running.
    pub fn set_running(&self, id: u64) {
        if let Some(record) = self.lock().get_mut(&id) {
            record.status = JobStatus::Running;
        }
    }

    /// Marks a job done with its result document.
    pub fn finish(&self, id: u64, result: Json) {
        if let Some(record) = self.lock().get_mut(&id) {
            record.status = JobStatus::Done;
            record.result = Some(result);
        }
    }

    /// Marks a job failed with a message.
    pub fn fail(&self, id: u64, error: String) {
        if let Some(record) = self.lock().get_mut(&id) {
            record.status = JobStatus::Failed;
            record.error = Some(error);
        }
    }

    /// The record's wire document, if the id exists.
    pub fn get_json(&self, id: u64) -> Option<Json> {
        self.lock().get(&id).map(JobRecord::to_json)
    }

    /// `(queued, running, done, failed)` record counts — the health
    /// endpoint's summary.
    pub fn counts(&self) -> (u64, u64, u64, u64) {
        let mut counts = (0, 0, 0, 0);
        for record in self.lock().values() {
            match record.status {
                JobStatus::Queued => counts.0 += 1,
                JobStatus::Running => counts.1 += 1,
                JobStatus::Done => counts.2 += 1,
                JobStatus::Failed => counts.3 += 1,
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec { trace_len: 1000, ..JobSpec::default() }
    }

    #[test]
    fn lifecycle_is_reflected_in_json() {
        let table = JobTable::new();
        let id = table.create(spec());
        assert_eq!(id, 1);
        let doc = table.get_json(id).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("queued"));
        table.set_running(id);
        table.finish(id, Json::UInt(42));
        let doc = table.get_json(id).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"));
        assert_eq!(doc.get("result").and_then(Json::as_u64), Some(42));
        assert_eq!(doc.get_path("spec.trace_len").and_then(Json::as_u64), Some(1000));
    }

    #[test]
    fn failures_record_the_message() {
        let table = JobTable::new();
        let id = table.create(spec());
        table.fail(id, "boom".to_string());
        let doc = table.get_json(id).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("failed"));
        assert_eq!(doc.get("error").and_then(Json::as_str), Some("boom"));
        assert_eq!(table.counts(), (0, 0, 0, 1));
    }

    #[test]
    fn remove_rolls_back_a_rejected_submission() {
        let table = JobTable::new();
        let id = table.create(spec());
        table.remove(id);
        assert!(table.get_json(id).is_none());
        let next = table.create(spec());
        assert!(next > id, "ids are never reused, even after rollback");
    }
}
