//! The readiness-based connection multiplexer behind `fetchvp serve`.
//!
//! One thread drives every connection through `poll(2)` — `std` exposes
//! no polling API and the workspace links no crates, but `std` itself
//! links libc, so declaring `poll(2)` directly keeps the daemon
//! zero-dependency (the same trick the [`crate`]'s signal handling
//! uses). Accepted sockets are non-blocking; each one is a tiny state
//! machine:
//!
//! ```text
//!            accept()                  POLLIN / read()
//!   Listener ────────▶ Reading ──────────────────────────┐
//!                        │  ▲                            │
//!                        │  └── try_parse ⇒ incomplete ──┘
//!                        │
//!                        │ try_parse ⇒ Request ─▶ route()
//!                        │                          │
//!                        │        fleet proxy hop ──┤
//!                        ▼                          ▼
//!                 AwaitingProxy ── helper ──▶   Writing ──▶ close
//!                 (parked; hop runs on the        │
//!                  proxy helper pool)             │ /jobs/<id>/events
//!                        │                        ▼
//!                        │                     Streaming ──▶ close
//!                        │                 (chunked NDJSON pump,
//!                        │                  one frame per ring event)
//!                        └── deadline exceeded ──▶ 502 ─▶ Writing
//! ```
//!
//! Reads accumulate into a per-connection buffer fed to
//! [`http::try_parse`] until a full request materializes; buffered
//! responses are rendered to bytes up front ([`Response::to_bytes`])
//! and flushed as `POLLOUT` allows. A `GET /jobs/<id>/events` request
//! instead enters the *Streaming* phase: every poll tick the connection
//! pulls fresh events from the job's [`ProgressRing`] at its own
//! cursor, frames each as one `Transfer-Encoding: chunked` NDJSON line,
//! and flushes opportunistically. A reader too slow to keep up never
//! blocks the job — the ring drops its oldest events and the stream
//! carries a `{"dropped": n}` notice instead; a reader that stalls with
//! unflushed bytes for the write timeout is dropped. When the job's
//! owner is another fleet member, the helper pool opens one upstream
//! socket ([`Streaming::Relay`]) whose bytes — the owner's own chunked
//! framing — are relayed verbatim.
//!
//! Each phase has a deadline (the configured read/write timeouts),
//! enforced every poll tick, so a stalled client costs one pollfd
//! entry — not a parked thread, which is what limited the
//! thread-per-connection daemon to `max_connections` concurrent
//! clients. Route handlers run inline on the loop thread only because
//! they never block: queue pushes and table lookups (simulation happens
//! on the worker pool), while fleet proxy hops — blocking network I/O —
//! are parked on the proxy helper pool and the connection waits in
//! `AwaitingProxy` until the upstream response (or streaming socket)
//! lands, so a slow or dead peer stalls its own request, never the
//! loop.
//!
//! [`ProgressRing`]: fetchvp_tracing::ProgressRing

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, PoisonError};
use std::time::{Duration, Instant};

use crate::http::{self, error_body, RequestError, Response};
use crate::progress::JobProgress;
use crate::{ProxyKind, ProxyOutcome, Routed, Shared};

/// Readable readiness (and `POLLHUP`-with-pending-data on Linux).
const POLLIN: i16 = 0x001;
/// Writable readiness.
const POLLOUT: i16 = 0x004;
/// Error condition (always reported, never requested).
const POLLERR: i16 = 0x008;
/// Peer hung up.
const POLLHUP: i16 = 0x010;
/// Invalid fd (always reported, never requested).
const POLLNVAL: i16 = 0x020;

/// Poll timeout: the loop wakes at least this often to check the
/// shutdown flag, connection deadlines, parked proxy responses and
/// streaming rings.
const POLL_TICK_MS: i32 = 50;

/// How long a connection may wait in `AwaitingProxy` before it is
/// answered `502`. Covers the helper pool's worst case — queue wait plus
/// connect (500 ms) and I/O (2 s) timeouts — with margin; a hop slower
/// than this has already been failed over by the helper.
const PROXY_WAIT: Duration = Duration::from_secs(8);

/// How long shutdown waits for in-flight response bytes to flush.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

/// A quiet stream emits a `{"heartbeat": true}` frame this often, so
/// clients (and intermediaries) can tell an idle job from a dead
/// connection.
const STREAM_HEARTBEAT: Duration = Duration::from_secs(1);

/// Pending-byte ceiling per streaming connection. A client with this
/// much unflushed output stops pulling from the ring (or the upstream
/// relay socket); the drop-oldest ring absorbs the lag and reports it
/// via `dropped` when the reader catches up.
const STREAM_BACKLOG: usize = 64 * 1024;

/// `struct pollfd` from `poll(2)`, laid out exactly as libc declares it.
#[repr(C)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

extern "C" {
    /// `poll(2)`; `nfds_t` is `unsigned long` on every Linux ABI.
    fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout: i32) -> i32;
}

/// The source feeding a connection in the Streaming phase.
enum Streaming {
    /// A locally-owned job: frames are cut from the job's progress ring
    /// at this connection's private cursor.
    Ring {
        /// The job's progress handle (ring + totals).
        progress: Arc<JobProgress>,
        /// This reader's position in the ring; each connection advances
        /// independently.
        cursor: u64,
        /// When a frame (event, drop notice or heartbeat) was last
        /// queued — the heartbeat clock.
        last_emit: Instant,
        /// The terminal event (and closing chunk) has been queued; the
        /// connection closes once it flushes.
        ended: bool,
    },
    /// A job owned by another fleet member: the owner's response bytes
    /// — status line, headers and its own chunked framing — are relayed
    /// verbatim.
    Relay {
        /// The nonblocking socket to the owning member, opened by a
        /// proxy helper.
        upstream: TcpStream,
        /// The upstream closed (EOF or error); the connection closes
        /// once the relayed bytes flush.
        ended: bool,
    },
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Bytes read so far, fed to the incremental parser each tick.
    buf: Vec<u8>,
    /// Rendered-but-unflushed output. Buffered responses render here
    /// once; streams append frames as they are cut.
    out: Vec<u8>,
    /// How much of `out` has been written.
    written: usize,
    /// `false` = Reading phase, `true` = Writing or Streaming phase.
    writing: bool,
    /// `AwaitingProxy`: a helper thread fills this slot with the hop's
    /// outcome; until then the connection is parked (no read interest).
    pending: Option<Arc<crate::ProxySlot>>,
    /// Set once the connection enters the Streaming phase.
    streaming: Option<Streaming>,
    /// When the current phase times out.
    deadline: Instant,
    /// When the connection was accepted — the request-latency clock.
    started: Instant,
    /// Terminal: the fd is dropped at the end of the tick.
    done: bool,
}

impl Conn {
    fn new(stream: TcpStream, read_timeout: Duration) -> Conn {
        let now = Instant::now();
        Conn {
            stream,
            buf: Vec::with_capacity(1024),
            out: Vec::new(),
            written: 0,
            writing: false,
            pending: None,
            streaming: None,
            deadline: now + read_timeout,
            started: now,
            done: false,
        }
    }

    /// The events this connection waits for. A parked connection asks
    /// for nothing — errors and hangups are reported regardless — and a
    /// streaming connection only wants `POLLOUT` while it has unflushed
    /// frames (new frames arrive on the tick, not on readiness).
    fn interest(&self) -> i16 {
        if self.pending.is_some() {
            0
        } else if self.streaming.is_some() {
            if self.written < self.out.len() {
                POLLOUT
            } else {
                0
            }
        } else if self.writing {
            POLLOUT
        } else {
            POLLIN
        }
    }

    /// Advances the state machine one tick.
    fn drive(&mut self, revents: i16, state: &Shared, now: Instant) {
        if self.done {
            return;
        }
        if revents & (POLLERR | POLLNVAL) != 0 {
            state.metrics.counter("server.requests", "io_error", 1);
            self.done = true;
            return;
        }
        if let Some(slot) = &self.pending {
            let arrived = slot.lock().unwrap_or_else(PoisonError::into_inner).take();
            match arrived {
                Some(ProxyOutcome::Response(response)) => {
                    self.pending = None;
                    self.start_write(response, state);
                }
                Some(ProxyOutcome::Upstream(upstream)) => {
                    self.pending = None;
                    self.start_relay(upstream, state, now);
                }
                None if now >= self.deadline => {
                    // The hop outlived even the helper pool's worst
                    // case; answer rather than leave the client
                    // hanging. The helper's eventual outcome fills a
                    // slot nobody reads.
                    state.metrics.counter("server.peers", "proxy_timeouts", 1);
                    self.pending = None;
                    self.start_write(
                        Response::json(502, error_body("fleet proxy timed out")),
                        state,
                    );
                }
                None => {}
            }
            return;
        }
        if self.streaming.is_some() {
            // Streams pump every tick: POLLHUP here means the client
            // went away mid-stream, which only this write path notices.
            if revents & POLLHUP != 0 {
                self.done = true;
                return;
            }
            self.pump_stream(state, now);
            return;
        }
        if self.writing {
            if revents & (POLLOUT | POLLHUP) != 0 {
                self.flush(state);
            }
        } else if revents & (POLLIN | POLLHUP) != 0 {
            self.fill(state);
        }
        if !self.done && now >= self.deadline {
            // Same accounting as the blocking daemon's socket timeouts:
            // a client too slow to send or receive is an io_error.
            state.metrics.counter("server.requests", "io_error", 1);
            self.done = true;
        }
    }

    /// Reads until `WouldBlock`, then offers the buffer to the parser.
    fn fill(&mut self, state: &Shared) {
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // EOF before a complete request.
                    state.metrics.counter("server.requests", "io_error", 1);
                    self.done = true;
                    return;
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    state.metrics.counter("server.requests", "io_error", 1);
                    self.done = true;
                    return;
                }
            }
        }
        let response = match http::try_parse(&self.buf, state.config.max_body_bytes) {
            Ok(None) => return, // keep reading
            Ok(Some(request)) => match crate::respond_or_proxy(state, &request, self.started) {
                Routed::Ready(response) => response,
                // The job's events stream from the local ring — switch
                // this connection into the Streaming phase.
                Routed::Stream { progress } => {
                    self.start_stream(progress, state);
                    return;
                }
                // Blocking I/O that must not run on this thread. Park
                // the connection; a helper completes the hop and
                // drive() picks the outcome up next tick.
                Routed::Proxy { member } => {
                    match self.park_proxy(ProxyKind::Hop { member }, request, state) {
                        Some(response) => response,
                        None => return,
                    }
                }
                Routed::StreamProxy { member } => {
                    match self.park_proxy(ProxyKind::StreamConnect { member }, request, state) {
                        Some(response) => response,
                        None => return,
                    }
                }
                Routed::FleetMetrics => {
                    match self.park_proxy(ProxyKind::FleetMetrics, request, state) {
                        Some(response) => response,
                        None => return,
                    }
                }
            },
            Err(RequestError::TooLarge(what)) => {
                state.metrics.counter("server.requests", "too_large.413", 1);
                Response::json(413, error_body(&format!("{what} too large")))
            }
            Err(RequestError::Malformed(why)) => {
                state.metrics.counter("server.requests", "malformed.400", 1);
                Response::json(400, error_body(why))
            }
            // try_parse does no IO; an Io error cannot surface here.
            Err(RequestError::Io(_)) => {
                self.done = true;
                return;
            }
        };
        self.start_write(response, state);
    }

    /// Hands a blocking hop to the helper pool and parks the
    /// connection, or returns the fallback response when the pool is
    /// saturated.
    fn park_proxy(
        &mut self,
        kind: ProxyKind,
        request: http::Request,
        state: &Shared,
    ) -> Option<Response> {
        match state.dispatch_proxy(kind, request, self.started) {
            Ok(slot) => {
                self.pending = Some(slot);
                self.deadline = Instant::now() + PROXY_WAIT;
                None
            }
            Err(response) => Some(response),
        }
    }

    /// Enters the Streaming phase over the local ring: queue the
    /// chunked-transfer head, then pump immediately — a job that is
    /// already terminal replays its retained ring (ending with the
    /// terminal event) and closes in this same tick's flush.
    fn start_stream(&mut self, progress: Arc<JobProgress>, state: &Shared) {
        let now = Instant::now();
        self.out = http::stream_head(200, crate::STREAM_CONTENT_TYPE);
        self.written = 0;
        self.writing = true;
        self.deadline = now + state.config.write_timeout;
        self.streaming =
            Some(Streaming::Ring { progress, cursor: 0, last_emit: now, ended: false });
        self.pump_stream(state, now);
    }

    /// Enters the Streaming phase as a relay: the upstream owner's
    /// bytes (head and chunked framing included) pass through verbatim.
    fn start_relay(&mut self, upstream: TcpStream, state: &Shared, now: Instant) {
        self.out = Vec::new();
        self.written = 0;
        self.writing = true;
        self.deadline = now + state.config.write_timeout;
        self.streaming = Some(Streaming::Relay { upstream, ended: false });
        self.pump_stream(state, now);
    }

    /// One Streaming-phase tick: cut fresh frames (ring events, drop
    /// notices, heartbeats — or relayed upstream bytes), then flush as
    /// much as the socket accepts. The connection closes when the
    /// stream has ended and every byte is out, or when the client sits
    /// on unflushed bytes past the write timeout.
    fn pump_stream(&mut self, state: &Shared, now: Instant) {
        let Some(mut streaming) = self.streaming.take() else { return };
        if self.out.len() - self.written < STREAM_BACKLOG {
            match &mut streaming {
                Streaming::Ring { progress, cursor, last_emit, ended } if !*ended => {
                    let batch = progress.since(*cursor);
                    let mut emitted = false;
                    if batch.dropped > 0 {
                        // The ring evicted events this reader never saw
                        // (slow client): say so instead of silently
                        // skipping sequence numbers.
                        let notice = format!("{{\"dropped\": {}}}\n", batch.dropped);
                        self.out.extend_from_slice(&http::chunk(notice.as_bytes()));
                        emitted = true;
                    }
                    for event in &batch.events {
                        let mut line = event.to_line();
                        line.push('\n');
                        self.out.extend_from_slice(&http::chunk(line.as_bytes()));
                        emitted = true;
                        if matches!(event.phase, "done" | "failed") {
                            // Terminal events are always the ring's
                            // newest; close the chunked stream after
                            // relaying one.
                            self.out.extend_from_slice(http::chunk_end());
                            *ended = true;
                            break;
                        }
                    }
                    *cursor = batch.next_cursor;
                    if emitted {
                        *last_emit = now;
                    } else if now.duration_since(*last_emit) >= STREAM_HEARTBEAT {
                        self.out.extend_from_slice(&http::chunk(b"{\"heartbeat\": true}\n"));
                        *last_emit = now;
                    }
                }
                Streaming::Relay { upstream, ended } if !*ended => {
                    let mut chunk = [0u8; 4096];
                    loop {
                        match upstream.read(&mut chunk) {
                            Ok(0) => {
                                *ended = true;
                                break;
                            }
                            Ok(n) => self.out.extend_from_slice(&chunk[..n]),
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                            Err(_) => {
                                // The owner died mid-stream; the client
                                // sees a truncated chunked body and
                                // knows the stream did not end cleanly.
                                *ended = true;
                                break;
                            }
                        }
                        if self.out.len() - self.written >= STREAM_BACKLOG {
                            break;
                        }
                    }
                }
                _ => {}
            }
        }
        let ended = match &streaming {
            Streaming::Ring { ended, .. } | Streaming::Relay { ended, .. } => *ended,
        };
        while self.written < self.out.len() {
            match self.stream.write(&self.out[self.written..]) {
                Ok(0) => {
                    self.done = true;
                    break;
                }
                Ok(n) => self.written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.done = true;
                    break;
                }
            }
        }
        if !self.done {
            if self.written == self.out.len() {
                // Fully flushed: recycle the buffer and push the stall
                // deadline out — only a client with pending bytes can
                // time out.
                self.out.clear();
                self.written = 0;
                self.deadline = now + state.config.write_timeout;
                if ended {
                    let _ = self.stream.shutdown(Shutdown::Both);
                    self.done = true;
                }
            } else if now >= self.deadline {
                state.metrics.counter("server.requests", "io_error", 1);
                self.done = true;
            }
        }
        self.streaming = Some(streaming);
    }

    /// Switches to the Writing phase and optimistically flushes — most
    /// responses fit the socket buffer, finishing in the same tick.
    fn start_write(&mut self, response: Response, state: &Shared) {
        self.out = response.to_bytes();
        self.written = 0;
        self.writing = true;
        self.deadline = Instant::now() + state.config.write_timeout;
        self.flush(state);
    }

    /// Writes as much of `out` as the socket accepts; closes on
    /// completion.
    fn flush(&mut self, _state: &Shared) {
        while self.written < self.out.len() {
            match self.stream.write(&self.out[self.written..]) {
                Ok(0) => {
                    self.done = true;
                    return;
                }
                Ok(n) => self.written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.done = true;
                    return;
                }
            }
        }
        let _ = self.stream.shutdown(Shutdown::Both);
        self.done = true;
    }
}

/// Accepts everything the backlog holds, up to the connection cap.
fn accept_ready(listener: &TcpListener, conns: &mut Vec<Conn>, state: &Shared) -> io::Result<()> {
    while conns.len() < state.config.max_connections {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                conns.push(Conn::new(stream, state.config.read_timeout));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // Transient per-connection accept failures (e.g. the peer
            // aborted between readiness and accept) must not kill the
            // daemon.
            Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => {}
            Err(e) if e.kind() == io::ErrorKind::ConnectionReset => {}
            // EMFILE (24) / ENFILE (23): fd exhaustion under a
            // connection flood is transient — closing connections free
            // descriptors within a tick or two. Pause accepting instead
            // of exiting serve() and killing the daemon.
            Err(e) if matches!(e.raw_os_error(), Some(23 | 24)) => {
                state.metrics.counter("server.connections", "accept_throttled", 1);
                break;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Runs the event loop until shutdown, then drains in-flight writes.
///
/// At the connection cap the listener's `POLLIN` interest is masked, so
/// excess clients queue in the kernel's accept backlog instead of being
/// answered with an error — admission control happens at the bounded job
/// queue (`503` + `Retry-After`), not at the socket.
pub(crate) fn serve(listener: &TcpListener, state: &Arc<Shared>) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut conns: Vec<Conn> = Vec::new();
    while !state.should_shutdown() {
        let accepting = conns.len() < state.config.max_connections;
        let mut fds = Vec::with_capacity(conns.len() + 1);
        fds.push(PollFd {
            fd: listener.as_raw_fd(),
            events: if accepting { POLLIN } else { 0 },
            revents: 0,
        });
        for conn in &conns {
            fds.push(PollFd { fd: conn.stream.as_raw_fd(), events: conn.interest(), revents: 0 });
        }
        let ready =
            unsafe { poll(fds.as_mut_ptr(), fds.len() as std::os::raw::c_ulong, POLL_TICK_MS) };
        if ready < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                continue; // a signal landed; the loop re-checks the flag
            }
            return Err(err);
        }
        if fds[0].revents & POLLIN != 0 {
            accept_ready(listener, &mut conns, state)?;
        }
        let now = Instant::now();
        for (conn, fd) in conns.iter_mut().zip(&fds[1..]) {
            conn.drive(fd.revents, state, now);
        }
        conns.retain(|c| !c.done);
        state.active_connections.store(conns.len(), Ordering::SeqCst);
    }

    // Graceful drain: stop reading new requests, flush what is already
    // rendered. Readers are abandoned (their request will never be
    // answered anyway) and streams are cut — their job keeps running;
    // the client re-polls or reconnects after the restart — while
    // buffered writers get up to DRAIN_TIMEOUT.
    conns.retain(|c| c.writing && c.streaming.is_none());
    let deadline = Instant::now() + DRAIN_TIMEOUT;
    while !conns.is_empty() && Instant::now() < deadline {
        let mut fds: Vec<PollFd> = conns
            .iter()
            .map(|c| PollFd { fd: c.stream.as_raw_fd(), events: POLLOUT, revents: 0 })
            .collect();
        let ready =
            unsafe { poll(fds.as_mut_ptr(), fds.len() as std::os::raw::c_ulong, POLL_TICK_MS) };
        if ready < 0 {
            if io::Error::last_os_error().kind() == io::ErrorKind::Interrupted {
                continue;
            }
            break; // give up on the drain, not on the shutdown
        }
        if ready == 0 {
            continue;
        }
        let now = Instant::now();
        for (conn, fd) in conns.iter_mut().zip(&fds) {
            conn.drive(fd.revents, state, now);
        }
        conns.retain(|c| !c.done);
    }
    state.active_connections.store(0, Ordering::SeqCst);
    Ok(())
}
