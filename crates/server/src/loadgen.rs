//! `fetchvp loadgen` — an open-loop load generator for a serving fleet.
//!
//! The generator fires `rps × duration` POST `/run` requests, paced on a
//! fixed schedule (request *k* is due at `start + k/rps`) that does
//! **not** slow down when the server does — open-loop load, so a
//! saturated fleet shows up as climbing latency and `503`s instead of a
//! silently reduced request rate. A shared atomic ticket counter hands
//! out schedule slots to a small pool of sender threads; per-thread
//! latency histograms ([`fetchvp_metrics::Histogram`], the same log2
//! buckets and exact quantile ranks the daemon itself uses) are merged
//! into one report at the end.
//!
//! The open-loop guarantee is only as strong as the sender pool: each
//! sender blocks on its in-flight request, so if a stalled server ties
//! up every sender the fixed schedule slips. Rather than pretend that
//! can't happen, the generator *measures* it — every request records
//! how late it started relative to its slot's due time, and the report
//! carries `late_starts` (requests that began more than 1 ms late) and
//! `max_start_lag_us`. A report with materially non-zero slip means the
//! offered rate was lower than configured and the run should be read
//! accordingly.
//!
//! Requests round-robin across `targets` and across the spec mix, so a
//! two-process fleet driven with the default mix exercises cache misses
//! (first occurrence of each spec), cache hits (every repeat) and
//! cross-member routing in one run.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fetchvp_experiments::JobSpec;
use fetchvp_metrics::{Histogram, Json};

/// The default spec mix: small deterministic table experiments, distinct
/// enough to spread across a fleet's hash ring, repeated enough that a
/// warm run is dominated by result-cache hits.
pub const DEFAULT_SPEC_MIX: &[&str] = &[
    r#"{"experiment": "table3-1", "trace_len": 1000}"#,
    r#"{"experiment": "accuracy", "trace_len": 1000}"#,
    r#"{"experiment": "table3-1", "trace_len": 2000}"#,
    r#"{"experiment": "breakdown", "trace_len": 1000}"#,
];

/// What to drive and how hard.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// `host:port` targets, round-robined per request.
    pub targets: Vec<String>,
    /// Offered request rate across all targets.
    pub rps: u64,
    /// How long to sustain it.
    pub duration: Duration,
    /// JSON job-spec bodies, round-robined per request.
    pub specs: Vec<String>,
}

impl Default for LoadgenOptions {
    fn default() -> LoadgenOptions {
        LoadgenOptions {
            targets: vec!["127.0.0.1:7998".to_string()],
            rps: 1000,
            duration: Duration::from_secs(5),
            specs: DEFAULT_SPEC_MIX.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// What a finished run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests attempted (the full schedule).
    pub sent: u64,
    /// `2xx` responses.
    pub ok: u64,
    /// Transport failures (connect/read/write errors).
    pub errors: u64,
    /// Wall-clock of the whole run.
    pub wall: Duration,
    /// Per-request latency in microseconds, connect to last byte.
    pub latency_us: Histogram,
    /// Response counts by HTTP status.
    pub statuses: BTreeMap<u16, u64>,
    /// Requests that started more than 1 ms after their schedule slot
    /// was due — the senders could not keep the open-loop pace.
    pub late_starts: u64,
    /// The worst observed start lag in microseconds.
    pub max_start_lag_us: u64,
    /// Latency histograms per response class (see [`status_class`]):
    /// `proxied` hops carry an extra fleet round-trip, `2xx` is the
    /// local fast path, `503` the backpressure path — mixing them into
    /// one quantile hides exactly the differences a fleet operator is
    /// looking for.
    pub by_class: BTreeMap<String, Histogram>,
}

/// The report class of one response. Proxied responses (the
/// `X-Fetchvp-Proxied` relay header) class first regardless of status —
/// their latency includes the extra hop — then `2xx`, the `503`
/// backpressure path, and `other`.
pub fn status_class(status: u16, proxied: bool) -> &'static str {
    if proxied {
        "proxied"
    } else if (200..300).contains(&status) {
        "2xx"
    } else if status == 503 {
        "503"
    } else {
        "other"
    }
}

/// A latency histogram as the JSON quantile object the report embeds.
fn histogram_json(h: &Histogram) -> Json {
    Json::object([
        ("count".to_string(), Json::UInt(h.count())),
        ("mean".to_string(), Json::Float(h.mean())),
        ("p50".to_string(), Json::UInt(h.p50())),
        ("p95".to_string(), Json::UInt(h.p95())),
        ("p99".to_string(), Json::UInt(h.p99())),
    ])
}

impl LoadgenReport {
    /// Completed-OK requests per wall-clock second.
    pub fn achieved_rps(&self) -> f64 {
        if self.wall.as_secs_f64() <= 0.0 {
            return 0.0;
        }
        self.ok as f64 / self.wall.as_secs_f64()
    }

    /// The report as JSON — what `--out` writes and the smoke gate
    /// parses.
    pub fn to_json(&self) -> Json {
        let statuses = self
            .statuses
            .iter()
            .map(|(status, count)| (status.to_string(), Json::UInt(*count)))
            .collect::<Vec<_>>();
        Json::object([
            ("sent".to_string(), Json::UInt(self.sent)),
            ("ok".to_string(), Json::UInt(self.ok)),
            ("errors".to_string(), Json::UInt(self.errors)),
            ("wall_seconds".to_string(), Json::Float(self.wall.as_secs_f64())),
            ("achieved_rps".to_string(), Json::Float(self.achieved_rps())),
            ("latency_us".to_string(), histogram_json(&self.latency_us)),
            (
                "by_class".to_string(),
                Json::object(
                    self.by_class
                        .iter()
                        .map(|(class, h)| (class.clone(), histogram_json(h)))
                        .collect::<Vec<_>>(),
                ),
            ),
            ("statuses".to_string(), Json::object(statuses)),
            ("late_starts".to_string(), Json::UInt(self.late_starts)),
            ("max_start_lag_us".to_string(), Json::UInt(self.max_start_lag_us)),
        ])
    }

    /// A human-readable summary for the terminal.
    pub fn render(&self) -> String {
        let statuses = self
            .statuses
            .iter()
            .map(|(status, count)| format!("{status}x{count}"))
            .collect::<Vec<_>>()
            .join(" ");
        let mut text = format!(
            "loadgen: {}/{} ok ({} transport errors) in {:.2}s -> {:.1} rps\n\
             latency_us: p50={} p95={} p99={} mean={:.0}\n\
             statuses: {}\n\
             schedule: {} late starts, max start lag {} us",
            self.ok,
            self.sent,
            self.errors,
            self.wall.as_secs_f64(),
            self.achieved_rps(),
            self.latency_us.p50(),
            self.latency_us.p95(),
            self.latency_us.p99(),
            self.latency_us.mean(),
            if statuses.is_empty() { "none".to_string() } else { statuses },
            self.late_starts,
            self.max_start_lag_us,
        );
        for (class, h) in &self.by_class {
            text.push_str(&format!(
                "\n  {class}: n={} p50={} p95={} p99={}",
                h.count(),
                h.p50(),
                h.p95(),
                h.p99()
            ));
        }
        text
    }
}

/// One sender thread's tallies, merged after join.
#[derive(Default)]
struct ThreadTally {
    sent: u64,
    ok: u64,
    errors: u64,
    latency_us: Histogram,
    statuses: BTreeMap<u16, u64>,
    late_starts: u64,
    max_start_lag_us: u64,
    by_class: BTreeMap<&'static str, Histogram>,
}

/// Drives the configured load and blocks until the schedule is spent.
///
/// # Errors
///
/// Errors on an empty target/spec list, a zero rate or duration, or a
/// spec that fails [`JobSpec`] validation — a load test full of `400`s
/// measures the error path, which is never what was asked for.
pub fn run(opts: &LoadgenOptions) -> Result<LoadgenReport, String> {
    if opts.targets.is_empty() {
        return Err("loadgen needs at least one target address".to_string());
    }
    if opts.specs.is_empty() {
        return Err("loadgen needs at least one job spec".to_string());
    }
    if opts.rps == 0 {
        return Err("--rps must be at least 1".to_string());
    }
    if opts.duration.is_zero() {
        return Err("--duration must be at least 1 second".to_string());
    }
    for spec in &opts.specs {
        let doc = Json::parse(spec).map_err(|e| format!("spec `{spec}`: {e}"))?;
        JobSpec::from_json_with_limits(&doc, true).map_err(|e| format!("spec `{spec}`: {e}"))?;
    }
    let total = ((opts.rps as u128 * opts.duration.as_millis()) / 1000).max(1) as u64;
    // One sender covers ~50 rps of healthy traffic with plenty of
    // headroom; the cap keeps a huge --rps from spawning an unbounded
    // thread herd. If the server stalls hard enough to tie up the whole
    // pool anyway, the slip shows up as `late_starts` in the report
    // rather than silently shrinking the offered rate.
    let senders = (opts.rps / 50).clamp(2, 32) as usize;
    let ticket = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let threads: Vec<_> = (0..senders)
        .map(|i| {
            let ticket = Arc::clone(&ticket);
            let opts = opts.clone();
            std::thread::Builder::new()
                .name(format!("fetchvp-loadgen-{i}"))
                .spawn(move || sender_loop(&opts, &ticket, start, total))
                .map_err(|e| format!("spawn loadgen sender: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let mut report = LoadgenReport {
        sent: 0,
        ok: 0,
        errors: 0,
        wall: Duration::ZERO,
        latency_us: Histogram::new(),
        statuses: BTreeMap::new(),
        late_starts: 0,
        max_start_lag_us: 0,
        by_class: BTreeMap::new(),
    };
    for thread in threads {
        let tally = thread.join().map_err(|_| "loadgen sender panicked".to_string())?;
        report.sent += tally.sent;
        report.ok += tally.ok;
        report.errors += tally.errors;
        report.latency_us.merge(&tally.latency_us);
        for (status, count) in tally.statuses {
            *report.statuses.entry(status).or_insert(0) += count;
        }
        report.late_starts += tally.late_starts;
        report.max_start_lag_us = report.max_start_lag_us.max(tally.max_start_lag_us);
        for (class, h) in tally.by_class {
            report.by_class.entry(class.to_string()).or_default().merge(&h);
        }
    }
    report.wall = start.elapsed();
    Ok(report)
}

/// Claims schedule slots until the run is over, pacing each request to
/// its due time.
fn sender_loop(
    opts: &LoadgenOptions,
    ticket: &AtomicU64,
    start: Instant,
    total: u64,
) -> ThreadTally {
    let mut tally = ThreadTally::default();
    loop {
        let slot = ticket.fetch_add(1, Ordering::Relaxed);
        if slot >= total {
            return tally;
        }
        let due = start + Duration::from_micros(slot.saturating_mul(1_000_000) / opts.rps);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let target = &opts.targets[(slot % opts.targets.len() as u64) as usize];
        let spec = &opts.specs[(slot % opts.specs.len() as u64) as usize];
        tally.sent += 1;
        let sent_at = Instant::now();
        let lag = sent_at.saturating_duration_since(due);
        if lag > Duration::from_millis(1) {
            tally.late_starts += 1;
        }
        tally.max_start_lag_us = tally.max_start_lag_us.max(lag.as_micros() as u64);
        match post_run(target, spec) {
            Ok((status, proxied)) => {
                let latency = sent_at.elapsed().as_micros() as u64;
                tally.latency_us.record(latency);
                tally.by_class.entry(status_class(status, proxied)).or_default().record(latency);
                *tally.statuses.entry(status).or_insert(0) += 1;
                if (200..300).contains(&status) {
                    tally.ok += 1;
                }
            }
            Err(()) => tally.errors += 1,
        }
    }
}

/// One `POST /run`, returning the response status and whether the
/// answer was relayed from another fleet member (the
/// `X-Fetchvp-Proxied` header).
fn post_run(target: &str, spec: &str) -> Result<(u16, bool), ()> {
    let addr = target.to_socket_addrs().map_err(|_| ())?.next().ok_or(())?;
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(1)).map_err(|_| ())?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(5))).map_err(|_| ())?;
    stream.set_write_timeout(Some(Duration::from_secs(5))).map_err(|_| ())?;
    let head = format!(
        "POST /run HTTP/1.1\r\nHost: {target}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        spec.len()
    );
    stream.write_all(head.as_bytes()).map_err(|_| ())?;
    stream.write_all(spec.as_bytes()).map_err(|_| ())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|_| ())?;
    let text = std::str::from_utf8(&raw).map_err(|_| ())?;
    let status = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.split(' ').next())
        .and_then(|code| code.parse().ok())
        .ok_or(())?;
    let head = text.split("\r\n\r\n").next().unwrap_or(text);
    let proxied = head.lines().any(|line| {
        line.split_once(':').is_some_and(|(name, _)| name.eq_ignore_ascii_case("x-fetchvp-proxied"))
    });
    Ok((status, proxied))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_are_validated_before_any_socket_is_touched() {
        let no_targets = LoadgenOptions { targets: Vec::new(), ..LoadgenOptions::default() };
        assert!(run(&no_targets).unwrap_err().contains("target"));
        let no_specs = LoadgenOptions { specs: Vec::new(), ..LoadgenOptions::default() };
        assert!(run(&no_specs).unwrap_err().contains("spec"));
        let zero_rps = LoadgenOptions { rps: 0, ..LoadgenOptions::default() };
        assert!(run(&zero_rps).unwrap_err().contains("--rps"));
        let bad_spec = LoadgenOptions {
            specs: vec![r#"{"experiment": "fig9-9"}"#.to_string()],
            ..LoadgenOptions::default()
        };
        assert!(run(&bad_spec).unwrap_err().contains("unknown experiment"));
    }

    #[test]
    fn default_mix_passes_spec_validation() {
        for spec in DEFAULT_SPEC_MIX {
            let doc = Json::parse(spec).expect(spec);
            let spec = JobSpec::from_json(&doc).expect(spec);
            assert!(spec.deterministic_result(), "mix must be cacheable");
        }
    }

    #[test]
    fn report_json_carries_the_gate_fields() {
        let mut report = LoadgenReport {
            sent: 10,
            ok: 9,
            errors: 1,
            wall: Duration::from_secs(2),
            latency_us: Histogram::new(),
            statuses: BTreeMap::from([(200, 9)]),
            late_starts: 3,
            max_start_lag_us: 2500,
            by_class: BTreeMap::new(),
        };
        report.latency_us.record(500);
        let mut fast = Histogram::new();
        fast.record(400);
        fast.record(600);
        report.by_class.insert("2xx".to_string(), fast);
        let mut slow = Histogram::new();
        slow.record(9000);
        report.by_class.insert("proxied".to_string(), slow);
        let doc = report.to_json();
        assert_eq!(doc.get("ok").and_then(Json::as_u64), Some(9));
        assert_eq!(doc.get_path("statuses.200").and_then(Json::as_u64), Some(9));
        assert!(doc.get_path("latency_us.p99").and_then(Json::as_u64).is_some());
        let rps = doc.get("achieved_rps").and_then(Json::as_f64).unwrap();
        assert!((rps - 4.5).abs() < 1e-9, "{rps}");
        assert_eq!(doc.get("late_starts").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("max_start_lag_us").and_then(Json::as_u64), Some(2500));
        assert_eq!(doc.get_path("by_class.2xx.count").and_then(Json::as_u64), Some(2));
        assert!(doc.get_path("by_class.proxied.p99").and_then(Json::as_u64).is_some());
        assert!(report.render().contains("p99="));
        assert!(report.render().contains("3 late starts"));
        assert!(report.render().contains("proxied: n=1"));
    }

    #[test]
    fn response_classes_keep_the_interesting_paths_apart() {
        assert_eq!(status_class(200, false), "2xx");
        assert_eq!(status_class(202, false), "2xx");
        assert_eq!(status_class(503, false), "503");
        assert_eq!(status_class(404, false), "other");
        // The relay hop dominates the latency, whatever the status was.
        assert_eq!(status_class(200, true), "proxied");
        assert_eq!(status_class(503, true), "proxied");
    }
}
