//! The content-addressed result cache: a sweep answered once is a
//! dictionary lookup forever.
//!
//! Just as LDBP-style last-value reuse short-circuits work whose outcome
//! is already determined, a deterministic job spec fully determines its
//! result document, so the daemon keys finished results by the FNV-1a
//! hash of the spec's canonical JSON
//! ([`fetchvp_experiments::JobSpec::canonical_hash`]). Lookups check a
//! bounded in-memory MRU list first, then an optional on-disk spill
//! directory next to the trace store, so a restarted daemon still answers
//! warm specs without re-simulating.
//!
//! Only deterministic results are cached
//! ([`JobSpec::deterministic_result`](fetchvp_experiments::JobSpec::deterministic_result)):
//! `bench` reports embed wall-clock measurements and are always re-run.
//! Failed jobs are never cached — a panic is not a result.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use fetchvp_metrics::Json;

/// Version prefix of the spill directory. Bumping it orphans every older
/// on-disk entry instead of misreading it — the same invalidation story
/// as the trace store's format version.
pub const RESULT_CACHE_VERSION: u32 = 1;

/// One cached result: the spec's hash, its full canonical text (kept to
/// detect 64-bit hash collisions instead of serving a wrong document),
/// and the result JSON.
#[derive(Debug, Clone)]
struct Entry {
    hash: u64,
    canonical: String,
    result: Json,
}

/// Cumulative effectiveness counters of one [`ResultCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCacheCounters {
    /// Lookups answered from memory.
    pub hits: u64,
    /// Lookups answered from the on-disk spill (also re-warms memory).
    pub disk_hits: u64,
    /// Lookups that found nothing; the job was simulated.
    pub misses: u64,
    /// Bytes written to the spill directory.
    pub bytes: u64,
}

/// A bounded MRU result cache with optional on-disk spill.
///
/// The in-memory tier is a small vector kept in most-recently-used order
/// (the same idiom as the server's sweep pool); inserts beyond
/// `capacity` evict from the tail. When built with a spill root, every
/// insert also writes `<root>/results-v1/<hash>.json` via a temp file and
/// atomic rename, and memory misses fall back to reading that file.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    entries: Mutex<Vec<Entry>>,
    spill: Option<PathBuf>,
    hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    bytes: AtomicU64,
}

impl ResultCache {
    /// A cache holding at most `capacity` results in memory, spilling to
    /// `<spill_root>/results-v1/` when a root is given. `capacity` 0
    /// disables caching entirely (every lookup misses, nothing is
    /// stored).
    pub fn new(capacity: usize, spill_root: Option<&Path>) -> ResultCache {
        ResultCache {
            capacity,
            entries: Mutex::new(Vec::new()),
            spill: spill_root.map(|root| root.join(format!("results-v{RESULT_CACHE_VERSION}"))),
            hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Whether caching is enabled at all.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Looks up the result for a spec, trying memory then the spill
    /// directory. `canonical` must be the spec's canonical text — it is
    /// compared on every candidate, so a hash collision degrades to a
    /// miss, never to a wrong answer.
    pub fn get(&self, hash: u64, canonical: &str) -> Option<Json> {
        if !self.enabled() {
            return None;
        }
        {
            let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(at) =
                entries.iter().position(|e| e.hash == hash && e.canonical == canonical)
            {
                let entry = entries.remove(at);
                let result = entry.result.clone();
                entries.insert(0, entry);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(result);
            }
        }
        if let Some(result) = self.load_spilled(hash, canonical) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            self.remember(hash, canonical.to_string(), result.clone());
            return Some(result);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores a finished result under its spec hash, evicting the
    /// least-recently-used in-memory entry beyond capacity and writing the
    /// spill file when configured.
    pub fn insert(&self, hash: u64, canonical: String, result: &Json) {
        if !self.enabled() {
            return;
        }
        self.spill_to_disk(hash, &canonical, result);
        self.remember(hash, canonical, result.clone());
    }

    /// A snapshot of the cumulative counters — surfaced as
    /// `server.result_cache.*` gauges on `/metrics`.
    pub fn counters(&self) -> ResultCacheCounters {
        ResultCacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }

    fn remember(&self, hash: u64, canonical: String, result: Json) {
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        entries.retain(|e| e.hash != hash || e.canonical != canonical);
        entries.insert(0, Entry { hash, canonical, result });
        entries.truncate(self.capacity);
    }

    fn spill_path(&self, hash: u64) -> Option<PathBuf> {
        self.spill.as_ref().map(|dir| dir.join(format!("{hash:016x}.json")))
    }

    /// Writes `{"spec": <canonical object>, "result": …}` via temp file +
    /// atomic rename, so a concurrent reader never sees a torn document.
    /// Spill failures are swallowed: the disk tier is an accelerator, and
    /// a full disk must not fail the job that just completed.
    fn spill_to_disk(&self, hash: u64, canonical: &str, result: &Json) {
        let Some(path) = self.spill_path(hash) else { return };
        let Ok(spec) = Json::parse(canonical) else { return };
        let doc =
            Json::object([("spec".to_string(), spec), ("result".to_string(), result.clone())])
                .to_json();
        let Some(dir) = path.parent() else { return };
        if fs::create_dir_all(dir).is_err() {
            return;
        }
        let tmp = dir.join(format!(".{hash:016x}.tmp-{}", std::process::id()));
        let written = fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(doc.as_bytes()).map(|()| doc.len() as u64));
        match written {
            Ok(bytes) if fs::rename(&tmp, &path).is_ok() => {
                self.bytes.fetch_add(bytes, Ordering::Relaxed);
            }
            _ => {
                let _ = fs::remove_file(&tmp);
            }
        }
    }

    /// Reads a spilled result back, verifying the stored spec matches the
    /// canonical text byte-for-byte. Unreadable, torn or mismatched files
    /// count as misses.
    fn load_spilled(&self, hash: u64, canonical: &str) -> Option<Json> {
        let path = self.spill_path(hash)?;
        let text = fs::read_to_string(path).ok()?;
        let doc = Json::parse(&text).ok()?;
        let stored_spec = doc.get("spec")?;
        if stored_spec.to_json() != canonical {
            return None;
        }
        Some(doc.get("result")?.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(tag: u64) -> Json {
        Json::object([("csv".to_string(), Json::UInt(tag))])
    }

    #[test]
    fn memory_tier_is_bounded_mru() {
        let cache = ResultCache::new(2, None);
        cache.insert(1, "a".to_string(), &result(1));
        cache.insert(2, "b".to_string(), &result(2));
        assert_eq!(cache.get(1, "a"), Some(result(1))); // touch 1 → MRU
        cache.insert(3, "c".to_string(), &result(3)); // evicts 2
        assert_eq!(cache.get(2, "b"), None);
        assert_eq!(cache.get(1, "a"), Some(result(1)));
        assert_eq!(cache.get(3, "c"), Some(result(3)));
        let counters = cache.counters();
        assert_eq!((counters.hits, counters.misses, counters.bytes), (3, 1, 0));
    }

    #[test]
    fn hash_collisions_miss_instead_of_lying() {
        let cache = ResultCache::new(4, None);
        cache.insert(7, "spec-a".to_string(), &result(1));
        // Same hash, different canonical text: must not serve spec-a's
        // result for spec-b.
        assert_eq!(cache.get(7, "spec-b"), None);
        assert_eq!(cache.counters().misses, 1);
    }

    #[test]
    fn zero_capacity_disables_everything() {
        let cache = ResultCache::new(0, None);
        cache.insert(1, "a".to_string(), &result(1));
        assert_eq!(cache.get(1, "a"), None);
        assert_eq!(cache.counters(), ResultCacheCounters::default());
        assert!(!cache.enabled());
    }

    #[test]
    fn spill_survives_a_cold_restart() {
        let dir = std::env::temp_dir().join(format!("fetchvp-result-spill-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        // Canonical text is always a `to_json` rendering (pretty-printed),
        // so normalize the literal the same way.
        let canonical =
            Json::parse(r#"{"experiment": "table3-1", "trace_len": 1000}"#).unwrap().to_json();
        let canonical = canonical.as_str();
        {
            let cache = ResultCache::new(4, Some(&dir));
            cache.insert(42, canonical.to_string(), &result(9));
            assert!(cache.counters().bytes > 0, "spill must write bytes");
        }
        // A fresh instance (empty memory) finds the entry on disk.
        let cache = ResultCache::new(4, Some(&dir));
        assert_eq!(cache.get(42, canonical), Some(result(9)));
        assert_eq!(cache.counters().disk_hits, 1);
        // …and the disk hit re-warmed memory.
        assert_eq!(cache.get(42, canonical), Some(result(9)));
        assert_eq!(cache.counters().hits, 1);
        // A different canonical text under the same hash is rejected.
        assert_eq!(cache.get(42, "something else"), None);
        let _ = fs::remove_dir_all(&dir);
    }
}
