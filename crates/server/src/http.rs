//! A minimal HTTP/1.1 request reader and response writer over
//! [`TcpStream`].
//!
//! The daemon speaks just enough HTTP for `curl`, browsers and raw
//! `TcpStream` test clients: one request per connection (`Connection:
//! close` is always sent back), `Content-Length` bodies only (no chunked
//! transfer encoding), and hard caps on header-block and body sizes so an
//! adversarial peer cannot balloon memory. Read/write deadlines come from
//! the socket timeouts the caller sets before handing the stream over.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Maximum bytes of request line + headers accepted before `431`-style
/// rejection (we answer `413` — close enough for a five-endpoint API).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The HTTP method, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// The request target, e.g. `/jobs/3` (query strings are not split
    /// off; no endpoint takes one).
    pub path: String,
    /// Request headers as `(name, value)` with names lowercased; values
    /// are trimmed. Duplicate headers keep every occurrence.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of a header, looked up case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// Socket-level failure (timeout, reset); the connection is dropped
    /// without a response.
    Io(io::Error),
    /// The head or body exceeded its size cap → `413`.
    TooLarge(&'static str),
    /// The bytes were not parseable HTTP → `400`.
    Malformed(&'static str),
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> RequestError {
        RequestError::Io(e)
    }
}

/// Attempts to parse one complete request from an accumulating buffer —
/// the incremental entry point the nonblocking event loop calls after
/// every read.
///
/// Returns `Ok(None)` when the buffer does not yet hold a complete
/// head + body (read more and call again), `Ok(Some(request))` once it
/// does, and an error as soon as the bytes are hopeless: an oversized
/// head or body is rejected *before* the peer finishes sending it, so a
/// slow adversary cannot balloon memory while staying under the radar.
/// Bytes past `Content-Length` (pipelined follow-ups, keep-alive
/// chatter) are ignored: this daemon answers one request per connection.
pub fn try_parse(buf: &[u8], max_body: usize) -> Result<Option<Request>, RequestError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(RequestError::TooLarge("request head"));
        }
        return Ok(None);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| RequestError::Malformed("head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) =
        (parts.next().unwrap_or(""), parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method.is_empty() || !path.starts_with('/') || !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed("bad request line"));
    }

    let mut content_length: Option<usize> = None;
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        let (name, value) = (name.trim().to_ascii_lowercase(), value.trim().to_string());
        if name == "content-length" {
            let parsed =
                value.parse().map_err(|_| RequestError::Malformed("bad Content-Length"))?;
            // RFC 9110 §8.6: repeated Content-Length headers are a request
            // smuggling vector unless every occurrence agrees.
            if content_length.is_some_and(|seen| seen != parsed) {
                return Err(RequestError::Malformed("conflicting Content-Length"));
            }
            content_length = Some(parsed);
        }
        headers.push((name, value));
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > max_body {
        return Err(RequestError::TooLarge("request body"));
    }

    let after_head = &buf[head_end + 4..];
    if after_head.len() < content_length {
        return Ok(None);
    }
    let body = after_head[..content_length].to_vec();
    Ok(Some(Request { method: method.to_string(), path: path.to_string(), headers, body }))
}

/// Reads one request from a blocking stream, honouring the stream's read
/// timeout and capping the body at `max_body` bytes.
///
/// This is the synchronous counterpart of [`try_parse`], used by unit
/// tests and the non-Unix threaded fallback; the event loop feeds
/// `try_parse` directly from readiness callbacks.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, RequestError> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(request) = try_parse(&buf, max_body)? {
            return Ok(request);
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(RequestError::Malformed(if find_head_end(&buf).is_some() {
                "connection closed mid-body"
            } else {
                "connection closed mid-request"
            }));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// An outgoing response: a status code, a body with its content type and
/// an optional `Retry-After` hint (the backpressure signal on `503`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body text.
    pub body: String,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Seconds for a `Retry-After` header, when set.
    pub retry_after: Option<u64>,
    /// Whether this response was relayed from another fleet member; sent
    /// as `X-Fetchvp-Proxied: 1` so clients (and the load generator's
    /// per-status-class histograms) can tell a 1-hop answer from a local
    /// one.
    pub proxied: bool,
}

impl Response {
    /// A response with the given status and JSON body.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            body,
            content_type: "application/json".to_string(),
            retry_after: None,
            proxied: false,
        }
    }

    /// A response with an explicit content type (e.g. Prometheus text
    /// exposition on `/metrics`).
    pub fn text(status: u16, body: String, content_type: &str) -> Response {
        Response { content_type: content_type.to_string(), ..Response::json(status, body) }
    }

    /// A `Retry-After` variant of [`Response::json`].
    pub fn retry_after(status: u16, body: String, seconds: u64) -> Response {
        Response { retry_after: Some(seconds), ..Response::json(status, body) }
    }

    /// The standard reason phrase for the status code.
    pub fn reason(&self) -> &'static str {
        reason_phrase(self.status)
    }

    /// The full wire form of the response, ready for buffered writes from
    /// the event loop.
    ///
    /// Every response carries `Connection: close` — success *and* error
    /// paths alike — because the daemon answers exactly one request per
    /// connection and must tell keep-alive clients (curl defaults to
    /// `Connection: keep-alive`) not to wait for a second response on the
    /// same socket.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        );
        if let Some(seconds) = self.retry_after {
            head.push_str(&format!("Retry-After: {seconds}\r\n"));
        }
        if self.proxied {
            head.push_str("X-Fetchvp-Proxied: 1\r\n");
        }
        head.push_str("\r\n");
        let mut bytes = head.into_bytes();
        bytes.extend_from_slice(self.body.as_bytes());
        bytes
    }

    /// Serializes the response (with `Connection: close`) onto the stream.
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        stream.write_all(&self.to_bytes())?;
        stream.flush()
    }
}

/// The standard reason phrase for a status code.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// The head of a streaming response: `Transfer-Encoding: chunked`, no
/// `Content-Length` (the length is unknown while the job runs), still
/// `Connection: close`. Follow with [`chunk`]-framed payloads and finish
/// with [`chunk_end`].
pub fn stream_head(status: u16, content_type: &str) -> Vec<u8> {
    let reason = reason_phrase(status);
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    )
    .into_bytes()
}

/// One HTTP/1.1 chunk frame: hex length, CRLF, payload, CRLF. Empty
/// payloads return no bytes (a zero-length chunk would terminate the
/// stream).
pub fn chunk(payload: &[u8]) -> Vec<u8> {
    if payload.is_empty() {
        return Vec::new();
    }
    let mut bytes = format!("{:x}\r\n", payload.len()).into_bytes();
    bytes.extend_from_slice(payload);
    bytes.extend_from_slice(b"\r\n");
    bytes
}

/// The terminating zero-length chunk of a chunked response.
pub fn chunk_end() -> &'static [u8] {
    b"0\r\n\r\n"
}

/// A `{"error": …}` body for error responses.
pub fn error_body(message: &str) -> String {
    fetchvp_metrics::Json::object([(
        "error".to_string(),
        fetchvp_metrics::Json::Str(message.to_string()),
    )])
    .to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Feeds raw bytes through a real socket pair and parses them.
    fn parse_bytes(bytes: &[u8]) -> Result<Request, RequestError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(bytes).unwrap();
        drop(client); // close so under-length bodies error instead of hanging
        let (mut server_side, _) = listener.accept().unwrap();
        read_request(&mut server_side, 1024)
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse_bytes(b"POST /run HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/run");
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse_bytes(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!((req.method.as_str(), req.path.as_str()), ("GET", "/healthz"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn headers_are_collected_case_insensitively() {
        let req = parse_bytes(b"GET /metrics HTTP/1.1\r\nAccept: text/plain\r\nX-Thing: A\r\n\r\n")
            .unwrap();
        assert_eq!(req.header("accept"), Some("text/plain"));
        assert_eq!(req.header("ACCEPT"), Some("text/plain"));
        assert_eq!(req.header("x-thing"), Some("A"));
        assert_eq!(req.header("absent"), None);
    }

    #[test]
    fn rejects_malformed_and_oversized() {
        assert!(matches!(parse_bytes(b"nonsense\r\n\r\n"), Err(RequestError::Malformed(_))));
        assert!(matches!(
            parse_bytes(b"POST /run HTTP/1.1\r\nContent-Length: 9999\r\n\r\n"),
            Err(RequestError::TooLarge(_))
        ));
        assert!(matches!(
            parse_bytes(b"POST /run HTTP/1.1\r\nContent-Length: pony\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
        let huge = vec![b'x'; MAX_HEAD_BYTES + 16];
        assert!(matches!(parse_bytes(&huge), Err(RequestError::TooLarge(_))));
    }

    #[test]
    fn trailing_bytes_after_the_body_are_not_an_error() {
        // Regression: the reader used to reject any bytes beyond
        // Content-Length that arrived in the same segment as the head —
        // e.g. a pipelined follow-up request — as "body longer than
        // Content-Length".
        let req = parse_bytes(
            b"POST /run HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"GET /healthz HTTP/1.1\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn body_read_stops_exactly_at_content_length() {
        // Same regression across the read loop: head in one segment, body
        // plus trailing bytes in later ones. A fresh stream write lands in
        // separate reads often enough that the old full-chunk reads
        // overshot and errored.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"POST /run HTTP/1.1\r\nContent-Length: 6\r\n\r\n").unwrap();
        client.flush().unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        client.write_all(b"abcdefTRAILING-JUNK").unwrap();
        drop(client);
        let req = read_request(&mut server_side, 1024).unwrap();
        assert_eq!(req.body, b"abcdef");
    }

    #[test]
    fn duplicate_content_length_must_agree() {
        // Agreeing duplicates are tolerated (RFC 9110 §8.6)…
        let req =
            parse_bytes(b"POST /run HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok")
                .unwrap();
        assert_eq!(req.body, b"ok");
        // …conflicting ones are rejected rather than last-one-wins.
        let err =
            parse_bytes(b"POST /run HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 90\r\n\r\nok");
        assert!(matches!(err, Err(RequestError::Malformed("conflicting Content-Length"))));
    }

    #[test]
    fn truncated_body_is_malformed_not_a_hang() {
        assert!(matches!(
            parse_bytes(b"POST /run HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(RequestError::Malformed(_))
        ));
    }

    #[test]
    fn try_parse_is_incremental() {
        let full = b"POST /run HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"";
        // Every strict prefix is "not yet", never an error.
        for cut in 0..full.len() {
            assert!(
                matches!(try_parse(&full[..cut], 1024), Ok(None)),
                "prefix of {cut} bytes must be incomplete"
            );
        }
        let req = try_parse(full, 1024).unwrap().expect("complete request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"a\"");
        // Trailing pipelined bytes after the body do not confuse it.
        let mut with_trailer = full.to_vec();
        with_trailer.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
        assert_eq!(try_parse(&with_trailer, 1024).unwrap().unwrap().body, b"{\"a\"");
    }

    #[test]
    fn try_parse_rejects_oversize_before_completion() {
        // A head that exceeds the cap without ever completing must error
        // immediately, not wait for the attacker to finish.
        let huge = vec![b'x'; MAX_HEAD_BYTES + 1];
        assert!(matches!(try_parse(&huge, 1024), Err(RequestError::TooLarge("request head"))));
        // An oversized declared body is rejected at head-parse time, before
        // any body bytes arrive.
        let greedy = b"POST /run HTTP/1.1\r\nContent-Length: 9999\r\n\r\n";
        assert!(matches!(try_parse(greedy, 1024), Err(RequestError::TooLarge("request body"))));
    }

    #[test]
    fn every_response_closes_the_connection() {
        // Regression guard for the keep-alive audit: error paths (400, 413,
        // 503) must answer `Connection: close` exactly like success paths,
        // or a keep-alive client hangs waiting to reuse the socket.
        for response in [
            Response::json(200, "{}".to_string()),
            Response::json(400, error_body("bad request")),
            Response::json(413, error_body("too large")),
            Response::retry_after(503, error_body("queue full"), 2),
            Response::text(200, "ok".to_string(), "text/plain"),
        ] {
            let text = String::from_utf8(response.to_bytes()).unwrap();
            assert!(
                text.contains("Connection: close\r\n"),
                "{} response must close the connection:\n{text}",
                response.status
            );
        }
    }

    #[test]
    fn response_wire_format() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        Response::retry_after(503, error_body("queue full"), 1).write_to(&mut server_side).unwrap();
        drop(server_side);
        let mut text = String::new();
        let mut client = client;
        client.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("{\n  \"error\": \"queue full\"\n}"), "{text}");
    }

    #[test]
    fn stream_frames_are_valid_chunked_encoding() {
        let head = String::from_utf8(stream_head(200, "application/x-ndjson")).unwrap();
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"), "{head}");
        assert!(head.contains("Transfer-Encoding: chunked\r\n"), "{head}");
        assert!(head.contains("Connection: close\r\n"), "{head}");
        assert!(!head.contains("Content-Length"), "streams have no length:\n{head}");
        assert!(head.ends_with("\r\n\r\n"), "{head}");

        assert_eq!(chunk(b"hello\n"), b"6\r\nhello\n\r\n");
        // 26 bytes frames as hex 1a.
        assert_eq!(chunk(&[b'x'; 26])[..4], *b"1a\r\n");
        assert!(chunk(b"").is_empty(), "empty payloads must not terminate the stream");
        assert_eq!(chunk_end(), b"0\r\n\r\n");
    }

    #[test]
    fn proxied_responses_carry_the_relay_header() {
        let mut response = Response::json(200, "{}".to_string());
        let plain = String::from_utf8(response.to_bytes()).unwrap();
        assert!(!plain.contains("X-Fetchvp-Proxied"), "{plain}");
        response.proxied = true;
        let relayed = String::from_utf8(response.to_bytes()).unwrap();
        assert!(relayed.contains("X-Fetchvp-Proxied: 1\r\n"), "{relayed}");
        assert!(relayed.contains("Connection: close\r\n"), "{relayed}");
    }

    #[test]
    fn text_responses_carry_their_content_type() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        Response::text(200, "fetchvp_up 1\n".to_string(), "text/plain; version=0.0.4")
            .write_to(&mut server_side)
            .unwrap();
        drop(server_side);
        let mut text = String::new();
        client.read_to_string(&mut text).unwrap();
        assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"), "{text}");
        assert!(text.ends_with("fetchvp_up 1\n"), "{text}");
    }
}
