//! `fetchvp-server` — a zero-dependency simulation-as-a-service daemon.
//!
//! `fetchvp serve` turns the one-shot experiment CLI into a long-lived
//! service: clients `POST /run` a JSON job spec (see
//! [`fetchvp_experiments::jobspec`]), the daemon queues it with admission
//! control, a worker pool executes it through the shared [`Sweep`] runner,
//! and `GET /jobs/<id>` returns the result — with workload traces staying
//! **warm across requests**, so the second job against the same
//! configuration skips tracing entirely, and **deterministic results
//! cached by content** ([`cache`]), so a repeated spec skips simulation
//! entirely.
//!
//! Everything is built on `std` only: [`std::net::TcpListener`] driven by
//! a `poll(2)` readiness event loop (one thread multiplexing every
//! connection; thread-per-connection remains as the non-Unix fallback), a
//! hand-rolled HTTP/1.1 subset ([`http`]), a condvar-based bounded MPMC
//! queue ([`queue`]) and a mutex-guarded job table ([`jobs`]). Several
//! daemons started with `--peers` form a fleet ([`peers`]): jobs shard
//! across members by consistent hashing on the spec's canonical hash,
//! with single-hop proxying and per-peer health checks. [`loadgen`]
//! drives such a fleet and reports achieved RPS and latency quantiles.
//!
//! # Endpoints
//!
//! | method & path | behaviour |
//! |---|---|
//! | `POST /run` | validate a job spec; `202` + job id (or `200` with the inlined result on a cache hit), `400` on a bad spec, `503` + `Retry-After` when the queue is full |
//! | `GET /jobs/<id>` | the job's status/result document (with a live `progress` snapshot); `404` for unknown ids; proxied to the owning fleet member when the id belongs elsewhere |
//! | `GET /jobs/<id>/events` | **live NDJSON progress stream** over HTTP/1.1 chunked transfer: one [`fetchvp_tracing::ProgressEvent`] line per chunk until the terminal `done`/`failed` event, relayed 1 hop from the owning fleet member when the id belongs elsewhere |
//! | `GET /fleet/metrics` | fleet-wide observability: any member fans the request out to its peers and returns the merged per-member snapshots (version, uptime, live jobs with progress, metrics) plus fleet-summed counters, with dead members marked |
//! | `GET /healthz` | liveness + queue/worker summary (+ per-peer liveness in a fleet) |
//! | `GET /metrics` | live [`fetchvp_metrics::Registry`] snapshot: `server.*` counters alongside accumulated simulator counters (`trace.*`, `sched.*`, …) |
//! | `POST /shutdown` | graceful shutdown (also triggered by `SIGTERM`/`SIGINT`): stop accepting, drain admitted jobs, exit |
//!
//! # Operational guarantees
//!
//! * **Backpressure, not buffering** — the queue is bounded
//!   ([`ServerConfig::queue_depth`]); when full, `/run` answers `503`
//!   immediately with a `Retry-After` derived from the observed drain
//!   rate, and never blocks the event loop.
//! * **The event loop never blocks on a peer** — fleet proxy hops are
//!   blocking network I/O, so they run on a dedicated helper pool while
//!   the proxied connection parks; a slow or dead peer stalls at most
//!   its own requests, never every connection on the member.
//! * **Isolation** — a panicking job marks itself `failed` and the worker
//!   lives on; a panicking worker can never take `GET /metrics` down
//!   (the registry lock is poison-proof).
//! * **Bounded connections** — at most [`ServerConfig::max_connections`]
//!   sockets multiplexed at once (excess clients wait in the kernel's
//!   accept backlog), each with per-phase read/write deadlines and capped
//!   request sizes.
//! * **No dropped jobs** — shutdown drains everything that was `202`ed.

#![deny(missing_docs)]

pub mod cache;
#[cfg(unix)]
mod eventloop;
pub mod http;
pub mod jobs;
pub mod loadgen;
pub mod peers;
pub mod progress;
pub mod queue;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use fetchvp_experiments::{ExperimentConfig, JobSpec, Sweep};
use fetchvp_metrics::{Json, SharedRegistry};
use fetchvp_tracestore::TraceDir;
use fetchvp_tracing::{log_with, Level};

use cache::ResultCache;
use http::{error_body, Request, Response};
use jobs::JobTable;
use peers::Fleet;
use progress::JobProgress;
use queue::BoundedQueue;

/// How the daemon is sized and where it listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// `HOST:PORT` to bind (port 0 picks an ephemeral port).
    pub addr: String,
    /// Pool workers executing jobs.
    pub workers: usize,
    /// Bounded queue capacity; pushes beyond it get `503`.
    pub queue_depth: usize,
    /// Maximum sockets multiplexed by the event loop at once (handler
    /// threads on the non-Unix fallback); excess clients wait in the
    /// kernel's accept backlog.
    pub max_connections: usize,
    /// Per-request socket read timeout.
    pub read_timeout: Duration,
    /// Per-request socket write timeout.
    pub write_timeout: Duration,
    /// Maximum accepted `POST` body, bytes.
    pub max_body_bytes: usize,
    /// Content-addressed trace directory. When set, benchmark traces are
    /// generated once to disk and replayed chunk-by-chunk, which lifts the
    /// `trace_len` cap for machine-sweep experiments to
    /// [`fetchvp_experiments::jobspec::MAX_TRACE_LEN_OOC`].
    pub trace_dir: Option<PathBuf>,
    /// In-memory result-cache capacity (finished result documents); 0
    /// disables result caching. When [`ServerConfig::trace_dir`] is also
    /// set, results spill to `<trace_dir>/results-v1/` and survive
    /// restarts.
    pub result_cache_entries: usize,
    /// Full fleet member list (`host:port`, including this process's own
    /// address) for `--peers` mode; empty means standalone.
    pub peers: Vec<String>,
    /// How many progress events each job's ring retains for
    /// `GET /jobs/<id>/events` readers; a slower reader loses the oldest
    /// events (drop-oldest), never the terminal one.
    pub progress_ring_events: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7998".to_string(),
            workers: std::thread::available_parallelism().map_or(2, |n| n.get().min(4)),
            queue_depth: 32,
            max_connections: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_body_bytes: 256 * 1024,
            trace_dir: None,
            result_cache_entries: 256,
            peers: Vec::new(),
            progress_ring_events: jobs::DEFAULT_PROGRESS_EVENTS,
        }
    }
}

/// How many distinct experiment configurations keep their traces cached.
///
/// Each slot holds one [`Sweep`] (≈ one generated trace set, a few MB at
/// served trace lengths); least-recently-used configurations are evicted.
const SWEEP_POOL_SLOTS: usize = 8;

/// An MRU pool of [`Sweep`]s keyed by [`ExperimentConfig`] — the
/// cross-request trace cache. Served experiments run through the pooled
/// sweep's batch API (`Sweep::machines` → `fetchvp_core::run_batch`), so
/// a job's `jobs` worker count composes with per-cell config batching
/// exactly as it does on the CLI.
struct SweepPool {
    slots: Mutex<Vec<(ExperimentConfig, Sweep)>>,
    /// One on-disk trace cache shared by every pooled sweep, so evicting a
    /// slot never discards generated trace files.
    trace_dir: Option<Arc<TraceDir>>,
}

impl SweepPool {
    fn new(trace_dir: Option<Arc<TraceDir>>) -> SweepPool {
        SweepPool { slots: Mutex::new(Vec::new()), trace_dir }
    }

    /// The pooled sweep for `spec`'s configuration (built on miss),
    /// reconfigured to the spec's worker count. The bool reports a hit.
    fn sweep_for(&self, spec: &JobSpec) -> (Sweep, bool) {
        let cfg = spec.config();
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(at) = slots.iter().position(|(c, _)| *c == cfg) {
            let entry = slots.remove(at);
            let sweep = entry.1.clone();
            slots.insert(0, entry);
            return (sweep.reconfigured(spec.jobs), true);
        }
        let sweep = Sweep::with_trace_dir(&cfg, self.trace_dir.clone(), 1);
        slots.insert(0, (cfg, sweep.clone()));
        slots.truncate(SWEEP_POOL_SLOTS);
        (sweep.reconfigured(spec.jobs), false)
    }
}

/// How many helper threads run blocking proxy hops in fleet mode. Each
/// hop is one loopback/rack round-trip, so a handful of threads covers
/// thousands of hops per second; a saturated pool degrades to local
/// execution, never to blocking the event loop.
const PROXY_WORKERS: usize = 4;

/// How many proxy hops may be parked waiting for a helper; beyond it,
/// requests fall back to local handling immediately.
const PROXY_QUEUE_DEPTH: usize = 64;

/// What a proxy helper produced for the parked connection.
enum ProxyOutcome {
    /// A complete buffered response, ready to write.
    Response(Response),
    /// An open nonblocking socket to the owning member, whose bytes the
    /// event loop relays verbatim — the streaming hop of
    /// `GET /jobs/<id>/events`.
    Upstream(TcpStream),
}

/// The slot a proxy helper fills once its hop completes; the owning
/// connection polls it from the event loop.
type ProxySlot = Mutex<Option<ProxyOutcome>>;

/// Which flavor of blocking work a [`ProxyTask`] parks off the event
/// loop.
enum ProxyKind {
    /// Buffered single-hop forward to the owning member.
    Hop {
        /// The owning member's index in the fleet list.
        member: usize,
    },
    /// Connect a streaming relay to the owning member.
    StreamConnect {
        /// The owning member's index in the fleet list.
        member: usize,
    },
    /// Fan `GET /fleet/metrics` out to every member and merge.
    FleetMetrics,
}

/// One blocking hop parked off the event loop.
struct ProxyTask {
    kind: ProxyKind,
    request: Request,
    started: Instant,
    slot: Arc<ProxySlot>,
}

/// State shared by the event loop, connection handlers and pool workers.
struct Shared {
    config: ServerConfig,
    queue: BoundedQueue<(u64, JobSpec)>,
    jobs: JobTable,
    metrics: SharedRegistry,
    sweeps: SweepPool,
    results: ResultCache,
    fleet: Fleet,
    proxies: BoundedQueue<ProxyTask>,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
    /// When the daemon bound its socket — the `server.uptime_seconds`
    /// gauge and the per-member RPS denominator in `/fleet/metrics`.
    started: Instant,
}

impl Shared {
    fn should_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signals::terminated()
    }

    /// Parks a blocking hop on the helper pool. `Err` carries the
    /// response when the hop could not be parked (saturated pool): the
    /// request is completed locally instead — computed without blocking
    /// I/O, and already metered.
    #[cfg(unix)]
    fn dispatch_proxy(
        &self,
        kind: ProxyKind,
        request: Request,
        started: Instant,
    ) -> Result<Arc<ProxySlot>, Response> {
        let slot = Arc::new(Mutex::new(None));
        let task = ProxyTask { kind, request, started, slot: Arc::clone(&slot) };
        match self.proxies.try_push(task) {
            Ok(_) => Ok(slot),
            Err(task) => {
                self.metrics.counter("server.peers", "proxy_overflow", 1);
                let response = match task.kind {
                    // A saturated helper pool cannot fan out or stream;
                    // the aggregation client retries, the stream client
                    // falls back to polling.
                    ProxyKind::FleetMetrics | ProxyKind::StreamConnect { .. } => {
                        Response::retry_after(503, error_body("proxy helpers saturated"), 1)
                    }
                    ProxyKind::Hop { .. } => proxy_fallback(self, &task.request),
                };
                finish_request(self, &task.request, &response, task.started);
                Err(response)
            }
        }
    }
}

/// The daemon: bind with [`Server::bind`], then block in [`Server::run`].
pub struct Server {
    listener: TcpListener,
    state: Arc<Shared>,
}

impl Server {
    /// Binds the listening socket and builds the shared state. Nothing
    /// runs until [`Server::run`].
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let metrics = SharedRegistry::new();
        metrics.counter("server", "started", 1);
        // Build identity, for version-skew detection across a fleet:
        // `fetchvp_build_info 1` plus the crate and on-disk format
        // versions as their own series (this exposition has no labels).
        metrics.counter("build", "info", 1);
        for (name, text) in [
            ("version_major", env!("CARGO_PKG_VERSION_MAJOR")),
            ("version_minor", env!("CARGO_PKG_VERSION_MINOR")),
            ("version_patch", env!("CARGO_PKG_VERSION_PATCH")),
        ] {
            metrics.counter("build", name, text.parse().unwrap_or(0));
        }
        metrics.counter("build", "trace_format_version", fetchvp_tracestore::FORMAT_VERSION as u64);
        let trace_dir = config.trace_dir.as_ref().map(|root| Arc::new(TraceDir::new(root)));
        let fleet = if config.peers.is_empty() {
            Fleet::standalone()
        } else {
            Fleet::from_members(&config.peers, listener.local_addr()?)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?
        };
        let results = ResultCache::new(config.result_cache_entries, config.trace_dir.as_deref());
        let state = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_depth),
            jobs: JobTable::sharded(fleet.stride(), fleet.self_index() as u64)
                .with_progress_capacity(config.progress_ring_events),
            metrics,
            sweeps: SweepPool::new(trace_dir),
            results,
            fleet,
            proxies: BoundedQueue::new(PROXY_QUEUE_DEPTH),
            shutdown: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            started: Instant::now(),
            config,
        });
        Ok(Server { listener, state })
    }

    /// The bound address — the way to learn the port after binding `:0`.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until `POST /shutdown` or `SIGTERM`/`SIGINT`, then drains
    /// admitted jobs and in-flight connections before returning.
    pub fn run(self) -> io::Result<()> {
        signals::install();
        let workers: Vec<_> = (0..self.state.config.workers.max(1))
            .map(|i| {
                let state = Arc::clone(&self.state);
                std::thread::Builder::new()
                    .name(format!("fetchvp-worker-{i}"))
                    .spawn(move || worker_loop(&state))
                    .expect("spawn worker thread")
            })
            .collect();
        let health_checker = self.state.fleet.is_fleet().then(|| {
            let state = Arc::clone(&self.state);
            std::thread::Builder::new()
                .name("fetchvp-health".to_string())
                .spawn(move || health_loop(&state))
                .expect("spawn health checker")
        });
        // Proxy hops are blocking network I/O; in fleet mode they run on
        // this pool so they can never stall the event loop.
        let proxy_helpers: Vec<_> = if self.state.fleet.is_fleet() {
            (0..PROXY_WORKERS)
                .map(|i| {
                    let state = Arc::clone(&self.state);
                    std::thread::Builder::new()
                        .name(format!("fetchvp-proxy-{i}"))
                        .spawn(move || proxy_loop(&state))
                        .expect("spawn proxy helper")
                })
                .collect()
        } else {
            Vec::new()
        };

        let served = serve_connections(&self.listener, &self.state);

        // Graceful shutdown: reject new work, drain everything admitted.
        self.state.queue.close();
        self.state.proxies.close();
        for worker in workers {
            let _ = worker.join();
        }
        for helper in proxy_helpers {
            let _ = helper.join();
        }
        if let Some(checker) = health_checker {
            let _ = checker.join();
        }
        served
    }
}

/// Multiplexes connections until shutdown — the `poll(2)` event loop.
#[cfg(unix)]
fn serve_connections(listener: &TcpListener, state: &Arc<Shared>) -> io::Result<()> {
    eventloop::serve(listener, state)
}

/// Non-Unix fallback: blocking accept + one handler thread per
/// connection, exactly the pre-event-loop daemon.
#[cfg(not(unix))]
fn serve_connections(listener: &TcpListener, state: &Arc<Shared>) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    while !state.should_shutdown() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let active = state.active_connections.load(Ordering::SeqCst);
                if active >= state.config.max_connections {
                    state.metrics.counter("server.connections", "rejected", 1);
                    let mut stream = stream;
                    let _ = stream.set_write_timeout(Some(state.config.write_timeout));
                    let _ = Response::retry_after(503, error_body("connection limit"), 1)
                        .write_to(&mut stream);
                    continue;
                }
                state.active_connections.fetch_add(1, Ordering::SeqCst);
                let state = Arc::clone(state);
                let _ = std::thread::Builder::new()
                    .name("fetchvp-conn".to_string())
                    .spawn(move || {
                        handle_connection(&state, stream);
                        state.active_connections.fetch_sub(1, Ordering::SeqCst);
                    })
                    .map_err(|_| {
                        // Spawn failure: undo the reservation; the peer
                        // times out rather than deadlocking the count.
                        state.active_connections.fetch_sub(1, Ordering::SeqCst);
                    });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while state.active_connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    Ok(())
}

/// Probes every peer on a fixed interval, flipping liveness flags and
/// counting transitions so a flapping peer is visible in `/metrics`.
fn health_loop(state: &Shared) {
    while !state.should_shutdown() {
        for member in 0..state.fleet.members().len() {
            if member == state.fleet.self_index() {
                continue;
            }
            let alive = state.fleet.probe(member);
            if state.fleet.set_alive(member, alive) {
                state.metrics.counter("server.peers", "health_flips", 1);
                let label = state.fleet.metric_label(member);
                log_with("server.peers", Level::Info, || {
                    format!("peer {label} is now {}", if alive { "up" } else { "down" })
                });
            }
        }
        // Sleep in small steps so shutdown is honored promptly.
        let deadline = Instant::now() + peers::HEALTH_INTERVAL;
        while Instant::now() < deadline && !state.should_shutdown() {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

/// One pool worker: pull, run (panic-isolated), publish.
fn worker_loop(state: &Shared) {
    while let Some((id, spec)) = state.queue.pop() {
        state.jobs.set_running(id);
        let (sweep, pool_hit) = state.sweeps.sweep_for(&spec);
        // Attach the job's progress ring so every machine sweep the spec
        // runs feeds `GET /jobs/<id>/events`; observers never change
        // results (the sweep determinism tests assert this).
        let sweep = match state.jobs.progress(id) {
            Some(progress) => sweep.with_progress(progress),
            None => sweep,
        };
        state.metrics.counter("server.sweep_pool", if pool_hit { "hits" } else { "misses" }, 1);
        let started = Instant::now();
        match catch_unwind(AssertUnwindSafe(|| spec.run(&sweep))) {
            Ok(outcome) => {
                state.metrics.merge(&outcome.metrics);
                state.metrics.counter("server.jobs", "completed", 1);
                state.metrics.observe(
                    "server",
                    "job_latency_ms",
                    started.elapsed().as_millis() as u64,
                );
                // Deterministic results are cached by content so the next
                // identical spec is a lookup; bench reports (wall-clock
                // measurements) and failures are never cached.
                if spec.deterministic_result() {
                    state.results.insert(spec.canonical_hash(), spec.canonical(), &outcome.result);
                }
                state.jobs.finish(id, outcome.result);
            }
            Err(_) => {
                state.metrics.counter("server.jobs", "failed", 1);
                state.jobs.fail(id, "job panicked; see server logs".to_string());
            }
        }
    }
}

/// Monotone id shared by every connection, for correlating access log
/// lines (`FETCHVP_LOG=server=info`) across requests.
static REQUEST_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// What routing decided: most requests complete inline on the calling
/// thread, but a fleet proxy hop is blocking network I/O that must never
/// run on the event-loop thread, so it is handed back to the caller.
enum Routed {
    /// The response is ready to write.
    Ready(Response),
    /// Forward one hop to fleet member `member` (off the event loop),
    /// falling back to [`proxy_fallback`] when the hop fails.
    Proxy {
        /// The owning member's index in the fleet list.
        member: usize,
    },
    /// Stream the job's progress ring as chunked NDJSON until its
    /// terminal event — served incrementally by the event loop (the
    /// threaded fallback and unit tests degrade to a snapshot).
    Stream {
        /// The job's progress handle; the connection keeps its own
        /// cursor into the ring.
        progress: Arc<JobProgress>,
    },
    /// Open a streaming relay hop to fleet member `member`, who owns the
    /// requested job's events.
    StreamProxy {
        /// The owning member's index in the fleet list.
        member: usize,
    },
    /// Fan `GET /fleet/metrics` out to every peer and merge — blocking
    /// network I/O, parked on the proxy helper pool.
    FleetMetrics,
}

/// Records the per-request metrics and access log line once a response
/// is ready — the completion half of every routing path. `started` is
/// when the connection began reading, so `server.request_latency_us`
/// includes request-receive (and any proxy-hop) time.
fn finish_request(state: &Shared, request: &Request, response: &Response, started: Instant) {
    let id = REQUEST_ID.fetch_add(1, Ordering::Relaxed) + 1;
    state.metrics.counter(
        "server.requests",
        &format!("{}.{}", endpoint_label(&request.path), response.status),
        1,
    );
    let micros = started.elapsed().as_micros() as u64;
    state.metrics.observe("server", "request_latency_us", micros);
    log_with("server.http", Level::Info, || {
        format!("req={id} {} {} -> {} in {micros}us", request.method, request.path, response.status)
    });
}

/// Routes one parsed request on the event-loop thread. Requests that
/// complete without blocking I/O come back [`Routed::Ready`], already
/// metered; proxy hops come back [`Routed::Proxy`] for
/// [`Shared::dispatch_proxy`].
#[cfg(unix)]
fn respond_or_proxy(state: &Shared, request: &Request, started: Instant) -> Routed {
    match route(state, request, false) {
        Routed::Ready(response) => {
            finish_request(state, request, &response, started);
            Routed::Ready(response)
        }
        Routed::Stream { progress } => {
            // Streams are metered when they are accepted (the 200 and the
            // head go out now); their lifetime is the job's, not a
            // request-latency sample's.
            let accepted = Response::text(200, String::new(), STREAM_CONTENT_TYPE);
            finish_request(state, request, &accepted, started);
            Routed::Stream { progress }
        }
        proxy => proxy,
    }
}

/// The content type of the `GET /jobs/<id>/events` stream: newline-
/// delimited JSON, one [`fetchvp_tracing::ProgressEvent`] line per chunk.
pub const STREAM_CONTENT_TYPE: &str = "application/x-ndjson";

/// Routes one parsed request to a finished response, running any proxy
/// hop inline — the blocking entry point used by the threaded fallback
/// (one thread per connection, so blocking is safe) and unit tests. The
/// event loop uses [`respond_or_proxy`] + the proxy helper pool instead.
#[cfg(any(test, not(unix)))]
fn respond(state: &Shared, request: &Request, started: Instant) -> Response {
    let response = match route(state, request, false) {
        Routed::Ready(response) => response,
        Routed::Proxy { member } | Routed::StreamProxy { member } => {
            complete_proxy(state, member, request)
        }
        // Without the event loop there is no incremental write path, so
        // the stream degrades to a self-contained snapshot of the ring.
        Routed::Stream { progress } => stream_snapshot(&progress),
        Routed::FleetMetrics => fleet_metrics_merged(state),
    };
    finish_request(state, request, &response, started);
    response
}

/// The ring's retained events as one buffered NDJSON body — what the
/// threaded fallback (and any proxyless local route) serves where the
/// event loop would stream live.
fn stream_snapshot(progress: &JobProgress) -> Response {
    let batch = progress.since(0);
    let mut body = String::new();
    for event in &batch.events {
        body.push_str(&event.to_line());
        body.push('\n');
    }
    Response::text(200, body, STREAM_CONTENT_TYPE)
}

/// One proxy helper: runs the blocking hops the event loop parked.
fn proxy_loop(state: &Shared) {
    while let Some(task) = state.proxies.pop() {
        let outcome = match task.kind {
            ProxyKind::Hop { member } => {
                let response = complete_proxy(state, member, &task.request);
                finish_request(state, &task.request, &response, task.started);
                ProxyOutcome::Response(response)
            }
            ProxyKind::StreamConnect { member } => match open_stream_hop(state, member, &task) {
                Ok(upstream) => ProxyOutcome::Upstream(upstream),
                Err(response) => ProxyOutcome::Response(response),
            },
            ProxyKind::FleetMetrics => {
                let response = fleet_metrics_merged(state);
                finish_request(state, &task.request, &response, task.started);
                ProxyOutcome::Response(response)
            }
        };
        *task.slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(outcome);
    }
}

/// Opens the streaming relay for a [`ProxyKind::StreamConnect`] hop,
/// metering either the accepted relay (as a proxied 200) or the failure
/// response. An unreachable owner answers 502 — the record (and its
/// ring) lives only there, so there is no local fallback to stream.
fn open_stream_hop(state: &Shared, member: usize, task: &ProxyTask) -> Result<TcpStream, Response> {
    let upstream = if state.fleet.is_alive(member) {
        state.fleet.open_stream(member, &task.request)
    } else {
        None
    };
    match upstream {
        Some(upstream) => {
            state.metrics.counter("server.peers", "proxied_streams", 1);
            let mut accepted = Response::text(200, String::new(), STREAM_CONTENT_TYPE);
            accepted.proxied = true;
            finish_request(state, &task.request, &accepted, task.started);
            Ok(upstream)
        }
        None => {
            state.metrics.counter("server.peers", "proxy_errors", 1);
            if state.fleet.set_alive(member, false) {
                state.metrics.counter("server.peers", "health_flips", 1);
            }
            let response = proxy_fallback(state, &task.request);
            finish_request(state, &task.request, &response, task.started);
            Err(response)
        }
    }
}

/// Runs the blocking single-hop proxy for a [`Routed::Proxy`] decision —
/// never on the event-loop thread. A peer that is already marked dead
/// (the health checker or an earlier hop beat us to it) short-circuits
/// straight to the fallback instead of burning a connect timeout.
fn complete_proxy(state: &Shared, member: usize, request: &Request) -> Response {
    if state.fleet.is_alive(member) {
        if let Some(response) = proxy_or_mark_dead(state, member, request) {
            return response;
        }
    }
    proxy_fallback(state, request)
}

/// Handles a request whose proxy hop could not run (dead peer, saturated
/// helper pool): `POST /run` degrades to running the job locally —
/// availability over cache locality — while `GET /jobs/<id>` answers
/// `502`, because the record lives only on the unreachable owner.
fn proxy_fallback(state: &Shared, request: &Request) -> Response {
    if request.path.starts_with("/jobs/") {
        let tail = &request.path["/jobs/".len()..];
        let id_text = tail.strip_suffix("/events").unwrap_or(tail);
        let owner = id_text
            .parse::<u64>()
            .map(|id| JobTable::owner_of(id, state.fleet.stride()) as usize)
            .unwrap_or_default();
        return Response::json(
            502,
            error_body(&format!(
                "job {id_text} belongs to unreachable fleet member {}",
                state.fleet.members().get(owner).map(String::as_str).unwrap_or("?")
            )),
        );
    }
    route_local(state, request)
}

/// Routes a request with fleet forwarding disabled — the handling a
/// request gets after its proxy hop failed (or when it arrived already
/// forwarded).
fn route_local(state: &Shared, request: &Request) -> Response {
    match route(state, request, true) {
        Routed::Ready(response) => response,
        // A locally-owned events stream degrades to a buffered snapshot
        // of the ring — proxyless paths have no incremental writer.
        Routed::Stream { progress } => stream_snapshot(&progress),
        Routed::Proxy { .. } | Routed::StreamProxy { .. } | Routed::FleetMetrics => {
            unreachable!("local-only routing cannot proxy")
        }
    }
}

/// Reads one request, routes it, writes the response, records metrics —
/// the threaded fallback's per-connection handler.
#[cfg(not(unix))]
fn handle_connection(state: &Shared, mut stream: TcpStream) {
    use http::{read_request, RequestError};
    let _ = stream.set_read_timeout(Some(state.config.read_timeout));
    let _ = stream.set_write_timeout(Some(state.config.write_timeout));
    let started = Instant::now();
    let response = match read_request(&mut stream, state.config.max_body_bytes) {
        Ok(request) => respond(state, &request, started),
        Err(RequestError::Io(_)) => {
            state.metrics.counter("server.requests", "io_error", 1);
            return; // nothing sane to answer on a dead socket
        }
        Err(RequestError::TooLarge(what)) => {
            state.metrics.counter("server.requests", "too_large.413", 1);
            Response::json(413, error_body(&format!("{what} too large")))
        }
        Err(RequestError::Malformed(why)) => {
            state.metrics.counter("server.requests", "malformed.400", 1);
            Response::json(400, error_body(why))
        }
    };
    let _ = response.write_to(&mut stream);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// The metric label for a request path (`/jobs/7` → `jobs`,
/// `/jobs/7/events` → `events`).
fn endpoint_label(path: &str) -> &'static str {
    if path == "/healthz" {
        "healthz"
    } else if path == "/metrics" {
        "metrics"
    } else if path == "/run" {
        "run"
    } else if path == "/shutdown" {
        "shutdown"
    } else if path == "/fleet/metrics" {
        "fleet"
    } else if path.starts_with("/jobs/") && path.ends_with("/events") {
        "events"
    } else if path.starts_with("/jobs/") {
        "jobs"
    } else {
        "other"
    }
}

/// Routes a request. With `local_only` set, fleet forwarding is
/// disabled and the result is always [`Routed::Ready`]; otherwise
/// `POST /run` and `GET /jobs/<id>` may decide on a proxy hop.
fn route(state: &Shared, request: &Request, local_only: bool) -> Routed {
    Routed::Ready(match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => healthz(state),
        ("GET", "/metrics") => metrics_snapshot(state, request),
        ("GET", "/fleet/metrics") => {
            // A forwarded (or local-only) request is one peer answering
            // the aggregator: it reports just its own member document.
            // Fresh requests on a fleet member fan out on the helper
            // pool; a standalone daemon merges itself inline.
            if local_only || is_forwarded(request) {
                Response::json(200, fleet_member_json(state).to_json())
            } else if state.fleet.is_fleet() {
                return Routed::FleetMetrics;
            } else {
                fleet_metrics_merged(state)
            }
        }
        ("POST", "/run") => return submit(state, request, local_only),
        ("POST", "/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            Response::json(200, Json::object([status_pair("shutting down")]).to_json())
        }
        ("GET", path) if path.starts_with("/jobs/") && path.ends_with("/events") => {
            return job_events(state, request, path, local_only)
        }
        ("GET", path) if path.starts_with("/jobs/") => {
            return job_status(state, request, path, local_only)
        }
        (_, "/healthz" | "/metrics" | "/run" | "/shutdown" | "/fleet/metrics") => {
            Response::json(405, error_body("method not allowed"))
        }
        (_, path) if path.starts_with("/jobs/") => {
            Response::json(405, error_body("method not allowed"))
        }
        _ => Response::json(404, error_body("no such endpoint")),
    })
}

fn status_pair(status: &str) -> (String, Json) {
    ("status".to_string(), Json::Str(status.to_string()))
}

fn healthz(state: &Shared) -> Response {
    let (queued, running, done, failed) = state.jobs.counts();
    let mut pairs = vec![
        status_pair("ok"),
        ("workers".to_string(), Json::UInt(state.config.workers as u64)),
        ("queue_depth".to_string(), Json::UInt(state.queue.len() as u64)),
        ("queue_capacity".to_string(), Json::UInt(state.queue.capacity() as u64)),
        (
            "jobs".to_string(),
            Json::object([
                ("queued".to_string(), Json::UInt(queued)),
                ("running".to_string(), Json::UInt(running)),
                ("done".to_string(), Json::UInt(done)),
                ("failed".to_string(), Json::UInt(failed)),
            ]),
        ),
    ];
    if state.fleet.is_fleet() {
        let members = state
            .fleet
            .members()
            .iter()
            .enumerate()
            .map(|(i, addr)| {
                let status = if i == state.fleet.self_index() {
                    "self"
                } else if state.fleet.is_alive(i) {
                    "up"
                } else {
                    "down"
                };
                (addr.clone(), Json::Str(status.to_string()))
            })
            .collect::<Vec<_>>();
        pairs.push(("peers".to_string(), Json::object(members)));
    }
    Response::json(200, Json::object(pairs).to_json())
}

/// Whether the request's `Accept` header asks for Prometheus text
/// exposition rather than the default JSON snapshot.
fn wants_prometheus(request: &Request) -> bool {
    request
        .header("accept")
        .is_some_and(|accept| accept.contains("text/plain") || accept.contains("openmetrics"))
}

/// Refreshes the point-in-time gauges Prometheus-collector style, right
/// before a snapshot is taken (`/metrics` scrape or a `/fleet/metrics`
/// member report); counters accumulate across the daemon's lifetime.
fn refresh_gauges(state: &Shared) {
    state.metrics.gauge("server", "uptime_seconds", state.started.elapsed().as_secs_f64());
    state.metrics.gauge("server.queue", "depth", state.queue.len() as f64);
    state.metrics.gauge(
        "server.connections",
        "active",
        state.active_connections.load(Ordering::SeqCst) as f64,
    );
    if let Some(dir) = &state.sweeps.trace_dir {
        let counters = dir.counters();
        state.metrics.gauge("server.trace_cache", "hits", counters.hits as f64);
        state.metrics.gauge("server.trace_cache", "misses", counters.misses as f64);
        state.metrics.gauge("server.trace_cache", "bytes", counters.bytes as f64);
    }
    if state.results.enabled() {
        let counters = state.results.counters();
        state.metrics.gauge("server.result_cache", "hits", counters.hits as f64);
        state.metrics.gauge("server.result_cache", "disk_hits", counters.disk_hits as f64);
        state.metrics.gauge("server.result_cache", "misses", counters.misses as f64);
        state.metrics.gauge("server.result_cache", "bytes", counters.bytes as f64);
    }
    for member in 0..state.fleet.members().len() {
        let up = if state.fleet.is_alive(member) { 1.0 } else { 0.0 };
        state.metrics.gauge(
            &format!("server.peers.{}", state.fleet.metric_label(member)),
            "up",
            up,
        );
    }
}

fn metrics_snapshot(state: &Shared, request: &Request) -> Response {
    refresh_gauges(state);
    // `server.started` (recorded at bind) guarantees the `server.*`
    // namespace is present even in the very first scrape; this request's
    // own counter lands in the *next* snapshot via handle_connection.
    let snapshot = state.metrics.snapshot();
    if wants_prometheus(request) {
        return Response::text(
            200,
            fetchvp_tracing::prom::render(&snapshot),
            fetchvp_tracing::prom::CONTENT_TYPE,
        );
    }
    Response::json(200, snapshot.to_json().to_json())
}

/// One member's contribution to `/fleet/metrics`: who it is (address,
/// crate version, uptime), what it is doing (live jobs with progress
/// snapshots) and its full metrics snapshot.
fn fleet_member_json(state: &Shared) -> Json {
    refresh_gauges(state);
    let addr = state
        .fleet
        .members()
        .get(state.fleet.self_index())
        .cloned()
        .unwrap_or_else(|| state.config.addr.clone());
    Json::object([
        ("addr".to_string(), Json::Str(addr)),
        ("version".to_string(), Json::Str(env!("CARGO_PKG_VERSION").to_string())),
        ("uptime_seconds".to_string(), Json::UInt(state.started.elapsed().as_secs())),
        ("live_jobs".to_string(), state.jobs.live_json()),
        ("metrics".to_string(), state.metrics.snapshot().to_json()),
    ])
}

/// Builds the merged `/fleet/metrics` document: this member's own report
/// plus one forwarded fetch per peer (blocking — never run on the event
/// loop in fleet mode). Unreachable peers are marked `"down"` (and their
/// liveness flag flipped) instead of failing the whole aggregation, and
/// counters of every reporting member are summed into a fleet-wide
/// `summed.counters` section.
fn fleet_metrics_merged(state: &Shared) -> Response {
    let mut members: Vec<(String, Json)> = Vec::new();
    let mut summed: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    let mut reporting = 0u64;
    let mut sum_counters = |doc: &Json| {
        if let Some(counters) = doc.get_path("metrics.counters").and_then(Json::as_object) {
            for (key, value) in counters {
                if let Some(n) = value.as_u64() {
                    *summed.entry(key.clone()).or_insert(0) += n;
                }
            }
        }
    };
    if state.fleet.is_fleet() {
        let probe = Request {
            method: "GET".to_string(),
            path: "/fleet/metrics".to_string(),
            headers: Vec::new(),
            body: Vec::new(),
        };
        for (member, addr) in state.fleet.members().iter().enumerate() {
            let (status, doc) = if member == state.fleet.self_index() {
                ("self", Some(fleet_member_json(state)))
            } else {
                let fetched = state
                    .fleet
                    .is_alive(member)
                    .then(|| proxy_or_mark_dead(state, member, &probe))
                    .flatten()
                    .filter(|response| response.status == 200)
                    .and_then(|response| Json::parse(&response.body).ok());
                match fetched {
                    Some(doc) => ("up", Some(doc)),
                    None => ("down", None),
                }
            };
            let mut pairs = vec![("status".to_string(), Json::Str(status.to_string()))];
            if let Some(doc) = doc {
                reporting += 1;
                sum_counters(&doc);
                if let Some(fields) = doc.as_object() {
                    pairs.extend(fields.iter().cloned());
                }
            }
            members.push((addr.clone(), Json::object(pairs)));
        }
    } else {
        let doc = fleet_member_json(state);
        reporting = 1;
        sum_counters(&doc);
        let mut pairs = vec![("status".to_string(), Json::Str("self".to_string()))];
        pairs.extend(doc.as_object().into_iter().flatten().cloned());
        members.push((state.config.addr.clone(), Json::object(pairs)));
    }
    let summed_counters =
        summed.into_iter().map(|(key, value)| (key, Json::UInt(value))).collect::<Vec<_>>();
    let doc = Json::object([
        ("fleet_size".to_string(), Json::UInt(state.fleet.members().len().max(1) as u64)),
        ("reporting".to_string(), Json::UInt(reporting)),
        ("members".to_string(), Json::object(members)),
        (
            "summed".to_string(),
            Json::object([("counters".to_string(), Json::object(summed_counters))]),
        ),
    ]);
    Response::json(200, doc.to_json())
}

/// Seconds a rejected client should wait before retrying, derived from
/// the live drain rate: `ceil(queued × mean job latency / workers)`,
/// clamped to `1..=60`. Before any job has finished (no latency history)
/// each queued job is assumed to take one second.
fn retry_after_hint(state: &Shared) -> u64 {
    // +1 for the job that was just bounced: the client retries behind
    // everything currently queued.
    let queued = state.queue.len() as u64 + 1;
    let mean_ms = state
        .metrics
        .get_histogram("server.job_latency_ms")
        .map(|h| h.mean())
        .filter(|&mean| mean > 0.0)
        .unwrap_or(1000.0);
    let workers = state.config.workers.max(1) as f64;
    let seconds = (queued as f64 * mean_ms / workers / 1000.0).ceil() as u64;
    seconds.clamp(1, 60)
}

/// Whether this request already made its one proxy hop — such requests
/// are always handled locally, which is what bounds a stale ring view at
/// one extra hop instead of a forwarding loop.
fn is_forwarded(request: &Request) -> bool {
    request.header(peers::FORWARDED_HEADER).is_some()
}

/// Proxies `request` to `member`, falling back to `None` (and marking
/// the peer dead) when the hop fails, so the caller degrades to local
/// handling instead of surfacing a peer's failure to the client.
fn proxy_or_mark_dead(state: &Shared, member: usize, request: &Request) -> Option<Response> {
    match state.fleet.proxy(member, request) {
        Some(mut response) => {
            state.metrics.counter("server.peers", "proxied", 1);
            // Stamp the relay (`X-Fetchvp-Proxied: 1`) so clients can
            // attribute the extra hop's latency.
            response.proxied = true;
            Some(response)
        }
        None => {
            state.metrics.counter("server.peers", "proxy_errors", 1);
            if state.fleet.set_alive(member, false) {
                state.metrics.counter("server.peers", "health_flips", 1);
            }
            None
        }
    }
}

fn submit(state: &Shared, request: &Request, local_only: bool) -> Routed {
    if state.should_shutdown() {
        return Routed::Ready(Response::retry_after(503, error_body("server is shutting down"), 1));
    }
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return Routed::Ready(Response::json(400, error_body("body is not UTF-8"))),
    };
    let doc = match Json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return Routed::Ready(Response::json(400, error_body(&e.to_string()))),
    };
    let spec = match JobSpec::from_json_with_limits(&doc, state.sweeps.trace_dir.is_some()) {
        Ok(spec) => spec,
        Err(e) => return Routed::Ready(Response::json(400, error_body(&e))),
    };

    // Fleet routing: the spec's canonical hash names exactly one owner;
    // everyone else proxies a single hop (off the event loop). A failed
    // hop degrades to running the job locally.
    let hash = spec.canonical_hash();
    if !local_only && state.fleet.is_fleet() && !is_forwarded(request) {
        let owner = state.fleet.owner_of(hash);
        if owner != state.fleet.self_index() {
            return Routed::Proxy { member: owner };
        }
    }

    // Result cache: a deterministic spec answered before is a dictionary
    // lookup — the result is inlined and the response is self-contained
    // (nothing to poll), so no job record is minted and a flood of warm
    // cache hits cannot grow the job table.
    if spec.deterministic_result() {
        if let Some(result) = state.results.get(hash, &spec.canonical()) {
            state.metrics.counter("server.jobs", "cached", 1);
            let body = Json::object([
                status_pair("done"),
                ("cached".to_string(), Json::Bool(true)),
                ("result".to_string(), result),
            ]);
            return Routed::Ready(Response::json(200, body.to_json()));
        }
    }

    let id = state.jobs.create(spec.clone());
    Routed::Ready(match state.queue.try_push((id, spec)) {
        Ok(depth) => {
            state.metrics.counter("server.queue", "admitted", 1);
            let body = Json::object([
                ("job".to_string(), Json::UInt(id)),
                status_pair("queued"),
                ("queue_depth".to_string(), Json::UInt(depth as u64)),
            ]);
            Response::json(202, body.to_json())
        }
        Err(_) => {
            state.jobs.remove(id);
            state.metrics.counter("server.queue", "rejected", 1);
            Response::retry_after(503, error_body("queue full"), retry_after_hint(state))
        }
    })
}

fn job_status(state: &Shared, request: &Request, path: &str, local_only: bool) -> Routed {
    let id_text = &path["/jobs/".len()..];
    let Ok(id) = id_text.parse::<u64>() else {
        return Routed::Ready(Response::json(400, error_body("job id must be an integer")));
    };
    // In a fleet the id encodes its owner; ids minted elsewhere are
    // proxied one hop to the member that holds the record.
    let owner = JobTable::owner_of(id, state.fleet.stride()) as usize;
    if !local_only
        && state.fleet.is_fleet()
        && owner != state.fleet.self_index()
        && !is_forwarded(request)
    {
        return Routed::Proxy { member: owner };
    }
    Routed::Ready(match state.jobs.get_json(id) {
        Some(doc) => Response::json(200, doc.to_json()),
        None => Response::json(404, error_body(&format!("no job {id}"))),
    })
}

/// `GET /jobs/<id>/events` — routes to a live stream of the job's
/// progress ring, a streaming relay hop when another fleet member owns
/// the id, or `404` when no record exists (ids never minted, evicted
/// terminal records, and cache-hit submissions, which are answered
/// inline without a record).
fn job_events(state: &Shared, request: &Request, path: &str, local_only: bool) -> Routed {
    let tail = &path["/jobs/".len()..];
    let id_text = tail.strip_suffix("/events").unwrap_or(tail);
    let Ok(id) = id_text.parse::<u64>() else {
        return Routed::Ready(Response::json(400, error_body("job id must be an integer")));
    };
    let owner = JobTable::owner_of(id, state.fleet.stride()) as usize;
    if !local_only
        && state.fleet.is_fleet()
        && owner != state.fleet.self_index()
        && !is_forwarded(request)
    {
        return Routed::StreamProxy { member: owner };
    }
    match state.jobs.progress(id) {
        Some(progress) => Routed::Stream { progress },
        None => Routed::Ready(Response::json(404, error_body(&format!("no job {id}")))),
    }
}

/// Process-wide termination flag set from `SIGTERM`/`SIGINT`.
///
/// `std` exposes no signal API and the workspace links no crates, but
/// `std` itself links libc, so declaring `signal(2)` directly keeps the
/// daemon zero-dependency. The handler only stores to an atomic —
/// async-signal-safe — and the accept loop polls the flag every 10 ms.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERMINATED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        TERMINATED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Installs the `SIGTERM`/`SIGINT` handlers (idempotent).
    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }

    /// Whether a termination signal has arrived.
    pub fn terminated() -> bool {
        TERMINATED.load(Ordering::SeqCst)
    }
}

/// Non-Unix fallback: no signal handling; `POST /shutdown` still works.
#[cfg(not(unix))]
mod signals {
    pub fn install() {}

    pub fn terminated() -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_state(queue_depth: usize) -> Shared {
        Shared {
            // Pin workers so tests that exercise the Retry-After math are
            // independent of the host's core count.
            config: ServerConfig { queue_depth, workers: 4, ..ServerConfig::default() },
            queue: BoundedQueue::new(queue_depth),
            jobs: JobTable::new(),
            metrics: SharedRegistry::new(),
            sweeps: SweepPool::new(None),
            results: ResultCache::new(8, None),
            fleet: Fleet::standalone(),
            proxies: BoundedQueue::new(PROXY_QUEUE_DEPTH),
            shutdown: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            started: Instant::now(),
        }
    }

    fn get(state: &Shared, path: &str) -> Response {
        respond(
            state,
            &Request {
                method: "GET".to_string(),
                path: path.to_string(),
                headers: Vec::new(),
                body: Vec::new(),
            },
            Instant::now(),
        )
    }

    fn post(state: &Shared, path: &str, body: &str) -> Response {
        respond(
            state,
            &Request {
                method: "POST".to_string(),
                path: path.to_string(),
                headers: Vec::new(),
                body: body.as_bytes().to_vec(),
            },
            Instant::now(),
        )
    }

    #[test]
    fn healthz_reports_ok() {
        let state = test_state(4);
        let response = get(&state, "/healthz");
        assert_eq!(response.status, 200);
        let doc = Json::parse(&response.body).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
    }

    #[test]
    fn submit_validates_then_queues() {
        let state = test_state(4);
        assert_eq!(post(&state, "/run", "not json").status, 400);
        assert_eq!(post(&state, "/run", r#"{"experiment": "fig9-9"}"#).status, 400);
        let ok = post(&state, "/run", r#"{"experiment": "bench", "trace_len": 1000}"#);
        assert_eq!(ok.status, 202);
        let doc = Json::parse(&ok.body).unwrap();
        assert_eq!(doc.get("job").and_then(Json::as_u64), Some(1));
        assert_eq!(state.queue.len(), 1);
        assert_eq!(get(&state, "/jobs/1").status, 200);
        assert_eq!(get(&state, "/jobs/99").status, 404);
        assert_eq!(get(&state, "/jobs/xyz").status, 400);
    }

    #[test]
    fn full_queue_answers_503_with_retry_after() {
        let state = test_state(1);
        assert_eq!(post(&state, "/run", r#"{"experiment": "bench"}"#).status, 202);
        let rejected = post(&state, "/run", r#"{"experiment": "bench"}"#);
        assert_eq!(rejected.status, 503);
        // No latency history yet: 2 outstanding × 1s assumed / 4 workers,
        // ceiled — the minimum hint.
        assert_eq!(rejected.retry_after, Some(1));
        // The rejected job's record was rolled back.
        assert_eq!(get(&state, "/jobs/2").status, 404);
        assert_eq!(state.jobs.counts(), (1, 0, 0, 0));
    }

    #[test]
    fn retry_after_tracks_queue_depth_and_drain_rate() {
        let state = test_state(32);
        // 9 queued + the bounced one = 10 outstanding; no history yet →
        // assume 1s each over 4 workers: ceil(10/4) = 3.
        for _ in 0..9 {
            assert_eq!(post(&state, "/run", r#"{"experiment": "bench"}"#).status, 202);
        }
        assert_eq!(retry_after_hint(&state), 3);
        // Jobs observed to finish in ~2s each: ceil(10 × 2 / 4) = 5.
        state.metrics.observe("server", "job_latency_ms", 2000);
        assert_eq!(retry_after_hint(&state), 5);
        // Fast drain (40ms jobs): clamps up to the 1-second floor.
        let state = test_state(32);
        state.metrics.observe("server", "job_latency_ms", 40);
        assert_eq!(retry_after_hint(&state), 1);
        // Pathological backlog: capped at 60 so clients do retry.
        let state = test_state(512);
        for _ in 0..500 {
            assert_eq!(post(&state, "/run", r#"{"experiment": "bench"}"#).status, 202);
        }
        state.metrics.observe("server", "job_latency_ms", 10_000);
        assert_eq!(retry_after_hint(&state), 60);
    }

    #[test]
    fn repeated_deterministic_specs_hit_the_result_cache() {
        let state = test_state(4);
        let spec = r#"{"experiment": "table3-1", "trace_len": 300}"#;
        let first = post(&state, "/run", spec);
        assert_eq!(first.status, 202, "cold cache: the job must queue");
        state.queue.close();
        worker_loop(&state);
        let done = Json::parse(&get(&state, "/jobs/1").body).unwrap();
        let uncached_result = done.get("result").unwrap().to_json();

        // Same spec, noisy formatting: answered inline from the cache.
        let second = post(&state, "/run", r#"{ "trace_len": 300, "experiment": "table3-1" }"#);
        assert_eq!(second.status, 200);
        let doc = Json::parse(&second.body).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"));
        assert_eq!(doc.get("cached"), Some(&Json::Bool(true)));
        assert_eq!(
            doc.get("result").unwrap().to_json(),
            uncached_result,
            "cached result must be byte-identical to the uncached run"
        );
        // A cache hit is self-contained: no job record is minted, so the
        // table stays bounded no matter how much warm traffic repeats.
        assert!(doc.get("job").is_none(), "cache hits must not mint a job id");
        assert_eq!(state.jobs.counts(), (0, 0, 1, 0), "only the cold run has a record");
        assert_eq!(state.results.counters().hits, 1);
        let snapshot = state.metrics.snapshot();
        assert_eq!(snapshot.get_counter("server.jobs.cached"), Some(1));
        assert_eq!(
            snapshot.get_counter("server.sweep_pool.misses"),
            Some(1),
            "the cache hit must not touch the sweep pool"
        );

        // A spec differing in any canonical field misses: it falls
        // through to the queue path (503 here only because this test
        // already closed the queue) instead of being answered inline.
        let miss = post(&state, "/run", r#"{"experiment": "table3-1", "trace_len": 301}"#);
        assert_ne!(miss.status, 200, "different trace_len must be a cache miss");
        assert_eq!(state.results.counters().misses, 2, "cold lookup + changed-field lookup");
    }

    #[test]
    fn bench_jobs_bypass_the_result_cache() {
        let state = test_state(4);
        let spec = r#"{"experiment": "bench", "trace_len": 300}"#;
        assert_eq!(post(&state, "/run", spec).status, 202);
        state.queue.close();
        worker_loop(&state);
        // Identical bench spec: routed back to the queue path (never
        // answered inline) — its report carries wall-clock measurements.
        assert_ne!(post(&state, "/run", spec).status, 200);
        let counters = state.results.counters();
        assert_eq!((counters.hits, counters.misses), (0, 0), "bench never consults the cache");
    }

    #[test]
    fn unknown_paths_and_methods() {
        let state = test_state(4);
        assert_eq!(get(&state, "/nope").status, 404);
        assert_eq!(post(&state, "/healthz", "").status, 405);
        assert_eq!(post(&state, "/jobs/1", "").status, 405);
        assert_eq!(get(&state, "/run").status, 405);
    }

    #[test]
    fn shutdown_flag_rejects_new_submissions() {
        let state = test_state(4);
        assert_eq!(post(&state, "/shutdown", "").status, 200);
        assert!(state.should_shutdown());
        assert_eq!(post(&state, "/run", r#"{"experiment": "bench"}"#).status, 503);
    }

    #[test]
    fn worker_executes_a_tiny_job_end_to_end() {
        let state = test_state(4);
        let ok = post(&state, "/run", r#"{"experiment": "table3-1", "trace_len": 300}"#);
        assert_eq!(ok.status, 202);
        state.queue.close(); // worker drains the one job, then exits
        worker_loop(&state);
        let doc = Json::parse(&get(&state, "/jobs/1").body).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"));
        assert!(doc.get_path("result.csv").is_some());
        let snapshot = state.metrics.snapshot();
        assert_eq!(snapshot.get_counter("server.jobs.completed"), Some(1));
        assert_eq!(snapshot.get_counter("server.sweep_pool.misses"), Some(1));
    }

    #[test]
    fn metrics_negotiates_prometheus_exposition() {
        let state = test_state(4);
        state.metrics.counter("server", "started", 1); // recorded by bind()
        let json = get(&state, "/metrics");
        assert_eq!(json.status, 200);
        assert_eq!(json.content_type, "application/json");
        Json::parse(&json.body).expect("default /metrics body stays JSON");

        let prom = respond(
            &state,
            &Request {
                method: "GET".to_string(),
                path: "/metrics".to_string(),
                headers: vec![("accept".to_string(), "text/plain".to_string())],
                body: Vec::new(),
            },
            Instant::now(),
        );
        assert_eq!(prom.status, 200);
        assert_eq!(prom.content_type, fetchvp_tracing::prom::CONTENT_TYPE);
        assert!(
            prom.body.lines().any(|l| l == "fetchvp_server_started 1"),
            "exposition must carry the started counter:\n{}",
            prom.body
        );
        assert!(prom.body.contains("# TYPE fetchvp_server_started counter"), "{}", prom.body);
    }

    #[test]
    fn out_of_core_specs_are_admitted_only_with_a_trace_dir() {
        let big_spec = r#"{"experiment": "fig3-1", "trace_len": 50000000}"#;

        let state = test_state(4);
        let rejected = post(&state, "/run", big_spec);
        assert_eq!(rejected.status, 400);
        assert!(
            rejected.body.contains("trace directory"),
            "rejection must name the missing capability: {}",
            rejected.body
        );

        // Same spec with a trace directory configured: admitted. The job
        // only queues here (no worker), so nothing touches the disk yet
        // and the lazily-created directory never materialises.
        let dir = std::env::temp_dir().join("fetchvp-server-ooc-admission-test");
        let state =
            Shared { sweeps: SweepPool::new(Some(Arc::new(TraceDir::new(&dir)))), ..test_state(4) };
        assert_eq!(post(&state, "/run", big_spec).status, 202);

        // Analysis experiments stay memory-bound even with the directory.
        let analysis = r#"{"experiment": "fig3-3", "trace_len": 50000000}"#;
        let rejected = post(&state, "/run", analysis);
        assert_eq!(rejected.status, 400);
        assert!(rejected.body.contains("cannot replay out-of-core"), "{}", rejected.body);
    }

    #[test]
    fn job_documents_carry_live_progress_snapshots() {
        let state = test_state(4);
        let ok = post(&state, "/run", r#"{"experiment": "fig3-1", "trace_len": 400}"#);
        assert_eq!(ok.status, 202);
        let doc = Json::parse(&get(&state, "/jobs/1").body).unwrap();
        assert_eq!(doc.get_path("progress.phase").and_then(Json::as_str), Some("queued"));
        assert_eq!(doc.get_path("progress.percent").and_then(Json::as_u64), Some(0));
        state.queue.close();
        worker_loop(&state);
        let doc = Json::parse(&get(&state, "/jobs/1").body).unwrap();
        assert_eq!(doc.get_path("progress.phase").and_then(Json::as_str), Some("done"));
        assert_eq!(doc.get_path("progress.percent").and_then(Json::as_u64), Some(100));
        let done = doc.get_path("progress.instructions_done").and_then(Json::as_u64).unwrap();
        let total = doc.get_path("progress.instructions_total").and_then(Json::as_u64).unwrap();
        assert!(total > 0 && done >= total, "sweep must have walked every instruction");
    }

    #[test]
    fn events_endpoint_replays_the_ring_and_404s_unknown_jobs() {
        let state = test_state(4);
        assert_eq!(get(&state, "/jobs/1/events").status, 404, "no record yet");
        assert_eq!(get(&state, "/jobs/x/events").status, 400);
        let ok = post(&state, "/run", r#"{"experiment": "fig3-1", "trace_len": 400}"#);
        assert_eq!(ok.status, 202);
        state.queue.close();
        worker_loop(&state);
        // The threaded/test fallback serves the ring as one NDJSON body.
        let stream = get(&state, "/jobs/1/events");
        assert_eq!(stream.status, 200);
        assert_eq!(stream.content_type, STREAM_CONTENT_TYPE);
        let lines: Vec<&str> = stream.body.lines().collect();
        assert!(lines.len() >= 3, "expect queued + running + progress + done:\n{}", stream.body);
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("phase").and_then(Json::as_str), Some("queued"));
        let last = Json::parse(lines.last().unwrap()).unwrap();
        assert_eq!(last.get("phase").and_then(Json::as_str), Some("done"));
        // instructions_done is monotone across the whole stream.
        let done: Vec<u64> = lines
            .iter()
            .map(|l| {
                Json::parse(l).unwrap().get("instructions_done").and_then(Json::as_u64).unwrap()
            })
            .collect();
        assert!(done.windows(2).all(|w| w[0] <= w[1]), "{done:?}");
    }

    #[test]
    fn cached_result_submissions_have_no_stream() {
        let state = test_state(4);
        let spec = r#"{"experiment": "table3-1", "trace_len": 300}"#;
        assert_eq!(post(&state, "/run", spec).status, 202);
        state.queue.close();
        worker_loop(&state);
        let hit = post(&state, "/run", spec);
        assert_eq!(hit.status, 200, "second submission must be a cache hit");
        assert!(hit.body.contains("\"cached\""));
        // The hit minted no job record, so there is nothing to stream.
        assert_eq!(get(&state, "/jobs/2/events").status, 404);
    }

    #[test]
    fn standalone_fleet_metrics_reports_a_single_member() {
        let state = test_state(4);
        state.metrics.counter("server", "started", 1);
        let response = get(&state, "/fleet/metrics");
        assert_eq!(response.status, 200);
        let doc = Json::parse(&response.body).unwrap();
        assert_eq!(doc.get("fleet_size").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("reporting").and_then(Json::as_u64), Some(1));
        let members = doc.get("members").and_then(Json::as_object).unwrap();
        assert_eq!(members.len(), 1);
        let (_, member) = &members[0];
        assert_eq!(member.get("status").and_then(Json::as_str), Some("self"));
        assert_eq!(member.get("version").and_then(Json::as_str), Some(env!("CARGO_PKG_VERSION")));
        assert!(member.get("live_jobs").is_some());
        assert_eq!(
            doc.get_path("summed.counters")
                .and_then(|c| c.get("server.started"))
                .and_then(Json::as_u64),
            Some(1),
            "summed counters must include the member's own:\n{}",
            response.body
        );
        // Method guard matches the other endpoints.
        assert_eq!(post(&state, "/fleet/metrics", "").status, 405);
    }

    #[test]
    fn sweep_pool_shares_traces_between_equal_configs() {
        let pool = SweepPool::new(None);
        let spec = JobSpec { trace_len: 500, ..JobSpec::default() };
        let (first, hit_first) = pool.sweep_for(&spec);
        first.cache().trace(0);
        let (second, hit_second) = pool.sweep_for(&spec);
        assert!(!hit_first && hit_second);
        assert_eq!(second.cache().generated(), 1, "trace must already be warm");
        let other = JobSpec { trace_len: 600, ..JobSpec::default() };
        let (third, hit_third) = pool.sweep_for(&other);
        assert!(!hit_third);
        assert_eq!(third.cache().generated(), 0);
    }
}
