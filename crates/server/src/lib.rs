//! `fetchvp-server` — a zero-dependency simulation-as-a-service daemon.
//!
//! `fetchvp serve` turns the one-shot experiment CLI into a long-lived
//! service: clients `POST /run` a JSON job spec (see
//! [`fetchvp_experiments::jobspec`]), the daemon queues it with admission
//! control, a worker pool executes it through the shared [`Sweep`] runner,
//! and `GET /jobs/<id>` returns the result — with workload traces staying
//! **warm across requests**, so the second job against the same
//! configuration skips tracing entirely.
//!
//! Everything is built on `std` only: [`std::net::TcpListener`] plus a
//! hand-rolled HTTP/1.1 subset ([`http`]), a condvar-based bounded MPMC
//! queue ([`queue`]) and a mutex-guarded job table ([`jobs`]).
//!
//! # Endpoints
//!
//! | method & path | behaviour |
//! |---|---|
//! | `POST /run` | validate a job spec; `202` + job id, `400` on a bad spec, `503` + `Retry-After` when the queue is full |
//! | `GET /jobs/<id>` | the job's status/result document; `404` for unknown ids |
//! | `GET /healthz` | liveness + queue/worker summary |
//! | `GET /metrics` | live [`fetchvp_metrics::Registry`] snapshot: `server.*` counters alongside accumulated simulator counters (`trace.*`, `sched.*`, …) |
//! | `POST /shutdown` | graceful shutdown (also triggered by `SIGTERM`/`SIGINT`): stop accepting, drain admitted jobs, exit |
//!
//! # Operational guarantees
//!
//! * **Backpressure, not buffering** — the queue is bounded
//!   ([`ServerConfig::queue_depth`]); when full, `/run` answers `503`
//!   immediately and never blocks the connection handler.
//! * **Isolation** — a panicking job marks itself `failed` and the worker
//!   lives on; a panicking worker can never take `GET /metrics` down
//!   (the registry lock is poison-proof).
//! * **Bounded connections** — at most
//!   [`ServerConfig::max_connections`] handler threads, each with
//!   per-request read/write timeouts and capped request sizes.
//! * **No dropped jobs** — shutdown drains everything that was `202`ed.

pub mod http;
pub mod jobs;
pub mod queue;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use fetchvp_experiments::{ExperimentConfig, JobSpec, Sweep};
use fetchvp_metrics::{Json, SharedRegistry};
use fetchvp_tracestore::TraceDir;
use fetchvp_tracing::{log_with, Level};

use http::{error_body, read_request, Request, RequestError, Response};
use jobs::JobTable;
use queue::BoundedQueue;

/// How the daemon is sized and where it listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// `HOST:PORT` to bind (port 0 picks an ephemeral port).
    pub addr: String,
    /// Pool workers executing jobs.
    pub workers: usize,
    /// Bounded queue capacity; pushes beyond it get `503`.
    pub queue_depth: usize,
    /// Maximum concurrent connection-handler threads.
    pub max_connections: usize,
    /// Per-request socket read timeout.
    pub read_timeout: Duration,
    /// Per-request socket write timeout.
    pub write_timeout: Duration,
    /// Maximum accepted `POST` body, bytes.
    pub max_body_bytes: usize,
    /// Content-addressed trace directory. When set, benchmark traces are
    /// generated once to disk and replayed chunk-by-chunk, which lifts the
    /// `trace_len` cap for machine-sweep experiments to
    /// [`fetchvp_experiments::jobspec::MAX_TRACE_LEN_OOC`].
    pub trace_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7998".to_string(),
            workers: std::thread::available_parallelism().map_or(2, |n| n.get().min(4)),
            queue_depth: 32,
            max_connections: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_body_bytes: 256 * 1024,
            trace_dir: None,
        }
    }
}

/// How many distinct experiment configurations keep their traces cached.
///
/// Each slot holds one [`Sweep`] (≈ one generated trace set, a few MB at
/// served trace lengths); least-recently-used configurations are evicted.
const SWEEP_POOL_SLOTS: usize = 8;

/// An MRU pool of [`Sweep`]s keyed by [`ExperimentConfig`] — the
/// cross-request trace cache. Served experiments run through the pooled
/// sweep's batch API (`Sweep::machines` → `fetchvp_core::run_batch`), so
/// a job's `jobs` worker count composes with per-cell config batching
/// exactly as it does on the CLI.
struct SweepPool {
    slots: Mutex<Vec<(ExperimentConfig, Sweep)>>,
    /// One on-disk trace cache shared by every pooled sweep, so evicting a
    /// slot never discards generated trace files.
    trace_dir: Option<Arc<TraceDir>>,
}

impl SweepPool {
    fn new(trace_dir: Option<Arc<TraceDir>>) -> SweepPool {
        SweepPool { slots: Mutex::new(Vec::new()), trace_dir }
    }

    /// The pooled sweep for `spec`'s configuration (built on miss),
    /// reconfigured to the spec's worker count. The bool reports a hit.
    fn sweep_for(&self, spec: &JobSpec) -> (Sweep, bool) {
        let cfg = spec.config();
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(at) = slots.iter().position(|(c, _)| *c == cfg) {
            let entry = slots.remove(at);
            let sweep = entry.1.clone();
            slots.insert(0, entry);
            return (sweep.reconfigured(spec.jobs), true);
        }
        let sweep = Sweep::with_trace_dir(&cfg, self.trace_dir.clone(), 1);
        slots.insert(0, (cfg, sweep.clone()));
        slots.truncate(SWEEP_POOL_SLOTS);
        (sweep.reconfigured(spec.jobs), false)
    }
}

/// State shared by the accept loop, connection handlers and pool workers.
struct Shared {
    config: ServerConfig,
    queue: BoundedQueue<(u64, JobSpec)>,
    jobs: JobTable,
    metrics: SharedRegistry,
    sweeps: SweepPool,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
}

impl Shared {
    fn should_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signals::terminated()
    }
}

/// The daemon: bind with [`Server::bind`], then block in [`Server::run`].
pub struct Server {
    listener: TcpListener,
    state: Arc<Shared>,
}

impl Server {
    /// Binds the listening socket and builds the shared state. Nothing
    /// runs until [`Server::run`].
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let metrics = SharedRegistry::new();
        metrics.counter("server", "started", 1);
        let trace_dir = config.trace_dir.as_ref().map(|root| Arc::new(TraceDir::new(root)));
        let state = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_depth),
            jobs: JobTable::new(),
            metrics,
            sweeps: SweepPool::new(trace_dir),
            shutdown: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            config,
        });
        Ok(Server { listener, state })
    }

    /// The bound address — the way to learn the port after binding `:0`.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until `POST /shutdown` or `SIGTERM`/`SIGINT`, then drains
    /// admitted jobs and in-flight connections before returning.
    pub fn run(self) -> io::Result<()> {
        signals::install();
        self.listener.set_nonblocking(true)?;
        let workers: Vec<_> = (0..self.state.config.workers.max(1))
            .map(|i| {
                let state = Arc::clone(&self.state);
                std::thread::Builder::new()
                    .name(format!("fetchvp-worker-{i}"))
                    .spawn(move || worker_loop(&state))
                    .expect("spawn worker thread")
            })
            .collect();

        while !self.state.should_shutdown() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let active = self.state.active_connections.load(Ordering::SeqCst);
                    if active >= self.state.config.max_connections {
                        self.state.metrics.counter("server.connections", "rejected", 1);
                        let mut stream = stream;
                        let _ = stream.set_write_timeout(Some(self.state.config.write_timeout));
                        let _ = Response::retry_after(503, error_body("connection limit"), 1)
                            .write_to(&mut stream);
                        continue;
                    }
                    self.state.active_connections.fetch_add(1, Ordering::SeqCst);
                    let state = Arc::clone(&self.state);
                    let _ = std::thread::Builder::new()
                        .name("fetchvp-conn".to_string())
                        .spawn(move || {
                            handle_connection(&state, stream);
                            state.active_connections.fetch_sub(1, Ordering::SeqCst);
                        })
                        .map_err(|_| {
                            // Spawn failure: undo the reservation; the peer
                            // times out rather than deadlocking the count.
                            self.state.active_connections.fetch_sub(1, Ordering::SeqCst);
                        });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Graceful shutdown: reject new work, drain everything admitted.
        self.state.queue.close();
        for worker in workers {
            let _ = worker.join();
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.state.active_connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        Ok(())
    }
}

/// One pool worker: pull, run (panic-isolated), publish.
fn worker_loop(state: &Shared) {
    while let Some((id, spec)) = state.queue.pop() {
        state.jobs.set_running(id);
        let (sweep, pool_hit) = state.sweeps.sweep_for(&spec);
        state.metrics.counter("server.sweep_pool", if pool_hit { "hits" } else { "misses" }, 1);
        let started = Instant::now();
        match catch_unwind(AssertUnwindSafe(|| spec.run(&sweep))) {
            Ok(outcome) => {
                state.metrics.merge(&outcome.metrics);
                state.metrics.counter("server.jobs", "completed", 1);
                state.metrics.observe(
                    "server",
                    "job_latency_ms",
                    started.elapsed().as_millis() as u64,
                );
                state.jobs.finish(id, outcome.result);
            }
            Err(_) => {
                state.metrics.counter("server.jobs", "failed", 1);
                state.jobs.fail(id, "job panicked; see server logs".to_string());
            }
        }
    }
}

/// Monotone id shared by every connection handler, for correlating access
/// log lines (`FETCHVP_LOG=server=info`) across threads.
static REQUEST_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Reads one request, routes it, writes the response, records metrics.
fn handle_connection(state: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(state.config.read_timeout));
    let _ = stream.set_write_timeout(Some(state.config.write_timeout));
    let started = Instant::now();
    let id = REQUEST_ID.fetch_add(1, Ordering::Relaxed) + 1;
    let response = match read_request(&mut stream, state.config.max_body_bytes) {
        Ok(request) => {
            let response = route(state, &request);
            state.metrics.counter(
                "server.requests",
                &format!("{}.{}", endpoint_label(&request.path), response.status),
                1,
            );
            let micros = started.elapsed().as_micros() as u64;
            state.metrics.observe("server", "request_latency_us", micros);
            log_with("server.http", Level::Info, || {
                format!(
                    "req={id} {} {} -> {} in {micros}us",
                    request.method, request.path, response.status
                )
            });
            response
        }
        Err(RequestError::Io(_)) => {
            state.metrics.counter("server.requests", "io_error", 1);
            return; // nothing sane to answer on a dead socket
        }
        Err(RequestError::TooLarge(what)) => {
            state.metrics.counter("server.requests", "too_large.413", 1);
            Response::json(413, error_body(&format!("{what} too large")))
        }
        Err(RequestError::Malformed(why)) => {
            state.metrics.counter("server.requests", "malformed.400", 1);
            Response::json(400, error_body(why))
        }
    };
    let _ = response.write_to(&mut stream);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// The metric label for a request path (`/jobs/7` → `jobs`).
fn endpoint_label(path: &str) -> &'static str {
    if path == "/healthz" {
        "healthz"
    } else if path == "/metrics" {
        "metrics"
    } else if path == "/run" {
        "run"
    } else if path == "/shutdown" {
        "shutdown"
    } else if path.starts_with("/jobs/") {
        "jobs"
    } else {
        "other"
    }
}

fn route(state: &Shared, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => healthz(state),
        ("GET", "/metrics") => metrics_snapshot(state, request),
        ("POST", "/run") => submit(state, &request.body),
        ("POST", "/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            Response::json(200, Json::object([status_pair("shutting down")]).to_json())
        }
        ("GET", path) if path.starts_with("/jobs/") => job_status(state, path),
        (_, "/healthz" | "/metrics" | "/run" | "/shutdown") => {
            Response::json(405, error_body("method not allowed"))
        }
        (_, path) if path.starts_with("/jobs/") => {
            Response::json(405, error_body("method not allowed"))
        }
        _ => Response::json(404, error_body("no such endpoint")),
    }
}

fn status_pair(status: &str) -> (String, Json) {
    ("status".to_string(), Json::Str(status.to_string()))
}

fn healthz(state: &Shared) -> Response {
    let (queued, running, done, failed) = state.jobs.counts();
    let body = Json::object([
        status_pair("ok"),
        ("workers".to_string(), Json::UInt(state.config.workers as u64)),
        ("queue_depth".to_string(), Json::UInt(state.queue.len() as u64)),
        ("queue_capacity".to_string(), Json::UInt(state.queue.capacity() as u64)),
        (
            "jobs".to_string(),
            Json::object([
                ("queued".to_string(), Json::UInt(queued)),
                ("running".to_string(), Json::UInt(running)),
                ("done".to_string(), Json::UInt(done)),
                ("failed".to_string(), Json::UInt(failed)),
            ]),
        ),
    ]);
    Response::json(200, body.to_json())
}

/// Whether the request's `Accept` header asks for Prometheus text
/// exposition rather than the default JSON snapshot.
fn wants_prometheus(request: &Request) -> bool {
    request
        .header("accept")
        .is_some_and(|accept| accept.contains("text/plain") || accept.contains("openmetrics"))
}

fn metrics_snapshot(state: &Shared, request: &Request) -> Response {
    // Point-in-time gauges, refreshed at scrape time like Prometheus
    // collectors do; counters accumulate across the daemon's lifetime.
    state.metrics.gauge("server.queue", "depth", state.queue.len() as f64);
    state.metrics.gauge(
        "server.connections",
        "active",
        state.active_connections.load(Ordering::SeqCst) as f64,
    );
    if let Some(dir) = &state.sweeps.trace_dir {
        let counters = dir.counters();
        state.metrics.gauge("server.trace_cache", "hits", counters.hits as f64);
        state.metrics.gauge("server.trace_cache", "misses", counters.misses as f64);
        state.metrics.gauge("server.trace_cache", "bytes", counters.bytes as f64);
    }
    // `server.started` (recorded at bind) guarantees the `server.*`
    // namespace is present even in the very first scrape; this request's
    // own counter lands in the *next* snapshot via handle_connection.
    let snapshot = state.metrics.snapshot();
    if wants_prometheus(request) {
        return Response::text(
            200,
            fetchvp_tracing::prom::render(&snapshot),
            fetchvp_tracing::prom::CONTENT_TYPE,
        );
    }
    Response::json(200, snapshot.to_json().to_json())
}

fn submit(state: &Shared, body: &[u8]) -> Response {
    if state.should_shutdown() {
        return Response::retry_after(503, error_body("server is shutting down"), 1);
    }
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => return Response::json(400, error_body("body is not UTF-8")),
    };
    let doc = match Json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return Response::json(400, error_body(&e.to_string())),
    };
    let spec = match JobSpec::from_json_with_limits(&doc, state.sweeps.trace_dir.is_some()) {
        Ok(spec) => spec,
        Err(e) => return Response::json(400, error_body(&e)),
    };
    let id = state.jobs.create(spec.clone());
    match state.queue.try_push((id, spec)) {
        Ok(depth) => {
            state.metrics.counter("server.queue", "admitted", 1);
            let body = Json::object([
                ("job".to_string(), Json::UInt(id)),
                status_pair("queued"),
                ("queue_depth".to_string(), Json::UInt(depth as u64)),
            ]);
            Response::json(202, body.to_json())
        }
        Err(_) => {
            state.jobs.remove(id);
            state.metrics.counter("server.queue", "rejected", 1);
            Response::retry_after(503, error_body("queue full"), 1)
        }
    }
}

fn job_status(state: &Shared, path: &str) -> Response {
    let id_text = &path["/jobs/".len()..];
    let Ok(id) = id_text.parse::<u64>() else {
        return Response::json(400, error_body("job id must be an integer"));
    };
    match state.jobs.get_json(id) {
        Some(doc) => Response::json(200, doc.to_json()),
        None => Response::json(404, error_body(&format!("no job {id}"))),
    }
}

/// Process-wide termination flag set from `SIGTERM`/`SIGINT`.
///
/// `std` exposes no signal API and the workspace links no crates, but
/// `std` itself links libc, so declaring `signal(2)` directly keeps the
/// daemon zero-dependency. The handler only stores to an atomic —
/// async-signal-safe — and the accept loop polls the flag every 10 ms.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERMINATED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        TERMINATED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Installs the `SIGTERM`/`SIGINT` handlers (idempotent).
    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }

    /// Whether a termination signal has arrived.
    pub fn terminated() -> bool {
        TERMINATED.load(Ordering::SeqCst)
    }
}

/// Non-Unix fallback: no signal handling; `POST /shutdown` still works.
#[cfg(not(unix))]
mod signals {
    pub fn install() {}

    pub fn terminated() -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_state(queue_depth: usize) -> Shared {
        Shared {
            config: ServerConfig { queue_depth, ..ServerConfig::default() },
            queue: BoundedQueue::new(queue_depth),
            jobs: JobTable::new(),
            metrics: SharedRegistry::new(),
            sweeps: SweepPool::new(None),
            shutdown: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
        }
    }

    fn get(state: &Shared, path: &str) -> Response {
        route(
            state,
            &Request {
                method: "GET".to_string(),
                path: path.to_string(),
                headers: Vec::new(),
                body: Vec::new(),
            },
        )
    }

    fn post(state: &Shared, path: &str, body: &str) -> Response {
        route(
            state,
            &Request {
                method: "POST".to_string(),
                path: path.to_string(),
                headers: Vec::new(),
                body: body.as_bytes().to_vec(),
            },
        )
    }

    #[test]
    fn healthz_reports_ok() {
        let state = test_state(4);
        let response = get(&state, "/healthz");
        assert_eq!(response.status, 200);
        let doc = Json::parse(&response.body).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
    }

    #[test]
    fn submit_validates_then_queues() {
        let state = test_state(4);
        assert_eq!(post(&state, "/run", "not json").status, 400);
        assert_eq!(post(&state, "/run", r#"{"experiment": "fig9-9"}"#).status, 400);
        let ok = post(&state, "/run", r#"{"experiment": "bench", "trace_len": 1000}"#);
        assert_eq!(ok.status, 202);
        let doc = Json::parse(&ok.body).unwrap();
        assert_eq!(doc.get("job").and_then(Json::as_u64), Some(1));
        assert_eq!(state.queue.len(), 1);
        assert_eq!(get(&state, "/jobs/1").status, 200);
        assert_eq!(get(&state, "/jobs/99").status, 404);
        assert_eq!(get(&state, "/jobs/xyz").status, 400);
    }

    #[test]
    fn full_queue_answers_503_with_retry_after() {
        let state = test_state(1);
        assert_eq!(post(&state, "/run", r#"{"experiment": "bench"}"#).status, 202);
        let rejected = post(&state, "/run", r#"{"experiment": "bench"}"#);
        assert_eq!(rejected.status, 503);
        assert_eq!(rejected.retry_after, Some(1));
        // The rejected job's record was rolled back.
        assert_eq!(get(&state, "/jobs/2").status, 404);
        assert_eq!(state.jobs.counts(), (1, 0, 0, 0));
    }

    #[test]
    fn unknown_paths_and_methods() {
        let state = test_state(4);
        assert_eq!(get(&state, "/nope").status, 404);
        assert_eq!(post(&state, "/healthz", "").status, 405);
        assert_eq!(post(&state, "/jobs/1", "").status, 405);
        assert_eq!(get(&state, "/run").status, 405);
    }

    #[test]
    fn shutdown_flag_rejects_new_submissions() {
        let state = test_state(4);
        assert_eq!(post(&state, "/shutdown", "").status, 200);
        assert!(state.should_shutdown());
        assert_eq!(post(&state, "/run", r#"{"experiment": "bench"}"#).status, 503);
    }

    #[test]
    fn worker_executes_a_tiny_job_end_to_end() {
        let state = test_state(4);
        let ok = post(&state, "/run", r#"{"experiment": "table3-1", "trace_len": 300}"#);
        assert_eq!(ok.status, 202);
        state.queue.close(); // worker drains the one job, then exits
        worker_loop(&state);
        let doc = Json::parse(&get(&state, "/jobs/1").body).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"));
        assert!(doc.get_path("result.csv").is_some());
        let snapshot = state.metrics.snapshot();
        assert_eq!(snapshot.get_counter("server.jobs.completed"), Some(1));
        assert_eq!(snapshot.get_counter("server.sweep_pool.misses"), Some(1));
    }

    #[test]
    fn metrics_negotiates_prometheus_exposition() {
        let state = test_state(4);
        state.metrics.counter("server", "started", 1); // recorded by bind()
        let json = get(&state, "/metrics");
        assert_eq!(json.status, 200);
        assert_eq!(json.content_type, "application/json");
        Json::parse(&json.body).expect("default /metrics body stays JSON");

        let prom = route(
            &state,
            &Request {
                method: "GET".to_string(),
                path: "/metrics".to_string(),
                headers: vec![("accept".to_string(), "text/plain".to_string())],
                body: Vec::new(),
            },
        );
        assert_eq!(prom.status, 200);
        assert_eq!(prom.content_type, fetchvp_tracing::prom::CONTENT_TYPE);
        assert!(
            prom.body.lines().any(|l| l == "fetchvp_server_started 1"),
            "exposition must carry the started counter:\n{}",
            prom.body
        );
        assert!(prom.body.contains("# TYPE fetchvp_server_started counter"), "{}", prom.body);
    }

    #[test]
    fn out_of_core_specs_are_admitted_only_with_a_trace_dir() {
        let big_spec = r#"{"experiment": "fig3-1", "trace_len": 50000000}"#;

        let state = test_state(4);
        let rejected = post(&state, "/run", big_spec);
        assert_eq!(rejected.status, 400);
        assert!(
            rejected.body.contains("trace directory"),
            "rejection must name the missing capability: {}",
            rejected.body
        );

        // Same spec with a trace directory configured: admitted. The job
        // only queues here (no worker), so nothing touches the disk yet
        // and the lazily-created directory never materialises.
        let dir = std::env::temp_dir().join("fetchvp-server-ooc-admission-test");
        let state =
            Shared { sweeps: SweepPool::new(Some(Arc::new(TraceDir::new(&dir)))), ..test_state(4) };
        assert_eq!(post(&state, "/run", big_spec).status, 202);

        // Analysis experiments stay memory-bound even with the directory.
        let analysis = r#"{"experiment": "fig3-3", "trace_len": 50000000}"#;
        let rejected = post(&state, "/run", analysis);
        assert_eq!(rejected.status, 400);
        assert!(rejected.body.contains("cannot replay out-of-core"), "{}", rejected.body);
    }

    #[test]
    fn sweep_pool_shares_traces_between_equal_configs() {
        let pool = SweepPool::new(None);
        let spec = JobSpec { trace_len: 500, ..JobSpec::default() };
        let (first, hit_first) = pool.sweep_for(&spec);
        first.cache().trace(0);
        let (second, hit_second) = pool.sweep_for(&spec);
        assert!(!hit_first && hit_second);
        assert_eq!(second.cache().generated(), 1, "trace must already be warm");
        let other = JobSpec { trace_len: 600, ..JobSpec::default() };
        let (third, hit_third) = pool.sweep_for(&other);
        assert!(!hit_third);
        assert_eq!(third.cache().generated(), 0);
    }
}
