//! Per-job progress: the glue between the sweep layer's
//! [`SweepProgress`] observer and the server's live event stream.
//!
//! Every [`JobRecord`](crate::jobs::JobRecord) owns one [`JobProgress`]:
//! a running tally of the job's totals (instructions retired, cells
//! finished, lifecycle phase) plus a shared drop-oldest
//! [`ProgressRing`] of [`ProgressEvent`]s. The worker thread attaches
//! the `Arc<JobProgress>` to the pooled [`Sweep`] serving the job
//! (`Sweep::with_progress`); the event loop's `GET /jobs/<id>/events`
//! streamers follow the ring with per-connection cursors; and
//! `GET /jobs/<id>` reads the tally as its `progress` snapshot.
//!
//! The tally mutex is held across the ring push, so the
//! `instructions_done` values readers see are **monotonically
//! non-decreasing in seq order** even when several sweep cells report
//! concurrently — the property the streaming e2e test asserts.
//!
//! [`Sweep`]: fetchvp_experiments::Sweep

use std::sync::Mutex;

use fetchvp_experiments::SweepProgress;
use fetchvp_metrics::Json;
use fetchvp_tracing::{ProgressBatch, ProgressEvent, ProgressRing};

/// The running totals of one job.
#[derive(Debug, Clone, Copy)]
struct Totals {
    phase: &'static str,
    instructions_done: u64,
    instructions_total: u64,
    cells_done: u64,
    cells_total: u64,
}

/// One job's progress state: totals plus the event ring feeding the
/// `GET /jobs/<id>/events` stream.
#[derive(Debug)]
pub struct JobProgress {
    job: u64,
    ring: ProgressRing,
    totals: Mutex<Totals>,
}

impl JobProgress {
    /// Fresh progress for job `job`, retaining at most `ring_capacity`
    /// events for slow stream readers.
    pub fn new(job: u64, ring_capacity: usize) -> JobProgress {
        JobProgress {
            job,
            ring: ProgressRing::new(ring_capacity),
            totals: Mutex::new(Totals {
                phase: "queued",
                instructions_done: 0,
                instructions_total: 0,
                cells_done: 0,
                cells_total: 0,
            }),
        }
    }

    /// The job id these events belong to.
    pub fn job(&self) -> u64 {
        self.job
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Totals> {
        self.totals.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Builds an event from the current totals and pushes it. Must be
    /// called with the totals lock held so concurrent cells cannot
    /// publish out-of-order `instructions_done` values.
    fn push(
        &self,
        totals: &Totals,
        workload: &str,
        chunk: usize,
        store_chunk: usize,
        cell_completed: bool,
    ) {
        self.ring.push(ProgressEvent {
            seq: 0, // assigned by the ring
            job: self.job,
            phase: totals.phase,
            workload: workload.to_string(),
            chunk,
            store_chunk,
            instructions_done: totals.instructions_done,
            instructions_total: totals.instructions_total,
            cells_done: totals.cells_done,
            cells_total: totals.cells_total,
            cell_completed,
        });
    }

    /// Records a lifecycle transition (`"queued"`, `"running"`,
    /// `"done"`, `"failed"`) and publishes it as an event. Terminal
    /// phases are what tell a streamer to close: they are always the
    /// newest event, so the drop-oldest ring can never lose them.
    pub fn set_phase(&self, phase: &'static str) {
        let mut totals = self.lock();
        totals.phase = phase;
        self.push(&totals, "", 0, 0, false);
    }

    /// Whether the recorded phase is terminal (`"done"` / `"failed"`).
    pub fn is_terminal(&self) -> bool {
        matches!(self.lock().phase, "done" | "failed")
    }

    /// Events with `seq >= cursor` — the stream pump's read side.
    pub fn since(&self, cursor: u64) -> ProgressBatch {
        self.ring.since(cursor)
    }

    /// The `progress` object embedded in `GET /jobs/<id>` documents:
    /// instructions done/total, an integer percentage, cells done/total
    /// and the lifecycle phase.
    pub fn snapshot_json(&self) -> Json {
        let totals = self.lock();
        let percent = match totals.phase {
            "done" => 100,
            _ if totals.instructions_total == 0 => 0,
            _ => {
                (totals.instructions_done.min(totals.instructions_total) * 100)
                    / totals.instructions_total
            }
        };
        Json::object([
            ("phase".to_string(), Json::Str(totals.phase.to_string())),
            ("instructions_done".to_string(), Json::UInt(totals.instructions_done)),
            ("instructions_total".to_string(), Json::UInt(totals.instructions_total)),
            ("percent".to_string(), Json::UInt(percent)),
            ("cells_done".to_string(), Json::UInt(totals.cells_done)),
            ("cells_total".to_string(), Json::UInt(totals.cells_total)),
        ])
    }
}

impl SweepProgress for JobProgress {
    fn begin(&self, cells: u64, instructions_total: u64) {
        // Additive: a job that runs several machine sweeps (bench runs
        // one per fetch mechanism) accumulates their totals.
        let mut totals = self.lock();
        totals.cells_total += cells;
        totals.instructions_total += instructions_total;
        self.push(&totals, "", 0, 0, false);
    }

    fn retired(&self, workload: &'static str, chunk: usize, store_chunk: usize, delta: u64) {
        let mut totals = self.lock();
        totals.instructions_done += delta;
        self.push(&totals, workload, chunk, store_chunk, false);
    }

    fn cell_done(&self, workload: &'static str, chunk: usize) {
        let mut totals = self.lock();
        totals.cells_done += 1;
        self.push(&totals, workload, chunk, 0, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_and_sweep_events_share_one_monotone_stream() {
        let progress = JobProgress::new(7, 64);
        progress.set_phase("running");
        progress.begin(2, 2000);
        progress.retired("gcc", 0, 3, 800);
        progress.retired("go", 0, 0, 1200);
        progress.cell_done("gcc", 0);

        let batch = progress.since(0);
        assert_eq!(batch.dropped, 0);
        let done: Vec<u64> = batch.events.iter().map(|e| e.instructions_done).collect();
        assert_eq!(done, vec![0, 0, 800, 2000, 2000]);
        assert!(batch.events.iter().all(|e| e.job == 7));
        assert_eq!(batch.events[2].workload, "gcc");
        assert_eq!(batch.events[2].store_chunk, 3);
        assert!(batch.events[4].cell_completed);
        assert!(!progress.is_terminal());

        progress.set_phase("done");
        assert!(progress.is_terminal());
        let snapshot = progress.snapshot_json();
        assert_eq!(snapshot.get("percent").and_then(Json::as_u64), Some(100));
        assert_eq!(snapshot.get("phase").and_then(Json::as_str), Some("done"));
    }

    #[test]
    fn snapshot_percent_is_zero_safe_and_bounded() {
        let progress = JobProgress::new(1, 8);
        assert_eq!(progress.snapshot_json().get("percent").and_then(Json::as_u64), Some(0));
        progress.begin(1, 1000);
        progress.retired("gcc", 0, 0, 250);
        assert_eq!(progress.snapshot_json().get("percent").and_then(Json::as_u64), Some(25));
        // Over-reporting (lookahead windows) never exceeds 100.
        progress.retired("gcc", 0, 0, 2000);
        assert_eq!(progress.snapshot_json().get("percent").and_then(Json::as_u64), Some(100));
    }

    #[test]
    fn begins_accumulate_across_sweeps() {
        let progress = JobProgress::new(2, 8);
        progress.begin(4, 100);
        progress.begin(4, 100);
        let snapshot = progress.snapshot_json();
        assert_eq!(snapshot.get("cells_total").and_then(Json::as_u64), Some(8));
        assert_eq!(snapshot.get("instructions_total").and_then(Json::as_u64), Some(200));
    }
}
