//! Fleet membership: consistent-hash sharding, single-hop proxying and
//! per-peer health checks behind `fetchvp serve --peers`.
//!
//! Every member is started with the **same** `--peers host:port,...`
//! list (which includes the member itself — the daemon recognizes its own
//! entry by comparing it against the bound address). Jobs are routed by
//! a consistent-hash ring over the spec's canonical FNV-1a hash
//! ([`fetchvp_experiments::JobSpec::canonical_hash`]): each member owns
//! [`VNODES`] pseudo-random points on the ring, and a spec belongs to the
//! first live member at or after its hash. Because every process hashes
//! with the same function over the same member list, they all agree on
//! ownership without any coordination traffic.
//!
//! A request landing on the wrong member is proxied **once** to the owner
//! (the forwarded copy carries [`FORWARDED_HEADER`], which the receiver
//! treats as "handle locally, never re-proxy" — so a stale ring view can
//! cost one extra hop but never a loop). If the proxy fails, the peer is
//! marked dead and the job runs locally: a dying peer degrades the cache
//! hit rate, not availability.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use fetchvp_tracestore::fnv1a;

use crate::http::{Request, Response};

/// Virtual nodes per member on the consistent-hash ring. 64 points keep
/// the expected load imbalance across a handful of members within a few
/// percent while the ring stays tiny (a sorted `Vec` scanned by binary
/// search).
pub const VNODES: usize = 64;

/// Header marking a request as already proxied once. Receivers handle
/// such requests locally unconditionally — the single-hop guarantee.
pub const FORWARDED_HEADER: &str = "x-fetchvp-forwarded";

/// How long the proxy path waits to connect to a peer. Loopback and
/// rack-local peers answer in well under this; anything slower is better
/// served by running the job locally.
const PROXY_CONNECT_TIMEOUT: Duration = Duration::from_millis(500);

/// Read/write timeout on an established proxy connection — kept well
/// under the default client read timeout (5 s) so a stalled peer fails
/// over to the local fallback while the client is still listening,
/// instead of the hop outliving the request it was made for.
const PROXY_IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Connect timeout for a health probe — deliberately tight so a dead
/// peer is detected within one probe interval.
const PROBE_CONNECT_TIMEOUT: Duration = Duration::from_millis(250);

/// Read timeout for a health probe response.
const PROBE_IO_TIMEOUT: Duration = Duration::from_millis(500);

/// How often the health checker probes each peer.
pub const HEALTH_INTERVAL: Duration = Duration::from_millis(500);

/// The daemon's view of its fleet: the member list, the hash ring and
/// each peer's liveness flag. A standalone daemon uses
/// [`Fleet::standalone`], which routes everything to itself and spawns
/// no health checker.
#[derive(Debug)]
pub struct Fleet {
    /// Member addresses exactly as given on the command line; index is
    /// the member's identity everywhere (ring entries, job-id encoding,
    /// liveness flags).
    members: Vec<String>,
    /// This process's index in `members`.
    self_index: usize,
    /// `(hash, member_index)` sorted by hash — the consistent-hash ring.
    ring: Vec<(u64, usize)>,
    /// Per-member liveness, maintained by the health checker. Members
    /// start optimistically alive; the first failed probe or proxy
    /// attempt flips them.
    alive: Vec<AtomicBool>,
}

impl Fleet {
    /// A single-member fleet: everything routes locally and job ids are
    /// the plain 1, 2, 3, … sequence.
    pub fn standalone() -> Fleet {
        Fleet { members: Vec::new(), self_index: 0, ring: Vec::new(), alive: Vec::new() }
    }

    /// Builds the fleet from the full `--peers` member list, identifying
    /// this process by matching each entry against `self_addr` (the
    /// daemon's actually-bound address).
    ///
    /// # Errors
    ///
    /// Errors when an entry does not resolve, or when no entry matches
    /// the bound address — a fleet member that is not on its own member
    /// list would shard jobs to everyone but itself.
    pub fn from_members(members: &[String], self_addr: SocketAddr) -> Result<Fleet, String> {
        if members.len() < 2 {
            return Err("--peers needs at least two comma-separated host:port members \
                        (including this process's own address)"
                .to_string());
        }
        let mut self_index = None;
        for (i, member) in members.iter().enumerate() {
            let resolved = member
                .to_socket_addrs()
                .map_err(|e| format!("--peers member `{member}` does not resolve: {e}"))?
                .next()
                .ok_or_else(|| format!("--peers member `{member}` resolves to no address"))?;
            if resolved == self_addr {
                if self_index.is_some() {
                    return Err(format!("--peers lists `{member}` (this process) twice"));
                }
                self_index = Some(i);
            }
        }
        let Some(self_index) = self_index else {
            return Err(format!(
                "--peers must include this process's own bound address {self_addr} \
                 (members: {})",
                members.join(", ")
            ));
        };
        let mut ring = Vec::with_capacity(members.len() * VNODES);
        for (i, member) in members.iter().enumerate() {
            for v in 0..VNODES {
                ring.push((fnv1a(format!("{member}#{v}").as_bytes()), i));
            }
        }
        ring.sort_unstable();
        let alive = members.iter().map(|_| AtomicBool::new(true)).collect();
        Ok(Fleet { members: members.to_vec(), self_index, ring, alive })
    }

    /// The job-id stride: wire ids satisfy `id % stride == owner index`,
    /// so any member can decode which process holds a job record without
    /// a lookup table. Standalone daemons have stride 1 — the plain
    /// 1, 2, 3, … sequence.
    pub fn stride(&self) -> u64 {
        self.members.len().max(1) as u64
    }

    /// This process's member index (the job-id offset).
    pub fn self_index(&self) -> usize {
        self.self_index
    }

    /// Whether this daemon is part of a multi-member fleet.
    pub fn is_fleet(&self) -> bool {
        self.members.len() > 1
    }

    /// The member addresses (empty when standalone).
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// The member index owning `hash`: the first member at or clockwise
    /// after it on the ring, skipping members currently marked dead (so
    /// a dead peer's share rehashes onto its successors — graceful
    /// degradation, not an error).
    pub fn owner_of(&self, hash: u64) -> usize {
        if !self.is_fleet() {
            return self.self_index;
        }
        let start = self.ring.partition_point(|&(h, _)| h < hash);
        for k in 0..self.ring.len() {
            let (_, member) = self.ring[(k + start) % self.ring.len()];
            if member == self.self_index || self.is_alive(member) {
                return member;
            }
        }
        self.self_index
    }

    /// Whether `member` is currently believed alive. Self is always
    /// alive.
    pub fn is_alive(&self, member: usize) -> bool {
        member == self.self_index
            || self.alive.get(member).is_some_and(|a| a.load(Ordering::SeqCst))
    }

    /// Records a liveness observation; returns `true` when this flipped
    /// the member's state (worth a log line and a counter).
    pub fn set_alive(&self, member: usize, alive: bool) -> bool {
        match self.alive.get(member) {
            Some(flag) => flag.swap(alive, Ordering::SeqCst) != alive,
            None => false,
        }
    }

    /// Forwards `request` verbatim to `member` and relays its response,
    /// marking the hop with [`FORWARDED_HEADER`] so the receiver handles
    /// it locally. `None` means the peer could not be reached or spoke
    /// garbage — the caller should mark it dead and fall back.
    pub fn proxy(&self, member: usize, request: &Request) -> Option<Response> {
        let addr = self.members.get(member)?;
        let resolved = addr.to_socket_addrs().ok()?.next()?;
        let mut stream = TcpStream::connect_timeout(&resolved, PROXY_CONNECT_TIMEOUT).ok()?;
        stream.set_read_timeout(Some(PROXY_IO_TIMEOUT)).ok()?;
        stream.set_write_timeout(Some(PROXY_IO_TIMEOUT)).ok()?;
        let head = format!(
            "{} {} HTTP/1.1\r\nHost: {addr}\r\n{FORWARDED_HEADER}: 1\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            request.method,
            request.path,
            request.body.len()
        );
        stream.write_all(head.as_bytes()).ok()?;
        stream.write_all(&request.body).ok()?;
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).ok()?;
        parse_upstream_response(&raw)
    }

    /// Opens a **streaming** hop to `member`: connects, sends `request`
    /// (marked with [`FORWARDED_HEADER`]) and hands back the raw socket
    /// in nonblocking mode, so the event loop can relay the peer's
    /// chunked response bytes verbatim as they arrive — the 1-hop proxy
    /// path of `GET /jobs/<id>/events`. `None` when the peer cannot be
    /// reached; the caller answers 502.
    pub fn open_stream(&self, member: usize, request: &Request) -> Option<TcpStream> {
        let addr = self.members.get(member)?;
        let resolved = addr.to_socket_addrs().ok()?.next()?;
        let mut stream = TcpStream::connect_timeout(&resolved, PROXY_CONNECT_TIMEOUT).ok()?;
        stream.set_write_timeout(Some(PROXY_IO_TIMEOUT)).ok()?;
        let head = format!(
            "{} {} HTTP/1.1\r\nHost: {addr}\r\n{FORWARDED_HEADER}: 1\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            request.method,
            request.path,
            request.body.len()
        );
        stream.write_all(head.as_bytes()).ok()?;
        stream.write_all(&request.body).ok()?;
        stream.set_nonblocking(true).ok()?;
        Some(stream)
    }

    /// One health probe: `GET /healthz` with tight timeouts. `true` when
    /// the peer answered 200.
    pub fn probe(&self, member: usize) -> bool {
        let Some(addr) = self.members.get(member) else { return false };
        let Some(resolved) = addr.to_socket_addrs().ok().and_then(|mut a| a.next()) else {
            return false;
        };
        let Ok(mut stream) = TcpStream::connect_timeout(&resolved, PROBE_CONNECT_TIMEOUT) else {
            return false;
        };
        let _ = stream.set_read_timeout(Some(PROBE_IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(PROBE_IO_TIMEOUT));
        let head = format!("GET /healthz HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
        if stream.write_all(head.as_bytes()).is_err() {
            return false;
        }
        let mut raw = Vec::new();
        let _ = stream.read_to_end(&mut raw);
        raw.starts_with(b"HTTP/1.1 200")
    }

    /// `members[i]` rendered as a metric-name segment: Prometheus metric
    /// names cannot contain `.`/`:`, so `127.0.0.1:7001` becomes
    /// `127_0_0_1_7001`.
    pub fn metric_label(&self, member: usize) -> String {
        self.members
            .get(member)
            .map(|addr| {
                addr.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
            })
            .unwrap_or_default()
    }
}

/// Parses a peer's raw HTTP/1.1 response into a relayable [`Response`].
/// Only the pieces the daemon itself emits are understood: status code,
/// `Content-Type`, `Retry-After` and a `Connection: close`-delimited
/// body.
fn parse_upstream_response(raw: &[u8]) -> Option<Response> {
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next()?;
    let status: u16 = status_line.strip_prefix("HTTP/1.1 ")?.split(' ').next()?.parse().ok()?;
    let mut content_type = "application/json".to_string();
    let mut retry_after = None;
    let mut content_length = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-type" => content_type = value.to_string(),
            "retry-after" => retry_after = value.parse().ok(),
            "content-length" => content_length = value.parse().ok(),
            _ => {}
        }
    }
    let body = &raw[head_end + 4..];
    let body = match content_length {
        Some(n) if n <= body.len() => &body[..n],
        Some(_) => return None, // truncated mid-body
        None => body,
    };
    Some(Response {
        status,
        body: String::from_utf8(body.to_vec()).ok()?,
        content_type,
        retry_after,
        proxied: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize, self_index: usize) -> Fleet {
        // Bypass from_members' live-socket matching: build the ring the
        // same way with synthetic addresses.
        let members: Vec<String> = (0..n).map(|i| format!("10.0.0.{i}:7000")).collect();
        let mut ring = Vec::new();
        for (i, member) in members.iter().enumerate() {
            for v in 0..VNODES {
                ring.push((fnv1a(format!("{member}#{v}").as_bytes()), i));
            }
        }
        ring.sort_unstable();
        let alive = members.iter().map(|_| AtomicBool::new(true)).collect();
        Fleet { members, self_index, ring, alive }
    }

    #[test]
    fn ring_agreement_is_independent_of_who_asks() {
        let a = fleet(3, 0);
        let b = fleet(3, 2);
        for hash in [0u64, 1, 0xdead_beef, u64::MAX, fnv1a(b"spec")] {
            assert_eq!(a.owner_of(hash), b.owner_of(hash), "hash {hash:#x}");
        }
    }

    #[test]
    fn ring_spreads_load_roughly_evenly() {
        let fleet = fleet(3, 0);
        let mut counts = [0u64; 3];
        for i in 0..3000u64 {
            counts[fleet.owner_of(fnv1a(&i.to_le_bytes()))] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (500..=1700).contains(&c),
                "member {i} owns {c}/3000 — vnode spread is badly skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn dead_members_rehash_to_survivors_and_recover() {
        let fleet = fleet(3, 0);
        let hashes: Vec<u64> = (0..300u64).map(|i| fnv1a(&i.to_le_bytes())).collect();
        let before: Vec<usize> = hashes.iter().map(|&h| fleet.owner_of(h)).collect();
        assert!(fleet.set_alive(1, false), "first flip reports a change");
        assert!(!fleet.set_alive(1, false), "repeat observation is not a flip");
        for (&h, &was) in hashes.iter().zip(&before) {
            let now = fleet.owner_of(h);
            assert_ne!(now, 1, "dead member must own nothing");
            if was != 1 {
                assert_eq!(now, was, "live members keep their keys (minimal disruption)");
            }
        }
        fleet.set_alive(1, true);
        let after: Vec<usize> = hashes.iter().map(|&h| fleet.owner_of(h)).collect();
        assert_eq!(after, before, "recovery restores the original assignment");
    }

    #[test]
    fn standalone_owns_everything_with_stride_one() {
        let fleet = Fleet::standalone();
        assert!(!fleet.is_fleet());
        assert_eq!(fleet.stride(), 1);
        assert_eq!(fleet.owner_of(fnv1a(b"anything")), 0);
        assert!(fleet.is_alive(0));
    }

    #[test]
    fn from_members_rejects_a_list_without_self() {
        let members = vec!["127.0.0.1:1".to_string(), "127.0.0.1:2".to_string()];
        let err = Fleet::from_members(&members, "127.0.0.1:3".parse().unwrap()).unwrap_err();
        assert!(err.contains("own bound address"), "{err}");
        let err = Fleet::from_members(&members[..1], "127.0.0.1:1".parse().unwrap()).unwrap_err();
        assert!(err.contains("at least two"), "{err}");
    }

    #[test]
    fn from_members_identifies_self_by_bound_address() {
        let members = vec!["127.0.0.1:7101".to_string(), "127.0.0.1:7102".to_string()];
        let fleet = Fleet::from_members(&members, "127.0.0.1:7102".parse().unwrap()).unwrap();
        assert_eq!(fleet.self_index(), 1);
        assert_eq!(fleet.stride(), 2);
        assert_eq!(fleet.metric_label(0), "127_0_0_1_7101");
    }

    #[test]
    fn upstream_responses_round_trip_through_the_parser() {
        let original = Response::retry_after(503, crate::http::error_body("queue full"), 7);
        let parsed = parse_upstream_response(&original.to_bytes()).unwrap();
        assert_eq!(parsed, original);
        assert!(parse_upstream_response(b"HTTP/1.1 200 OK\r\n").is_none(), "no head terminator");
        assert!(
            parse_upstream_response(b"HTTP/1.1 200 OK\r\nContent-Length: 99\r\n\r\nshort")
                .is_none(),
            "truncated body must not relay"
        );
    }
}
