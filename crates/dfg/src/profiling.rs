//! Profiling-based value-predictability classification.
//!
//! §4.2 of the paper notes that the hybrid predictor "can be assisted by
//! opcode hints, inserted by the compiler, in order to classify
//! instructions to each of the prediction tables according to their value
//! predictability patterns", citing the authors' MICRO-30 paper *"Can
//! Program Profiling Support Value Prediction?"* (reference \[9\]).
//!
//! This module is that profiling pass: it replays a training trace through
//! both fundamental predictors and classifies every static instruction by
//! which (if either) predicts it well. The resulting
//! [`fetchvp_predictor::hybrid::HintClass`] map plugs directly
//! into [`fetchvp_predictor::HybridPredictor::with_hints`].

use std::collections::HashMap;

use fetchvp_predictor::hybrid::HintClass;
use fetchvp_predictor::{
    ConfidenceConfig, LastValuePredictor, StridePredictor, TableGeometry, ValuePredictor,
};
use fetchvp_trace::Trace;

/// Per-PC profiling statistics gathered by [`profile`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcProfile {
    /// Dynamic instances observed.
    pub instances: u64,
    /// Instances the (ungated) last-value predictor got right.
    pub last_value_correct: u64,
    /// Instances the (ungated) stride predictor got right.
    pub stride_correct: u64,
}

impl PcProfile {
    /// Last-value accuracy for this PC.
    pub fn last_value_accuracy(&self) -> f64 {
        ratio(self.last_value_correct, self.instances)
    }

    /// Stride accuracy for this PC.
    pub fn stride_accuracy(&self) -> f64 {
        ratio(self.stride_correct, self.instances)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The profiling pass: replays `trace` through ungated last-value and
/// stride predictors and records per-PC accuracies.
pub fn profile(trace: &Trace) -> HashMap<u64, PcProfile> {
    let mut lvp =
        LastValuePredictor::new(TableGeometry::Infinite, ConfidenceConfig::always_predict());
    let mut svp = StridePredictor::new(TableGeometry::Infinite, ConfidenceConfig::always_predict());
    let mut profiles: HashMap<u64, PcProfile> = HashMap::new();
    for rec in trace {
        if !rec.produces_value() {
            continue;
        }
        let p = profiles.entry(rec.pc).or_default();
        p.instances += 1;
        let lp = lvp.lookup(rec.pc);
        lvp.commit(rec.pc, rec.result, lp);
        if lp == Some(rec.result) {
            p.last_value_correct += 1;
        }
        let sp = svp.lookup(rec.pc);
        svp.commit(rec.pc, rec.result, sp);
        if sp == Some(rec.result) {
            p.stride_correct += 1;
        }
    }
    profiles
}

/// Converts per-PC profiles into hybrid-predictor hints.
///
/// An instruction is steered to the table that predicts it at or above
/// `threshold` accuracy (the stride table wins ties, since a stride entry
/// subsumes last-value behaviour with Δ = 0); instructions below the
/// threshold on both are marked [`HintClass::NotPredictable`], which — as
/// §4.2 observes — "can significantly reduce the number of conflicts that
/// need to be resolved by the router".
pub fn hints_from_profiles(
    profiles: &HashMap<u64, PcProfile>,
    threshold: f64,
) -> HashMap<u64, HintClass> {
    profiles
        .iter()
        .map(|(&pc, p)| {
            let class = if p.stride_accuracy() >= threshold
                && p.stride_accuracy() >= p.last_value_accuracy()
            {
                HintClass::Stride
            } else if p.last_value_accuracy() >= threshold {
                HintClass::LastValue
            } else {
                HintClass::NotPredictable
            };
            (pc, class)
        })
        .collect()
}

/// Convenience: profile a training trace and emit hints in one call.
///
/// # Example
///
/// ```
/// use fetchvp_dfg::profiling::profile_hints;
/// use fetchvp_isa::{AluOp, Cond, ProgramBuilder, Reg};
/// use fetchvp_predictor::hybrid::HintClass;
/// use fetchvp_trace::trace_program;
///
/// # fn main() -> Result<(), fetchvp_isa::ProgramError> {
/// let mut b = ProgramBuilder::new("p");
/// b.load_imm(Reg::R1, 500);
/// let head = b.bind_label("head");
/// b.alu_imm(AluOp::Sub, Reg::R1, Reg::R1, 1); // strided
/// b.branch(Cond::Ne, Reg::R1, Reg::R0, head);
/// b.halt();
/// let trace = trace_program(&b.build()?, 10_000);
/// let hints = profile_hints(&trace, 0.9);
/// assert_eq!(hints.get(&1), Some(&HintClass::Stride));
/// # Ok(())
/// # }
/// ```
pub fn profile_hints(trace: &Trace, threshold: f64) -> HashMap<u64, HintClass> {
    hints_from_profiles(&profile(trace), threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_isa::{AluOp, Cond, ProgramBuilder, Reg};
    use fetchvp_trace::trace_program;

    /// A loop with one strided, one constant and one erratic producer.
    fn mixed_trace() -> Trace {
        let mut b = ProgramBuilder::new("mixed");
        b.load_imm(Reg::R1, 2_000);
        let head = b.bind_label("head");
        b.alu_imm(AluOp::Sub, Reg::R1, Reg::R1, 1); // pc 1: strided
        b.load_imm(Reg::R2, 42); // pc 2: constant
        b.alu_imm(AluOp::Shl, Reg::R3, Reg::R1, 13); // pc 3: affine of R1 (strided-ish)
        b.alu(AluOp::Xor, Reg::R4, Reg::R4, Reg::R3); // pc 4: erratic accumulator
        b.branch(Cond::Ne, Reg::R1, Reg::R0, head);
        b.halt();
        trace_program(&b.build().unwrap(), 50_000)
    }

    #[test]
    fn profiles_measure_both_predictors() {
        let p = profile(&mixed_trace());
        // pc 1 (counter): stride-perfect after warm-up, last-value-hostile.
        let counter = p[&1];
        assert!(counter.stride_accuracy() > 0.99, "{counter:?}");
        assert!(counter.last_value_accuracy() < 0.01, "{counter:?}");
        // pc 2 (constant): both predict it.
        let constant = p[&2];
        assert!(constant.last_value_accuracy() > 0.99);
        assert!(constant.stride_accuracy() > 0.99);
    }

    #[test]
    fn hints_classify_by_pattern() {
        let hints = profile_hints(&mixed_trace(), 0.9);
        assert_eq!(hints[&1], HintClass::Stride);
        // The constant is claimed by the stride table (Δ = 0 subsumes it).
        assert_eq!(hints[&2], HintClass::Stride);
        assert_eq!(hints[&4], HintClass::NotPredictable);
    }

    #[test]
    fn threshold_one_rejects_warmup_misses() {
        // With threshold 1.0 even the strided counter fails (its first two
        // instances are unpredictable), so everything is NotPredictable.
        let hints = profile_hints(&mixed_trace(), 1.0);
        assert_eq!(hints[&1], HintClass::NotPredictable);
    }

    #[test]
    fn hints_feed_the_hybrid_predictor() {
        use fetchvp_predictor::HybridPredictor;
        let trace = mixed_trace();
        let hints = profile_hints(&trace, 0.9);
        let mut hinted = HybridPredictor::paper().with_hints(hints);
        for rec in &trace {
            if rec.produces_value() {
                let predicted = hinted.lookup(rec.pc);
                hinted.commit(rec.pc, rec.result, predicted);
            }
        }
        let s = hinted.stats();
        assert!(s.accuracy() > 0.95, "hinted hybrid accuracy {:.2}", s.accuracy());
        // The erratic accumulator never reaches the tables: no wrong
        // predictions wasted on it.
        assert!(s.coverage() < 0.9);
    }

    #[test]
    fn empty_trace_produces_no_hints() {
        let mut b = ProgramBuilder::new("empty");
        b.halt();
        let trace = trace_program(&b.build().unwrap(), 10);
        assert!(profile_hints(&trace, 0.5).is_empty());
    }
}
