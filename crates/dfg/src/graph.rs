//! Explicit dataflow-graph representation for small traces.

use std::fmt;

use fetchvp_isa::reg::NUM_REGS;
use fetchvp_trace::Trace;

/// One true-data-dependence arc `s_ij` of the DFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Arc {
    /// Producer sequence number (node `i`).
    pub producer: u64,
    /// Consumer sequence number (node `j`).
    pub consumer: u64,
}

impl Arc {
    /// The dynamic instruction distance of this arc (Equation 3.1:
    /// `DID(s_ij) = |j − i|`).
    pub fn did(&self) -> u64 {
        self.consumer - self.producer
    }
}

/// An explicit dynamic dataflow graph `G(V, S)` as defined in §3.3: nodes
/// are dynamic instructions numbered by appearance order, arcs are register
/// true dependencies (including loop-carried ones).
///
/// Intended for small traces (examples, tests, visualization); use
/// [`crate::DidAnalyzer`] for multi-million-instruction analyses, which
/// needs only O(registers) memory.
///
/// # Example
///
/// ```
/// use fetchvp_dfg::DataflowGraph;
/// use fetchvp_isa::{AluOp, ProgramBuilder, Reg};
/// use fetchvp_trace::trace_program;
///
/// # fn main() -> Result<(), fetchvp_isa::ProgramError> {
/// let mut b = ProgramBuilder::new("p");
/// b.load_imm(Reg::R1, 5); // node 0
/// b.alu_imm(AluOp::Add, Reg::R2, Reg::R1, 1); // node 1, arc 0 -> 1
/// b.halt();
/// let g = DataflowGraph::build(&trace_program(&b.build()?, 100));
/// assert_eq!(g.num_nodes(), 2);
/// assert_eq!(g.arcs()[0].did(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataflowGraph {
    num_nodes: u64,
    arcs: Vec<Arc>,
}

impl DataflowGraph {
    /// Builds the DFG of a captured trace.
    pub fn build(trace: &Trace) -> DataflowGraph {
        let mut last_writer: [Option<u64>; NUM_REGS] = [None; NUM_REGS];
        let mut arcs = Vec::new();
        for rec in trace {
            for src in rec.srcs().into_iter().flatten() {
                if src.is_zero() {
                    continue;
                }
                if let Some(producer) = last_writer[src.index()] {
                    arcs.push(Arc { producer, consumer: rec.seq });
                }
            }
            if let Some(dst) = rec.dst() {
                last_writer[dst.index()] = Some(rec.seq);
            }
        }
        DataflowGraph { num_nodes: trace.len() as u64, arcs }
    }

    /// Number of nodes (dynamic instructions).
    pub fn num_nodes(&self) -> u64 {
        self.num_nodes
    }

    /// All arcs in consumer order.
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// The arithmetic mean DID over all arcs (Figure 3.3's statistic).
    pub fn avg_did(&self) -> f64 {
        if self.arcs.is_empty() {
            0.0
        } else {
            self.arcs.iter().map(|a| a.did() as f64).sum::<f64>() / self.arcs.len() as f64
        }
    }

    /// Arcs consumed by node `seq`.
    pub fn in_arcs(&self, seq: u64) -> impl Iterator<Item = &Arc> {
        self.arcs.iter().filter(move |a| a.consumer == seq)
    }

    /// Arcs produced by node `seq`.
    pub fn out_arcs(&self, seq: u64) -> impl Iterator<Item = &Arc> {
        self.arcs.iter().filter(move |a| a.producer == seq)
    }
}

impl fmt::Display for DataflowGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DFG: {} nodes, {} arcs", self.num_nodes, self.arcs.len())?;
        for a in &self.arcs {
            writeln!(f, "  {} -> {} (DID {})", a.producer, a.consumer, a.did())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_isa::{AluOp, ProgramBuilder, Reg};
    use fetchvp_trace::trace_program;

    /// The paper's Figure 3.2 DFG: 8 nodes with arcs
    /// 1->2 (DID 1), 2->4 (2), 1->5 (4), 5->6 (1), 3->7 (4), 7->8 (1).
    fn figure_3_2() -> DataflowGraph {
        let mut b = ProgramBuilder::new("fig32");
        b.load_imm(Reg::R1, 1); // node 0 ("1")
        b.alu_imm(AluOp::Add, Reg::R2, Reg::R1, 1); // node 1 ("2")
        b.load_imm(Reg::R3, 3); // node 2 ("3")
        b.alu_imm(AluOp::Add, Reg::R4, Reg::R2, 1); // node 3 ("4")
        b.alu_imm(AluOp::Add, Reg::R5, Reg::R1, 1); // node 4 ("5")
        b.alu_imm(AluOp::Add, Reg::R6, Reg::R5, 1); // node 5 ("6")
        b.alu_imm(AluOp::Add, Reg::R7, Reg::R3, 1); // node 6 ("7")
        b.alu_imm(AluOp::Add, Reg::R8, Reg::R7, 1); // node 7 ("8")
        b.halt();
        DataflowGraph::build(&trace_program(&b.build().unwrap(), 100))
    }

    #[test]
    fn figure_3_2_arcs_match_the_paper() {
        let g = figure_3_2();
        let expect = [(0, 1), (1, 3), (0, 4), (4, 5), (2, 6), (6, 7)];
        let got: Vec<(u64, u64)> = g.arcs().iter().map(|a| (a.producer, a.consumer)).collect();
        assert_eq!(got.len(), 6);
        for pair in expect {
            assert!(got.contains(&pair), "missing arc {pair:?}");
        }
    }

    #[test]
    fn figure_3_2_dids_match_the_paper() {
        let g = figure_3_2();
        let mut dids: Vec<u64> = g.arcs().iter().map(Arc::did).collect();
        dids.sort_unstable();
        assert_eq!(dids, [1, 1, 1, 2, 4, 4]);
        assert!((g.avg_did() - 13.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn in_and_out_arcs_navigate_the_graph() {
        let g = figure_3_2();
        assert_eq!(g.out_arcs(0).count(), 2); // node "1" feeds "2" and "5"
        assert_eq!(g.in_arcs(3).count(), 1);
        assert_eq!(g.in_arcs(0).count(), 0);
    }

    #[test]
    fn empty_graph_is_well_behaved() {
        let mut b = ProgramBuilder::new("empty");
        b.halt();
        let g = DataflowGraph::build(&trace_program(&b.build().unwrap(), 10));
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.avg_did(), 0.0);
    }

    #[test]
    fn display_lists_arcs() {
        let g = figure_3_2();
        let text = g.to_string();
        assert!(text.contains("8 nodes, 6 arcs"));
        assert!(text.contains("(DID 4)"));
    }
}
