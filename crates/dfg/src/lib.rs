//! Dynamic dataflow graph and Dynamic Instruction Distance (DID) analysis.
//!
//! §3.3 of the paper introduces the *dynamic instruction distance*: for a
//! true-data-dependence arc from producer `i` to consumer `j` in the dynamic
//! instruction stream, `DID = |j − i|`. The DID distribution explains why
//! value prediction needs fetch bandwidth — a correct prediction whose
//! consumer arrives after the producer completed is useless:
//!
//! * [`DidAnalysis`] / [`analyze`] — streaming computation of the average
//!   DID (Figure 3.3), the DID histogram (Figure 3.4) and the joint
//!   predictability × DID distribution (Figure 3.5, using an infinite,
//!   ungated stride predictor as in the paper).
//! * [`DataflowGraph`] — an explicit graph representation for small traces,
//!   mirroring the paper's Figure 3.2 example.
//!
//! The DFG is built over the *entire execution trace* of the program,
//! "regardless of basic block boundaries", so it includes loop-carried and
//! inter-basic-block dependencies. Arcs are register true dependencies (the
//! hardwired-zero register carries none).
//!
//! # Example
//!
//! ```
//! use fetchvp_dfg::analyze;
//! use fetchvp_isa::{AluOp, Cond, ProgramBuilder, Reg};
//! use fetchvp_trace::trace_program;
//!
//! # fn main() -> Result<(), fetchvp_isa::ProgramError> {
//! let mut b = ProgramBuilder::new("loop");
//! b.load_imm(Reg::R1, 100);
//! let head = b.bind_label("head");
//! b.alu_imm(AluOp::Sub, Reg::R1, Reg::R1, 1); // loop-carried, DID 2
//! b.branch(Cond::Ne, Reg::R1, Reg::R0, head); // uses R1, DID 1
//! b.halt();
//! let analysis = analyze(&trace_program(&b.build()?, 10_000));
//! assert!(analysis.avg_did() < 4.0);
//! assert!(analysis.predictability.fraction_predictable() > 0.9); // strided counter
//! # Ok(())
//! # }
//! ```

pub mod graph;
pub mod histogram;
pub mod profiling;

pub use graph::{Arc, DataflowGraph};
pub use histogram::DidHistogram;
pub use profiling::profile_hints;

use fetchvp_isa::reg::NUM_REGS;
use fetchvp_predictor::{ConfidenceConfig, StridePredictor, TableGeometry, ValuePredictor};
use fetchvp_trace::{Slot, Trace, NO_REG};

/// Joint classification of dependence arcs by producer value-predictability
/// and DID (the paper's Figure 3.5).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PredictabilityBreakdown {
    /// Arcs whose producer instance was *not* correctly predicted by the
    /// infinite stride predictor ("uncorrectly predicted" in Figure 3.5).
    pub unpredictable: u64,
    /// DID histogram of the correctly-predicted arcs.
    pub predictable: DidHistogram,
}

impl PredictabilityBreakdown {
    /// Total arcs classified.
    pub fn total(&self) -> u64 {
        self.unpredictable + self.predictable.total()
    }

    /// Fraction of arcs whose producer was correctly predicted.
    pub fn fraction_predictable(&self) -> f64 {
        ratio(self.predictable.total(), self.total())
    }

    /// Fraction of arcs that are predictable *and* span fewer than
    /// `distance` instructions — the portion current low-bandwidth
    /// processors can exploit (the paper reports ≈23% on average at
    /// distance 4).
    pub fn fraction_predictable_short(&self, distance: u64) -> f64 {
        let short = self.predictable.total() - self.predictable.count_at_least(distance);
        ratio(short, self.total())
    }

    /// Fraction of arcs that are predictable *and* span at least
    /// `distance` instructions — exploitable only with high fetch bandwidth
    /// (the paper reports ≈40% for m88ksim and >55% for vortex at
    /// distance 4).
    pub fn fraction_predictable_long(&self, distance: u64) -> f64 {
        ratio(self.predictable.count_at_least(distance), self.total())
    }
}

/// The result of a streaming DID analysis over a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DidAnalysis {
    /// Total dependence arcs.
    pub arcs: u64,
    /// Sum of all DIDs (for the average).
    pub did_sum: u128,
    /// DID distribution (Figure 3.4).
    pub histogram: DidHistogram,
    /// Predictability × DID distribution (Figure 3.5).
    pub predictability: PredictabilityBreakdown,
}

impl DidAnalysis {
    /// The average DID (Figure 3.3).
    pub fn avg_did(&self) -> f64 {
        if self.arcs == 0 {
            0.0
        } else {
            self.did_sum as f64 / self.arcs as f64
        }
    }

    /// Fraction of dependencies spanning at least `distance` instructions
    /// (the paper: ≈60% at distance 4 on average).
    pub fn fraction_at_least(&self, distance: u64) -> f64 {
        ratio(self.histogram.count_at_least(distance), self.arcs)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Streaming DID analyzer: feed dynamic instructions in trace order.
///
/// Memory use is O(registers), so arbitrarily long traces can be analyzed.
#[derive(Debug)]
pub struct DidAnalyzer {
    /// Per-register: (producer seq, producer instance correctly predicted).
    last_writer: [Option<(u64, bool)>; NUM_REGS],
    /// The paper's Figure 3.5 predictor: infinite stride table, no
    /// confidence gating.
    predictor: StridePredictor,
    analysis: DidAnalysis,
}

impl DidAnalyzer {
    /// Creates an analyzer with empty state.
    pub fn new() -> DidAnalyzer {
        DidAnalyzer {
            last_writer: [None; NUM_REGS],
            predictor: StridePredictor::new(
                TableGeometry::Infinite,
                ConfidenceConfig::always_predict(),
            ),
            analysis: DidAnalysis::default(),
        }
    }

    /// Feeds one dynamic instruction (must be called in trace order).
    pub fn feed(&mut self, rec: Slot<'_>) {
        // Arcs from this instruction's register reads.
        for src in [rec.src1_byte(), rec.src2_byte()] {
            if src == NO_REG || src == 0 {
                continue; // absent operand or the hardwired zero register
            }
            let Some((producer_seq, predicted_ok)) = self.last_writer[src as usize] else {
                continue;
            };
            let did = rec.seq() - producer_seq;
            self.analysis.arcs += 1;
            self.analysis.did_sum += did as u128;
            self.analysis.histogram.add(did);
            if predicted_ok {
                self.analysis.predictability.predictable.add(did);
            } else {
                self.analysis.predictability.unpredictable += 1;
            }
        }
        // Predictability of this instance's own result.
        let dst = rec.dst_byte();
        if dst != NO_REG {
            let predicted = self.predictor.lookup(rec.pc());
            self.predictor.commit(rec.pc(), rec.result(), predicted);
            let ok = predicted == Some(rec.result());
            self.last_writer[dst as usize] = Some((rec.seq(), ok));
        }
    }

    /// Finishes the analysis.
    pub fn finish(self) -> DidAnalysis {
        self.analysis
    }
}

impl Default for DidAnalyzer {
    fn default() -> DidAnalyzer {
        DidAnalyzer::new()
    }
}

/// Analyzes a full captured trace (Figures 3.3, 3.4 and 3.5 in one pass).
pub fn analyze(trace: &Trace) -> DidAnalysis {
    let mut a = DidAnalyzer::new();
    for rec in trace.view().slots() {
        a.feed(rec);
    }
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_isa::{AluOp, Cond, ProgramBuilder, Reg};
    use fetchvp_trace::trace_program;

    fn build_trace(f: impl FnOnce(&mut ProgramBuilder), limit: u64) -> Trace {
        let mut b = ProgramBuilder::new("t");
        f(&mut b);
        trace_program(&b.build().unwrap(), limit)
    }

    #[test]
    fn straight_line_chain_has_did_one() {
        let t = build_trace(
            |b| {
                b.load_imm(Reg::R1, 0);
                for _ in 0..10 {
                    b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 1);
                }
                b.halt();
            },
            100,
        );
        let a = analyze(&t);
        assert_eq!(a.arcs, 10);
        assert!((a.avg_did() - 1.0).abs() < 1e-12);
        assert_eq!(a.fraction_at_least(2), 0.0);
    }

    #[test]
    fn interleaved_chains_raise_the_did() {
        // Two independent chains interleaved: each dependence spans 2.
        let t = build_trace(
            |b| {
                b.load_imm(Reg::R1, 0);
                b.load_imm(Reg::R2, 0);
                for _ in 0..10 {
                    b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 1);
                    b.alu_imm(AluOp::Add, Reg::R2, Reg::R2, 1);
                }
                b.halt();
            },
            100,
        );
        let a = analyze(&t);
        assert!((a.avg_did() - 2.0).abs() < 1e-12);
        assert_eq!(a.fraction_at_least(2), 1.0);
        assert_eq!(a.fraction_at_least(3), 0.0);
    }

    #[test]
    fn zero_register_reads_produce_no_arcs() {
        let t = build_trace(
            |b| {
                b.alu(AluOp::Add, Reg::R1, Reg::R0, Reg::R0);
                b.alu(AluOp::Add, Reg::R2, Reg::R0, Reg::R0);
                b.halt();
            },
            10,
        );
        assert_eq!(analyze(&t).arcs, 0);
    }

    #[test]
    fn loop_carried_dependencies_are_captured() {
        // The paper stresses that the DFG spans basic-block boundaries.
        let t = build_trace(
            |b| {
                b.load_imm(Reg::R1, 50);
                let head = b.bind_label("head");
                b.nop();
                b.nop();
                b.alu_imm(AluOp::Sub, Reg::R1, Reg::R1, 1); // DID 4, loop-carried
                b.branch(Cond::Ne, Reg::R1, Reg::R0, head); // DID 1
                b.halt();
            },
            100_000,
        );
        let a = analyze(&t);
        // Arcs alternate DID 4 (sub -> sub across iterations) and DID 1.
        assert!(a.fraction_at_least(4) > 0.45);
        assert!((a.avg_did() - 2.5).abs() < 0.1);
    }

    #[test]
    fn strided_producers_are_predictable() {
        let t = build_trace(
            |b| {
                b.load_imm(Reg::R1, 1000);
                let head = b.bind_label("head");
                b.alu_imm(AluOp::Sub, Reg::R1, Reg::R1, 1);
                b.branch(Cond::Ne, Reg::R1, Reg::R0, head);
                b.halt();
            },
            100_000,
        );
        let a = analyze(&t);
        assert!(a.predictability.fraction_predictable() > 0.95);
        assert_eq!(a.predictability.total(), a.arcs);
    }

    #[test]
    fn random_values_are_unpredictable() {
        // A xorshift-style scrambler: results never follow a stride.
        let t = build_trace(
            |b| {
                b.load_imm(Reg::R1, 0x9E37);
                b.load_imm(Reg::R2, 500);
                let head = b.bind_label("head");
                b.alu_imm(AluOp::Shl, Reg::R3, Reg::R1, 13);
                b.alu(AluOp::Xor, Reg::R1, Reg::R1, Reg::R3);
                b.alu_imm(AluOp::Shr, Reg::R3, Reg::R1, 7);
                b.alu(AluOp::Xor, Reg::R1, Reg::R1, Reg::R3);
                b.alu_imm(AluOp::Sub, Reg::R2, Reg::R2, 1);
                b.branch(Cond::Ne, Reg::R2, Reg::R0, head);
                b.halt();
            },
            100_000,
        );
        let a = analyze(&t);
        // The xorshift chain itself is unpredictable; the loop counter is
        // predictable. Expect a clear unpredictable population.
        let f = a.predictability.fraction_predictable();
        assert!(f < 0.7, "predictable fraction {f:.2} unexpectedly high");
        assert!(a.predictability.unpredictable > 0);
    }

    #[test]
    fn short_and_long_fractions_partition_the_predictable_mass() {
        let t = build_trace(
            |b| {
                b.load_imm(Reg::R1, 300);
                let head = b.bind_label("head");
                b.alu_imm(AluOp::Sub, Reg::R1, Reg::R1, 1);
                b.branch(Cond::Ne, Reg::R1, Reg::R0, head);
                b.halt();
            },
            100_000,
        );
        let a = analyze(&t);
        let p = &a.predictability;
        let sum = p.fraction_predictable_short(4) + p.fraction_predictable_long(4);
        assert!((sum - p.fraction_predictable()).abs() < 1e-9);
    }

    #[test]
    fn analyzer_matches_batch_analysis() {
        let t = build_trace(
            |b| {
                b.load_imm(Reg::R1, 10);
                let head = b.bind_label("head");
                b.alu_imm(AluOp::Sub, Reg::R1, Reg::R1, 1);
                b.branch(Cond::Ne, Reg::R1, Reg::R0, head);
                b.halt();
            },
            1_000,
        );
        let mut a = DidAnalyzer::new();
        for rec in t.view().slots() {
            a.feed(rec);
        }
        assert_eq!(a.finish(), analyze(&t));
    }

    #[test]
    fn empty_trace_yields_empty_analysis() {
        let a = DidAnalyzer::new().finish();
        assert_eq!(a.arcs, 0);
        assert_eq!(a.avg_did(), 0.0);
        assert_eq!(a.fraction_at_least(4), 0.0);
    }
}
