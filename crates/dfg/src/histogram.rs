//! DID histograms with the paper's binning.

use std::fmt;

/// Bin lower edges: bin `i` covers `EDGES[i] ..= EDGES[i+1] - 1`; the last
/// bin is open-ended. DID values are always ≥ 1.
const EDGES: [u64; 8] = [1, 2, 3, 4, 8, 16, 32, 64];

/// A histogram of dynamic instruction distances.
///
/// Bins follow the paper's Figure 3.4 presentation: exact counts for
/// distances 1–3 (the span a 4-wide fetch can cover) and geometric buckets
/// beyond.
///
/// # Example
///
/// ```
/// use fetchvp_dfg::DidHistogram;
///
/// let mut h = DidHistogram::default();
/// h.add(1);
/// h.add(3);
/// h.add(10);
/// assert_eq!(h.total(), 3);
/// assert_eq!(h.count_at_least(4), 1);
/// assert!((h.fraction_at_least(4) - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DidHistogram {
    counts: [u64; EDGES.len()],
    total: u64,
}

impl DidHistogram {
    /// Number of bins.
    pub const NUM_BINS: usize = EDGES.len();

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `did` is zero (a dependence arc always spans ≥ 1).
    pub fn add(&mut self, did: u64) {
        assert!(did >= 1, "DID must be at least 1");
        let bin = match EDGES.binary_search(&did) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        self.counts[bin] += 1;
        self.total += 1;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The count in bin `i`.
    pub fn count(&self, bin: usize) -> u64 {
        self.counts[bin]
    }

    /// The fraction of observations in bin `i`.
    pub fn fraction(&self, bin: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[bin] as f64 / self.total as f64
        }
    }

    /// Observations with DID ≥ `distance`.
    ///
    /// # Panics
    ///
    /// Panics if `distance` is not a bin edge (1, 2, 3, 4, 8, 16, 32, 64) —
    /// counts below bin granularity are not recorded.
    pub fn count_at_least(&self, distance: u64) -> u64 {
        let i = EDGES
            .binary_search(&distance)
            .unwrap_or_else(|_| panic!("{distance} is not a bin edge"));
        self.counts[i..].iter().sum()
    }

    /// Fraction of observations with DID ≥ `distance` (a bin edge).
    pub fn fraction_at_least(&self, distance: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count_at_least(distance) as f64 / self.total as f64
        }
    }

    /// Human-readable label of bin `i` (e.g. `"4-7"`, `">=64"`).
    pub fn bin_label(bin: usize) -> String {
        if bin + 1 == EDGES.len() {
            format!(">={}", EDGES[bin])
        } else if EDGES[bin] + 1 == EDGES[bin + 1] {
            format!("{}", EDGES[bin])
        } else {
            format!("{}-{}", EDGES[bin], EDGES[bin + 1] - 1)
        }
    }

    /// Iterates over `(label, count, fraction)` rows.
    pub fn rows(&self) -> impl Iterator<Item = (String, u64, f64)> + '_ {
        (0..Self::NUM_BINS).map(|i| (Self::bin_label(i), self.count(i), self.fraction(i)))
    }
}

impl fmt::Display for DidHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (label, count, fraction) in self.rows() {
            writeln!(f, "{label:>6}: {count:>10} ({:.1}%)", 100.0 * fraction)?;
        }
        write!(f, " total: {:>10}", self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_testutil::for_cases;

    #[test]
    fn exact_bins_for_small_distances() {
        let mut h = DidHistogram::default();
        for d in [1, 2, 3] {
            h.add(d);
        }
        assert_eq!((h.count(0), h.count(1), h.count(2)), (1, 1, 1));
    }

    #[test]
    fn geometric_bins_for_larger_distances() {
        let mut h = DidHistogram::default();
        for d in [4, 7, 8, 15, 16, 63, 64, 1_000_000] {
            h.add(d);
        }
        assert_eq!(h.count(3), 2); // 4-7: {4, 7}
        assert_eq!(h.count(4), 2); // 8-15: {8, 15}
        assert_eq!(h.count(5), 1); // 16-31: {16}
        assert_eq!(h.count(6), 1); // 32-63: {63}
        assert_eq!(h.count(7), 2); // >=64: {64, 1_000_000}
    }

    #[test]
    fn at_least_sums_suffix() {
        let mut h = DidHistogram::default();
        for d in 1..=100 {
            h.add(d);
        }
        assert_eq!(h.count_at_least(1), 100);
        assert_eq!(h.count_at_least(4), 97);
        assert_eq!(h.count_at_least(64), 37);
    }

    #[test]
    #[should_panic(expected = "not a bin edge")]
    fn at_least_requires_bin_edge() {
        DidHistogram::default().count_at_least(5);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_did_panics() {
        DidHistogram::default().add(0);
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(DidHistogram::bin_label(0), "1");
        assert_eq!(DidHistogram::bin_label(3), "4-7");
        assert_eq!(DidHistogram::bin_label(7), ">=64");
    }

    #[test]
    fn display_includes_total() {
        let mut h = DidHistogram::default();
        h.add(2);
        assert!(h.to_string().contains("total"));
    }

    #[test]
    fn totals_are_consistent() {
        for_cases(48, |case, rng| {
            let dids = rng.vec_with(0, 500, |r| r.range_u64(1, 10_000));
            let mut h = DidHistogram::default();
            for d in &dids {
                h.add(*d);
            }
            assert_eq!(h.total(), dids.len() as u64, "case {case}");
            let bin_sum: u64 = (0..DidHistogram::NUM_BINS).map(|i| h.count(i)).sum();
            assert_eq!(bin_sum, h.total(), "case {case}");
            // at-least counts agree with direct counting at every edge.
            for edge in [1u64, 2, 3, 4, 8, 16, 32, 64] {
                let direct = dids.iter().filter(|&&d| d >= edge).count() as u64;
                assert_eq!(h.count_at_least(edge), direct, "case {case}, edge {edge}");
            }
        });
    }
}
