//! Columnar (structure-of-arrays) storage for dynamic instruction traces.
//!
//! The machine models walk multi-million-instruction traces once per
//! configuration, touching only a few fields per instruction per pass (the
//! scheduler wants source/destination registers and results; fetch engines
//! want PCs and branch outcomes). Storing the stream as an array of
//! [`DynInstr`] structs drags every field of every record through the cache
//! on every pass. This module stores the trace as parallel columns instead:
//!
//! * `u64` columns for PCs, next-PCs, produced values and memory addresses;
//! * one packed `u8` flag byte per instruction for the boolean facts
//!   (control/branch kind, memory op, taken, address validity);
//! * `u8` register columns (destination and the two sources) using
//!   [`NO_REG`] as the "absent" sentinel;
//! * a `u32` index per instruction into a small interned table of distinct
//!   static [`Instr`]s — the full instruction word is rarely needed, and a
//!   trace touches only as many distinct instructions as its static
//!   footprint.
//!
//! Consumers iterate through [`TraceView`], a zero-copy, `Copy` view whose
//! [`Slot`] accessor reads individual fields straight out of the columns.
//! The record-oriented API ([`TraceColumns::to_record`] and the iterators on
//! `Trace`) materializes [`DynInstr`] values on demand for cold paths such
//! as trace-file serialization; the two representations are interconvertible
//! and round-trip exactly (see `tests/properties.rs`).
//!
//! # Example
//!
//! ```
//! use fetchvp_isa::{AluOp, ProgramBuilder, Reg};
//! use fetchvp_trace::trace_program;
//!
//! # fn main() -> Result<(), fetchvp_isa::ProgramError> {
//! let mut b = ProgramBuilder::new("p");
//! b.load_imm(Reg::R1, 20);
//! b.alu_imm(AluOp::Add, Reg::R2, Reg::R1, 22);
//! b.halt();
//! let trace = trace_program(&b.build()?, 10);
//!
//! // Zero-copy field access through the view:
//! let view = trace.view();
//! let add = view.slot(1);
//! assert_eq!(add.result(), 42);
//! assert_eq!(add.dst(), Some(Reg::R2));
//! assert!(!add.is_control());
//!
//! // Cold paths can still materialize full records:
//! assert_eq!(view.get(1), trace.get(1));
//! # Ok(())
//! # }
//! ```

use fetchvp_isa::{Instr, Reg};
use fetchvp_metrics::FxHashMap;

use crate::record::DynInstr;

/// Sentinel register byte meaning "no register" in the destination and
/// source columns.
pub const NO_REG: u8 = 0xFF;

/// Bit assignments of the per-instruction flag byte.
pub mod flag {
    /// The instruction is a control-flow instruction.
    pub const CONTROL: u8 = 1 << 0;
    /// The instruction is a conditional branch.
    pub const COND_BRANCH: u8 = 1 << 1;
    /// The instruction is a direct unconditional transfer (jump or call).
    pub const DIRECT: u8 = 1 << 2;
    /// The instruction is an indirect jump.
    pub const INDIRECT: u8 = 1 << 3;
    /// The instruction is a memory operation (load or store).
    pub const MEM: u8 = 1 << 4;
    /// Control actually transferred away from `pc + 1`.
    pub const TAKEN: u8 = 1 << 5;
    /// The memory-address column holds a valid effective address.
    pub const HAS_MEM_ADDR: u8 = 1 << 6;
}

/// The structure-of-arrays trace store.
///
/// One entry per retired dynamic instruction, in retirement order; the
/// instruction at index `i` has sequence number `i` (sequence numbers are
/// implicit, unlike [`DynInstr::seq`]). See the [module docs](self) for the
/// column layout.
#[derive(Debug, Clone, Default)]
pub struct TraceColumns {
    pcs: Vec<u64>,
    next_pcs: Vec<u64>,
    results: Vec<u64>,
    /// Valid only where [`flag::HAS_MEM_ADDR`] is set; zero elsewhere.
    mem_addrs: Vec<u64>,
    flags: Vec<u8>,
    /// Destination-register index, or [`NO_REG`] (writes to the hardwired
    /// zero register count as "no destination", matching [`Instr::dst`]).
    dsts: Vec<u8>,
    /// First source-register index (including `r0`), or [`NO_REG`].
    src1s: Vec<u8>,
    /// Second source-register index (including `r0`), or [`NO_REG`].
    src2s: Vec<u8>,
    /// Per-instruction index into `instr_table`.
    instr_idxs: Vec<u32>,
    /// Interned distinct static instructions.
    instr_table: Vec<Instr>,
    /// Interning map from instruction to its `instr_table` index.
    intern: FxHashMap<Instr, u32>,
    /// Logical index of the first stored row. Zero for whole traces; a
    /// chunk buffer decoded from an on-disk store sets it to the chunk's
    /// starting sequence number so slots report their global position (see
    /// [`TraceColumns::set_base`]).
    base: usize,
}

impl TraceColumns {
    /// An empty column store.
    pub fn new() -> TraceColumns {
        TraceColumns::default()
    }

    /// An empty column store with room for `n` instructions.
    pub fn with_capacity(n: usize) -> TraceColumns {
        TraceColumns {
            pcs: Vec::with_capacity(n),
            next_pcs: Vec::with_capacity(n),
            results: Vec::with_capacity(n),
            mem_addrs: Vec::with_capacity(n),
            flags: Vec::with_capacity(n),
            dsts: Vec::with_capacity(n),
            src1s: Vec::with_capacity(n),
            src2s: Vec::with_capacity(n),
            instr_idxs: Vec::with_capacity(n),
            instr_table: Vec::new(),
            intern: FxHashMap::default(),
            base: 0,
        }
    }

    /// Builds a column store from a record slice ([`DynInstr::seq`] fields
    /// are discarded; sequence numbers are implicit in columnar storage).
    pub fn from_records(records: &[DynInstr]) -> TraceColumns {
        let mut cols = TraceColumns::with_capacity(records.len());
        for rec in records {
            cols.push(rec);
        }
        cols
    }

    /// Appends one retired instruction.
    pub fn push(&mut self, rec: &DynInstr) {
        let prepared = self.prepare(rec.instr);
        self.push_prepared(prepared, rec.pc, rec.next_pc, rec.result, rec.mem_addr, rec.taken);
    }

    /// Interns `instr` and precomputes its static column values.
    ///
    /// The returned [`PreparedInstr`] is valid for this store only. Callers
    /// replaying a static program (the executor hot path) prepare each
    /// static instruction once and push its dynamic instances with
    /// [`TraceColumns::push_prepared`], skipping the per-record flag
    /// computation and intern-table probe.
    pub fn prepare(&mut self, instr: Instr) -> PreparedInstr {
        let mut flags = 0u8;
        if instr.is_control() {
            flags |= flag::CONTROL;
        }
        if instr.is_cond_branch() {
            flags |= flag::COND_BRANCH;
        }
        if matches!(instr, Instr::Jump { .. } | Instr::Call { .. }) {
            flags |= flag::DIRECT;
        }
        if matches!(instr, Instr::JumpInd { .. }) {
            flags |= flag::INDIRECT;
        }
        if instr.is_mem() {
            flags |= flag::MEM;
        }
        let [src1, src2] = instr.srcs();
        PreparedInstr {
            flags,
            dst: instr.dst().map_or(NO_REG, |r| r.index() as u8),
            src1: src1.map_or(NO_REG, |r| r.index() as u8),
            src2: src2.map_or(NO_REG, |r| r.index() as u8),
            idx: self.intern_instr(instr),
        }
    }

    /// Appends one dynamic instance of a [prepared](TraceColumns::prepare)
    /// instruction — the executor's zero-hash fast path.
    #[inline]
    pub fn push_prepared(
        &mut self,
        prepared: PreparedInstr,
        pc: u64,
        next_pc: u64,
        result: u64,
        mem_addr: Option<u64>,
        taken: bool,
    ) {
        let mut flags = prepared.flags;
        if taken {
            flags |= flag::TAKEN;
        }
        if mem_addr.is_some() {
            flags |= flag::HAS_MEM_ADDR;
        }
        self.pcs.push(pc);
        self.next_pcs.push(next_pc);
        self.results.push(result);
        self.mem_addrs.push(mem_addr.unwrap_or(0));
        self.flags.push(flags);
        self.dsts.push(prepared.dst);
        self.src1s.push(prepared.src1);
        self.src2s.push(prepared.src2);
        self.instr_idxs.push(prepared.idx);
    }

    fn intern_instr(&mut self, instr: Instr) -> u32 {
        use std::collections::hash_map::Entry;
        match self.intern.entry(instr) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                let id = self.instr_table.len() as u32;
                self.instr_table.push(instr);
                e.insert(id);
                id
            }
        }
    }

    /// The logical end of the store: `base + stored rows`. Slots occupy the
    /// logical indices `base()..len()`; for whole traces (`base == 0`) this
    /// is simply the number of stored instructions.
    pub fn len(&self) -> usize {
        self.base + self.pcs.len()
    }

    /// Whether the store holds no rows (regardless of [`base`]).
    ///
    /// [`base`]: TraceColumns::base
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The logical index of the first stored row (zero except for chunk
    /// buffers; see [`TraceColumns::set_base`]).
    #[inline]
    pub fn base(&self) -> usize {
        self.base
    }

    /// Re-bases the store so its first row sits at logical index `base`.
    ///
    /// This is the windowed-replay seam: an on-disk trace is decoded one
    /// chunk at a time into a reusable buffer whose base is set to the
    /// chunk's starting sequence number, so machine models see the same
    /// global indices, sequence numbers, and logical length bound they
    /// would over the fully materialized trace. Rows already stored keep
    /// their relative order; subsequent pushes append after them.
    pub fn set_base(&mut self, base: usize) {
        self.base = base;
    }

    /// Drops all rows but keeps the interned instruction table (and the
    /// base), so a chunk buffer can be refilled without re-interning the
    /// program's static footprint. [`PreparedInstr`]s from this store stay
    /// valid across the clear.
    pub fn clear_rows(&mut self) {
        self.pcs.clear();
        self.next_pcs.clear();
        self.results.clear();
        self.mem_addrs.clear();
        self.flags.clear();
        self.dsts.clear();
        self.src1s.clear();
        self.src2s.clear();
        self.instr_idxs.clear();
    }

    /// The interned static-instruction table, indexable by
    /// [`Slot::instr_index`].
    pub fn instr_table(&self) -> &[Instr] {
        &self.instr_table
    }

    /// Number of distinct static instructions seen (the interned-table
    /// size; bounded by the program's static footprint).
    pub fn distinct_instrs(&self) -> usize {
        self.instr_table.len()
    }

    /// The accessor for the instruction at logical `index` (i.e. its
    /// global sequence number when the store is a re-based chunk buffer).
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside `base()..len()`.
    #[inline]
    pub fn slot(&self, index: usize) -> Slot<'_> {
        assert!(
            (self.base..self.len()).contains(&index),
            "slot {index} outside {}..{}",
            self.base,
            self.len()
        );
        Slot { cols: self, idx: index - self.base }
    }

    /// A zero-copy view over the whole store.
    #[inline]
    pub fn view(&self) -> TraceView<'_> {
        TraceView { cols: self }
    }

    /// Materializes the record at `index` (with `seq == index`).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn to_record(&self, index: usize) -> DynInstr {
        self.slot(index).to_record()
    }

    /// Copies out the instructions in logical `range` as a new store
    /// (implicitly re-based and re-sequenced from zero). The interned
    /// instruction table is shared wholesale rather than re-interned.
    ///
    /// # Panics
    ///
    /// Panics if the range is outside `base()..len()`.
    pub fn slice(&self, range: std::ops::Range<usize>) -> TraceColumns {
        assert!(range.start >= self.base, "range start {} before base {}", range.start, self.base);
        let range = range.start - self.base..range.end - self.base;
        TraceColumns {
            pcs: self.pcs[range.clone()].to_vec(),
            next_pcs: self.next_pcs[range.clone()].to_vec(),
            results: self.results[range.clone()].to_vec(),
            mem_addrs: self.mem_addrs[range.clone()].to_vec(),
            flags: self.flags[range.clone()].to_vec(),
            dsts: self.dsts[range.clone()].to_vec(),
            src1s: self.src1s[range.clone()].to_vec(),
            src2s: self.src2s[range.clone()].to_vec(),
            instr_idxs: self.instr_idxs[range].to_vec(),
            instr_table: self.instr_table.clone(),
            intern: self.intern.clone(),
            base: 0,
        }
    }
}

/// Equality is *logical*: two stores are equal when they describe the same
/// dynamic instruction stream, regardless of how their interned instruction
/// tables are laid out (a [`TraceColumns::slice`] shares its parent's full
/// table; an equal stream built by [`TraceColumns::push`] interns only what
/// it sees).
impl PartialEq for TraceColumns {
    fn eq(&self, other: &TraceColumns) -> bool {
        self.base == other.base
            && self.pcs == other.pcs
            && self.next_pcs == other.next_pcs
            && self.results == other.results
            && self.mem_addrs == other.mem_addrs
            && self.flags == other.flags
            && self.dsts == other.dsts
            && self.src1s == other.src1s
            && self.src2s == other.src2s
            && self
                .instr_idxs
                .iter()
                .zip(&other.instr_idxs)
                .all(|(&a, &b)| self.instr_table[a as usize] == other.instr_table[b as usize])
    }
}

impl Eq for TraceColumns {}

/// The precomputed static column values of one interned instruction (see
/// [`TraceColumns::prepare`]). Valid only for the store that produced it.
#[derive(Debug, Clone, Copy)]
pub struct PreparedInstr {
    /// Static flag bits (everything but `TAKEN` / `HAS_MEM_ADDR`).
    flags: u8,
    dst: u8,
    src1: u8,
    src2: u8,
    idx: u32,
}

/// A zero-copy, copyable view over a [`TraceColumns`] store.
///
/// Being `Copy`, a view can be passed by value into fetch engines and
/// machine loops without borrow-checker friction (the engine borrows the
/// columns immutably while mutating its own state).
#[derive(Debug, Clone, Copy)]
pub struct TraceView<'a> {
    cols: &'a TraceColumns,
}

impl<'a> TraceView<'a> {
    /// Number of instructions in view.
    #[inline]
    pub fn len(self) -> usize {
        self.cols.len()
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.cols.is_empty()
    }

    /// The logical index of the first instruction in view (zero except for
    /// re-based chunk buffers; see [`TraceColumns::set_base`]).
    #[inline]
    pub fn base(self) -> usize {
        self.cols.base
    }

    /// The accessor for the instruction at logical `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside `base()..len()`.
    #[inline]
    pub fn slot(self, index: usize) -> Slot<'a> {
        self.cols.slot(index)
    }

    /// Materializes the record at `index` (with `seq == index`).
    pub fn get(self, index: usize) -> DynInstr {
        self.cols.to_record(index)
    }

    /// Iterates over all slots in retirement order.
    pub fn slots(self) -> impl ExactSizeIterator<Item = Slot<'a>> {
        let cols = self.cols;
        (0..cols.pcs.len()).map(move |idx| Slot { cols, idx })
    }

    /// Iterates over the slots in logical `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range falls outside `base()..len()`.
    pub fn slots_in(
        self,
        range: std::ops::Range<usize>,
    ) -> impl ExactSizeIterator<Item = Slot<'a>> {
        assert!(
            range.start >= self.base(),
            "range start {} before base {}",
            range.start,
            self.base()
        );
        assert!(range.end <= self.len(), "range end {} beyond {}", range.end, self.len());
        let cols = self.cols;
        let base = cols.base;
        range.map(move |idx| Slot { cols, idx: idx - base })
    }
}

/// A zero-copy accessor for one instruction of a [`TraceColumns`] store.
///
/// All field reads are direct column indexing; nothing is materialized.
/// `idx` is the *physical* row (logical index minus the store's base), so
/// field reads stay a single indexed load even over re-based chunk buffers.
#[derive(Debug, Clone, Copy)]
pub struct Slot<'a> {
    cols: &'a TraceColumns,
    idx: usize,
}

impl<'a> Slot<'a> {
    /// Logical position in the dynamic stream (equals the sequence number),
    /// global even when the slot comes from a re-based chunk buffer.
    #[inline]
    pub fn index(self) -> usize {
        self.cols.base + self.idx
    }

    /// Sequence number (the paper's "appearance order").
    #[inline]
    pub fn seq(self) -> u64 {
        (self.cols.base + self.idx) as u64
    }

    /// Program index of the instruction.
    #[inline]
    pub fn pc(self) -> u64 {
        self.cols.pcs[self.idx]
    }

    /// The PC of the next dynamic instruction.
    #[inline]
    pub fn next_pc(self) -> u64 {
        self.cols.next_pcs[self.idx]
    }

    /// The value written to the destination register (`0` when there is
    /// none).
    #[inline]
    pub fn result(self) -> u64 {
        self.cols.results[self.idx]
    }

    /// The effective address for loads and stores.
    #[inline]
    pub fn mem_addr(self) -> Option<u64> {
        if self.flags() & flag::HAS_MEM_ADDR != 0 {
            Some(self.cols.mem_addrs[self.idx])
        } else {
            None
        }
    }

    /// The raw flag byte (see [`flag`]).
    #[inline]
    pub fn flags(self) -> u8 {
        self.cols.flags[self.idx]
    }

    /// Whether control transferred away from `pc + 1`.
    #[inline]
    pub fn taken(self) -> bool {
        self.flags() & flag::TAKEN != 0
    }

    /// Whether this is a control-flow instruction.
    #[inline]
    pub fn is_control(self) -> bool {
        self.flags() & flag::CONTROL != 0
    }

    /// Whether this is a conditional branch.
    #[inline]
    pub fn is_cond_branch(self) -> bool {
        self.flags() & flag::COND_BRANCH != 0
    }

    /// Whether this is a direct unconditional transfer (jump or call).
    #[inline]
    pub fn is_direct_jump(self) -> bool {
        self.flags() & flag::DIRECT != 0
    }

    /// Whether this is an indirect jump.
    #[inline]
    pub fn is_indirect_jump(self) -> bool {
        self.flags() & flag::INDIRECT != 0
    }

    /// Whether this is a memory operation.
    #[inline]
    pub fn is_mem(self) -> bool {
        self.flags() & flag::MEM != 0
    }

    /// Whether this instruction writes a (non-zero) destination register —
    /// exactly when [`Slot::dst`] is `Some`.
    #[inline]
    pub fn produces_value(self) -> bool {
        self.cols.dsts[self.idx] != NO_REG
    }

    /// Destination-register index, or [`NO_REG`]. The hot-path form of
    /// [`Slot::dst`]: usable directly as an array index after the sentinel
    /// check.
    #[inline]
    pub fn dst_byte(self) -> u8 {
        self.cols.dsts[self.idx]
    }

    /// First source-register index (including `r0`), or [`NO_REG`].
    #[inline]
    pub fn src1_byte(self) -> u8 {
        self.cols.src1s[self.idx]
    }

    /// Second source-register index (including `r0`), or [`NO_REG`].
    #[inline]
    pub fn src2_byte(self) -> u8 {
        self.cols.src2s[self.idx]
    }

    /// The register written by this instruction, if any.
    #[inline]
    pub fn dst(self) -> Option<Reg> {
        reg_from_byte(self.cols.dsts[self.idx])
    }

    /// The registers read by this instruction (matching
    /// [`Instr::srcs`]).
    #[inline]
    pub fn srcs(self) -> [Option<Reg>; 2] {
        [reg_from_byte(self.cols.src1s[self.idx]), reg_from_byte(self.cols.src2s[self.idx])]
    }

    /// The full static instruction (one indirection through the interned
    /// table).
    #[inline]
    pub fn instr(self) -> &'a Instr {
        &self.cols.instr_table[self.cols.instr_idxs[self.idx] as usize]
    }

    /// This instruction's index into [`TraceColumns::instr_table`] — the
    /// interned-table id trace serializers write instead of the full
    /// instruction word.
    #[inline]
    pub fn instr_index(self) -> u32 {
        self.cols.instr_idxs[self.idx]
    }

    /// Materializes this slot as a [`DynInstr`] (with `seq` equal to the
    /// slot index).
    pub fn to_record(self) -> DynInstr {
        DynInstr {
            seq: self.seq(),
            pc: self.pc(),
            instr: *self.instr(),
            result: self.result(),
            mem_addr: self.mem_addr(),
            taken: self.taken(),
            next_pc: self.next_pc(),
        }
    }
}

#[inline]
fn reg_from_byte(byte: u8) -> Option<Reg> {
    if byte == NO_REG {
        None
    } else {
        Reg::new(byte)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_program;
    use fetchvp_isa::{AluOp, Cond, ProgramBuilder};

    fn sample() -> crate::Trace {
        let mut b = ProgramBuilder::new("sample");
        b.load_imm(Reg::R1, 0x40);
        b.load_imm(Reg::R2, 3);
        let head = b.bind_label("head");
        b.store(Reg::R2, Reg::R1, 0);
        b.load(Reg::R3, Reg::R1, 0);
        b.alu(AluOp::Add, Reg::R4, Reg::R3, Reg::R2);
        b.alu_imm(AluOp::Sub, Reg::R2, Reg::R2, 1);
        b.branch(Cond::Ne, Reg::R2, Reg::R0, head);
        b.halt();
        trace_program(&b.build().unwrap(), 1_000)
    }

    #[test]
    fn slots_match_materialized_records() {
        let t = sample();
        let view = t.view();
        for (i, rec) in t.iter().enumerate() {
            let s = view.slot(i);
            assert_eq!(s.seq(), rec.seq);
            assert_eq!(s.pc(), rec.pc);
            assert_eq!(s.next_pc(), rec.next_pc);
            assert_eq!(s.result(), rec.result);
            assert_eq!(s.mem_addr(), rec.mem_addr);
            assert_eq!(s.taken(), rec.taken);
            assert_eq!(s.is_control(), rec.is_control());
            assert_eq!(s.is_cond_branch(), rec.is_cond_branch());
            assert_eq!(s.is_mem(), rec.instr.is_mem());
            assert_eq!(s.produces_value(), rec.produces_value());
            assert_eq!(s.dst(), rec.dst());
            assert_eq!(s.srcs(), rec.srcs());
            assert_eq!(*s.instr(), rec.instr);
            assert_eq!(s.to_record(), rec);
        }
    }

    #[test]
    fn from_records_round_trips() {
        let t = sample();
        let records: Vec<DynInstr> = t.iter().collect();
        let cols = TraceColumns::from_records(&records);
        assert_eq!(cols.len(), records.len());
        for (i, rec) in records.iter().enumerate() {
            assert_eq!(cols.to_record(i), *rec);
        }
    }

    #[test]
    fn interning_is_bounded_by_static_footprint() {
        let t = sample();
        let footprint = t.stats().static_footprint as usize;
        assert!(t.columns().distinct_instrs() <= footprint);
        assert!(t.columns().distinct_instrs() > 0);
    }

    #[test]
    fn slice_preserves_records_and_resequences() {
        let t = sample();
        let cols = t.columns().slice(3..8);
        assert_eq!(cols.len(), 5);
        for i in 0..5 {
            let expected = DynInstr { seq: i as u64, ..t.get(3 + i) };
            assert_eq!(cols.to_record(i), expected);
        }
    }

    #[test]
    fn sliced_store_equals_freshly_built_store() {
        let t = sample();
        let sliced = t.columns().slice(2..10);
        let records: Vec<DynInstr> = (2..10).map(|i| t.get(i)).collect();
        let rebuilt = TraceColumns::from_records(&records);
        // The slice carries the full parent instruction table; the rebuilt
        // store interns only what it saw. Equality must be logical.
        assert_eq!(sliced, rebuilt);
    }

    #[test]
    fn view_iterators_cover_the_trace() {
        let t = sample();
        let view = t.view();
        assert_eq!(view.slots().count(), t.len());
        assert_eq!(view.slots_in(4..9).count(), 5);
        assert_eq!(view.slots_in(4..9).next().unwrap().seq(), 4);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_slot_panics() {
        let t = sample();
        t.view().slot(t.len());
    }

    #[test]
    fn rebased_buffer_reports_global_indices() {
        let t = sample();
        let full = t.view();
        let mut buf = TraceColumns::new();
        buf.set_base(3);
        for i in 3..8 {
            let s = full.slot(i);
            let p = buf.prepare(*s.instr());
            buf.push_prepared(p, s.pc(), s.next_pc(), s.result(), s.mem_addr(), s.taken());
        }
        assert_eq!(buf.base(), 3);
        assert_eq!(buf.len(), 8);
        let v = buf.view();
        for i in 3..8 {
            assert_eq!(v.slot(i).seq(), i as u64);
            assert_eq!(v.slot(i).to_record(), t.get(i));
        }
        assert_eq!(v.slots_in(4..6).len(), 2);
        assert_eq!(v.slots_in(4..6).next().unwrap().seq(), 4);
        // Refill for the next window without re-interning.
        let table_len = buf.distinct_instrs();
        buf.clear_rows();
        buf.set_base(8);
        // `len` counts the logical prefix, so a rebased buffer with no
        // rows is not "empty" — it still covers 0..8.
        assert!(!buf.is_empty());
        assert_eq!(buf.len(), 8);
        assert_eq!(buf.distinct_instrs(), table_len);
    }

    #[test]
    #[should_panic(expected = "before base")]
    fn slot_below_base_panics() {
        let mut buf = TraceColumns::new();
        buf.set_base(4);
        let p = buf.prepare(Instr::Nop);
        buf.push_prepared(p, 0, 1, 0, None, false);
        buf.view().slots_in(3..5).count();
    }
}
