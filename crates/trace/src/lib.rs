//! Functional execution and dynamic instruction traces.
//!
//! This crate turns a [`fetchvp_isa::Program`] into the *dynamic instruction
//! stream* that every analysis and machine model in the workspace consumes.
//! It plays the role that the Sun *Shade* tracer plays in the paper's
//! trace-driven methodology (§3): a purely functional,
//! implementation-independent executor that records, for each retired
//! instruction, its PC, its operands, the value it produced and its
//! control-flow outcome. The captured stream is stored columnar
//! ([`TraceColumns`]) so the §3 ideal machine, the §5 realistic machines and
//! the §3.3 DID analysis can iterate it zero-copy through [`TraceView`] /
//! [`Slot`] accessors.
//!
//! The main entry points are:
//!
//! * [`Executor`] — a stepping functional simulator (architectural registers
//!   plus a sparse word-addressed memory).
//! * [`Trace`] / [`trace_program`] — capture the dynamic stream into memory
//!   for repeated consumption by different machine configurations.
//! * [`TraceStats`] — instruction-mix and control-flow statistics used when
//!   validating that the synthetic workloads resemble their SPECint95
//!   counterparts.
//! * [`BasicBlocks`] — static basic-block discovery used by the trace cache.
//! * [`write_trace`] / [`read_trace`] — the Shade-style trace-file workflow:
//!   capture once, simulate many times.
//!
//! # Example
//!
//! ```
//! use fetchvp_isa::{AluOp, Cond, ProgramBuilder, Reg};
//! use fetchvp_trace::trace_program;
//!
//! # fn main() -> Result<(), fetchvp_isa::ProgramError> {
//! let mut b = ProgramBuilder::new("sum");
//! b.load_imm(Reg::R1, 0);
//! b.load_imm(Reg::R2, 3);
//! let head = b.bind_label("head");
//! b.alu_imm(AluOp::Sub, Reg::R2, Reg::R2, 1);
//! b.alu(AluOp::Add, Reg::R1, Reg::R1, Reg::R2);
//! b.branch(Cond::Ne, Reg::R2, Reg::R0, head);
//! b.halt();
//! let trace = trace_program(&b.build()?, 1_000);
//! assert_eq!(trace.len(), 2 + 3 * 3); // prologue + three iterations
//! # Ok(())
//! # }
//! ```

// Public API of the hot path: every item must explain itself.
#![deny(missing_docs)]

pub mod bb;
pub mod columns;
pub mod exec;
pub mod io;
pub mod memory;
pub mod record;
pub mod stats;

pub use bb::{BasicBlocks, BlockId};
pub use columns::{PreparedInstr, Slot, TraceColumns, TraceView, NO_REG};
pub use exec::{ExecOutcome, Executor};
pub use io::{read_trace, read_trace_sized, write_trace};
pub use memory::SparseMemory;
pub use record::DynInstr;
pub use stats::{StatsAccum, TraceStats};

use fetchvp_isa::Program;

/// A captured dynamic instruction stream.
///
/// A `Trace` stores the retired instructions of one program execution in
/// columnar ([`TraceColumns`]) form. The instruction at index `i` has
/// sequence number `i`. Hot paths iterate zero-copy through
/// [`Trace::view`]/[`Slot`]; cold paths can materialize [`DynInstr`]
/// records with [`Trace::get`] or [`Trace::iter`].
///
/// # Example
///
/// ```
/// use fetchvp_isa::{ProgramBuilder, Reg};
/// use fetchvp_trace::trace_program;
///
/// # fn main() -> Result<(), fetchvp_isa::ProgramError> {
/// let mut b = ProgramBuilder::new("p");
/// b.load_imm(Reg::R1, 7);
/// b.halt();
/// let trace = trace_program(&b.build()?, 10);
/// assert_eq!(trace.name(), "p");
/// assert_eq!(trace.view().slot(0).result(), 7); // zero-copy
/// assert_eq!(trace.get(0).result, 7); // materialized
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    name: String,
    columns: TraceColumns,
    outcome: ExecOutcome,
}

impl Trace {
    /// Builds a trace from records. Records must be in retirement order;
    /// the record at index `i` must have `seq == i`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if record sequence numbers are not dense.
    pub fn from_records(
        name: impl Into<String>,
        records: Vec<DynInstr>,
        outcome: ExecOutcome,
    ) -> Trace {
        debug_assert!(records.iter().enumerate().all(|(i, r)| r.seq == i as u64));
        Trace { name: name.into(), columns: TraceColumns::from_records(&records), outcome }
    }

    /// Builds a trace directly from a column store.
    pub fn from_columns(
        name: impl Into<String>,
        columns: TraceColumns,
        outcome: ExecOutcome,
    ) -> Trace {
        Trace { name: name.into(), columns, outcome }
    }

    /// The traced program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the trace contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The underlying column store.
    pub fn columns(&self) -> &TraceColumns {
        &self.columns
    }

    /// A zero-copy view over the trace — the machine models' iteration
    /// surface.
    #[inline]
    pub fn view(&self) -> TraceView<'_> {
        self.columns.view()
    }

    /// The zero-copy accessor for instruction `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[inline]
    pub fn slot(&self, index: usize) -> Slot<'_> {
        self.columns.slot(index)
    }

    /// Materializes the record at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn get(&self, index: usize) -> DynInstr {
        self.columns.to_record(index)
    }

    /// How execution ended.
    pub fn outcome(&self) -> ExecOutcome {
        self.outcome
    }

    /// Iterates over the trace, materializing each record by value.
    ///
    /// Cold-path convenience; hot paths should iterate
    /// [`Trace::view`] slots instead.
    pub fn iter(&self) -> TraceRecords<'_> {
        TraceRecords { view: self.view(), range: 0..self.len() }
    }

    /// Computes summary statistics over the trace.
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_view(self.view())
    }

    /// Splits the trace at `index` into a prefix and a re-sequenced suffix
    /// — the train/evaluate workflow of profiling studies.
    ///
    /// Dynamic instruction distances within each half are preserved (both
    /// halves are re-numbered densely from zero).
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds the trace length.
    pub fn split_at(&self, index: usize) -> (Trace, Trace) {
        assert!(index <= self.len(), "split index {index} beyond {} records", self.len());
        (
            Trace::from_columns(
                self.name.clone(),
                self.columns.slice(0..index),
                ExecOutcome::LimitReached,
            ),
            Trace::from_columns(
                self.name.clone(),
                self.columns.slice(index..self.len()),
                self.outcome,
            ),
        )
    }
}

/// A materializing iterator over a trace's records (see [`Trace::iter`]).
#[derive(Debug, Clone)]
pub struct TraceRecords<'a> {
    view: TraceView<'a>,
    range: std::ops::Range<usize>,
}

impl Iterator for TraceRecords<'_> {
    type Item = DynInstr;

    fn next(&mut self) -> Option<DynInstr> {
        self.range.next().map(|i| self.view.get(i))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl ExactSizeIterator for TraceRecords<'_> {}

impl DoubleEndedIterator for TraceRecords<'_> {
    fn next_back(&mut self) -> Option<DynInstr> {
        self.range.next_back().map(|i| self.view.get(i))
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = DynInstr;
    type IntoIter = TraceRecords<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Executes `program` for at most `max_instrs` dynamic instructions and
/// captures the resulting trace.
///
/// Records stream straight into columnar storage; no intermediate record
/// vector is built. This is the convenience path used by experiments; use
/// [`Executor`] directly for streaming consumption.
///
/// # Example
///
/// See the [crate-level example](crate).
pub fn trace_program(program: &Program, max_instrs: u64) -> Trace {
    let mut exec = Executor::new(program);
    let mut columns = TraceColumns::new();
    // Static facts (flags, register bytes, intern index) depend only on the
    // PC; prepare each static instruction on first retirement and reuse the
    // result for every later dynamic instance.
    let mut prepared: Vec<Option<columns::PreparedInstr>> = vec![None; program.len()];
    while (columns.len() as u64) < max_instrs {
        match exec.step() {
            Some(rec) => {
                let slot = &mut prepared[rec.pc as usize];
                let p = match *slot {
                    Some(p) => p,
                    None => *slot.insert(columns.prepare(rec.instr)),
                };
                columns.push_prepared(p, rec.pc, rec.next_pc, rec.result, rec.mem_addr, rec.taken);
            }
            None => break,
        }
    }
    let outcome = if exec.halted() { ExecOutcome::Halted } else { ExecOutcome::LimitReached };
    Trace::from_columns(program.name(), columns, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_isa::{ProgramBuilder, Reg};

    fn tiny() -> Program {
        let mut b = ProgramBuilder::new("tiny");
        b.load_imm(Reg::R1, 1);
        b.load_imm(Reg::R2, 2);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn trace_program_reaches_halt() {
        let t = trace_program(&tiny(), 100);
        assert_eq!(t.len(), 2);
        assert_eq!(t.outcome(), ExecOutcome::Halted);
    }

    #[test]
    fn trace_program_respects_limit() {
        let t = trace_program(&tiny(), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.outcome(), ExecOutcome::LimitReached);
    }

    #[test]
    fn records_have_dense_sequence_numbers() {
        let t = trace_program(&tiny(), 100);
        for (i, r) in t.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
    }

    #[test]
    fn into_iterator_yields_all_records() {
        let t = trace_program(&tiny(), 100);
        assert_eq!((&t).into_iter().count(), t.len());
    }

    #[test]
    fn split_at_re_sequences_the_suffix() {
        let t = trace_program(&tiny(), 100);
        let (a, b) = t.split_at(1);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(b.get(0).seq, 0);
        assert_eq!(b.get(0).pc, t.get(1).pc);
        assert_eq!(b.outcome(), t.outcome());
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn split_past_the_end_panics() {
        trace_program(&tiny(), 100).split_at(99);
    }
}
