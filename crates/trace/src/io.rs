//! Binary serialization of captured traces.
//!
//! The paper's methodology separates *tracing* (Shade, run once, 100M
//! instructions per benchmark) from *simulation* (many machine
//! configurations over the same trace). This module provides the same
//! workflow: capture a [`Trace`] once, [`write_trace`] it to a file, and
//! [`read_trace`] it back for each experiment — useful when the workload
//! generation is slower than the simulators, or for archiving the exact
//! stream behind a published result.
//!
//! # Format
//!
//! Little-endian, versioned:
//!
//! ```text
//! magic "FVPT"   4 bytes
//! version        u32
//! name length    u32, then UTF-8 bytes
//! outcome        u8 (0 = halted, 1 = limit reached)
//! record count   u64
//! records        count x { pc: u64, instr: tagged encoding,
//!                          result: u64, mem_addr: u64 (MAX = none),
//!                          taken: u8, next_pc: u64 }
//! ```
//!
//! Sequence numbers are implicit (records are dense in retirement order).

use std::io::{self, Read, Write};

use fetchvp_isa::{AluOp, Cond, Instr, Reg};

use crate::exec::ExecOutcome;
use crate::record::DynInstr;
use crate::Trace;

const MAGIC: &[u8; 4] = b"FVPT";
const VERSION: u32 = 1;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn alu_op_tag(op: AluOp) -> u8 {
    AluOp::ALL.iter().position(|&o| o == op).expect("op in ALL") as u8
}

fn alu_op_from(tag: u8) -> io::Result<AluOp> {
    AluOp::ALL.get(tag as usize).copied().ok_or_else(|| bad(format!("bad ALU op tag {tag}")))
}

fn cond_tag(cond: Cond) -> u8 {
    Cond::ALL.iter().position(|&c| c == cond).expect("cond in ALL") as u8
}

fn cond_from(tag: u8) -> io::Result<Cond> {
    Cond::ALL.get(tag as usize).copied().ok_or_else(|| bad(format!("bad condition tag {tag}")))
}

fn reg_from(idx: u8) -> io::Result<Reg> {
    Reg::new(idx).ok_or_else(|| bad(format!("bad register index {idx}")))
}

/// Writes one static instruction in the tagged wire encoding shared by the
/// legacy record format and the chunked tracestore format (a one-byte
/// variant tag followed by the variant's fields).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_instr<W: Write>(w: &mut W, instr: &Instr) -> io::Result<()> {
    match *instr {
        Instr::Alu { op, dst, a, b } => {
            w.write_all(&[0, alu_op_tag(op), dst.index() as u8, a.index() as u8, b.index() as u8])
        }
        Instr::AluImm { op, dst, a, imm } => {
            w.write_all(&[1, alu_op_tag(op), dst.index() as u8, a.index() as u8])?;
            write_u64(w, imm as u64)
        }
        Instr::LoadImm { dst, imm } => {
            w.write_all(&[2, dst.index() as u8])?;
            write_u64(w, imm as u64)
        }
        Instr::Load { dst, base, offset } => {
            w.write_all(&[3, dst.index() as u8, base.index() as u8])?;
            write_u64(w, offset as u64)
        }
        Instr::Store { src, base, offset } => {
            w.write_all(&[4, src.index() as u8, base.index() as u8])?;
            write_u64(w, offset as u64)
        }
        Instr::Branch { cond, a, b, target } => {
            w.write_all(&[5, cond_tag(cond), a.index() as u8, b.index() as u8])?;
            write_u64(w, target)
        }
        Instr::Jump { target } => {
            w.write_all(&[6])?;
            write_u64(w, target)
        }
        Instr::JumpInd { base } => w.write_all(&[7, base.index() as u8]),
        Instr::Call { target, link } => {
            w.write_all(&[8, link.index() as u8])?;
            write_u64(w, target)
        }
        Instr::Halt => w.write_all(&[9]),
        Instr::Nop => w.write_all(&[10]),
    }
}

/// Reads one static instruction written by [`write_instr`].
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] on an unknown tag, operation,
/// condition, or register index, and propagates reader errors.
pub fn read_instr<R: Read>(r: &mut R) -> io::Result<Instr> {
    Ok(match read_u8(r)? {
        0 => {
            let op = alu_op_from(read_u8(r)?)?;
            let dst = reg_from(read_u8(r)?)?;
            let a = reg_from(read_u8(r)?)?;
            let b = reg_from(read_u8(r)?)?;
            Instr::Alu { op, dst, a, b }
        }
        1 => {
            let op = alu_op_from(read_u8(r)?)?;
            let dst = reg_from(read_u8(r)?)?;
            let a = reg_from(read_u8(r)?)?;
            Instr::AluImm { op, dst, a, imm: read_u64(r)? as i64 }
        }
        2 => {
            let dst = reg_from(read_u8(r)?)?;
            Instr::LoadImm { dst, imm: read_u64(r)? as i64 }
        }
        3 => {
            let dst = reg_from(read_u8(r)?)?;
            let base = reg_from(read_u8(r)?)?;
            Instr::Load { dst, base, offset: read_u64(r)? as i64 }
        }
        4 => {
            let src = reg_from(read_u8(r)?)?;
            let base = reg_from(read_u8(r)?)?;
            Instr::Store { src, base, offset: read_u64(r)? as i64 }
        }
        5 => {
            let cond = cond_from(read_u8(r)?)?;
            let a = reg_from(read_u8(r)?)?;
            let b = reg_from(read_u8(r)?)?;
            Instr::Branch { cond, a, b, target: read_u64(r)? }
        }
        6 => Instr::Jump { target: read_u64(r)? },
        7 => Instr::JumpInd { base: reg_from(read_u8(r)?)? },
        8 => {
            let link = reg_from(read_u8(r)?)?;
            Instr::Call { target: read_u64(r)?, link }
        }
        9 => Instr::Halt,
        10 => Instr::Nop,
        t => return Err(bad(format!("bad instruction tag {t}"))),
    })
}

/// Writes a trace in the binary format described in the
/// [module docs](self).
///
/// A `&mut` reference also works as the writer (`W: Write` is taken by
/// value per the standard-library convention).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION)?;
    write_u32(&mut w, trace.name().len() as u32)?;
    w.write_all(trace.name().as_bytes())?;
    w.write_all(&[match trace.outcome() {
        ExecOutcome::Halted => 0,
        ExecOutcome::LimitReached => 1,
    }])?;
    write_u64(&mut w, trace.len() as u64)?;
    for rec in trace {
        write_u64(&mut w, rec.pc)?;
        write_instr(&mut w, &rec.instr)?;
        write_u64(&mut w, rec.result)?;
        write_u64(&mut w, rec.mem_addr.unwrap_or(u64::MAX))?;
        w.write_all(&[rec.taken as u8])?;
        write_u64(&mut w, rec.next_pc)?;
    }
    Ok(())
}

/// The smallest possible encoded record (a `Halt`/`Nop`: pc + one-byte
/// instruction + result + mem-addr + taken + next-pc). Used to reject
/// record counts that cannot fit in a file of known size.
const MIN_RECORD_BYTES: u64 = 8 + 1 + 8 + 8 + 1 + 8;

/// Reads a trace previously written by [`write_trace`].
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] on a bad magic number, version,
/// or malformed record, and propagates reader errors.
///
/// # Hostile input
///
/// Length prefixes are never trusted for up-front allocation: a corrupt
/// record count makes the read fail with a truncation error once the
/// stream runs dry, not abort on an out-of-memory allocation. When the
/// total input size is known, prefer [`read_trace_sized`], which rejects
/// impossible counts before decoding a single record.
pub fn read_trace<R: Read>(r: R) -> io::Result<Trace> {
    read_trace_impl(r, None)
}

/// Reads a trace from an input whose total size in bytes is known (e.g. a
/// file), rejecting headers whose record count could not possibly fit in
/// `size_bytes` with a clear error instead of decoding to exhaustion.
///
/// # Errors
///
/// As [`read_trace`], plus `InvalidData` for an impossible record count.
pub fn read_trace_sized<R: Read>(r: R, size_bytes: u64) -> io::Result<Trace> {
    read_trace_impl(r, Some(size_bytes))
}

fn read_trace_impl<R: Read>(mut r: R, size_bytes: Option<u64>) -> io::Result<Trace> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a fetchvp trace (bad magic)"));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(bad(format!("unsupported trace version {version}")));
    }
    let name_len = read_u32(&mut r)? as usize;
    if name_len > 1 << 20 {
        return Err(bad(format!("implausible name length {name_len} (cap {})", 1 << 20)));
    }
    let mut name = vec![0u8; name_len];
    r.read_exact(&mut name)?;
    let name = String::from_utf8(name).map_err(|_| bad("trace name is not UTF-8"))?;
    let outcome = match read_u8(&mut r)? {
        0 => ExecOutcome::Halted,
        1 => ExecOutcome::LimitReached,
        t => return Err(bad(format!("bad outcome tag {t}"))),
    };
    let count = read_u64(&mut r)?;
    if let Some(size) = size_bytes {
        if count > size / MIN_RECORD_BYTES {
            return Err(bad(format!(
                "impossible record count {count} for a {size}-byte file \
                 (records are at least {MIN_RECORD_BYTES} bytes each)"
            )));
        }
    }
    // Cap the up-front allocation: `count` is attacker-controlled when the
    // size is unknown, and even the plausible-count path should not reserve
    // gigabytes before a single record has decoded.
    let mut records = Vec::with_capacity(count.min(1 << 16) as usize);
    for seq in 0..count {
        let pc = read_u64(&mut r)?;
        let instr = read_instr(&mut r)?;
        let result = read_u64(&mut r)?;
        let mem_addr = match read_u64(&mut r)? {
            u64::MAX => None,
            a => Some(a),
        };
        let taken = match read_u8(&mut r)? {
            0 => false,
            1 => true,
            t => return Err(bad(format!("bad taken flag {t}"))),
        };
        let next_pc = read_u64(&mut r)?;
        records.push(DynInstr { seq, pc, instr, result, mem_addr, taken, next_pc });
    }
    Ok(Trace::from_records(name, records, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_program;
    use fetchvp_isa::ProgramBuilder;

    fn sample_trace() -> Trace {
        let mut b = ProgramBuilder::new("sample");
        b.data_word(0x100, 7);
        b.load_imm(Reg::R1, 0x100);
        b.load(Reg::R2, Reg::R1, 0);
        b.alu(AluOp::Add, Reg::R3, Reg::R2, Reg::R2);
        b.alu_imm(AluOp::Xor, Reg::R4, Reg::R3, -5);
        b.store(Reg::R4, Reg::R1, 8);
        let f = b.label("f");
        b.call(f, Reg::R31);
        b.halt();
        b.bind(f);
        let back = b.label("back");
        b.branch(Cond::Ne, Reg::R1, Reg::R0, back);
        b.nop();
        b.bind(back);
        b.jump_ind(Reg::R31);
        trace_program(&b.build().unwrap(), 1000)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let original = sample_trace();
        let mut buf = Vec::new();
        write_trace(&original, &mut buf).unwrap();
        let loaded = read_trace(buf.as_slice()).unwrap();
        assert_eq!(original, loaded);
    }

    #[test]
    fn round_trip_preserves_limit_outcome() {
        let mut b = ProgramBuilder::new("endless");
        let head = b.bind_label("head");
        b.nop();
        b.jump(head);
        let t = trace_program(&b.build().unwrap(), 50);
        assert_eq!(t.outcome(), ExecOutcome::LimitReached);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        assert_eq!(read_trace(buf.as_slice()).unwrap().outcome(), ExecOutcome::LimitReached);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_trace(&b"NOPE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut buf = Vec::new();
        write_trace(&sample_trace(), &mut buf).unwrap();
        buf[4] = 99;
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let mut buf = Vec::new();
        write_trace(&sample_trace(), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn corrupt_instruction_tag_is_rejected() {
        let mut buf = Vec::new();
        let t = sample_trace();
        write_trace(&t, &mut buf).unwrap();
        // The first record's instruction tag sits after the fixed header
        // plus pc; smash it.
        let header = 4 + 4 + 4 + t.name().len() + 1 + 8;
        buf[header + 8] = 200;
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn impossible_record_count_is_rejected_by_sized_reader() {
        let mut buf = Vec::new();
        let t = sample_trace();
        write_trace(&t, &mut buf).unwrap();
        // Smash the record count (little-endian u64 right after the
        // outcome byte) to u64::MAX.
        let count_at = 4 + 4 + 4 + t.name().len() + 1;
        buf[count_at..count_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = read_trace_sized(buf.as_slice(), buf.len() as u64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("impossible record count"), "{err}");
    }

    #[test]
    fn huge_count_without_size_fails_on_truncation_not_oom() {
        let mut buf = Vec::new();
        let t = sample_trace();
        write_trace(&t, &mut buf).unwrap();
        let count_at = 4 + 4 + 4 + t.name().len() + 1;
        buf[count_at..count_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        // The unsized reader cannot pre-validate the count, but it must
        // not reserve for it either: it decodes what is there and fails
        // at end-of-stream.
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn every_truncation_point_is_rejected() {
        let mut b = ProgramBuilder::new("tiny");
        let head = b.bind_label("head");
        b.nop();
        b.jump(head);
        let t = trace_program(&b.build().unwrap(), 40);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        for len in 0..buf.len() {
            let err = read_trace_sized(&buf[..len], len as u64);
            assert!(err.is_err(), "prefix of {len} bytes decoded successfully");
        }
    }

    #[test]
    fn bit_flips_never_panic() {
        let mut b = ProgramBuilder::new("tiny");
        b.data_word(0x100, 7);
        let head = b.bind_label("head");
        b.load(Reg::R2, Reg::R1, 0x100);
        b.alu(AluOp::Add, Reg::R3, Reg::R2, Reg::R2);
        b.store(Reg::R3, Reg::R1, 0x108);
        b.jump(head);
        let t = trace_program(&b.build().unwrap(), 40);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        for pos in 0..buf.len() {
            for bit in 0..8 {
                let mut flipped = buf.clone();
                flipped[pos] ^= 1 << bit;
                // A flipped bit may still decode to a (different) valid
                // trace; the guarantee is a clean Ok/Err, never a panic
                // or runaway allocation.
                let _ = read_trace_sized(flipped.as_slice(), flipped.len() as u64);
            }
        }
    }

    #[test]
    fn every_instruction_variant_round_trips() {
        use Instr::*;
        let variants = [
            Alu { op: AluOp::Mul, dst: Reg::R1, a: Reg::R2, b: Reg::R3 },
            AluImm { op: AluOp::Shr, dst: Reg::R4, a: Reg::R5, imm: -77 },
            LoadImm { dst: Reg::R6, imm: i64::MIN },
            Load { dst: Reg::R7, base: Reg::R8, offset: 1 << 40 },
            Store { src: Reg::R9, base: Reg::R10, offset: -8 },
            Branch { cond: Cond::Geu, a: Reg::R11, b: Reg::R12, target: 99 },
            Jump { target: u64::MAX },
            JumpInd { base: Reg::R31 },
            Call { target: 3, link: Reg::R30 },
            Halt,
            Nop,
        ];
        for instr in variants {
            let mut buf = Vec::new();
            write_instr(&mut buf, &instr).unwrap();
            assert_eq!(read_instr(&mut buf.as_slice()).unwrap(), instr, "{instr}");
        }
    }
}
