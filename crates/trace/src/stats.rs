//! Trace summary statistics.

use std::fmt;

use fetchvp_metrics::{FxHashSet, MetricsSink, Registry};

use crate::columns::TraceView;
use crate::record::DynInstr;

/// Instruction-mix and control-flow statistics for a dynamic trace.
///
/// These are the trace-level quantities the paper's results actually depend
/// on (taken-branch density bounds the effective fetch rate; the
/// value-producing fraction bounds how many instructions a value predictor
/// can serve), and they are used by the workload tests to check that each
/// synthetic benchmark behaves like its SPECint95 counterpart.
///
/// # Example
///
/// ```
/// use fetchvp_isa::{ProgramBuilder, Reg};
/// use fetchvp_trace::trace_program;
///
/// # fn main() -> Result<(), fetchvp_isa::ProgramError> {
/// let mut b = ProgramBuilder::new("p");
/// b.load_imm(Reg::R1, 1);
/// b.halt();
/// let stats = trace_program(&b.build()?, 10).stats();
/// assert_eq!(stats.total, 1);
/// assert_eq!(stats.value_producing, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total dynamic instructions.
    pub total: u64,
    /// Loads retired.
    pub loads: u64,
    /// Stores retired.
    pub stores: u64,
    /// Control-flow instructions retired (branches, jumps, calls).
    pub control: u64,
    /// Conditional branches retired.
    pub cond_branches: u64,
    /// Conditional branches that were taken.
    pub taken_cond_branches: u64,
    /// Control instructions that redirected the PC (taken branches, jumps,
    /// calls, indirect jumps).
    pub taken_control: u64,
    /// Instructions that wrote a (non-zero) destination register.
    pub value_producing: u64,
    /// Distinct static PCs touched.
    pub static_footprint: u64,
}

impl TraceStats {
    /// Computes statistics over a columnar trace view (zero-copy).
    pub fn from_view(view: TraceView<'_>) -> TraceStats {
        let mut accum = StatsAccum::new();
        accum.push_view(view);
        accum.finish()
    }

    /// Computes statistics over a record slice (cold-path convenience;
    /// prefer [`TraceStats::from_view`]).
    pub fn from_records(records: &[DynInstr]) -> TraceStats {
        TraceStats::from_view(crate::columns::TraceColumns::from_records(records).view())
    }

    /// Fraction of instructions that redirect control flow when executed.
    pub fn taken_control_rate(&self) -> f64 {
        ratio(self.taken_control, self.total)
    }

    /// Average number of instructions between consecutive taken control
    /// transfers — the mean *dynamic* basic-block length, which bounds the
    /// contiguous-fetch rate of a conventional front-end.
    pub fn avg_run_length(&self) -> f64 {
        if self.taken_control == 0 {
            self.total as f64
        } else {
            self.total as f64 / self.taken_control as f64
        }
    }

    /// Fraction of conditional branches that were taken.
    pub fn taken_branch_rate(&self) -> f64 {
        ratio(self.taken_cond_branches, self.cond_branches)
    }

    /// Fraction of instructions that produce a register value.
    pub fn value_producing_rate(&self) -> f64 {
        ratio(self.value_producing, self.total)
    }
}

/// A streaming accumulator for [`TraceStats`], for traces visited one
/// window at a time (e.g. chunked replay from an on-disk store, where the
/// whole trace never materializes). Per-window counts are pure sums; the
/// distinct-PC set is carried across windows so `static_footprint` matches
/// a single whole-trace pass exactly. The set is bounded by the program's
/// static footprint, not the trace length, so the accumulator stays small.
///
/// [`TraceStats::from_view`] is the one-shot form of this.
#[derive(Debug, Default)]
pub struct StatsAccum {
    stats: TraceStats,
    pcs: FxHashSet<u64>,
}

impl StatsAccum {
    /// An empty accumulator.
    pub fn new() -> StatsAccum {
        StatsAccum::default()
    }

    /// Folds every slot of `view` into the running statistics.
    pub fn push_view(&mut self, view: TraceView<'_>) {
        let s = &mut self.stats;
        for r in view.slots() {
            s.total += 1;
            self.pcs.insert(r.pc());
            if r.is_mem() {
                if r.produces_value() {
                    s.loads += 1;
                } else {
                    s.stores += 1;
                }
            }
            if r.is_control() {
                s.control += 1;
                if r.taken() {
                    s.taken_control += 1;
                }
                if r.is_cond_branch() {
                    s.cond_branches += 1;
                    if r.taken() {
                        s.taken_cond_branches += 1;
                    }
                }
            }
            if r.produces_value() {
                s.value_producing += 1;
            }
        }
    }

    /// The accumulated statistics.
    pub fn finish(self) -> TraceStats {
        TraceStats { static_footprint: self.pcs.len() as u64, ..self.stats }
    }
}

impl MetricsSink for TraceStats {
    fn export_metrics(&self, reg: &mut Registry, prefix: &str) {
        reg.counter(prefix, "instructions", self.total);
        reg.counter(prefix, "loads", self.loads);
        reg.counter(prefix, "stores", self.stores);
        reg.counter(prefix, "control", self.control);
        reg.counter(prefix, "cond_branches", self.cond_branches);
        reg.counter(prefix, "taken_cond_branches", self.taken_cond_branches);
        reg.counter(prefix, "taken_control", self.taken_control);
        reg.counter(prefix, "value_producing", self.value_producing);
        reg.counter(prefix, "static_footprint", self.static_footprint);
        reg.gauge(prefix, "taken_control_rate", self.taken_control_rate());
        reg.gauge(prefix, "avg_run_length", self.avg_run_length());
        reg.gauge(prefix, "value_producing_rate", self.value_producing_rate());
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "instructions     : {}", self.total)?;
        writeln!(f, "loads / stores   : {} / {}", self.loads, self.stores)?;
        writeln!(
            f,
            "control (taken)  : {} ({:.1}%)",
            self.control,
            100.0 * self.taken_control_rate()
        )?;
        writeln!(f, "avg run length   : {:.2}", self.avg_run_length())?;
        writeln!(
            f,
            "value-producing  : {} ({:.1}%)",
            self.value_producing,
            100.0 * self.value_producing_rate()
        )?;
        write!(f, "static footprint : {}", self.static_footprint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_isa::{AluOp, Cond, ProgramBuilder, Reg};

    use crate::trace_program;

    #[test]
    fn loop_statistics() {
        let mut b = ProgramBuilder::new("loop");
        b.load_imm(Reg::R1, 4);
        let head = b.bind_label("head");
        b.alu_imm(AluOp::Sub, Reg::R1, Reg::R1, 1);
        b.branch(Cond::Ne, Reg::R1, Reg::R0, head);
        b.halt();
        let stats = trace_program(&b.build().unwrap(), 1000).stats();
        assert_eq!(stats.total, 1 + 4 * 2);
        assert_eq!(stats.cond_branches, 4);
        assert_eq!(stats.taken_cond_branches, 3);
        assert_eq!(stats.taken_control, 3);
        assert_eq!(stats.static_footprint, 3);
        assert!((stats.taken_branch_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn run_length_with_no_taken_control_is_trace_length() {
        let mut b = ProgramBuilder::new("straight");
        for _ in 0..10 {
            b.nop();
        }
        b.halt();
        let stats = trace_program(&b.build().unwrap(), 1000).stats();
        assert_eq!(stats.avg_run_length(), 10.0);
    }

    #[test]
    fn memory_ops_are_split_into_loads_and_stores() {
        let mut b = ProgramBuilder::new("mem");
        b.load_imm(Reg::R1, 0x100);
        b.store(Reg::R1, Reg::R1, 0);
        b.load(Reg::R2, Reg::R1, 0);
        b.halt();
        let stats = trace_program(&b.build().unwrap(), 1000).stats();
        assert_eq!(stats.loads, 1);
        assert_eq!(stats.stores, 1);
        // load_imm, load produce values; store does not.
        assert_eq!(stats.value_producing, 2);
    }

    #[test]
    fn windowed_accumulation_matches_single_pass() {
        let mut b = ProgramBuilder::new("loop");
        b.load_imm(Reg::R1, 0x200);
        let head = b.bind_label("head");
        b.store(Reg::R1, Reg::R1, 0);
        b.load(Reg::R2, Reg::R1, 0);
        b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 8);
        b.branch(Cond::Ne, Reg::R1, Reg::R0, head);
        b.halt();
        let t = trace_program(&b.build().unwrap(), 997);
        let whole = TraceStats::from_view(t.view());
        for window in [1, 7, 256, t.len()] {
            let mut accum = StatsAccum::new();
            let mut start = 0;
            while start < t.len() {
                let end = (start + window).min(t.len());
                let chunk = t.columns().slice(start..end);
                accum.push_view(chunk.view());
                start = end;
            }
            assert_eq!(accum.finish(), whole, "window {window}");
        }
    }

    #[test]
    fn display_is_nonempty() {
        let stats = TraceStats::default();
        assert!(!stats.to_string().is_empty());
    }

    #[test]
    fn ratios_guard_against_zero_denominator() {
        let stats = TraceStats::default();
        assert_eq!(stats.taken_branch_rate(), 0.0);
        assert_eq!(stats.value_producing_rate(), 0.0);
    }
}
