//! Static basic-block discovery.

use fetchvp_isa::Program;

/// Identifier of a static basic block, dense in `0..num_blocks`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

/// The static basic-block partition of a program.
///
/// A *leader* is the program entry, any static control-flow target, or any
/// instruction that follows a control-flow instruction. A basic block runs
/// from a leader up to (but not including) the next leader; because the
/// instruction after a control instruction is always a leader, every block
/// contains at most one control instruction, at its end.
///
/// The trace cache uses this partition to pack fetch lines by basic block,
/// as in Rotenberg et al.'s design (paper reference \[18\]).
///
/// # Example
///
/// ```
/// use fetchvp_isa::{Cond, ProgramBuilder, Reg};
/// use fetchvp_trace::BasicBlocks;
///
/// # fn main() -> Result<(), fetchvp_isa::ProgramError> {
/// let mut b = ProgramBuilder::new("p");
/// let head = b.bind_label("head");
/// b.nop();
/// b.branch(Cond::Eq, Reg::R0, Reg::R0, head);
/// b.halt();
/// let bbs = BasicBlocks::analyze(&b.build()?);
/// assert_eq!(bbs.num_blocks(), 2); // [nop, branch] and [halt]
/// assert_eq!(bbs.block_of(0), bbs.block_of(1));
/// assert_ne!(bbs.block_of(0), bbs.block_of(2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlocks {
    /// Sorted leader PCs; `leaders[i]` is the first PC of block `i`.
    leaders: Vec<u64>,
    /// Program length, bounding the last block.
    program_len: u64,
}

impl BasicBlocks {
    /// Partitions `program` into basic blocks.
    pub fn analyze(program: &Program) -> BasicBlocks {
        let len = program.len() as u64;
        let mut is_leader = vec![false; program.len()];
        if !is_leader.is_empty() {
            is_leader[0] = true;
        }
        for (pc, instr) in program.instrs().iter().enumerate() {
            if let Some(t) = instr.static_target() {
                if (t as usize) < is_leader.len() {
                    is_leader[t as usize] = true;
                }
            }
            if instr.is_control() && pc + 1 < is_leader.len() {
                is_leader[pc + 1] = true;
            }
        }
        let leaders =
            is_leader.iter().enumerate().filter(|(_, &l)| l).map(|(pc, _)| pc as u64).collect();
        BasicBlocks { leaders, program_len: len }
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.leaders.len()
    }

    /// The block containing `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is outside the program.
    pub fn block_of(&self, pc: u64) -> BlockId {
        assert!(pc < self.program_len, "pc {pc} outside program of length {}", self.program_len);
        let idx = match self.leaders.binary_search(&pc) {
            Ok(i) => i,
            Err(i) => i - 1, // leaders[0] == 0, so i >= 1 here
        };
        BlockId(idx as u32)
    }

    /// The first PC of `block`.
    pub fn start(&self, block: BlockId) -> u64 {
        self.leaders[block.0 as usize]
    }

    /// One past the last PC of `block`.
    pub fn end(&self, block: BlockId) -> u64 {
        self.leaders.get(block.0 as usize + 1).copied().unwrap_or(self.program_len)
    }

    /// Number of instructions in `block`.
    pub fn len_of(&self, block: BlockId) -> u64 {
        self.end(block) - self.start(block)
    }

    /// Whether `pc` starts a basic block.
    pub fn is_leader(&self, pc: u64) -> bool {
        self.leaders.binary_search(&pc).is_ok()
    }

    /// Iterates over all block ids.
    pub fn blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.leaders.len() as u32).map(BlockId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_isa::{Cond, ProgramBuilder, Reg};

    fn build(f: impl FnOnce(&mut ProgramBuilder)) -> Program {
        let mut b = ProgramBuilder::new("t");
        f(&mut b);
        b.build().unwrap()
    }

    #[test]
    fn straight_line_is_one_block() {
        let p = build(|b| {
            b.nop();
            b.nop();
            b.nop();
        });
        let bbs = BasicBlocks::analyze(&p);
        assert_eq!(bbs.num_blocks(), 1);
        assert_eq!(bbs.len_of(BlockId(0)), 3);
    }

    #[test]
    fn branch_ends_a_block_and_target_starts_one() {
        let p = build(|b| {
            b.nop(); // 0: block 0
            let l = b.label("l");
            b.branch(Cond::Eq, Reg::R0, Reg::R0, l); // 1: block 0 end
            b.nop(); // 2: block 1 (after control)
            b.bind(l);
            b.nop(); // 3: block 2 (target)
        });
        let bbs = BasicBlocks::analyze(&p);
        assert_eq!(bbs.num_blocks(), 3);
        assert!(bbs.is_leader(0) && bbs.is_leader(2) && bbs.is_leader(3));
        assert_eq!(bbs.block_of(1), BlockId(0));
        assert_eq!(bbs.end(BlockId(0)), 2);
    }

    #[test]
    fn every_block_has_at_most_one_control_at_its_end() {
        let p = build(|b| {
            let f = b.label("f");
            b.call(f, Reg::R31);
            b.nop();
            b.bind(f);
            b.nop();
            b.jump_ind(Reg::R31);
            b.halt();
        });
        let bbs = BasicBlocks::analyze(&p);
        for block in bbs.blocks() {
            let (start, end) = (bbs.start(block), bbs.end(block));
            let controls = (start..end).filter(|&pc| p.get(pc).unwrap().is_control()).count();
            assert!(controls <= 1);
            // If present, the control instruction is the last one.
            if controls == 1 {
                assert!(p.get(end - 1).unwrap().is_control());
            }
        }
    }

    #[test]
    fn blocks_tile_the_program() {
        let p = build(|b| {
            let l = b.label("l");
            b.nop();
            b.branch(Cond::Ne, Reg::R1, Reg::R0, l);
            b.nop();
            b.bind(l);
            b.halt();
        });
        let bbs = BasicBlocks::analyze(&p);
        let mut covered = 0;
        for block in bbs.blocks() {
            covered += bbs.len_of(block);
        }
        assert_eq!(covered, p.len() as u64);
        for pc in 0..p.len() as u64 {
            let b = bbs.block_of(pc);
            assert!(bbs.start(b) <= pc && pc < bbs.end(b));
        }
    }

    #[test]
    #[should_panic(expected = "outside program")]
    fn block_of_out_of_range_panics() {
        let p = build(|b| {
            b.nop();
        });
        BasicBlocks::analyze(&p).block_of(5);
    }
}
