//! Dynamic instruction records.

use fetchvp_isa::{Instr, Reg};

/// One retired dynamic instruction.
///
/// A `DynInstr` captures everything the microarchitectural models need to
/// replay the instruction without re-executing it: the static instruction,
/// the value it produced, the memory address it touched and its control-flow
/// outcome.
///
/// # Example
///
/// ```
/// use fetchvp_isa::{ProgramBuilder, Reg};
/// use fetchvp_trace::trace_program;
///
/// # fn main() -> Result<(), fetchvp_isa::ProgramError> {
/// let mut b = ProgramBuilder::new("p");
/// b.load_imm(Reg::R1, 9);
/// b.halt();
/// let trace = trace_program(&b.build()?, 10);
/// let rec = trace.get(0);
/// assert_eq!(rec.pc, 0);
/// assert_eq!(rec.dst(), Some(Reg::R1));
/// assert_eq!(rec.result, 9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DynInstr {
    /// Position in the dynamic stream (the paper's "appearance order").
    pub seq: u64,
    /// Program index of the instruction.
    pub pc: u64,
    /// The static instruction.
    pub instr: Instr,
    /// The value written to the destination register; `0` when there is no
    /// destination.
    pub result: u64,
    /// The effective address for loads/stores.
    pub mem_addr: Option<u64>,
    /// Whether control transferred away from `pc + 1`. Always `false` for
    /// non-control instructions and for untaken conditional branches.
    pub taken: bool,
    /// The PC of the next dynamic instruction.
    pub next_pc: u64,
}

impl DynInstr {
    /// The register written by this instruction, if any.
    pub fn dst(&self) -> Option<Reg> {
        self.instr.dst()
    }

    /// The registers read by this instruction.
    pub fn srcs(&self) -> [Option<Reg>; 2] {
        self.instr.srcs()
    }

    /// Whether this instruction is a control-flow instruction.
    pub fn is_control(&self) -> bool {
        self.instr.is_control()
    }

    /// Whether this instruction is a conditional branch.
    pub fn is_cond_branch(&self) -> bool {
        self.instr.is_cond_branch()
    }

    /// Whether this instruction produces a register value a value predictor
    /// would attempt to predict.
    pub fn produces_value(&self) -> bool {
        self.instr.produces_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_isa::{AluOp, Instr};

    fn rec(instr: Instr) -> DynInstr {
        DynInstr { seq: 0, pc: 0, instr, result: 0, mem_addr: None, taken: false, next_pc: 1 }
    }

    #[test]
    fn delegation_matches_instr() {
        let i = Instr::Alu { op: AluOp::Add, dst: Reg::R5, a: Reg::R1, b: Reg::R2 };
        let r = rec(i);
        assert_eq!(r.dst(), i.dst());
        assert_eq!(r.srcs(), i.srcs());
        assert_eq!(r.is_control(), i.is_control());
        assert!(r.produces_value());
    }

    #[test]
    fn record_is_compact() {
        // The trace is held in memory for multi-million-instruction runs;
        // keep the record within a cache line.
        assert!(std::mem::size_of::<DynInstr>() <= 88);
    }
}
