//! The stepping functional executor.

use fetchvp_isa::{Instr, Program, Reg};

use crate::memory::SparseMemory;
use crate::record::DynInstr;

/// How a (possibly bounded) execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecOutcome {
    /// The program executed a `halt` (or ran off the end of the program).
    Halted,
    /// The caller's instruction limit was reached first.
    LimitReached,
}

/// A functional (architecture-level) simulator for one program.
///
/// The executor maintains 32 architectural registers, a [`SparseMemory`]
/// seeded from the program's initial data image, and the PC. Each call to
/// [`step`](Executor::step) retires exactly one instruction and returns its
/// [`DynInstr`] record, or `None` once the program has halted.
///
/// # Example
///
/// ```
/// use fetchvp_isa::{AluOp, ProgramBuilder, Reg};
/// use fetchvp_trace::Executor;
///
/// # fn main() -> Result<(), fetchvp_isa::ProgramError> {
/// let mut b = ProgramBuilder::new("p");
/// b.load_imm(Reg::R1, 20);
/// b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 22);
/// b.halt();
/// let program = b.build()?;
/// let mut exec = Executor::new(&program);
/// exec.step();
/// let rec = exec.step().expect("second instruction");
/// assert_eq!(rec.result, 42);
/// assert!(exec.step().is_none()); // halt retires silently
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Executor<'p> {
    program: &'p Program,
    regs: [u64; fetchvp_isa::reg::NUM_REGS],
    mem: SparseMemory,
    pc: u64,
    seq: u64,
    halted: bool,
}

impl<'p> Executor<'p> {
    /// Creates an executor at the program entry (PC 0) with memory seeded
    /// from the program's data image.
    pub fn new(program: &'p Program) -> Executor<'p> {
        Executor {
            program,
            regs: [0; fetchvp_isa::reg::NUM_REGS],
            mem: program.data().iter().map(|(&a, &v)| (a, v)).collect(),
            pc: 0,
            seq: 0,
            halted: false,
        }
    }

    /// Whether the program has halted.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The current PC (the next instruction to execute).
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Reads an architectural register (the zero register reads as 0).
    pub fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// A view of the data memory.
    pub fn memory(&self) -> &SparseMemory {
        &self.mem
    }

    fn write_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// Retires one instruction, returning its dynamic record, or `None` if
    /// the program has halted (by `halt` or by running past the last
    /// instruction).
    pub fn step(&mut self) -> Option<DynInstr> {
        if self.halted {
            return None;
        }
        let instr = match self.program.get(self.pc) {
            Some(i) => *i,
            None => {
                self.halted = true;
                return None;
            }
        };
        if matches!(instr, Instr::Halt) {
            self.halted = true;
            return None;
        }

        let pc = self.pc;
        let mut result = 0u64;
        let mut mem_addr = None;
        let mut taken = false;
        let mut next_pc = pc + 1;

        match instr {
            Instr::Alu { op, dst, a, b } => {
                result = op.apply(self.reg(a), self.reg(b));
                self.write_reg(dst, result);
            }
            Instr::AluImm { op, dst, a, imm } => {
                result = op.apply(self.reg(a), imm as u64);
                self.write_reg(dst, result);
            }
            Instr::LoadImm { dst, imm } => {
                result = imm as u64;
                self.write_reg(dst, result);
            }
            Instr::Load { dst, base, offset } => {
                let addr = self.reg(base).wrapping_add(offset as u64);
                mem_addr = Some(addr);
                result = self.mem.read(addr);
                self.write_reg(dst, result);
            }
            Instr::Store { src, base, offset } => {
                let addr = self.reg(base).wrapping_add(offset as u64);
                mem_addr = Some(addr);
                self.mem.write(addr, self.reg(src));
            }
            Instr::Branch { cond, a, b, target } => {
                taken = cond.holds(self.reg(a), self.reg(b));
                if taken {
                    next_pc = target;
                }
            }
            Instr::Jump { target } => {
                taken = true;
                next_pc = target;
            }
            Instr::JumpInd { base } => {
                taken = true;
                next_pc = self.reg(base);
            }
            Instr::Call { target, link } => {
                taken = true;
                result = pc + 1;
                self.write_reg(link, result);
                next_pc = target;
            }
            Instr::Halt => unreachable!("handled above"),
            Instr::Nop => {}
        }

        self.pc = next_pc;
        let rec = DynInstr { seq: self.seq, pc, instr, result, mem_addr, taken, next_pc };
        self.seq += 1;
        Some(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_isa::{AluOp, Cond, ProgramBuilder};

    fn build(f: impl FnOnce(&mut ProgramBuilder)) -> Program {
        let mut b = ProgramBuilder::new("t");
        f(&mut b);
        b.build().unwrap()
    }

    fn run(program: &Program) -> Vec<DynInstr> {
        let mut exec = Executor::new(program);
        std::iter::from_fn(|| exec.step()).take(10_000).collect()
    }

    #[test]
    fn zero_register_reads_zero_and_ignores_writes() {
        let p = build(|b| {
            b.load_imm(Reg::R0, 99);
            b.alu(AluOp::Add, Reg::R1, Reg::R0, Reg::R0);
            b.halt();
        });
        let t = run(&p);
        assert_eq!(t[1].result, 0);
    }

    #[test]
    fn loads_and_stores_round_trip_through_memory() {
        let p = build(|b| {
            b.load_imm(Reg::R1, 0x40);
            b.load_imm(Reg::R2, 1234);
            b.store(Reg::R2, Reg::R1, 8);
            b.load(Reg::R3, Reg::R1, 8);
            b.halt();
        });
        let t = run(&p);
        assert_eq!(t[2].mem_addr, Some(0x48));
        assert_eq!(t[3].mem_addr, Some(0x48));
        assert_eq!(t[3].result, 1234);
    }

    #[test]
    fn initial_data_image_is_visible() {
        let p = build(|b| {
            b.data_word(0x10, 77);
            b.load_imm(Reg::R1, 0x10);
            b.load(Reg::R2, Reg::R1, 0);
            b.halt();
        });
        let t = run(&p);
        assert_eq!(t[1].result, 77);
    }

    #[test]
    fn taken_branch_redirects_and_reports_taken() {
        let p = build(|b| {
            let skip = b.label("skip");
            b.branch(Cond::Eq, Reg::R0, Reg::R0, skip);
            b.load_imm(Reg::R1, 1); // skipped
            b.bind(skip);
            b.load_imm(Reg::R2, 2);
            b.halt();
        });
        let t = run(&p);
        assert!(t[0].taken);
        assert_eq!(t[0].next_pc, 2);
        assert_eq!(t[1].pc, 2);
    }

    #[test]
    fn untaken_branch_falls_through() {
        let p = build(|b| {
            let skip = b.label("skip");
            b.branch(Cond::Ne, Reg::R0, Reg::R0, skip);
            b.bind(skip);
            b.halt();
        });
        let t = run(&p);
        assert!(!t[0].taken);
        assert_eq!(t[0].next_pc, 1);
    }

    #[test]
    fn call_links_and_indirect_jump_returns() {
        let p = build(|b| {
            let f = b.label("f");
            b.call(f, Reg::R31); // pc 0 -> link 1
            b.halt(); // pc 1
            b.bind(f);
            b.jump_ind(Reg::R31); // pc 2 -> returns to 1
        });
        let t = run(&p);
        assert_eq!(t[0].result, 1);
        assert_eq!(t[1].pc, 2);
        assert_eq!(t[1].next_pc, 1);
        assert_eq!(t.len(), 2); // halt at pc 1 retires silently
    }

    #[test]
    fn running_off_the_end_halts() {
        let p = build(|b| {
            b.nop();
        });
        let mut exec = Executor::new(&p);
        assert!(exec.step().is_some());
        assert!(exec.step().is_none());
        assert!(exec.halted());
    }

    #[test]
    fn loop_executes_expected_iteration_count() {
        let p = build(|b| {
            b.load_imm(Reg::R1, 5);
            let head = b.bind_label("head");
            b.alu_imm(AluOp::Sub, Reg::R1, Reg::R1, 1);
            b.branch(Cond::Ne, Reg::R1, Reg::R0, head);
            b.halt();
        });
        let t = run(&p);
        // 1 prologue + 5 iterations of (sub, branch)
        assert_eq!(t.len(), 1 + 5 * 2);
        let takens = t.iter().filter(|r| r.taken).count();
        assert_eq!(takens, 4); // last branch falls through
    }
}
