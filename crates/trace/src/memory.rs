//! Sparse data memory.

use fetchvp_metrics::FxHashMap;

/// A sparse, word-granular data memory.
///
/// Addresses are arbitrary `u64` keys; each holds one 64-bit word. Untouched
/// locations read as zero, which lets workloads use large address ranges
/// without an explicit allocation step.
///
/// # Example
///
/// ```
/// use fetchvp_trace::SparseMemory;
///
/// let mut mem = SparseMemory::new();
/// assert_eq!(mem.read(0x1000), 0);
/// mem.write(0x1000, 42);
/// assert_eq!(mem.read(0x1000), 42);
/// assert_eq!(mem.footprint(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseMemory {
    // Fx-hashed: addresses are simulator-generated, and the executor's
    // load/store path dominates trace-generation time.
    words: FxHashMap<u64, u64>,
}

impl SparseMemory {
    /// Creates an empty memory (all locations read as zero).
    pub fn new() -> SparseMemory {
        SparseMemory::default()
    }

    /// Reads the word at `addr`.
    pub fn read(&self, addr: u64) -> u64 {
        self.words.get(&addr).copied().unwrap_or(0)
    }

    /// Writes `value` to `addr`. Writing zero to an untouched location still
    /// materializes it.
    pub fn write(&mut self, addr: u64, value: u64) {
        self.words.insert(addr, value);
    }

    /// Number of materialized words.
    pub fn footprint(&self) -> usize {
        self.words.len()
    }
}

impl FromIterator<(u64, u64)> for SparseMemory {
    fn from_iter<I: IntoIterator<Item = (u64, u64)>>(iter: I) -> SparseMemory {
        SparseMemory { words: iter.into_iter().collect() }
    }
}

impl Extend<(u64, u64)> for SparseMemory {
    fn extend<I: IntoIterator<Item = (u64, u64)>>(&mut self, iter: I) {
        self.words.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_reads_zero() {
        let mem = SparseMemory::new();
        assert_eq!(mem.read(u64::MAX), 0);
        assert_eq!(mem.footprint(), 0);
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut mem = SparseMemory::new();
        mem.write(8, 0xdead_beef);
        mem.write(8, 0xcafe);
        assert_eq!(mem.read(8), 0xcafe);
        assert_eq!(mem.footprint(), 1);
    }

    #[test]
    fn from_iterator_seeds_memory() {
        let mem: SparseMemory = [(0, 1), (16, 2)].into_iter().collect();
        assert_eq!(mem.read(0), 1);
        assert_eq!(mem.read(16), 2);
    }

    #[test]
    fn extend_adds_words() {
        let mut mem = SparseMemory::new();
        mem.extend([(1, 10), (2, 20)]);
        assert_eq!(mem.read(2), 20);
        assert_eq!(mem.footprint(), 2);
    }
}
