//! See `benches/` for the benchmarks (one per paper figure, plus
//! component-level throughput measurements).
//!
//! The benchmarks use a small self-contained timing harness
//! ([`run_benchmark`]) instead of Criterion so the workspace builds with no
//! external dependencies (`cargo build --offline` on a fresh machine).

use std::time::Instant;

/// Number of timed iterations per benchmark (after one warm-up run).
pub const SAMPLES: u32 = 5;

/// Times `f` over [`SAMPLES`] iterations (after a warm-up call, whose
/// result is returned for shape assertions) and prints a one-line summary.
pub fn run_benchmark<R>(name: &str, mut f: impl FnMut() -> R) -> R {
    let warmup = f();
    let mut times = Vec::with_capacity(SAMPLES as usize);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        f();
        times.push(start.elapsed());
    }
    times.sort();
    let median = times[times.len() / 2];
    let (min, max) = (times[0], times[times.len() - 1]);
    println!("{name:<45} median {median:>12?}  (min {min:?}, max {max:?}, n={SAMPLES})");
    warmup
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_returns_the_warmup_result() {
        let mut calls = 0;
        let r = run_benchmark("noop", || {
            calls += 1;
            calls
        });
        assert_eq!(r, 1);
        assert_eq!(calls, 1 + SAMPLES);
    }
}
