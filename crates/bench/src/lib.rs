//! See `benches/` for the Criterion benchmarks (one per paper figure,
//! plus component-level throughput measurements).
