//! Component-level throughput benchmarks: the functional executor, the
//! predictors, the branch predictor, the fetch engines and both machine
//! models, measured in isolation on a fixed m88ksim trace.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use fetchvp_bpred::{BranchPredictor, PerfectBtb, TwoLevelBtb};
use fetchvp_core::{
    BtbKind, FrontEnd, IdealConfig, IdealMachine, RealisticConfig, RealisticMachine, VpConfig,
};
use fetchvp_dfg::DidAnalyzer;
use fetchvp_fetch::{ConventionalFetch, FetchEngine, TraceCacheConfig, TraceCacheFetch};
use fetchvp_predictor::{
    ConfidenceConfig, HybridPredictor, LastValuePredictor, StridePredictor, TableGeometry,
    ValuePredictor,
};
use fetchvp_trace::{trace_program, Executor, Trace};
use fetchvp_workloads::{by_name, WorkloadParams};

const N: u64 = 50_000;

fn m88ksim_trace() -> Trace {
    let w = by_name("m88ksim", &WorkloadParams::default()).expect("known benchmark");
    trace_program(w.program(), N)
}

fn bench_executor(c: &mut Criterion) {
    let w = by_name("m88ksim", &WorkloadParams::default()).expect("known benchmark");
    let mut g = c.benchmark_group("executor");
    g.throughput(Throughput::Elements(N));
    g.bench_function("functional_simulation", |b| {
        b.iter(|| {
            let mut exec = Executor::new(w.program());
            let mut n = 0u64;
            while n < N {
                exec.step().expect("workload never halts");
                n += 1;
            }
            n
        })
    });
    g.finish();
}

fn bench_predictors(c: &mut Criterion) {
    let trace = m88ksim_trace();
    let mut g = c.benchmark_group("value_predictors");
    g.throughput(Throughput::Elements(N));
    let drive = |p: &mut dyn ValuePredictor| {
        for rec in &trace {
            if rec.produces_value() {
                let predicted = p.lookup(rec.pc);
                p.commit(rec.pc, rec.result, predicted);
            }
        }
    };
    g.bench_function("last_value", |b| {
        b.iter_batched(
            || LastValuePredictor::new(TableGeometry::Infinite, ConfidenceConfig::paper()),
            |mut p| drive(&mut p),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("stride", |b| {
        b.iter_batched(
            || StridePredictor::new(TableGeometry::Infinite, ConfidenceConfig::paper()),
            |mut p| drive(&mut p),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("hybrid", |b| {
        b.iter_batched(HybridPredictor::paper, |mut p| drive(&mut p), BatchSize::LargeInput)
    });
    g.finish();
}

fn bench_bpred(c: &mut Criterion) {
    let trace = m88ksim_trace();
    let mut g = c.benchmark_group("branch_predictors");
    g.bench_function("two_level_pap", |b| {
        b.iter_batched(
            TwoLevelBtb::paper,
            |mut btb| {
                for rec in &trace {
                    if rec.is_control() {
                        btb.predict(rec);
                        btb.update(rec);
                    }
                }
                btb.stats().correct
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_fetch_engines(c: &mut Criterion) {
    let trace = m88ksim_trace();
    let mut g = c.benchmark_group("fetch_engines");
    g.throughput(Throughput::Elements(N));
    let walk = |engine: &mut dyn FetchEngine| {
        let mut pos = 0;
        while pos < trace.len() {
            pos += engine.fetch(trace.records(), pos, 40).len;
        }
        pos
    };
    g.bench_function("conventional_4taken", |b| {
        b.iter_batched(
            || ConventionalFetch::new(40, Some(4), PerfectBtb::new()),
            |mut e| walk(&mut e),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("trace_cache", |b| {
        b.iter_batched(
            || TraceCacheFetch::new(TraceCacheConfig::paper(), PerfectBtb::new()),
            |mut e| walk(&mut e),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_machines(c: &mut Criterion) {
    let trace = m88ksim_trace();
    let mut g = c.benchmark_group("machines");
    g.throughput(Throughput::Elements(N));
    g.bench_function("ideal_fetch16_stride_vp", |b| {
        let machine = IdealMachine::new(IdealConfig {
            fetch_rate: 16,
            vp: VpConfig::stride_infinite(),
            ..IdealConfig::default()
        });
        b.iter(|| machine.run(&trace))
    });
    g.bench_function("realistic_trace_cache_stride_vp", |b| {
        let fe = FrontEnd::TraceCache {
            config: TraceCacheConfig::paper(),
            btb: BtbKind::two_level_paper(),
        };
        let machine = RealisticMachine::new(RealisticConfig::paper(fe, VpConfig::stride_infinite()));
        b.iter(|| machine.run(&trace))
    });
    g.finish();
}

fn bench_asm_and_io(c: &mut Criterion) {
    let trace = m88ksim_trace();
    let mut g = c.benchmark_group("serialization");
    g.throughput(Throughput::Elements(N));
    g.bench_function("trace_write_read", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            fetchvp_trace::write_trace(&trace, &mut buf).expect("write");
            fetchvp_trace::read_trace(buf.as_slice()).expect("read").len()
        })
    });
    let w = by_name("m88ksim", &WorkloadParams::default()).expect("known benchmark");
    let text = fetchvp_isa::to_assembly(w.program());
    g.bench_function("asm_round_trip", |b| {
        b.iter(|| {
            let p = fetchvp_isa::parse_program("m88ksim", &text).expect("parse");
            fetchvp_isa::to_assembly(&p).len()
        })
    });
    g.finish();
}

fn bench_dfg(c: &mut Criterion) {
    let trace = m88ksim_trace();
    let mut g = c.benchmark_group("dfg");
    g.throughput(Throughput::Elements(N));
    g.bench_function("did_analysis", |b| {
        b.iter(|| {
            let mut a = DidAnalyzer::new();
            for rec in &trace {
                a.feed(rec);
            }
            a.finish().arcs
        })
    });
    g.finish();
}

criterion_group! {
    name = components;
    config = Criterion::default().sample_size(10);
    targets = bench_executor, bench_predictors, bench_bpred,
              bench_fetch_engines, bench_machines, bench_dfg,
              bench_asm_and_io
}
criterion_main!(components);
