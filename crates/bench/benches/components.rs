//! Component-level throughput benchmarks: the functional executor, the
//! predictors, the branch predictor, the fetch engines and both machine
//! models, measured in isolation on a fixed m88ksim trace.

use fetchvp_bench::run_benchmark;
use fetchvp_bpred::{BranchPredictor, PerfectBtb, TwoLevelBtb};
use fetchvp_core::{
    BtbKind, FrontEnd, IdealConfig, IdealMachine, RealisticConfig, RealisticMachine, VpConfig,
};
use fetchvp_dfg::DidAnalyzer;
use fetchvp_fetch::{ConventionalFetch, FetchEngine, TraceCacheConfig, TraceCacheFetch};
use fetchvp_predictor::{
    ConfidenceConfig, HybridPredictor, LastValuePredictor, StridePredictor, TableGeometry,
    ValuePredictor,
};
use fetchvp_trace::{trace_program, Executor, Trace};
use fetchvp_workloads::{by_name, WorkloadParams};

const N: u64 = 50_000;

fn m88ksim_trace() -> Trace {
    let w = by_name("m88ksim", &WorkloadParams::default()).expect("known benchmark");
    trace_program(w.program(), N)
}

fn drive(p: &mut dyn ValuePredictor, trace: &Trace) {
    for rec in trace.view().slots() {
        if rec.produces_value() {
            let predicted = p.lookup(rec.pc());
            p.commit(rec.pc(), rec.result(), predicted);
        }
    }
}

fn walk(engine: &mut dyn FetchEngine, trace: &Trace) -> usize {
    let mut pos = 0;
    while pos < trace.len() {
        pos += engine.fetch(trace.view(), pos, 40).len;
    }
    pos
}

fn main() {
    let w = by_name("m88ksim", &WorkloadParams::default()).expect("known benchmark");
    let trace = m88ksim_trace();

    run_benchmark("executor/functional_simulation", || {
        let mut exec = Executor::new(w.program());
        let mut n = 0u64;
        while n < N {
            exec.step().expect("workload never halts");
            n += 1;
        }
        n
    });

    run_benchmark("value_predictors/last_value", || {
        let mut p = LastValuePredictor::new(TableGeometry::Infinite, ConfidenceConfig::paper());
        drive(&mut p, &trace);
    });
    run_benchmark("value_predictors/stride", || {
        let mut p = StridePredictor::new(TableGeometry::Infinite, ConfidenceConfig::paper());
        drive(&mut p, &trace);
    });
    run_benchmark("value_predictors/hybrid", || {
        let mut p = HybridPredictor::paper();
        drive(&mut p, &trace);
    });

    run_benchmark("branch_predictors/two_level_pap", || {
        let mut btb = TwoLevelBtb::paper();
        for rec in trace.view().slots() {
            if rec.is_control() {
                btb.predict(rec);
                btb.update(rec);
            }
        }
        btb.stats().correct
    });

    run_benchmark("fetch_engines/conventional_4taken", || {
        let mut e = ConventionalFetch::new(40, Some(4), PerfectBtb::new());
        walk(&mut e, &trace)
    });
    run_benchmark("fetch_engines/trace_cache", || {
        let mut e = TraceCacheFetch::new(TraceCacheConfig::paper(), PerfectBtb::new());
        walk(&mut e, &trace)
    });

    let ideal = IdealMachine::new(IdealConfig {
        fetch_rate: 16,
        vp: VpConfig::stride_infinite(),
        ..IdealConfig::default()
    });
    run_benchmark("machines/ideal_fetch16_stride_vp", || ideal.run(&trace));
    let fe =
        FrontEnd::TraceCache { config: TraceCacheConfig::paper(), btb: BtbKind::two_level_paper() };
    let realistic = RealisticMachine::new(RealisticConfig::paper(fe, VpConfig::stride_infinite()));
    run_benchmark("machines/realistic_trace_cache_stride_vp", || realistic.run(&trace));

    run_benchmark("serialization/trace_write_read", || {
        let mut buf = Vec::new();
        fetchvp_trace::write_trace(&trace, &mut buf).expect("write");
        fetchvp_trace::read_trace(buf.as_slice()).expect("read").len()
    });
    let text = fetchvp_isa::to_assembly(w.program());
    run_benchmark("serialization/asm_round_trip", || {
        let p = fetchvp_isa::parse_program("m88ksim", &text).expect("parse");
        fetchvp_isa::to_assembly(&p).len()
    });

    run_benchmark("dfg/did_analysis", || {
        let mut a = DidAnalyzer::new();
        for rec in trace.view().slots() {
            a.feed(rec);
        }
        a.finish().arcs
    });
}
