//! One benchmark per paper table/figure: each measures the time to
//! regenerate that result at a reduced trace length and, as a side effect,
//! asserts its headline shape so a regression in the *result* (not just the
//! runtime) fails the bench run.

use fetchvp_bench::run_benchmark;
use fetchvp_experiments::{
    fig3_1, fig3_3, fig3_4, fig3_5, fig5_1, fig5_2, fig5_3, table3_1, table3_2, ExperimentConfig,
};

fn cfg() -> ExperimentConfig {
    ExperimentConfig { trace_len: 20_000, ..ExperimentConfig::default() }
}

fn main() {
    let r = run_benchmark("table3_1_suite_statistics", || table3_1::run(&cfg()));
    assert_eq!(r.rows.len(), 8);

    let r = run_benchmark("fig3_1_ideal_machine_sweep", || fig3_1::run(&cfg()));
    let avg = r.averages();
    assert!(avg[4] >= avg[0]);

    let r = run_benchmark("table3_2_pipeline_walkthrough", table3_2::run);
    assert_eq!(r.stages.len(), 8);

    let r = run_benchmark("fig3_3_average_did", || fig3_3::run(&cfg()));
    assert!(r.average() > 4.0);

    let r = run_benchmark("fig3_4_did_histogram", || fig3_4::run(&cfg()));
    assert!(r.average_long_fraction() > 0.3);

    let r = run_benchmark("fig3_5_predictability_breakdown", || fig3_5::run(&cfg()));
    assert!(r.row_of("vortex").unwrap().predictable_long > 0.5);

    let r = run_benchmark("fig5_1_taken_branch_sweep_ideal_btb", || fig5_1::run(&cfg()));
    let avg = r.averages();
    assert!(*avg.last().unwrap() >= avg[0] - 0.03);

    run_benchmark("fig5_2_taken_branch_sweep_2level_btb", || fig5_2::run(&cfg()));

    let r = run_benchmark("fig5_3_trace_cache", || fig5_3::run(&cfg()));
    let (two_level, ideal) = r.averages();
    assert!(ideal >= two_level - 0.05);
}
