//! One Criterion benchmark per paper table/figure: each measures the time
//! to regenerate that result at a reduced trace length and, as a side
//! effect, asserts its headline shape so a regression in the *result* (not
//! just the runtime) fails the bench run.

use criterion::{criterion_group, criterion_main, Criterion};
use fetchvp_experiments::{
    fig3_1, fig3_3, fig3_4, fig3_5, fig5_1, fig5_2, fig5_3, table3_1, table3_2, ExperimentConfig,
};

fn cfg() -> ExperimentConfig {
    ExperimentConfig { trace_len: 20_000, ..ExperimentConfig::default() }
}

fn bench_table3_1(c: &mut Criterion) {
    c.bench_function("table3_1_suite_statistics", |b| {
        b.iter(|| {
            let r = table3_1::run(&cfg());
            assert_eq!(r.rows.len(), 8);
            r
        })
    });
}

fn bench_fig3_1(c: &mut Criterion) {
    c.bench_function("fig3_1_ideal_machine_sweep", |b| {
        b.iter(|| {
            let r = fig3_1::run(&cfg());
            let avg = r.averages();
            assert!(avg[4] >= avg[0]);
            r
        })
    });
}

fn bench_table3_2(c: &mut Criterion) {
    c.bench_function("table3_2_pipeline_walkthrough", |b| {
        b.iter(|| {
            let r = table3_2::run();
            assert_eq!(r.stages.len(), 8);
            r
        })
    });
}

fn bench_fig3_3(c: &mut Criterion) {
    c.bench_function("fig3_3_average_did", |b| {
        b.iter(|| {
            let r = fig3_3::run(&cfg());
            assert!(r.average() > 4.0);
            r
        })
    });
}

fn bench_fig3_4(c: &mut Criterion) {
    c.bench_function("fig3_4_did_histogram", |b| {
        b.iter(|| {
            let r = fig3_4::run(&cfg());
            assert!(r.average_long_fraction() > 0.3);
            r
        })
    });
}

fn bench_fig3_5(c: &mut Criterion) {
    c.bench_function("fig3_5_predictability_breakdown", |b| {
        b.iter(|| {
            let r = fig3_5::run(&cfg());
            assert!(r.row_of("vortex").unwrap().predictable_long > 0.5);
            r
        })
    });
}

fn bench_fig5_1(c: &mut Criterion) {
    c.bench_function("fig5_1_taken_branch_sweep_ideal_btb", |b| {
        b.iter(|| {
            let r = fig5_1::run(&cfg());
            let avg = r.averages();
            assert!(*avg.last().unwrap() >= avg[0] - 0.03);
            r
        })
    });
}

fn bench_fig5_2(c: &mut Criterion) {
    c.bench_function("fig5_2_taken_branch_sweep_2level_btb", |b| {
        b.iter(|| fig5_2::run(&cfg()))
    });
}

fn bench_fig5_3(c: &mut Criterion) {
    c.bench_function("fig5_3_trace_cache", |b| {
        b.iter(|| {
            let r = fig5_3::run(&cfg());
            let (two_level, ideal) = r.averages();
            assert!(ideal >= two_level - 0.05);
            r
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_table3_1, bench_fig3_1, bench_table3_2, bench_fig3_3,
              bench_fig3_4, bench_fig3_5, bench_fig5_1, bench_fig5_2,
              bench_fig5_3
}
criterion_main!(figures);
