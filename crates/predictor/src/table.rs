//! Prediction-table storage with configurable geometry.

use std::fmt;

use fetchvp_metrics::FxHashMap;

/// The size/shape of a prediction table.
///
/// The paper's §3 limit study assumes *infinite* tables ("both the prediction
/// table and the set of saturated counters are assumed to be infinite");
/// finite direct-mapped geometries are provided for sensitivity studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TableGeometry {
    /// One entry per static PC, never evicted.
    #[default]
    Infinite,
    /// `1 << index_bits` direct-mapped, tagged entries. A tag mismatch
    /// evicts the resident entry.
    DirectMapped {
        /// log2 of the number of entries.
        index_bits: u8,
    },
}

impl TableGeometry {
    /// Number of entries, or `None` for an infinite table.
    pub fn entries(&self) -> Option<usize> {
        match *self {
            TableGeometry::Infinite => None,
            TableGeometry::DirectMapped { index_bits } => Some(1usize << index_bits),
        }
    }
}

impl fmt::Display for TableGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TableGeometry::Infinite => f.write_str("infinite"),
            TableGeometry::DirectMapped { index_bits } => {
                write!(f, "{}-entry direct-mapped", 1u64 << index_bits)
            }
        }
    }
}

/// PC-indexed storage for predictor entries.
///
/// `PredTable` abstracts over the [`TableGeometry`]: an infinite table is a
/// hash map keyed by PC; a direct-mapped table indexes by the PC's low bits
/// and evicts on tag mismatch.
///
/// # Example
///
/// ```
/// use fetchvp_predictor::table::{PredTable, TableGeometry};
///
/// let mut t: PredTable<u32> = PredTable::new(TableGeometry::DirectMapped { index_bits: 1 });
/// *t.entry_mut(0) = 10;
/// *t.entry_mut(2) = 20; // same set as PC 0 -> evicts it
/// assert_eq!(t.probe(0), None);
/// assert_eq!(t.probe(2), Some(&20));
/// ```
#[derive(Debug, Clone)]
pub struct PredTable<E> {
    geometry: TableGeometry,
    // Fx-hashed: probed on every lookup/commit of every value-producing
    // instruction, the hottest map in the simulator.
    infinite: FxHashMap<u64, E>,
    finite: Vec<Option<(u64, E)>>,
}

impl<E: Default> PredTable<E> {
    /// Creates an empty table with the given geometry.
    pub fn new(geometry: TableGeometry) -> PredTable<E> {
        let finite = match geometry.entries() {
            Some(n) => {
                let mut v = Vec::with_capacity(n);
                v.resize_with(n, || None);
                v
            }
            None => Vec::new(),
        };
        PredTable { geometry, infinite: FxHashMap::default(), finite }
    }

    /// The table's geometry.
    pub fn geometry(&self) -> TableGeometry {
        self.geometry
    }

    /// Looks up the entry for `pc` without allocating.
    ///
    /// Returns `None` on a miss (never-seen PC, or tag mismatch in a finite
    /// table).
    pub fn probe(&self, pc: u64) -> Option<&E> {
        match self.geometry {
            TableGeometry::Infinite => self.infinite.get(&pc),
            TableGeometry::DirectMapped { .. } => match &self.finite[self.index(pc)] {
                Some((tag, e)) if *tag == pc => Some(e),
                _ => None,
            },
        }
    }

    /// Returns the entry for `pc`, allocating (or evicting, for a finite
    /// table) a default entry on a miss.
    pub fn entry_mut(&mut self, pc: u64) -> &mut E {
        match self.geometry {
            TableGeometry::Infinite => self.infinite.entry(pc).or_default(),
            TableGeometry::DirectMapped { .. } => {
                let idx = self.index(pc);
                let slot = &mut self.finite[idx];
                match slot {
                    Some((tag, _)) if *tag == pc => {}
                    _ => *slot = Some((pc, E::default())),
                }
                &mut slot.as_mut().expect("just filled").1
            }
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        match self.geometry {
            TableGeometry::Infinite => self.infinite.len(),
            TableGeometry::DirectMapped { .. } => self.finite.iter().flatten().count(),
        }
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn index(&self, pc: u64) -> usize {
        (pc as usize) & (self.finite.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_table_never_evicts() {
        let mut t: PredTable<u64> = PredTable::new(TableGeometry::Infinite);
        for pc in 0..1000u64 {
            *t.entry_mut(pc) = pc;
        }
        assert_eq!(t.len(), 1000);
        for pc in 0..1000u64 {
            assert_eq!(t.probe(pc), Some(&pc));
        }
    }

    #[test]
    fn probe_miss_returns_none_without_alloc() {
        let t: PredTable<u64> = PredTable::new(TableGeometry::Infinite);
        assert_eq!(t.probe(42), None);
        assert!(t.is_empty());
    }

    #[test]
    fn direct_mapped_eviction_on_tag_mismatch() {
        let mut t: PredTable<u32> = PredTable::new(TableGeometry::DirectMapped { index_bits: 2 });
        *t.entry_mut(1) = 11;
        assert_eq!(t.probe(1), Some(&11));
        *t.entry_mut(5) = 55; // 5 & 3 == 1: conflicts with PC 1
        assert_eq!(t.probe(1), None);
        assert_eq!(t.probe(5), Some(&55));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn direct_mapped_rehit_preserves_entry() {
        let mut t: PredTable<u32> = PredTable::new(TableGeometry::DirectMapped { index_bits: 2 });
        *t.entry_mut(6) = 9;
        assert_eq!(*t.entry_mut(6), 9);
    }

    #[test]
    fn geometry_entry_counts() {
        assert_eq!(TableGeometry::Infinite.entries(), None);
        assert_eq!(TableGeometry::DirectMapped { index_bits: 10 }.entries(), Some(1024));
    }

    #[test]
    fn geometry_display() {
        assert_eq!(TableGeometry::Infinite.to_string(), "infinite");
        assert_eq!(
            TableGeometry::DirectMapped { index_bits: 3 }.to_string(),
            "8-entry direct-mapped"
        );
    }
}
