//! Finite-context-method (FCM) value prediction.
//!
//! The paper's related-work section cites Sazeides & Smith's *"The
//! Predictability of Data Values"* (reference \[22\]), which introduced
//! context-based prediction: instead of extrapolating arithmetic patterns
//! like the stride predictor, an FCM predictor remembers which value
//! followed each recent *history of values* and replays it when the history
//! recurs. It captures repeating non-arithmetic sequences (e.g. pointers
//! cycling through a structure) that defeat both last-value and stride
//! prediction.

use crate::counter::{ConfidenceConfig, SaturatingCounter};
use crate::table::{PredTable, TableGeometry};
use crate::{PredictorStats, ValuePredictor};

/// The context order: how many recent values form the first-level history.
pub const ORDER: usize = 4;

/// A finite window of the last [`ORDER`] values, oldest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct History {
    values: [u64; ORDER],
    len: usize,
}

impl History {
    fn push(&mut self, value: u64) {
        self.values.rotate_left(1);
        self.values[ORDER - 1] = value;
        self.len = (self.len + 1).min(ORDER);
    }

    /// An order-preserving hash of the window.
    fn hash(&self) -> u64 {
        let mut h = self.len as u64;
        for &v in &self.values {
            h = h.rotate_left(13) ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        h
    }
}

#[derive(Debug, Clone)]
struct Entry {
    /// Committed history (the last `ORDER` retired values).
    committed: History,
    /// Speculative history, advanced at lookup time.
    spec: History,
    seen: bool,
    counter: SaturatingCounter,
}

impl Entry {
    fn fresh(confidence: &ConfidenceConfig) -> Entry {
        Entry {
            committed: History::default(),
            spec: History::default(),
            seen: false,
            counter: confidence.new_counter(),
        }
    }
}

impl Default for Entry {
    fn default() -> Entry {
        Entry {
            committed: History::default(),
            spec: History::default(),
            seen: false,
            counter: SaturatingCounter::new(2),
        }
    }
}

/// A two-level finite-context-method value predictor (reference \[22\]).
///
/// The first level holds, per static instruction, a hash of its last few
/// outcome values (the *context*); the second level maps `(pc, context)` to
/// the value that followed that context last time. Like the other
/// predictors in this crate it updates its context *speculatively* at
/// lookup time so several in-flight instances of one PC chain their
/// predictions, and repairs the context when a prediction turns out wrong.
///
/// # Example
///
/// ```
/// use fetchvp_predictor::{ConfidenceConfig, FcmPredictor, ValuePredictor};
///
/// // A repeating, non-arithmetic value sequence — stride prediction fails
/// // here, FCM learns it after one period.
/// let mut p = FcmPredictor::with_confidence(ConfidenceConfig::always_predict());
/// let mut correct = 0;
/// for k in 0..18 {
///     let v = [7u64, 100, 3][k % 3]; // period-3, non-arithmetic
///     let predicted = p.lookup(0x40);
///     p.commit(0x40, v, predicted);
///     correct += (predicted == Some(v)) as u32;
/// }
/// assert!(correct >= 10, "{correct} correct");
/// ```
#[derive(Debug, Clone)]
pub struct FcmPredictor {
    l1: PredTable<Entry>,
    /// Second level: `(pc, context)` hash → next value. Shared across PCs,
    /// as in the original proposal's global value prediction table.
    /// Fx-hashed: probed twice per value-producing instruction.
    l2: fetchvp_metrics::FxHashMap<u64, u64>,
    confidence: ConfidenceConfig,
    stats: PredictorStats,
}

impl FcmPredictor {
    /// Creates an FCM predictor with infinite first-level geometry and the
    /// given classification configuration.
    pub fn with_confidence(confidence: ConfidenceConfig) -> FcmPredictor {
        FcmPredictor::new(TableGeometry::Infinite, confidence)
    }

    /// Creates an FCM predictor with the given first-level geometry.
    pub fn new(geometry: TableGeometry, confidence: ConfidenceConfig) -> FcmPredictor {
        FcmPredictor {
            l1: PredTable::new(geometry),
            l2: fetchvp_metrics::FxHashMap::default(),
            confidence,
            stats: PredictorStats::default(),
        }
    }

    /// The paper-style configuration: infinite tables, 2-bit classification.
    pub fn infinite() -> FcmPredictor {
        FcmPredictor::with_confidence(ConfidenceConfig::paper())
    }

    fn l2_key(pc: u64, ctx: u64) -> u64 {
        ctx.rotate_left(13) ^ pc.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    fn entry_mut_for(&mut self, pc: u64) -> &mut Entry {
        if self.l1.probe(pc).is_none() {
            *self.l1.entry_mut(pc) = Entry::fresh(&self.confidence);
        }
        self.l1.entry_mut(pc)
    }
}

impl ValuePredictor for FcmPredictor {
    fn name(&self) -> &str {
        "fcm"
    }

    fn lookup(&mut self, pc: u64) -> Option<u64> {
        let prediction = match self.l1.probe(pc) {
            Some(e) if e.seen && e.counter.at_least(self.confidence.predict_at) => {
                self.l2.get(&Self::l2_key(pc, e.spec.hash())).copied()
            }
            _ => None,
        };
        if let Some(v) = prediction {
            // Speculative update: push the predicted value into the history
            // so the next in-flight instance predicts from the extended
            // context.
            let e = self.l1.entry_mut(pc);
            e.spec.push(v);
        }
        self.stats.record_lookup(prediction.is_some());
        prediction
    }

    fn commit(&mut self, pc: u64, actual: u64, predicted: Option<u64>) {
        self.stats.record_commit(actual, predicted);
        // Train the second level: the committed context is followed by
        // `actual`.
        let (committed_hash, seen) = match self.l1.probe(pc) {
            Some(e) => (e.committed.hash(), e.seen),
            None => (0, false),
        };
        if seen {
            let key = Self::l2_key(pc, committed_hash);
            let would_predict = self.l2.get(&key).copied();
            self.l2.insert(key, actual);
            let e = self.entry_mut_for(pc);
            if would_predict == Some(actual) {
                e.counter.increment();
            } else {
                e.counter.decrement();
            }
        }
        let e = self.entry_mut_for(pc);
        e.committed.push(actual);
        e.seen = true;
        if predicted != Some(actual) {
            e.spec = e.committed;
        }
    }

    fn stats(&self) -> PredictorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_testutil::for_cases;

    fn always() -> FcmPredictor {
        FcmPredictor::with_confidence(ConfidenceConfig::always_predict())
    }

    fn run(p: &mut FcmPredictor, pc: u64, values: &[u64]) -> Vec<Option<u64>> {
        values
            .iter()
            .map(|&v| {
                let predicted = p.lookup(pc);
                p.commit(pc, v, predicted);
                predicted
            })
            .collect()
    }

    #[test]
    fn repeating_pattern_is_learned_after_one_period() {
        let mut p = always();
        let pattern = [5u64, 9, 2, 11];
        let stream: Vec<u64> = pattern.iter().cycle().take(24).copied().collect();
        let preds = run(&mut p, 1, &stream);
        // Warm-up is one ORDER-deep context plus one full period; every
        // prediction after that hits.
        let warmup = ORDER + pattern.len();
        let tail_correct =
            preds.iter().zip(&stream).skip(warmup).filter(|(p, v)| **p == Some(**v)).count();
        assert_eq!(tail_correct, 24 - warmup, "{preds:?}");
    }

    #[test]
    fn stride_sequences_are_not_fcm_friendly() {
        // Every context is new, so FCM never finds the next value: this is
        // exactly the complementary behaviour to the stride predictor.
        let mut p = always();
        let stream: Vec<u64> = (0..50).map(|k| 1000 + 17 * k).collect();
        let preds = run(&mut p, 1, &stream);
        assert!(preds.iter().all(|pr| pr.is_none() || *pr != Some(0)), "sanity");
        let correct = preds.iter().zip(&stream).filter(|(p, v)| **p == Some(**v)).count();
        assert_eq!(correct, 0);
    }

    #[test]
    fn classifier_gates_low_confidence_entries() {
        let mut p = FcmPredictor::infinite();
        // Random-looking values: counters never reach the threshold.
        let preds = run(&mut p, 1, &[3, 92, 17, 4, 88, 41, 7, 66]);
        assert!(preds.iter().all(Option::is_none));
    }

    #[test]
    fn contexts_are_per_pc() {
        let mut p = always();
        run(&mut p, 1, &[7, 8, 7, 8, 7, 8]);
        // PC 2 shares the L2 table but not the L1 context; cold PC predicts
        // nothing.
        assert_eq!(p.lookup(2), None);
    }

    #[test]
    fn speculative_context_chains_in_flight_instances() {
        let mut p = always();
        let pattern = [4u64, 6, 4, 6];
        let stream: Vec<u64> = pattern.iter().cycle().take(20).copied().collect();
        run(&mut p, 1, &stream);
        // Two back-to-back lookups (no commit between): the second chains
        // on the first's prediction.
        let a = p.lookup(1);
        let b = p.lookup(1);
        assert!(a.is_some() && b.is_some());
        assert_ne!(a, b, "period-2 pattern must alternate: {a:?} then {b:?}");
    }

    #[test]
    fn misprediction_repairs_the_speculative_context() {
        let mut p = always();
        let stream: Vec<u64> = [9u64, 5].iter().cycle().take(16).copied().collect();
        run(&mut p, 1, &stream);
        let wrong = p.lookup(1); // speculates the next pattern element
        p.commit(1, 777, wrong); // pattern broken
                                 // The context resynchronizes to the committed history.
        let after = p.lookup(1);
        // 777's context was never seen: no prediction (or at least no crash).
        assert!(after.is_none());
    }

    #[test]
    fn stats_cover_all_commits() {
        let mut p = FcmPredictor::infinite();
        run(&mut p, 1, &[1, 2, 1, 2, 1, 2]);
        let s = p.stats();
        assert_eq!(s.correct + s.incorrect + s.unpredicted, 6);
        assert_eq!(s.lookups, 6);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(FcmPredictor::infinite().name(), "fcm");
    }

    /// Any periodic sequence is eventually predicted perfectly.
    #[test]
    fn periodic_sequences_converge() {
        for_cases(48, |case, rng| {
            // Patterns with repeated elements can alias; the convergence
            // guarantee needs distinct elements, so draw from disjoint
            // value ranges.
            let len = rng.range_usize(2, 6);
            let pattern: Vec<u64> = (0..len).map(|k| 1000 * k as u64 + rng.below(1000)).collect();
            let reps = rng.range_usize(4, 10);
            let mut p = always();
            let stream: Vec<u64> =
                pattern.iter().cycle().take(ORDER + pattern.len() * reps).copied().collect();
            let preds = run(&mut p, 0, &stream);
            let warmup = ORDER + pattern.len();
            for (k, pred) in preds.iter().enumerate().skip(warmup) {
                assert_eq!(*pred, Some(stream[k]), "case {case}, index {k}");
            }
        });
    }
}
