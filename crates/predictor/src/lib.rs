//! Value predictors, classification and the banked prediction front-end.
//!
//! This crate implements the value-prediction hardware studied in Gabbay &
//! Mendelson's ISCA '98 paper:
//!
//! * [`LastValuePredictor`] — Lipasti & Shen's last-value scheme (paper
//!   references \[13\], \[14\]).
//! * [`StridePredictor`] — Gabbay & Mendelson's stride scheme (\[7\], \[8\]),
//!   including the *speculative update* behaviour of §3.1: the value state
//!   advances at lookup time, and is repaired at commit time if the
//!   prediction was wrong. A two-delta variant is available via
//!   [`StrideKind::TwoDelta`].
//! * [`HybridPredictor`] — the last-value + small-stride-table hybrid
//!   discussed in §4.2 (reference \[9\]).
//! * [`FcmPredictor`] — the finite-context-method predictor of the related
//!   work (reference \[22\]), which captures repeating non-arithmetic
//!   sequences.
//! * [`SaturatingCounter`] / [`ConfidenceConfig`] — the classification unit
//!   (2-bit saturating counters by default).
//! * [`BankedFrontEnd`] — the §4 hardware proposal: a highly-interleaved
//!   prediction table fed by an *address router* (bank-conflict resolution
//!   and same-PC merging) whose results flow through a *value distributor*
//!   (stride-sequence expansion `X, X+Δ, X+2Δ, …` for merged requests).
//!
//! # Example
//!
//! ```
//! use fetchvp_predictor::{ConfidenceConfig, StridePredictor, ValuePredictor};
//! use fetchvp_predictor::table::TableGeometry;
//!
//! let mut p = StridePredictor::new(TableGeometry::Infinite, ConfidenceConfig::always_predict());
//! // Train on an affine sequence 10, 13, 16 ...
//! for k in 0..4u64 {
//!     let predicted = p.lookup(0x40);
//!     p.commit(0x40, 10 + 3 * k, predicted);
//! }
//! assert_eq!(p.lookup(0x40), Some(22)); // 10 + 3*4
//! ```

pub mod banked;
pub mod counter;
pub mod fcm;
pub mod hybrid;
pub mod last_value;
pub mod stride;
pub mod table;

pub use banked::{BankedConfig, BankedFrontEnd, BankedStats, SlotGrant, SlotOutcome};
pub use counter::{ConfidenceConfig, SaturatingCounter};
pub use fcm::FcmPredictor;
pub use hybrid::HybridPredictor;
pub use last_value::LastValuePredictor;
pub use stride::{StrideKind, StridePredictor};
pub use table::TableGeometry;

use fetchvp_metrics::{MetricsSink, Registry};

/// Lookup/commit statistics accumulated by a predictor.
///
/// `correct`/`incorrect` classify committed instructions for which a
/// confident prediction had been issued; `unpredicted` counts commits with no
/// issued prediction (cold entry or low confidence).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Total lookups performed.
    pub lookups: u64,
    /// Lookups that returned a (confident) prediction.
    pub predictions: u64,
    /// Commits whose issued prediction matched the actual value.
    pub correct: u64,
    /// Commits whose issued prediction was wrong.
    pub incorrect: u64,
    /// Commits for which no prediction had been issued.
    pub unpredicted: u64,
}

impl PredictorStats {
    /// Fraction of issued predictions that were correct.
    pub fn accuracy(&self) -> f64 {
        let issued = self.correct + self.incorrect;
        if issued == 0 {
            0.0
        } else {
            self.correct as f64 / issued as f64
        }
    }

    /// Fraction of lookups that produced a prediction.
    pub fn coverage(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.predictions as f64 / self.lookups as f64
        }
    }

    pub(crate) fn record_lookup(&mut self, predicted: bool) {
        self.lookups += 1;
        if predicted {
            self.predictions += 1;
        }
    }

    pub(crate) fn record_commit(&mut self, actual: u64, predicted: Option<u64>) {
        match predicted {
            Some(v) if v == actual => self.correct += 1,
            Some(_) => self.incorrect += 1,
            None => self.unpredicted += 1,
        }
    }
}

impl MetricsSink for PredictorStats {
    fn export_metrics(&self, reg: &mut Registry, prefix: &str) {
        reg.counter(prefix, "lookups", self.lookups);
        reg.counter(prefix, "predictions", self.predictions);
        reg.counter(prefix, "correct", self.correct);
        reg.counter(prefix, "incorrect", self.incorrect);
        reg.counter(prefix, "unpredicted", self.unpredicted);
        reg.gauge(prefix, "accuracy", self.accuracy());
        reg.gauge(prefix, "coverage", self.coverage());
    }
}

/// A PC-indexed value predictor with speculative update.
///
/// The protocol mirrors the pipeline: [`lookup`](ValuePredictor::lookup) is
/// called at fetch/dispatch time for each dynamic instance of a
/// value-producing instruction (in program order) and may *speculatively*
/// advance internal state so that several in-flight instances of the same PC
/// receive consecutive predictions. [`commit`](ValuePredictor::commit) is
/// called at execute/retire time with the actual outcome and with whatever
/// `lookup` returned for that instance, allowing the predictor to train its
/// classification counters and to repair a wrong speculative update ("the
/// correct value is stored in the prediction table as soon as it is known",
/// §3.1).
pub trait ValuePredictor {
    /// A short human-readable name for reports.
    fn name(&self) -> &str;

    /// Predicts the next dynamic outcome of the instruction at `pc`.
    ///
    /// Returns `None` when the table misses or the classification counter is
    /// below its confidence threshold.
    fn lookup(&mut self, pc: u64) -> Option<u64>;

    /// Trains the predictor with the actual outcome of one dynamic instance.
    ///
    /// `predicted` must be exactly what [`lookup`](ValuePredictor::lookup)
    /// returned for this instance (or `None` if no lookup was performed,
    /// e.g. the §4 router denied the table access).
    fn commit(&mut self, pc: u64, actual: u64, predicted: Option<u64>);

    /// Accumulated statistics.
    fn stats(&self) -> PredictorStats;
}

impl<P: ValuePredictor + ?Sized> ValuePredictor for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn lookup(&mut self, pc: u64) -> Option<u64> {
        (**self).lookup(pc)
    }

    fn commit(&mut self, pc: u64, actual: u64, predicted: Option<u64>) {
        (**self).commit(pc, actual, predicted)
    }

    fn stats(&self) -> PredictorStats {
        (**self).stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accuracy_and_coverage() {
        let mut s = PredictorStats::default();
        s.record_lookup(true);
        s.record_lookup(false);
        s.record_commit(5, Some(5));
        s.record_commit(5, Some(6));
        s.record_commit(5, None);
        assert_eq!(s.predictions, 1);
        assert_eq!((s.correct, s.incorrect, s.unpredicted), (1, 1, 1));
        assert!((s.accuracy() - 0.5).abs() < 1e-12);
        assert!((s.coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = PredictorStats::default();
        assert_eq!(s.accuracy(), 0.0);
        assert_eq!(s.coverage(), 0.0);
    }
}
