//! Stride value prediction with speculative update.

use crate::counter::{ConfidenceConfig, SaturatingCounter};
use crate::table::{PredTable, TableGeometry};
use crate::{PredictorStats, ValuePredictor};

/// Stride-update policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StrideKind {
    /// The stride is re-learned from every pair of consecutive committed
    /// values (the scheme of paper references \[7\], \[8\]).
    #[default]
    Simple,
    /// The stride is replaced only after the *same new* delta has been
    /// observed twice in a row (the classic "2-delta" refinement), which
    /// protects an established stride from one-off disturbances.
    TwoDelta,
}

#[derive(Debug, Clone)]
struct Entry {
    /// Most recent committed value.
    committed_last: u64,
    /// Value state advanced speculatively at lookup time (§3.1: "the value
    /// predictor is updated speculatively after the lookup").
    spec_last: u64,
    /// Current stride (delta between consecutive values).
    stride: i64,
    /// Candidate stride for the 2-delta policy.
    pending_stride: i64,
    /// 0 = never committed, 1 = one value seen (stride unknown, treated as 0).
    seen: bool,
    counter: SaturatingCounter,
}

impl Entry {
    fn fresh(confidence: &ConfidenceConfig) -> Entry {
        Entry {
            committed_last: 0,
            spec_last: 0,
            stride: 0,
            pending_stride: 0,
            seen: false,
            counter: confidence.new_counter(),
        }
    }
}

impl Default for Entry {
    fn default() -> Entry {
        Entry {
            committed_last: 0,
            spec_last: 0,
            stride: 0,
            pending_stride: 0,
            seen: false,
            counter: SaturatingCounter::new(2),
        }
    }
}

/// The stride value predictor of Gabbay & Mendelson (\[7\], \[8\]).
///
/// Each entry holds the last value and the delta between the two most recent
/// values; the prediction is `last + stride`. Lookups *speculatively* advance
/// the value state, so N in-flight instances of the same PC receive the
/// sequence `X, X+Δ, …, X+(N−1)Δ` — exactly the "values trace" the §4 value
/// distributor must produce for merged requests. A wrong prediction is
/// repaired at commit time.
///
/// # Example
///
/// ```
/// use fetchvp_predictor::{ConfidenceConfig, StridePredictor, TableGeometry, ValuePredictor};
///
/// let mut p = StridePredictor::new(TableGeometry::Infinite, ConfidenceConfig::always_predict());
/// let mut preds = Vec::new();
/// for k in 0..5u64 {
///     preds.push(p.lookup(9));
///     p.commit(9, 100 + 4 * k, preds[k as usize]);
/// }
/// // After two commits the stride (4) is known and predictions are exact.
/// assert_eq!(preds[2], Some(108));
/// assert_eq!(preds[4], Some(116));
/// ```
#[derive(Debug, Clone)]
pub struct StridePredictor {
    table: PredTable<Entry>,
    confidence: ConfidenceConfig,
    kind: StrideKind,
    stats: PredictorStats,
}

impl StridePredictor {
    /// Creates a simple-stride predictor with the given geometry and
    /// classification configuration.
    pub fn new(geometry: TableGeometry, confidence: ConfidenceConfig) -> StridePredictor {
        StridePredictor::with_kind(geometry, confidence, StrideKind::Simple)
    }

    /// Creates a predictor with an explicit [`StrideKind`].
    pub fn with_kind(
        geometry: TableGeometry,
        confidence: ConfidenceConfig,
        kind: StrideKind,
    ) -> StridePredictor {
        StridePredictor {
            table: PredTable::new(geometry),
            confidence,
            kind,
            stats: PredictorStats::default(),
        }
    }

    /// The §3 configuration: infinite table, 2-bit saturating-counter
    /// classification.
    pub fn infinite() -> StridePredictor {
        StridePredictor::new(TableGeometry::Infinite, ConfidenceConfig::paper())
    }

    /// The stride-update policy in use.
    pub fn kind(&self) -> StrideKind {
        self.kind
    }

    fn entry_mut_for(&mut self, pc: u64) -> &mut Entry {
        if self.table.probe(pc).is_none() {
            *self.table.entry_mut(pc) = Entry::fresh(&self.confidence);
        }
        self.table.entry_mut(pc)
    }
}

impl ValuePredictor for StridePredictor {
    fn name(&self) -> &str {
        match self.kind {
            StrideKind::Simple => "stride",
            StrideKind::TwoDelta => "stride-2delta",
        }
    }

    fn lookup(&mut self, pc: u64) -> Option<u64> {
        let predict_at = self.confidence.predict_at;
        let prediction = match self.table.probe(pc) {
            Some(e) if e.seen && e.counter.at_least(predict_at) => {
                Some(e.spec_last.wrapping_add(e.stride as u64))
            }
            _ => None,
        };
        if let Some(v) = prediction {
            // Speculative update: the next in-flight instance of this PC is
            // predicted relative to this one.
            self.table.entry_mut(pc).spec_last = v;
        }
        self.stats.record_lookup(prediction.is_some());
        prediction
    }

    fn commit(&mut self, pc: u64, actual: u64, predicted: Option<u64>) {
        self.stats.record_commit(actual, predicted);
        let kind = self.kind;
        let e = self.entry_mut_for(pc);
        if e.seen {
            // Train the classifier on the *committed-state* prediction so
            // that confidence reflects the entry's inherent predictability.
            let would_predict = e.committed_last.wrapping_add(e.stride as u64);
            if would_predict == actual {
                e.counter.increment();
            } else {
                e.counter.decrement();
            }
            let new_stride = actual.wrapping_sub(e.committed_last) as i64;
            match kind {
                StrideKind::Simple => e.stride = new_stride,
                StrideKind::TwoDelta => {
                    if new_stride == e.stride {
                        // Established stride confirmed; forget any candidate.
                        e.pending_stride = e.stride;
                    } else if new_stride == e.pending_stride {
                        e.stride = new_stride;
                    } else {
                        e.pending_stride = new_stride;
                    }
                }
            }
        }
        e.committed_last = actual;
        e.seen = true;
        // Repair the speculative state unless the prediction was correct (in
        // which case spec_last may legitimately run ahead of commit).
        if predicted != Some(actual) {
            e.spec_last = actual;
        }
    }

    fn stats(&self) -> PredictorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_testutil::for_cases;

    fn always() -> StridePredictor {
        StridePredictor::new(TableGeometry::Infinite, ConfidenceConfig::always_predict())
    }

    fn run(p: &mut StridePredictor, pc: u64, values: &[u64]) -> Vec<Option<u64>> {
        values
            .iter()
            .map(|&v| {
                let predicted = p.lookup(pc);
                p.commit(pc, v, predicted);
                predicted
            })
            .collect()
    }

    #[test]
    fn affine_sequence_is_exact_after_two_values() {
        let mut p = always();
        let preds = run(&mut p, 1, &[10, 13, 16, 19, 22]);
        assert_eq!(preds[2..], [Some(16), Some(19), Some(22)]);
    }

    #[test]
    fn constant_sequence_predicts_with_zero_stride() {
        let mut p = always();
        let preds = run(&mut p, 1, &[5, 5, 5]);
        assert_eq!(preds[1..], [Some(5), Some(5)]);
    }

    #[test]
    fn negative_strides_work() {
        let mut p = always();
        let preds = run(&mut p, 1, &[100, 90, 80, 70]);
        assert_eq!(preds[2..], [Some(80), Some(70)]);
    }

    #[test]
    fn speculative_burst_expands_the_stride_sequence() {
        let mut p = always();
        run(&mut p, 1, &[10, 13]); // stride 3 learned; committed_last 13
                                   // Three in-flight instances fetched in one cycle (the §4 merge case):
        let burst: Vec<_> = (0..3).map(|_| p.lookup(1)).collect();
        assert_eq!(burst, [Some(16), Some(19), Some(22)]);
        // Commits arrive later, all correct -> state stays coherent.
        for (k, pred) in burst.into_iter().enumerate() {
            p.commit(1, 16 + 3 * k as u64, pred);
        }
        assert_eq!(p.lookup(1), Some(25));
    }

    #[test]
    fn misprediction_repairs_speculative_state() {
        let mut p = always();
        run(&mut p, 1, &[10, 13]);
        let wrong = p.lookup(1); // predicts 16, spec_last now 16
        assert_eq!(wrong, Some(16));
        p.commit(1, 50, wrong); // actual diverges
                                // Committed state resyncs: last = 50, stride = 50-13 = 37.
        assert_eq!(p.lookup(1), Some(87));
    }

    #[test]
    fn classifier_blocks_noisy_entries() {
        let mut p = StridePredictor::infinite();
        // Alternating garbage never builds confidence under the 2-bit scheme.
        let preds = run(&mut p, 1, &[3, 17, 1, 90, 4, 2, 55, 8]);
        assert!(preds.iter().all(Option::is_none));
    }

    #[test]
    fn classifier_admits_strided_entries() {
        let mut p = StridePredictor::infinite();
        let preds = run(&mut p, 1, &[0, 8, 16, 24, 32, 40]);
        // First two commits build history; counter reaches 2 after two
        // correct would-be predictions (instances 3 and 4).
        assert_eq!(preds[4..], [Some(32), Some(40)]);
    }

    #[test]
    fn two_delta_resists_one_off_disturbance() {
        let mut simple = always();
        let mut twodelta = StridePredictor::with_kind(
            TableGeometry::Infinite,
            ConfidenceConfig::always_predict(),
            StrideKind::TwoDelta,
        );
        // Stable stride 10 with two one-off glitches (77 and 99), returning
        // to the old line after each. The simple policy re-learns a bogus
        // stride from every glitch pair; 2-delta keeps stride 10 throughout.
        let seq = [0u64, 10, 20, 30, 77, 40, 50, 99, 60, 70];
        run(&mut simple, 1, &seq);
        run(&mut twodelta, 1, &seq);
        assert_eq!(twodelta.lookup(1), Some(80));
        let s2 = twodelta.stats();
        let s1 = simple.stats();
        assert!(s2.correct > s1.correct, "2-delta should survive the glitch better");
    }

    #[test]
    fn stats_cover_all_commits() {
        let mut p = StridePredictor::infinite();
        run(&mut p, 1, &[1, 2, 3, 4]);
        let s = p.stats();
        assert_eq!(s.correct + s.incorrect + s.unpredicted, 4);
    }

    #[test]
    fn names_differ_by_kind() {
        assert_eq!(always().name(), "stride");
        let td = StridePredictor::with_kind(
            TableGeometry::Infinite,
            ConfidenceConfig::paper(),
            StrideKind::TwoDelta,
        );
        assert_eq!(td.name(), "stride-2delta");
    }

    /// After warm-up, a stride predictor is exact on any affine sequence.
    #[test]
    fn exact_on_affine_sequences() {
        for_cases(64, |case, rng| {
            let start = rng.next_u64();
            let stride = rng.range_i64(-1000, 1000);
            let len = rng.range_usize(3, 40);
            let mut p = always();
            let values: Vec<u64> = (0..len as u64)
                .map(|k| start.wrapping_add((stride as u64).wrapping_mul(k)))
                .collect();
            let preds = run(&mut p, 0, &values);
            for (k, pred) in preds.iter().enumerate().skip(2) {
                assert_eq!(*pred, Some(values[k]), "case {case}, index {k}");
            }
        });
    }

    /// Speculative bursts agree with sequential lookup/commit on affine data.
    #[test]
    fn burst_matches_sequential() {
        for_cases(64, |case, rng| {
            let start = rng.next_u64();
            let stride = rng.range_i64(-100, 100);
            let n = rng.range_usize(1, 8);
            let mut p = always();
            run(&mut p, 0, &[start, start.wrapping_add(stride as u64)]);
            let burst: Vec<_> = (0..n).map(|_| p.lookup(0)).collect();
            for (k, pred) in burst.iter().enumerate() {
                let expect = start.wrapping_add((stride as u64).wrapping_mul(k as u64 + 2));
                assert_eq!(*pred, Some(expect), "case {case}, slot {k}");
            }
        });
    }
}
