//! Hybrid last-value + stride prediction (§4.2, paper reference \[9\]).

use std::collections::HashMap;

use crate::counter::ConfidenceConfig;
use crate::last_value::LastValuePredictor;
use crate::stride::StridePredictor;
use crate::table::TableGeometry;
use crate::{PredictorStats, ValuePredictor};

/// The class assigned to a static instruction by opcode/profile hints.
///
/// §4.2 describes compiler-inserted *opcode hints* that steer each
/// instruction to the appropriate prediction table — or exclude it from
/// prediction entirely, which "can significantly reduce the number of
/// conflicts that need to be resolved by the router".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HintClass {
    /// Predict from the (large) last-value table.
    LastValue,
    /// Predict from the (small) stride table.
    Stride,
    /// Do not predict this instruction at all.
    NotPredictable,
}

#[derive(Debug, Clone, Copy, Default)]
struct DynClass {
    last: u64,
    last_delta: i64,
    seen: u8, // 0: nothing, 1: have last, 2: have delta
    /// Hysteresis: positive when repeating non-zero deltas are observed.
    stride_score: i8,
}

/// A hybrid value predictor: a last-value table plus a "relatively small
/// stride prediction table" (§4.2).
///
/// Instructions are steered between the two tables either by static *hints*
/// (see [`HybridPredictor::with_hints`], modelling the profiling/opcode-hint
/// scheme of reference \[9\]) or, by default, by a dynamic classifier that
/// routes an instruction to the stride table once it has produced repeating
/// non-zero deltas.
///
/// # Example
///
/// ```
/// use fetchvp_predictor::{HybridPredictor, ValuePredictor};
///
/// let mut p = HybridPredictor::paper();
/// for k in 0..6u64 {
///     let pred = p.lookup(3);
///     p.commit(3, 100 + 8 * k, pred); // strided: migrates to the stride table
/// }
/// assert_eq!(p.lookup(3), Some(148));
/// ```
#[derive(Debug, Clone)]
pub struct HybridPredictor {
    lvp: LastValuePredictor,
    svp: StridePredictor,
    hints: Option<HashMap<u64, HintClass>>,
    dynamic: HashMap<u64, DynClass>,
    stats: PredictorStats,
}

impl HybridPredictor {
    /// Creates a hybrid from explicit table geometries and a shared
    /// classification configuration.
    pub fn new(
        lvp_geometry: TableGeometry,
        svp_geometry: TableGeometry,
        confidence: ConfidenceConfig,
    ) -> HybridPredictor {
        HybridPredictor {
            lvp: LastValuePredictor::new(lvp_geometry, confidence),
            svp: StridePredictor::new(svp_geometry, confidence),
            hints: None,
            dynamic: HashMap::new(),
            stats: PredictorStats::default(),
        }
    }

    /// The §4.2 flavour: a large (infinite) last-value table and a small
    /// 1K-entry stride table, 2-bit classification.
    pub fn paper() -> HybridPredictor {
        HybridPredictor::new(
            TableGeometry::Infinite,
            TableGeometry::DirectMapped { index_bits: 10 },
            ConfidenceConfig::paper(),
        )
    }

    /// Replaces dynamic classification with static per-PC hints, as produced
    /// by a profiling pass. PCs absent from `hints` are treated as
    /// [`HintClass::NotPredictable`].
    pub fn with_hints(mut self, hints: HashMap<u64, HintClass>) -> HybridPredictor {
        self.hints = Some(hints);
        self
    }

    /// The class currently steering `pc`.
    pub fn class_of(&self, pc: u64) -> HintClass {
        match &self.hints {
            Some(h) => h.get(&pc).copied().unwrap_or(HintClass::NotPredictable),
            None => match self.dynamic.get(&pc) {
                Some(d) if d.stride_score >= 2 => HintClass::Stride,
                _ => HintClass::LastValue,
            },
        }
    }

    fn observe(&mut self, pc: u64, actual: u64) {
        let d = self.dynamic.entry(pc).or_default();
        match d.seen {
            0 => d.seen = 1,
            _ => {
                let delta = actual.wrapping_sub(d.last) as i64;
                if d.seen >= 2 && delta != 0 && delta == d.last_delta {
                    d.stride_score = (d.stride_score + 1).min(4);
                } else if d.seen >= 2 {
                    d.stride_score = (d.stride_score - 1).max(-4);
                }
                d.last_delta = delta;
                d.seen = 2;
            }
        }
        d.last = actual;
    }
}

impl ValuePredictor for HybridPredictor {
    fn name(&self) -> &str {
        "hybrid"
    }

    fn lookup(&mut self, pc: u64) -> Option<u64> {
        let prediction = match self.class_of(pc) {
            HintClass::LastValue => self.lvp.lookup(pc),
            HintClass::Stride => self.svp.lookup(pc),
            HintClass::NotPredictable => None,
        };
        self.stats.record_lookup(prediction.is_some());
        prediction
    }

    fn commit(&mut self, pc: u64, actual: u64, predicted: Option<u64>) {
        self.stats.record_commit(actual, predicted);
        // Both tables train on every outcome of the PCs routed to them; the
        // inactive table simply receives no lookups. Training both keeps a
        // migration (class change) from starting completely cold.
        match self.class_of(pc) {
            HintClass::LastValue => {
                self.lvp.commit(pc, actual, predicted);
                self.svp.commit(pc, actual, None);
            }
            HintClass::Stride => {
                self.svp.commit(pc, actual, predicted);
                self.lvp.commit(pc, actual, None);
            }
            HintClass::NotPredictable => {}
        }
        if self.hints.is_none() {
            self.observe(pc, actual);
        }
    }

    fn stats(&self) -> PredictorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(p: &mut HybridPredictor, pc: u64, values: &[u64]) -> Vec<Option<u64>> {
        values
            .iter()
            .map(|&v| {
                let predicted = p.lookup(pc);
                p.commit(pc, v, predicted);
                predicted
            })
            .collect()
    }

    #[test]
    fn constant_values_stay_in_last_value_table() {
        let mut p = HybridPredictor::paper();
        run(&mut p, 1, &[7, 7, 7, 7]);
        assert_eq!(p.class_of(1), HintClass::LastValue);
        assert_eq!(p.lookup(1), Some(7));
    }

    #[test]
    fn strided_values_migrate_to_stride_table() {
        let mut p = HybridPredictor::paper();
        run(&mut p, 1, &[0, 4, 8, 12, 16, 20]);
        assert_eq!(p.class_of(1), HintClass::Stride);
        assert_eq!(p.lookup(1), Some(24));
    }

    #[test]
    fn hints_override_dynamic_classification() {
        let hints = HashMap::from([(1u64, HintClass::Stride), (2u64, HintClass::LastValue)]);
        let mut p = HybridPredictor::paper().with_hints(hints);
        run(&mut p, 1, &[0, 4, 8, 12, 16]);
        assert_eq!(p.class_of(1), HintClass::Stride);
        assert_eq!(p.lookup(1), Some(20));
        // PC 3 has no hint: not predictable, lookups always None.
        run(&mut p, 3, &[5, 5, 5, 5, 5]);
        assert_eq!(p.class_of(3), HintClass::NotPredictable);
        assert_eq!(p.lookup(3), None);
    }

    #[test]
    fn not_predictable_pcs_do_not_train_tables() {
        let mut p = HybridPredictor::paper().with_hints(HashMap::new());
        run(&mut p, 9, &[1, 2, 3]);
        let s = p.stats();
        assert_eq!(s.predictions, 0);
        assert_eq!(s.unpredicted, 3);
    }

    #[test]
    fn alternating_values_fall_back_to_last_value() {
        let mut p = HybridPredictor::paper();
        // Deltas alternate +1/-1: never two repeating non-zero deltas.
        run(&mut p, 1, &[5, 6, 5, 6, 5, 6]);
        assert_eq!(p.class_of(1), HintClass::LastValue);
    }

    #[test]
    fn stats_are_tracked_at_the_hybrid_level() {
        let mut p = HybridPredictor::paper();
        run(&mut p, 1, &[3, 3, 3, 3]);
        let s = p.stats();
        assert_eq!(s.lookups, 4);
        assert_eq!(s.correct + s.incorrect + s.unpredicted, 4);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(HybridPredictor::paper().name(), "hybrid");
    }
}
