//! Saturating confidence counters.

use std::fmt;

/// An n-bit saturating counter used by the classification unit.
///
/// The paper's classification mechanism ("a set of saturated counters",
/// following Lipasti & Shen) assigns one counter per prediction-table entry;
/// a prediction is only *used* when the counter is at or above a confidence
/// threshold. Correct outcomes increment the counter, incorrect ones
/// decrement it, both saturating.
///
/// # Example
///
/// ```
/// use fetchvp_predictor::SaturatingCounter;
///
/// let mut c = SaturatingCounter::new(2); // 2-bit: 0..=3
/// assert_eq!(c.get(), 0);
/// c.increment();
/// c.increment();
/// c.increment();
/// c.increment(); // saturates at 3
/// assert_eq!(c.get(), 3);
/// c.decrement();
/// assert_eq!(c.get(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SaturatingCounter {
    value: u8,
    max: u8,
}

impl SaturatingCounter {
    /// Creates a counter with `bits` bits (range `0..=2^bits - 1`), starting
    /// at zero.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 8.
    pub fn new(bits: u8) -> SaturatingCounter {
        SaturatingCounter::with_initial(bits, 0)
    }

    /// Creates a counter with `bits` bits starting at `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 8, or if `initial` exceeds
    /// the maximum value.
    pub fn with_initial(bits: u8, initial: u8) -> SaturatingCounter {
        assert!((1..=8).contains(&bits), "counter width must be 1..=8 bits, got {bits}");
        let max = if bits == 8 { u8::MAX } else { (1u8 << bits) - 1 };
        assert!(initial <= max, "initial value {initial} exceeds max {max}");
        SaturatingCounter { value: initial, max }
    }

    /// The current counter value.
    pub fn get(&self) -> u8 {
        self.value
    }

    /// The saturation maximum.
    pub fn max(&self) -> u8 {
        self.max
    }

    /// Increments, saturating at the maximum.
    pub fn increment(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Decrements, saturating at zero.
    pub fn decrement(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Whether the counter is at or above `threshold`.
    pub fn at_least(&self, threshold: u8) -> bool {
        self.value >= threshold
    }
}

impl fmt::Display for SaturatingCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.value, self.max)
    }
}

/// Configuration for the classification unit.
///
/// A prediction is used only when the entry's [`SaturatingCounter`] is at or
/// above [`predict_at`](ConfidenceConfig::predict_at). The paper uses 2-bit
/// counters (see §5), which is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConfidenceConfig {
    /// Counter width in bits.
    pub bits: u8,
    /// Minimum counter value at which predictions are used.
    pub predict_at: u8,
    /// Initial counter value for new entries.
    pub initial: u8,
}

impl ConfidenceConfig {
    /// The paper's configuration: 2-bit counters, predict at 2, start at 0.
    pub fn paper() -> ConfidenceConfig {
        ConfidenceConfig { bits: 2, predict_at: 2, initial: 0 }
    }

    /// A configuration that always predicts (degenerate classification).
    pub fn always_predict() -> ConfidenceConfig {
        ConfidenceConfig { bits: 1, predict_at: 0, initial: 0 }
    }

    /// Creates a fresh counter per this configuration.
    pub fn new_counter(&self) -> SaturatingCounter {
        SaturatingCounter::with_initial(self.bits, self.initial)
    }
}

impl Default for ConfidenceConfig {
    fn default() -> ConfidenceConfig {
        ConfidenceConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_testutil::for_cases;

    #[test]
    fn increments_saturate() {
        let mut c = SaturatingCounter::new(2);
        for _ in 0..10 {
            c.increment();
        }
        assert_eq!(c.get(), 3);
    }

    #[test]
    fn decrements_saturate() {
        let mut c = SaturatingCounter::new(2);
        c.decrement();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn threshold_check() {
        let mut c = SaturatingCounter::new(2);
        assert!(!c.at_least(2));
        c.increment();
        c.increment();
        assert!(c.at_least(2));
    }

    #[test]
    fn eight_bit_counter_saturates_at_255() {
        let mut c = SaturatingCounter::new(8);
        for _ in 0..300 {
            c.increment();
        }
        assert_eq!(c.get(), 255);
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn zero_bits_panics() {
        SaturatingCounter::new(0);
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn initial_above_max_panics() {
        SaturatingCounter::with_initial(2, 4);
    }

    #[test]
    fn paper_config_matches_section_5() {
        let cfg = ConfidenceConfig::paper();
        assert_eq!((cfg.bits, cfg.predict_at, cfg.initial), (2, 2, 0));
        assert_eq!(cfg, ConfidenceConfig::default());
    }

    #[test]
    fn always_predict_config_predicts_from_reset() {
        let cfg = ConfidenceConfig::always_predict();
        assert!(cfg.new_counter().at_least(cfg.predict_at));
    }

    #[test]
    fn display_shows_value_and_max() {
        assert_eq!(SaturatingCounter::new(2).to_string(), "0/3");
    }

    #[test]
    fn counter_never_leaves_range() {
        for_cases(64, |case, rng| {
            let bits = rng.range_u64(1, 9) as u8;
            let mut c = SaturatingCounter::new(bits);
            for _ in 0..rng.range_usize(0, 200) {
                if rng.flip() {
                    c.increment();
                } else {
                    c.decrement();
                }
                assert!(c.get() <= c.max(), "case {case}: {} > {}", c.get(), c.max());
            }
        });
    }

    #[test]
    fn increment_then_decrement_returns_when_not_saturated() {
        for_cases(64, |case, rng| {
            let bits = rng.range_u64(1, 9) as u8;
            let mut c = SaturatingCounter::new(bits);
            for _ in 0..rng.range_u64(0, 10) {
                c.increment();
            }
            let before = c.get();
            if before < c.max() {
                c.increment();
                c.decrement();
                assert_eq!(c.get(), before, "case {case}");
            }
        });
    }
}
