//! Last-value prediction.

use crate::counter::{ConfidenceConfig, SaturatingCounter};
use crate::table::{PredTable, TableGeometry};
use crate::{PredictorStats, ValuePredictor};

#[derive(Debug, Clone)]
struct Entry {
    last: u64,
    seen: bool,
    counter: SaturatingCounter,
}

impl Entry {
    fn fresh(confidence: &ConfidenceConfig) -> Entry {
        Entry { last: 0, seen: false, counter: confidence.new_counter() }
    }
}

// `PredTable` requires `Default` for allocation; real initialization happens
// in `entry_mut_for` which applies the configured confidence.
impl Default for Entry {
    fn default() -> Entry {
        Entry { last: 0, seen: false, counter: SaturatingCounter::new(2) }
    }
}

/// The last-value predictor of Lipasti & Shen (paper references \[13\], \[14\]).
///
/// Each table entry holds the most recent value produced by the instruction;
/// the prediction for the next instance is that same value. A per-entry
/// saturating counter (the classification unit) gates whether the prediction
/// is used.
///
/// # Example
///
/// ```
/// use fetchvp_predictor::{ConfidenceConfig, LastValuePredictor, TableGeometry, ValuePredictor};
///
/// let mut p = LastValuePredictor::new(TableGeometry::Infinite, ConfidenceConfig::paper());
/// for _ in 0..3 {
///     let predicted = p.lookup(0x10);
///     p.commit(0x10, 7, predicted); // constant value: perfectly last-value predictable
/// }
/// assert_eq!(p.lookup(0x10), Some(7));
/// ```
#[derive(Debug, Clone)]
pub struct LastValuePredictor {
    table: PredTable<Entry>,
    confidence: ConfidenceConfig,
    stats: PredictorStats,
}

impl LastValuePredictor {
    /// Creates a predictor with the given table geometry and classification
    /// configuration.
    pub fn new(geometry: TableGeometry, confidence: ConfidenceConfig) -> LastValuePredictor {
        LastValuePredictor {
            table: PredTable::new(geometry),
            confidence,
            stats: PredictorStats::default(),
        }
    }

    /// An infinite-table predictor with the paper's 2-bit classification.
    pub fn infinite() -> LastValuePredictor {
        LastValuePredictor::new(TableGeometry::Infinite, ConfidenceConfig::paper())
    }

    fn entry_mut_for(&mut self, pc: u64) -> &mut Entry {
        if self.table.probe(pc).is_none() {
            *self.table.entry_mut(pc) = Entry::fresh(&self.confidence);
        }
        self.table.entry_mut(pc)
    }
}

impl ValuePredictor for LastValuePredictor {
    fn name(&self) -> &str {
        "last-value"
    }

    fn lookup(&mut self, pc: u64) -> Option<u64> {
        let predict_at = self.confidence.predict_at;
        let prediction = match self.table.probe(pc) {
            Some(e) if e.seen && e.counter.at_least(predict_at) => Some(e.last),
            _ => None,
        };
        self.stats.record_lookup(prediction.is_some());
        prediction
    }

    fn commit(&mut self, pc: u64, actual: u64, predicted: Option<u64>) {
        self.stats.record_commit(actual, predicted);
        let e = self.entry_mut_for(pc);
        if e.seen {
            // Train the classifier on what the table would have predicted,
            // whether or not the prediction was confident enough to issue.
            if e.last == actual {
                e.counter.increment();
            } else {
                e.counter.decrement();
            }
        }
        e.last = actual;
        e.seen = true;
    }

    fn stats(&self) -> PredictorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train(p: &mut LastValuePredictor, pc: u64, values: &[u64]) {
        for &v in values {
            let predicted = p.lookup(pc);
            p.commit(pc, v, predicted);
        }
    }

    #[test]
    fn cold_lookup_is_none() {
        let mut p = LastValuePredictor::infinite();
        assert_eq!(p.lookup(1), None);
    }

    #[test]
    fn constant_sequence_becomes_predictable_after_confidence_builds() {
        let mut p = LastValuePredictor::infinite();
        train(&mut p, 1, &[9, 9]); // first commit seeds, second raises counter to 1
        assert_eq!(p.lookup(1), None); // counter 1 < predict_at 2
        train(&mut p, 1, &[9]);
        assert_eq!(p.lookup(1), Some(9)); // counter reached 2
    }

    #[test]
    fn changing_values_lower_confidence() {
        let mut p = LastValuePredictor::infinite();
        train(&mut p, 1, &[1, 1, 1, 1]); // confident now
        assert!(p.lookup(1).is_some());
        train(&mut p, 1, &[2, 3, 4]); // three wrong in a row
        assert_eq!(p.lookup(1), None);
    }

    #[test]
    fn always_predict_config_predicts_after_first_commit() {
        let mut p =
            LastValuePredictor::new(TableGeometry::Infinite, ConfidenceConfig::always_predict());
        train(&mut p, 7, &[42]);
        assert_eq!(p.lookup(7), Some(42));
    }

    #[test]
    fn entries_are_independent_per_pc() {
        let mut p =
            LastValuePredictor::new(TableGeometry::Infinite, ConfidenceConfig::always_predict());
        train(&mut p, 1, &[10]);
        train(&mut p, 2, &[20]);
        assert_eq!(p.lookup(1), Some(10));
        assert_eq!(p.lookup(2), Some(20));
    }

    #[test]
    fn stats_track_correctness() {
        let mut p =
            LastValuePredictor::new(TableGeometry::Infinite, ConfidenceConfig::always_predict());
        train(&mut p, 1, &[5, 5, 6]);
        let s = p.stats();
        assert_eq!(s.lookups, 3);
        assert_eq!(s.predictions, 2); // instances 2 and 3
        assert_eq!(s.correct, 1); // 5 predicted, 5 seen
        assert_eq!(s.incorrect, 1); // 5 predicted, 6 seen
        assert_eq!(s.unpredicted, 1); // cold first instance
    }

    #[test]
    fn finite_table_eviction_forgets() {
        let mut p = LastValuePredictor::new(
            TableGeometry::DirectMapped { index_bits: 1 },
            ConfidenceConfig::always_predict(),
        );
        train(&mut p, 0, &[11]);
        train(&mut p, 2, &[22]); // evicts pc 0 (same set)
        assert_eq!(p.lookup(0), None);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(LastValuePredictor::infinite().name(), "last-value");
    }
}
