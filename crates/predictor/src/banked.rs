//! The §4 banked prediction front-end: trace addresses buffer, address
//! router and value distributor.

use std::fmt;

use fetchvp_metrics::{MetricsSink, Registry};

use crate::{PredictorStats, ValuePredictor};

/// Geometry of the highly-interleaved prediction table front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BankedConfig {
    /// Number of single-ported banks; must be a power of two. The bank of a
    /// PC is selected by its low-order bits ("forming a modulo operation",
    /// §4.2).
    pub banks: u32,
}

impl BankedConfig {
    /// Creates a configuration with `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero or not a power of two.
    pub fn new(banks: u32) -> BankedConfig {
        assert!(banks.is_power_of_two(), "bank count must be a power of two, got {banks}");
        BankedConfig { banks }
    }

    fn bank_of(&self, pc: u64) -> u32 {
        (pc & (self.banks as u64 - 1)) as u32
    }
}

impl Default for BankedConfig {
    fn default() -> BankedConfig {
        BankedConfig::new(16)
    }
}

/// Why a fetch-group slot did or did not receive a prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotGrant {
    /// The slot's PC won (or was alone in) its bank and accessed the table.
    Granted,
    /// The slot carries the same PC as an earlier granted slot; the router
    /// merged the accesses and the value distributor expanded the sequence.
    Merged,
    /// A *different* PC in the same bank was granted first; this slot's
    /// access was denied and its prediction valid-bit is off.
    DeniedConflict,
}

/// Per-slot outcome of one fetch group passing through the front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotOutcome {
    /// The slot's PC.
    pub pc: u64,
    /// The bank the PC maps to.
    pub bank: u32,
    /// How the router disposed of the slot.
    pub grant: SlotGrant,
    /// The predicted value delivered by the value distributor, if any.
    /// `None` either because the access was denied or because the
    /// classification counter withheld the prediction.
    pub prediction: Option<u64>,
}

/// Aggregate front-end statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankedStats {
    /// Fetch groups processed.
    pub groups: u64,
    /// Total slots presented to the router.
    pub slots: u64,
    /// Slots granted direct table access.
    pub granted: u64,
    /// Slots served by merging with an earlier same-PC access.
    pub merged: u64,
    /// Slots denied by a bank conflict.
    pub denied: u64,
}

impl BankedStats {
    /// Fraction of slots denied by bank conflicts.
    pub fn denial_rate(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.denied as f64 / self.slots as f64
        }
    }
}

impl MetricsSink for BankedStats {
    fn export_metrics(&self, reg: &mut Registry, prefix: &str) {
        reg.counter(prefix, "groups", self.groups);
        reg.counter(prefix, "slots", self.slots);
        reg.counter(prefix, "granted", self.granted);
        reg.counter(prefix, "merged", self.merged);
        reg.counter(prefix, "bank_conflicts", self.denied);
        reg.gauge(prefix, "denial_rate", self.denial_rate());
    }
}

impl fmt::Display for BankedStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "groups {}, slots {}, granted {}, merged {}, denied {} ({:.2}%)",
            self.groups,
            self.slots,
            self.granted,
            self.merged,
            self.denied,
            100.0 * self.denial_rate()
        )
    }
}

/// The §4 hardware proposal wrapped around any [`ValuePredictor`].
///
/// Each cycle, the addresses of the instructions in the fetched trace are
/// written to the *trace addresses buffer* and presented to the *address
/// router*, which resolves bank conflicts:
///
/// 1. **Different PCs, same bank** — only the earliest instruction in trace
///    order is granted; later ones are denied and marked invalid.
/// 2. **Same PC appearing multiple times** (e.g. several iterations of a
///    loop inside one trace-cache line) — the accesses are *merged* into a
///    single table access; the *value distributor* then expands the
///    returned `(last, stride)` pair into the sequence `X, X+Δ, X+2Δ, …` and
///    assigns one element to each copy.
///
/// The expansion is realized by the wrapped predictor's speculative-update
/// semantics: one [`ValuePredictor::lookup`] per merged copy yields exactly
/// the distributor's sequence (and a last-value inner predictor naturally
/// replicates the same value).
///
/// # Example
///
/// ```
/// use fetchvp_predictor::{
///     BankedConfig, BankedFrontEnd, ConfidenceConfig, StridePredictor, TableGeometry,
///     ValuePredictor,
/// };
/// use fetchvp_predictor::banked::SlotGrant;
///
/// let inner = StridePredictor::new(TableGeometry::Infinite, ConfidenceConfig::always_predict());
/// let mut fe = BankedFrontEnd::new(BankedConfig::new(4), inner);
/// // Train PC 8 on stride 2 (values 0, 2).
/// for v in [0u64, 2] {
///     let p = fe.inner_mut().lookup(8);
///     fe.inner_mut().commit(8, v, p);
/// }
/// // A trace containing three copies of PC 8 (three loop iterations):
/// let out = fe.predict_group(&[8, 8, 8]);
/// assert_eq!(out[0].grant, SlotGrant::Granted);
/// assert_eq!(out[1].grant, SlotGrant::Merged);
/// assert_eq!(out[0].prediction, Some(4));
/// assert_eq!(out[1].prediction, Some(6));
/// assert_eq!(out[2].prediction, Some(8));
/// ```
#[derive(Debug, Clone)]
pub struct BankedFrontEnd<P> {
    config: BankedConfig,
    inner: P,
    stats: BankedStats,
}

impl<P: ValuePredictor> BankedFrontEnd<P> {
    /// Wraps `inner` behind a banked front-end with the given geometry.
    pub fn new(config: BankedConfig, inner: P) -> BankedFrontEnd<P> {
        BankedFrontEnd { config, inner, stats: BankedStats::default() }
    }

    /// The front-end geometry.
    pub fn config(&self) -> BankedConfig {
        self.config
    }

    /// Access to the wrapped predictor (e.g. for training).
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }

    /// A view of the wrapped predictor.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Consumes the front-end, returning the wrapped predictor.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Accumulated router statistics.
    pub fn banked_stats(&self) -> BankedStats {
        self.stats
    }

    /// Routes one fetch group (the PCs of the value-producing instructions
    /// fetched this cycle, in trace order) through the router, the table
    /// banks and the value distributor.
    ///
    /// Returns one [`SlotOutcome`] per input slot, in the same order.
    pub fn predict_group(&mut self, pcs: &[u64]) -> Vec<SlotOutcome> {
        self.stats.groups += 1;
        self.stats.slots += pcs.len() as u64;

        // The address router: per bank, the earliest PC in trace order wins;
        // later slots with the *same* PC merge onto the winner, others are
        // denied. `winner[bank]` is the granted PC for this cycle.
        let mut winner: Vec<Option<u64>> = vec![None; self.config.banks as usize];
        let mut out = Vec::with_capacity(pcs.len());
        for &pc in pcs {
            let bank = self.config.bank_of(pc);
            let grant = match winner[bank as usize] {
                None => {
                    winner[bank as usize] = Some(pc);
                    SlotGrant::Granted
                }
                Some(w) if w == pc => SlotGrant::Merged,
                Some(_) => SlotGrant::DeniedConflict,
            };
            // The value distributor: granted/merged slots draw consecutive
            // speculative lookups from the (single) table access; denied
            // slots get no prediction and leave predictor state untouched.
            let prediction = match grant {
                SlotGrant::Granted | SlotGrant::Merged => self.inner.lookup(pc),
                SlotGrant::DeniedConflict => None,
            };
            match grant {
                SlotGrant::Granted => self.stats.granted += 1,
                SlotGrant::Merged => self.stats.merged += 1,
                SlotGrant::DeniedConflict => self.stats.denied += 1,
            }
            out.push(SlotOutcome { pc, bank, grant, prediction });
        }
        out
    }

    /// Commits one dynamic instance's actual value (delegates to the wrapped
    /// predictor). `predicted` must be the `prediction` field of the slot's
    /// [`SlotOutcome`].
    pub fn commit(&mut self, pc: u64, actual: u64, predicted: Option<u64>) {
        self.inner.commit(pc, actual, predicted);
    }

    /// The wrapped predictor's statistics.
    pub fn predictor_stats(&self) -> PredictorStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::ConfidenceConfig;
    use crate::last_value::LastValuePredictor;
    use crate::stride::StridePredictor;
    use crate::table::TableGeometry;
    use fetchvp_testutil::for_cases;

    fn stride_fe(banks: u32) -> BankedFrontEnd<StridePredictor> {
        let inner =
            StridePredictor::new(TableGeometry::Infinite, ConfidenceConfig::always_predict());
        BankedFrontEnd::new(BankedConfig::new(banks), inner)
    }

    fn train(fe: &mut BankedFrontEnd<StridePredictor>, pc: u64, values: &[u64]) {
        for &v in values {
            let p = fe.inner_mut().lookup(pc);
            fe.inner_mut().commit(pc, v, p);
        }
    }

    #[test]
    fn distinct_banks_all_granted() {
        let mut fe = stride_fe(4);
        let out = fe.predict_group(&[0, 1, 2, 3]);
        assert!(out.iter().all(|s| s.grant == SlotGrant::Granted));
        assert_eq!(fe.banked_stats().denied, 0);
    }

    #[test]
    fn different_pcs_same_bank_conflict_grants_earliest() {
        let mut fe = stride_fe(4);
        // PCs 1 and 5 both map to bank 1.
        let out = fe.predict_group(&[1, 5]);
        assert_eq!(out[0].grant, SlotGrant::Granted);
        assert_eq!(out[1].grant, SlotGrant::DeniedConflict);
        assert_eq!(out[1].prediction, None);
        assert_eq!(fe.banked_stats().denied, 1);
    }

    #[test]
    fn same_pc_copies_are_merged_with_stride_expansion() {
        let mut fe = stride_fe(4);
        train(&mut fe, 8, &[100, 107]); // stride 7
        let out = fe.predict_group(&[8, 8, 8]);
        assert_eq!(out[0].prediction, Some(114));
        assert_eq!(out[1].prediction, Some(121));
        assert_eq!(out[2].prediction, Some(128));
        assert_eq!(out[1].grant, SlotGrant::Merged);
        assert_eq!(fe.banked_stats().merged, 2);
    }

    #[test]
    fn last_value_inner_replicates_same_value_to_merged_copies() {
        let inner =
            LastValuePredictor::new(TableGeometry::Infinite, ConfidenceConfig::always_predict());
        let mut fe = BankedFrontEnd::new(BankedConfig::new(4), inner);
        let p = fe.inner_mut().lookup(4);
        fe.inner_mut().commit(4, 55, p);
        let out = fe.predict_group(&[4, 4, 4]);
        assert!(out.iter().all(|s| s.prediction == Some(55)));
    }

    #[test]
    fn denied_slot_does_not_perturb_predictor_state() {
        let mut fe = stride_fe(4);
        train(&mut fe, 8, &[0, 3]); // stride 3; next prediction 6
                                    // PC 12 maps to bank 0 like PC 8; 8 wins, 12 denied.
        let out = fe.predict_group(&[8, 12]);
        assert_eq!(out[0].prediction, Some(6));
        assert_eq!(out[1].prediction, None);
        // The denied access consumed no lookup for PC 12: a later private
        // lookup still sees a cold entry.
        assert_eq!(fe.inner_mut().lookup(12), None);
    }

    #[test]
    fn mixed_group_loop_body_example_from_figure_4_2() {
        // Three iterations of a loop body {A, i++, C, Branch} fetched at
        // once: copies of every PC appear three times. With enough banks
        // there are no cross-PC conflicts, and the "i++" instruction gets
        // the sequence X, X+delta, X+2*delta.
        let mut fe = stride_fe(16);
        train(&mut fe, 1, &[40, 41]); // the i++ instruction, stride 1
        let group = [0u64, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3];
        let out = fe.predict_group(&group);
        let i_preds: Vec<_> = out.iter().filter(|s| s.pc == 1).map(|s| s.prediction).collect();
        assert_eq!(i_preds, [Some(42), Some(43), Some(44)]);
    }

    #[test]
    fn stats_accumulate_across_groups() {
        let mut fe = stride_fe(2);
        fe.predict_group(&[0, 1]);
        fe.predict_group(&[0, 2, 4]); // 2 and 4 conflict with 0 in bank 0
        let s = fe.banked_stats();
        assert_eq!(s.groups, 2);
        assert_eq!(s.slots, 5);
        assert_eq!(s.granted, 3);
        assert_eq!(s.denied, 2);
        assert!(s.denial_rate() > 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_banks_panics() {
        BankedConfig::new(3);
    }

    #[test]
    fn display_stats() {
        let fe = stride_fe(2);
        assert!(fe.banked_stats().to_string().contains("groups 0"));
    }

    /// Router invariants: every slot gets exactly one disposition; at most
    /// one PC is granted per bank; merges always follow a granted slot with
    /// the same PC.
    #[test]
    fn router_dispositions_are_consistent() {
        for_cases(64, |case, rng| {
            let pcs = rng.vec_with(1, 24, |r| r.below(64));
            let mut fe = stride_fe(8);
            let out = fe.predict_group(&pcs);
            assert_eq!(out.len(), pcs.len(), "case {case}");
            let mut granted_per_bank = std::collections::HashMap::new();
            for s in &out {
                match s.grant {
                    SlotGrant::Granted => {
                        assert!(
                            granted_per_bank.insert(s.bank, s.pc).is_none(),
                            "case {case}: two grants in bank {}",
                            s.bank
                        );
                    }
                    SlotGrant::Merged => {
                        assert_eq!(granted_per_bank.get(&s.bank), Some(&s.pc), "case {case}");
                    }
                    SlotGrant::DeniedConflict => {
                        let w = granted_per_bank.get(&s.bank);
                        assert!(w.is_some() && *w.unwrap() != s.pc, "case {case}");
                        assert_eq!(s.prediction, None, "case {case}");
                    }
                }
            }
            let s = fe.banked_stats();
            assert_eq!(s.granted + s.merged + s.denied, pcs.len() as u64, "case {case}");
        });
    }
}
