//! Table 3.1 — the SPECint95 benchmark suite, plus measured trace
//! characteristics of the synthetic stand-ins.

use crate::report::{num, Table};
use crate::sweep::Sweep;
use crate::ExperimentConfig;

/// Per-benchmark descriptions and trace statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Table31Result {
    /// `(name, description, instructions, taken-control %, value-producing %,
    /// avg run length)` in suite order.
    pub rows: Vec<(String, String, u64, f64, f64, f64)>,
}

impl Table31Result {
    /// Renders as a markdown table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Table 3.1 — Spec95 integer benchmarks (synthetic stand-ins)",
            &[
                "benchmark",
                "description",
                "instructions",
                "taken ctl %",
                "value-producing %",
                "avg run",
            ],
        );
        for (name, desc, instrs, taken, vp, run) in &self.rows {
            t.row(&[
                name.clone(),
                desc.clone(),
                instrs.to_string(),
                num(100.0 * taken),
                num(100.0 * vp),
                num(*run),
            ]);
        }
        t
    }
}

/// Runs the measurement serially.
pub fn run(cfg: &ExperimentConfig) -> Table31Result {
    run_with(&Sweep::serial(cfg))
}

/// Runs the measurement on a [`Sweep`], one job per benchmark.
pub fn run_with(sweep: &Sweep) -> Table31Result {
    let rows = sweep.per_workload(|workload, trace| {
        let s = trace.stats();
        (
            workload.description().to_string(),
            s.total,
            s.taken_control_rate(),
            s.value_producing_rate(),
            s.avg_run_length(),
        )
    });
    Table31Result {
        rows: rows
            .into_iter()
            .map(|(n, (desc, total, taken, vp, run))| (n.to_string(), desc, total, taken, vp, run))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lists_all_eight_benchmarks_with_descriptions() {
        let r = run(&ExperimentConfig { trace_len: 5_000, ..ExperimentConfig::default() });
        assert_eq!(r.rows.len(), 8);
        assert!(r.rows.iter().all(|(_, desc, ..)| !desc.is_empty()));
        let t = r.to_table();
        assert!(t.to_string().contains("Lisp interpreter"));
    }
}
