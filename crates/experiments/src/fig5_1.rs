//! Figure 5.1 — value-prediction speedup on the realistic machine with an
//! ideal branch predictor, sweeping the number of taken branches fetched
//! per cycle.
//!
//! Paper shape: ≈3% average speedup at 1 taken branch/cycle, rising to
//! ≈50% at 4 and beyond.

use fetchvp_core::{BtbKind, FrontEnd, MachineConfig, RealisticConfig, VpConfig};

use crate::chart::BarChart;
use crate::report::{pct, Table};
use crate::sweep::Sweep;
use crate::{mean, ExperimentConfig};

/// The taken-branch allowances the paper sweeps (`None` = unlimited; the
/// paper uses the decode width, 40, as "unlimited").
pub const TAKEN_SWEEP: [Option<u32>; 5] = [Some(1), Some(2), Some(3), Some(4), None];

/// Labels for [`TAKEN_SWEEP`] columns.
pub fn sweep_labels() -> Vec<String> {
    TAKEN_SWEEP
        .iter()
        .map(|n| match n {
            Some(k) => format!("n={k}"),
            None => "unlimited".to_string(),
        })
        .collect()
}

/// Per-benchmark speedups for one BTB choice across [`TAKEN_SWEEP`].
#[derive(Debug, Clone, PartialEq)]
pub struct TakenSweepResult {
    /// Which figure this instance reproduces (for the table title).
    pub title: String,
    /// `(benchmark, speedups[allowance])` in suite order.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl TakenSweepResult {
    /// The per-allowance averages.
    pub fn averages(&self) -> Vec<f64> {
        (0..TAKEN_SWEEP.len())
            .map(|i| mean(&self.rows.iter().map(|(_, s)| s[i]).collect::<Vec<_>>()))
            .collect()
    }

    /// The speedups of one benchmark.
    pub fn speedups_of(&self, name: &str) -> Option<&[f64]> {
        self.rows.iter().find(|(n, _)| n == name).map(|(_, s)| s.as_slice())
    }

    /// Renders as a terminal bar chart.
    pub fn to_chart(&self) -> BarChart {
        let mut c = BarChart::new(self.title.clone(), 40);
        let labels = sweep_labels();
        for (name, speedups) in &self.rows {
            let bars: Vec<(&str, f64)> =
                labels.iter().map(String::as_str).zip(speedups.iter().copied()).collect();
            c.row(name.clone(), &bars);
        }
        c
    }

    /// Renders as a markdown table.
    pub fn to_table(&self) -> Table {
        let headers: Vec<String> =
            std::iter::once("benchmark".to_string()).chain(sweep_labels()).collect();
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(self.title.clone(), &headers_ref);
        for (name, speedups) in &self.rows {
            let mut cells = vec![name.clone()];
            cells.extend(speedups.iter().map(|&s| pct(s)));
            t.row(&cells);
        }
        let mut avg = vec!["avg".to_string()];
        avg.extend(self.averages().iter().map(|&s| pct(s)));
        t.row(&avg);
        t
    }
}

/// Runs the taken-branch sweep with the given BTB (shared by Figures 5.1
/// and 5.2): per benchmark, the base/VP machine pairs of all five
/// allowances advance in batched lockstep over one trace walk.
pub(crate) fn taken_sweep(sweep: &Sweep, btb: BtbKind, title: &str) -> TakenSweepResult {
    let configs: Vec<MachineConfig> = TAKEN_SWEEP
        .iter()
        .flat_map(|&max_taken| {
            let fe = FrontEnd::Conventional { width: 40, max_taken, btb };
            [VpConfig::None, VpConfig::stride_infinite()]
                .map(|vp| MachineConfig::Realistic(RealisticConfig::paper(fe, vp)))
        })
        .collect();
    let rows = sweep
        .machines(&configs)
        .into_iter()
        .map(|(name, results)| {
            let speedups =
                results.chunks_exact(2).map(|pair| pair[1].speedup_over(&pair[0])).collect();
            (name.to_string(), speedups)
        })
        .collect();
    TakenSweepResult { title: title.to_string(), rows }
}

/// Runs the experiment serially.
pub fn run(cfg: &ExperimentConfig) -> TakenSweepResult {
    run_with(&Sweep::serial(cfg))
}

/// Runs the experiment on a [`Sweep`].
pub fn run_with(sweep: &Sweep) -> TakenSweepResult {
    taken_sweep(
        sweep,
        BtbKind::Perfect,
        "Figure 5.1 — value-prediction speedup vs taken branches/cycle (ideal BTB)",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_grows_with_taken_branch_allowance() {
        let r = run(&ExperimentConfig::quick());
        let avg = r.averages();
        assert!(avg[0] < 0.20, "n=1 average {:.2} too large", avg[0]);
        assert!(*avg.last().unwrap() > avg[0] + 0.05, "no growth across the sweep: {avg:?}");
        for w in avg.windows(2) {
            assert!(w[1] >= w[0] - 0.03, "averages not monotone: {avg:?}");
        }
    }

    #[test]
    fn table_shape() {
        let r = run(&ExperimentConfig { trace_len: 5_000, ..ExperimentConfig::default() });
        assert_eq!(r.to_table().num_rows(), 9);
        assert_eq!(sweep_labels().last().unwrap(), "unlimited");
    }
}
