//! The `fetchvp bench` standard workload suite and its JSON reports.
//!
//! A bench run executes, for every benchmark of the extended suite, a fixed
//! set of machine configurations spanning every subsystem the workspace
//! counts — the §3 ideal machine, the §5 conventional front-end behind the
//! §4 banked prediction table, the §2.2 branch address cache and the §5
//! trace cache — and records per-workload:
//!
//! * **throughput** — wall-clock seconds and simulated instructions per
//!   second (the number the CI regression gate compares);
//! * **counters** — the merged, namespaced
//!   [`Registry`] snapshot of every machine run
//!   plus the trace statistics (`trace.*`, `predictor.*`,
//!   `predictor.banked.*`, `fetch.bpred.*`, `fetch.bac.*`,
//!   `fetch.trace_cache.*`, `sched.*`, `machine.*`).
//!
//! Counters are bit-deterministic for a given `(trace_len, seed)` —
//! independent of `--jobs` and of the host — while the throughput numbers
//! are what tracks simulator performance over time in the committed
//! `BENCH_<date>.json` trajectory. `scripts/bench_compare.sh` (or
//! `fetchvp bench-compare`) diffs two reports and fails on a throughput
//! regression beyond a threshold; per-workload cells that ran under
//! [`MIN_GATE_WALL_SECONDS`] warn instead of failing (they are too quick
//! to time), while the suite total always gates.
//!
//! # Example
//!
//! ```no_run
//! use fetchvp_experiments::{bench, ExperimentConfig, Sweep};
//!
//! let sweep = Sweep::new(&ExperimentConfig::quick());
//! let report = bench::run_with(&sweep, true);
//! println!("{}", report.to_json().to_json());
//! ```

use std::time::{Instant, SystemTime, UNIX_EPOCH};

use fetchvp_core::{
    run_batch, BtbKind, FrontEnd, IdealConfig, MachineConfig, RealisticConfig, VpConfig,
};
use fetchvp_fetch::{BacConfig, TraceCacheConfig};
use fetchvp_metrics::{Json, MetricsSink, Registry};
use fetchvp_predictor::BankedConfig;
use fetchvp_trace::Trace;
use fetchvp_tracestore::{run_batch_store, stream_store_stats, CacheCounters, TraceStore};

use crate::{ExperimentConfig, Sweep};

/// Schema identifier embedded in every report.
pub const SCHEMA: &str = "fetchvp-bench/v1";

/// Default regression threshold of the compare gate, as a fraction (15%).
pub const DEFAULT_THRESHOLD: f64 = 0.15;

/// Minimum per-workload wall time (seconds, in both reports) for a
/// regression to *fail* the gate. Quick-config cells run in ~10 ms, where
/// scheduler jitter alone exceeds the threshold; below this floor a
/// regression is demoted to a warning. The suite total always gates.
pub const MIN_GATE_WALL_SECONDS: f64 = 0.05;

/// One benchmark's bench result.
#[derive(Debug, Clone)]
pub struct WorkloadBench {
    /// Benchmark name (extended-suite order).
    pub name: &'static str,
    /// Dynamic instructions simulated across all machine configurations.
    pub instructions: u64,
    /// Wall-clock seconds for this workload's cell (tracing + all machine
    /// runs).
    pub wall_seconds: f64,
    /// The merged metrics snapshot of every machine configuration.
    pub registry: Registry,
}

impl WorkloadBench {
    /// Simulated instructions per wall-clock second.
    pub fn sim_ips(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.wall_seconds
        }
    }
}

/// A full bench run: environment, totals and per-workload sections.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// UTC date of the run (`YYYY-MM-DD`).
    pub date: String,
    /// Whether the reduced `--quick` configuration was used.
    pub quick: bool,
    /// Worker threads used.
    pub jobs: usize,
    /// Timing repetitions per workload cell (the best wall time is kept).
    pub repeat: usize,
    /// Dynamic instructions traced per benchmark.
    pub trace_len: u64,
    /// Workload generation seed.
    pub seed: u64,
    /// Sum of the per-workload best wall times: the suite's simulation
    /// seconds, excluding trace generation and harness overhead (which are
    /// not what the throughput gate tracks).
    pub wall_seconds: f64,
    /// On-disk trace-cache effectiveness (hits/misses/bytes), when the run
    /// used a trace directory. A warm second run shows zero misses.
    pub trace_cache: Option<CacheCounters>,
    /// Per-benchmark results, extended-suite order.
    pub workloads: Vec<WorkloadBench>,
}

impl BenchReport {
    /// Total simulated instructions across all workloads.
    pub fn total_instructions(&self) -> u64 {
        self.workloads.iter().map(|w| w.instructions).sum()
    }

    /// Suite-level simulated instructions per wall-clock second.
    pub fn sim_ips(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.total_instructions() as f64 / self.wall_seconds
        }
    }

    /// The default output filename, `BENCH_<date>.json`.
    pub fn filename(&self) -> String {
        format!("BENCH_{}.json", self.date)
    }

    /// Serializes the full report.
    pub fn to_json(&self) -> Json {
        let env = Json::object([
            ("arch".to_string(), Json::Str(std::env::consts::ARCH.to_string())),
            ("os".to_string(), Json::Str(std::env::consts::OS.to_string())),
            ("host_cpus".to_string(), Json::UInt(crate::default_jobs() as u64)),
            ("jobs".to_string(), Json::UInt(self.jobs as u64)),
            ("repeat".to_string(), Json::UInt(self.repeat as u64)),
            ("quick".to_string(), Json::Bool(self.quick)),
            ("trace_len".to_string(), Json::UInt(self.trace_len)),
            ("seed".to_string(), Json::UInt(self.seed)),
        ]);
        let totals = Json::object([
            ("instructions".to_string(), Json::UInt(self.total_instructions())),
            ("wall_seconds".to_string(), Json::Float(self.wall_seconds)),
            ("sim_ips".to_string(), Json::Float(self.sim_ips())),
        ]);
        let workloads = Json::object(self.workloads.iter().map(|w| {
            (
                w.name.to_string(),
                Json::object([
                    ("instructions".to_string(), Json::UInt(w.instructions)),
                    ("wall_seconds".to_string(), Json::Float(w.wall_seconds)),
                    ("sim_ips".to_string(), Json::Float(w.sim_ips())),
                    ("counters".to_string(), w.registry.counters_json()),
                    ("gauges".to_string(), w.registry.gauges_json()),
                ]),
            )
        }));
        let mut pairs = vec![
            ("schema".to_string(), Json::Str(SCHEMA.to_string())),
            ("date".to_string(), Json::Str(self.date.clone())),
            ("env".to_string(), env),
            ("totals".to_string(), totals),
        ];
        if let Some(c) = self.trace_cache {
            pairs.push((
                "trace_cache".to_string(),
                Json::object([
                    ("hits".to_string(), Json::UInt(c.hits)),
                    ("misses".to_string(), Json::UInt(c.misses)),
                    ("bytes".to_string(), Json::UInt(c.bytes)),
                ]),
            ));
        }
        pairs.push(("workloads".to_string(), workloads));
        Json::object(pairs)
    }
}

/// Labels of the bench machine set, in [`bench_configs`] order.
const MACHINE_LABELS: [&str; 4] = ["ideal16", "conv4_banked", "bac", "trace_cache"];

/// The machine configurations a bench cell runs, spanning every counted
/// subsystem. All four advance in batched lockstep over one trace walk.
fn bench_configs() -> [MachineConfig; 4] {
    let btb = BtbKind::two_level_paper();
    [
        // §3 ideal machine, fetch 16, stride VP: predictor.* and sched.*.
        MachineConfig::Ideal(IdealConfig {
            fetch_rate: 16,
            vp: VpConfig::stride_infinite(),
            ..IdealConfig::default()
        }),
        // §5 conventional fetch behind the §4 banked table:
        // predictor.banked.*.
        MachineConfig::Realistic(
            RealisticConfig::paper(
                FrontEnd::Conventional { width: 40, max_taken: Some(4), btb },
                VpConfig::stride_infinite(),
            )
            .with_banked(BankedConfig::default()),
        ),
        // §2.2 branch address cache: fetch.bac.*.
        MachineConfig::Realistic(RealisticConfig::paper(
            FrontEnd::BranchAddressCache { config: BacConfig::classic(), btb },
            VpConfig::stride_infinite(),
        )),
        // §5 trace cache: fetch.trace_cache.*.
        MachineConfig::Realistic(RealisticConfig::paper(
            FrontEnd::TraceCache { config: TraceCacheConfig::paper(), btb },
            VpConfig::stride_infinite(),
        )),
    ]
}

/// Runs the bench machine set over an in-memory trace. Returns
/// `(label, simulated instructions, metrics)` per run.
fn machine_runs(trace: &Trace) -> Vec<(&'static str, u64, Registry)> {
    run_batch(trace, &bench_configs())
        .into_iter()
        .zip(MACHINE_LABELS)
        .map(|(r, label)| (label, r.instructions, r.metrics()))
        .collect()
}

/// [`machine_runs`] over an on-disk store (chunked replay, byte-identical
/// metrics).
fn machine_runs_store(store: &TraceStore) -> Vec<(&'static str, u64, Registry)> {
    run_batch_store(store, &bench_configs())
        .unwrap_or_else(|e| panic!("out-of-core bench replay of `{}`: {e}", store.name()))
        .into_iter()
        .zip(MACHINE_LABELS)
        .map(|(r, label)| (label, r.instructions, r.metrics()))
        .collect()
}

/// Runs the bench suite on an existing [`Sweep`] (its configuration decides
/// trace length and seed; its job count decides parallelism), timing each
/// cell once.
pub fn run_with(sweep: &Sweep, quick: bool) -> BenchReport {
    run_repeat(sweep, quick, 1)
}

/// Like [`run_with`] but times each workload cell `repeat` times and keeps
/// the best (minimum) wall time — the standard noise-trimming estimator:
/// scheduler preemption and cache-cold effects only ever *add* time, so the
/// minimum is the closest observation to the true cost. The counters are
/// deterministic across repeats, so only the first repetition's registry is
/// kept.
pub fn run_repeat(sweep: &Sweep, quick: bool, repeat: usize) -> BenchReport {
    let repeat = repeat.max(1);
    let cfg = *sweep.config();
    // The counters are deterministic across both paths (`run_batch_store`
    // is byte-identical to `run_batch`), so out-of-core only changes where
    // the wall time goes.
    let cells: Vec<(&'static str, (u64, f64, Registry))> = if sweep.cache().out_of_core() {
        sweep.per_workload_store_extended(|_, store| {
            bench_cell(repeat, &|| {
                let stats = stream_store_stats(store)
                    .unwrap_or_else(|e| panic!("streaming stats of `{}`: {e}", store.name()));
                (stats, machine_runs_store(store))
            })
        })
    } else {
        sweep
            .cells_extended(&[()], |_, trace, ()| {
                bench_cell(repeat, &|| (trace.stats(), machine_runs(trace)))
            })
            .into_iter()
            .map(|(name, mut rs)| (name, rs.pop().expect("one bench result per workload")))
            .collect()
    };
    let workloads: Vec<WorkloadBench> = cells
        .into_iter()
        .map(|(name, (instructions, wall_seconds, registry))| WorkloadBench {
            name,
            instructions,
            wall_seconds,
            registry,
        })
        .collect();
    BenchReport {
        date: iso_date_today(),
        quick,
        jobs: sweep.jobs(),
        repeat,
        trace_len: cfg.trace_len,
        seed: cfg.workloads.seed,
        wall_seconds: workloads.iter().map(|w| w.wall_seconds).sum(),
        trace_cache: sweep.trace_counters(),
        workloads,
    }
}

/// Times one workload's bench cell `repeat` times (best wall time kept,
/// first repetition's deterministic counters kept).
fn bench_cell(
    repeat: usize,
    run: &dyn Fn() -> (fetchvp_trace::TraceStats, Vec<(&'static str, u64, Registry)>),
) -> (u64, f64, Registry) {
    let mut best = f64::INFINITY;
    let mut instructions = 0u64;
    let mut registry = Registry::new();
    for rep in 0..repeat {
        let cell_start = Instant::now();
        let (stats, runs) = run();
        let mut reg = Registry::new();
        stats.export_metrics(&mut reg, "trace");
        let mut instrs = 0u64;
        for (_, n, metrics) in runs {
            instrs += n;
            reg.merge(&metrics);
        }
        best = best.min(cell_start.elapsed().as_secs_f64());
        if rep == 0 {
            instructions = instrs;
            registry = reg;
        }
    }
    (instructions, best, registry)
}

/// Runs the bench suite from scratch with `jobs` workers. `quick` selects
/// the reduced [`ExperimentConfig::quick`] trace length.
pub fn run(base: &ExperimentConfig, quick: bool, jobs: usize) -> BenchReport {
    let cfg = if quick {
        ExperimentConfig { trace_len: ExperimentConfig::quick().trace_len, ..*base }
    } else {
        *base
    };
    run_with(&Sweep::with_jobs(&cfg, jobs), quick)
}

/// Today's UTC date as `YYYY-MM-DD` (no external time crates: civil date
/// from the Unix epoch, Howard Hinnant's `civil_from_days` algorithm).
pub fn iso_date_today() -> String {
    let secs =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or_default();
    let days = (secs / 86_400) as i64;
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097); // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// The outcome of comparing two bench reports.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Human-readable per-workload and total throughput deltas.
    pub lines: Vec<String>,
    /// Non-fatal observations (environment mismatches, workload set
    /// changes).
    pub warnings: Vec<String>,
    /// Throughput regressions beyond the threshold; non-empty means the
    /// gate fails.
    pub regressions: Vec<String>,
}

impl Comparison {
    /// Whether the regression gate passes.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

fn ips_of(section: &Json) -> Option<f64> {
    section.get("sim_ips").and_then(Json::as_f64)
}

/// Compares two parsed bench reports; `threshold` is the tolerated
/// throughput drop as a fraction (0.15 = a 15% slowdown fails).
///
/// Comparable sections are the suite totals and every workload present in
/// both reports. Environment differences (trace length, seed, quick flag)
/// make throughput incomparable in principle, so they are surfaced as
/// warnings rather than silently ignored.
pub fn compare(old: &Json, new: &Json, threshold: f64) -> Result<Comparison, String> {
    for (label, doc) in [("old", old), ("new", new)] {
        match doc.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => {}
            Some(other) => return Err(format!("{label} report has unknown schema `{other}`")),
            None => return Err(format!("{label} report is missing the schema field")),
        }
    }
    let mut out = Comparison::default();
    for key in ["trace_len", "seed", "quick", "jobs", "repeat"] {
        let (a, b) = (
            old.get_path("env").and_then(|e| e.get(key)),
            new.get_path("env").and_then(|e| e.get(key)),
        );
        if a != b {
            out.warnings.push(format!(
                "env.{key} differs ({} vs {}): throughput numbers may not be comparable",
                a.map_or("missing".to_string(), Json::to_json),
                b.map_or("missing".to_string(), Json::to_json),
            ));
        }
    }

    fn check(out: &mut Comparison, threshold: f64, label: &str, old_sec: &Json, new_sec: &Json) {
        let (Some(a), Some(b)) = (ips_of(old_sec), ips_of(new_sec)) else {
            out.warnings.push(format!("{label}: missing sim_ips, skipped"));
            return;
        };
        // A zero, negative or non-finite baseline makes the ratio
        // meaningless; it must not silently count as "no regression".
        if !(a.is_finite() && a > 0.0 && b.is_finite()) {
            out.warnings.push(format!(
                "{label}: degenerate sim_ips ({a} -> {b}), gate skipped for this section"
            ));
            return;
        }
        let delta = b / a - 1.0;
        out.lines
            .push(format!("{label:<12} {a:>14.0} -> {b:>14.0} instr/s  ({:+.1}%)", 100.0 * delta));
        if b < a * (1.0 - threshold) {
            // A cell too quick to time cannot fail the gate — its jitter
            // alone exceeds any sane threshold. Sections without a wall
            // time (and the suite total, which always carries one measured
            // over the whole run) gate normally.
            let wall = |sec: &Json| sec.get("wall_seconds").and_then(Json::as_f64);
            let below_floor = match (wall(old_sec), wall(new_sec)) {
                (Some(wa), Some(wb)) => wa.min(wb) < MIN_GATE_WALL_SECONDS,
                _ => false,
            };
            if below_floor {
                out.warnings.push(format!(
                    "{label}: throughput fell {:.1}% but the cell ran under {:.0} ms — \
                     too quick to time, not gated",
                    -100.0 * delta,
                    1000.0 * MIN_GATE_WALL_SECONDS
                ));
            } else {
                out.regressions.push(format!(
                    "{label}: throughput fell {:.1}% (threshold {:.1}%)",
                    -100.0 * delta,
                    100.0 * threshold
                ));
            }
        }
    }

    let empty = Json::Object(Vec::new());
    let (old_wl, new_wl) =
        (old.get("workloads").unwrap_or(&empty), new.get("workloads").unwrap_or(&empty));
    for (name, old_sec) in old_wl.as_object().unwrap_or(&[]) {
        match new_wl.get(name) {
            Some(new_sec) => check(&mut out, threshold, name, old_sec, new_sec),
            None => out.warnings.push(format!("workload `{name}` disappeared from the new report")),
        }
    }
    for (name, _) in new_wl.as_object().unwrap_or(&[]) {
        if old_wl.get(name).is_none() {
            out.warnings.push(format!("workload `{name}` is new in the new report"));
        }
    }
    if let (Some(a), Some(b)) = (old.get("totals"), new.get("totals")) {
        check(&mut out, threshold, "TOTAL", a, b);
    } else {
        out.warnings.push("totals section missing, suite-level gate skipped".to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_dates_are_correct() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // leap year
        assert_eq!(civil_from_days(19_723 + 59), (2024, 2, 29));
        assert_eq!(civil_from_days(20_666), (2026, 8, 1));
    }

    #[test]
    fn iso_date_shape() {
        let d = iso_date_today();
        assert_eq!(d.len(), 10);
        assert_eq!(d.as_bytes()[4], b'-');
        assert_eq!(d.as_bytes()[7], b'-');
    }

    fn tiny_report(ips: f64) -> Json {
        Json::parse(&format!(
            r#"{{
              "schema": "fetchvp-bench/v1",
              "env": {{"trace_len": 100, "seed": 0, "quick": true, "jobs": 1}},
              "totals": {{"instructions": 100, "wall_seconds": 1.0, "sim_ips": {ips:?}}},
              "workloads": {{"go": {{"instructions": 100, "sim_ips": {ips:?}}}}}
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn compare_passes_within_threshold() {
        let c = compare(&tiny_report(1000.0), &tiny_report(900.0), 0.15).unwrap();
        assert!(c.passed(), "{:?}", c.regressions);
        assert!(c.warnings.is_empty(), "{:?}", c.warnings);
        assert_eq!(c.lines.len(), 2); // go + TOTAL
    }

    #[test]
    fn compare_fails_beyond_threshold() {
        let c = compare(&tiny_report(1000.0), &tiny_report(800.0), 0.15).unwrap();
        assert!(!c.passed());
        assert_eq!(c.regressions.len(), 2);
    }

    /// Like [`tiny_report`] but the `go` cell carries a wall time.
    fn timed_report(ips: f64, wall: f64) -> Json {
        Json::parse(&format!(
            r#"{{
              "schema": "fetchvp-bench/v1",
              "env": {{"trace_len": 100, "seed": 0, "quick": true, "jobs": 1}},
              "totals": {{"instructions": 100, "wall_seconds": 1.0, "sim_ips": 1000.0}},
              "workloads": {{"go": {{"instructions": 100, "wall_seconds": {wall:?}, "sim_ips": {ips:?}}}}}
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn sub_floor_cells_warn_instead_of_failing() {
        // A 10 ms cell regressing 50%: jitter, not a verdict.
        let c = compare(&timed_report(1000.0, 0.010), &timed_report(500.0, 0.010), 0.15).unwrap();
        assert!(c.passed(), "{:?}", c.regressions);
        assert!(c.warnings.iter().any(|w| w.contains("too quick to time")), "{:?}", c.warnings);
    }

    #[test]
    fn well_timed_cells_still_gate() {
        let c = compare(&timed_report(1000.0, 1.0), &timed_report(500.0, 1.0), 0.15).unwrap();
        assert!(!c.passed());
        assert_eq!(c.regressions.len(), 1, "{:?}", c.regressions);
    }

    #[test]
    fn zero_baseline_warns_instead_of_passing_silently() {
        // Old gate bug: a 0.0 baseline made `delta = 0.0`, so an arbitrary
        // regression against a broken baseline always passed quietly.
        let c = compare(&tiny_report(0.0), &tiny_report(500.0), 0.15).unwrap();
        assert!(c.passed(), "degenerate sections must not fail the gate");
        let degenerate = c.warnings.iter().filter(|w| w.contains("degenerate sim_ips")).count();
        assert_eq!(degenerate, 2, "go + TOTAL should both warn: {:?}", c.warnings);
        assert!(c.lines.is_empty(), "no delta line for an unmeasurable ratio");
    }

    /// Builds a schema-correct report with `sim_ips` set to an arbitrary
    /// float (including non-finite values JSON text cannot carry).
    fn report_with_raw_ips(ips: f64) -> Json {
        let section = Json::object([
            ("instructions".to_string(), Json::UInt(100)),
            ("wall_seconds".to_string(), Json::Float(1.0)),
            ("sim_ips".to_string(), Json::Float(ips)),
        ]);
        Json::object([
            ("schema".to_string(), Json::Str(SCHEMA.to_string())),
            ("env".to_string(), Json::object([("trace_len".to_string(), Json::UInt(100))])),
            ("totals".to_string(), section.clone()),
            ("workloads".to_string(), Json::object([("go".to_string(), section)])),
        ])
    }

    #[test]
    fn non_finite_sim_ips_warns_instead_of_gating() {
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let c = compare(&report_with_raw_ips(bad), &report_with_raw_ips(500.0), 0.15).unwrap();
            assert!(c.passed(), "{bad}: {:?}", c.regressions);
            assert!(
                c.warnings.iter().any(|w| w.contains("degenerate sim_ips")),
                "{bad}: {:?}",
                c.warnings
            );
        }
    }

    #[test]
    fn compare_speedups_never_fail() {
        let c = compare(&tiny_report(1000.0), &tiny_report(5000.0), 0.15).unwrap();
        assert!(c.passed());
    }

    #[test]
    fn compare_warns_on_env_mismatch() {
        let mut fast = tiny_report(1000.0);
        if let Json::Object(pairs) = &mut fast {
            for (k, v) in pairs.iter_mut() {
                if k == "env" {
                    *v = Json::object([("trace_len".to_string(), Json::UInt(999))]);
                }
            }
        }
        let c = compare(&tiny_report(1000.0), &fast, 0.15).unwrap();
        assert!(!c.warnings.is_empty());
    }

    #[test]
    fn compare_rejects_wrong_schema() {
        let bad = Json::object([("schema".to_string(), Json::Str("nope".to_string()))]);
        assert!(compare(&bad, &tiny_report(1.0), 0.15).is_err());
        assert!(compare(&tiny_report(1.0), &bad, 0.15).is_err());
    }
}
