//! Figure 5.3 — value-prediction speedup on the realistic machine with a
//! trace-cache front-end, for both BTB choices.
//!
//! The value predictions flow through the §4 banked front-end (trace
//! addresses buffer → address router → interleaved table → value
//! distributor), since a trace-cache line can contain several copies of the
//! same instruction.
//!
//! Paper shape: with the 2-level BTB, value prediction gains more than 10%
//! on average; with an ideal BTB the average is below 40% — and both are
//! bounded by the BTB/trace-cache quality.

use fetchvp_core::{BtbKind, FrontEnd, MachineConfig, RealisticConfig, VpConfig};
use fetchvp_fetch::TraceCacheConfig;
use fetchvp_predictor::BankedConfig;

use crate::chart::BarChart;
use crate::report::{pct, Table};
use crate::sweep::Sweep;
use crate::{mean, ExperimentConfig};

/// Number of prediction-table banks in the §4 front-end ("highly
/// interleaved").
pub const BANKS: u32 = 16;

/// Per-benchmark speedups for the two BTB configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig53Result {
    /// `(benchmark, TC+2levelBTB speedup, TC+idealBTB speedup)` in suite
    /// order (the figure's two series).
    pub rows: Vec<(String, f64, f64)>,
}

impl Fig53Result {
    /// Averages `(TC+2levelBTB, TC+idealBTB)`.
    pub fn averages(&self) -> (f64, f64) {
        (
            mean(&self.rows.iter().map(|(_, a, _)| *a).collect::<Vec<_>>()),
            mean(&self.rows.iter().map(|(_, _, b)| *b).collect::<Vec<_>>()),
        )
    }

    /// The `(TC+2levelBTB, TC+idealBTB)` speedups of one benchmark.
    pub fn row_of(&self, name: &str) -> Option<(f64, f64)> {
        self.rows.iter().find(|(n, _, _)| n == name).map(|(_, a, b)| (*a, *b))
    }

    /// Renders as a terminal bar chart.
    pub fn to_chart(&self) -> BarChart {
        let mut c = BarChart::new("Figure 5.3 — value-prediction speedup with a trace cache", 40);
        for (name, two_level, ideal) in &self.rows {
            c.row(name.clone(), &[("TC+2levelBTB", *two_level), ("TC+idealBTB", *ideal)]);
        }
        c
    }

    /// Renders as a markdown table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Figure 5.3 — value-prediction speedup with a trace cache",
            &["benchmark", "TC+2levelBTB", "TC+idealBTB"],
        );
        for (name, two_level, ideal) in &self.rows {
            t.row(&[name.clone(), pct(*two_level), pct(*ideal)]);
        }
        let (a2, ai) = self.averages();
        t.row(&["avg".into(), pct(a2), pct(ai)]);
        t
    }
}

/// The base/VP machine pair for one BTB choice.
fn config_pair(btb: BtbKind) -> [MachineConfig; 2] {
    let fe = FrontEnd::TraceCache { config: TraceCacheConfig::paper(), btb };
    [
        MachineConfig::Realistic(RealisticConfig::paper(fe, VpConfig::None)),
        MachineConfig::Realistic(
            RealisticConfig::paper(fe, VpConfig::stride_infinite())
                .with_banked(BankedConfig::new(BANKS)),
        ),
    ]
}

/// Runs the experiment serially.
pub fn run(cfg: &ExperimentConfig) -> Fig53Result {
    run_with(&Sweep::serial(cfg))
}

/// Runs the experiment on a [`Sweep`], one job per (benchmark, BTB) cell.
///
/// Matching the paper's figure, whose x-axis includes the SPECfp benchmark
/// `mgrid` alongside the integer suite, this runner uses the extended
/// suite (the only consumer of the trace cache's ninth slot).
pub fn run_with(sweep: &Sweep) -> Fig53Result {
    let configs: Vec<MachineConfig> =
        [BtbKind::two_level_paper(), BtbKind::Perfect].into_iter().flat_map(config_pair).collect();
    let rows = sweep
        .machines_extended(&configs)
        .into_iter()
        .map(|(n, r)| (n.to_string(), r[1].speedup_over(&r[0]), r[3].speedup_over(&r[2])))
        .collect();
    Fig53Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_cache_value_prediction_pays_off_on_average() {
        let r = run(&ExperimentConfig::quick());
        let (two_level, ideal) = r.averages();
        // Paper: >10% with the 2-level BTB; <40%-ish with the ideal BTB.
        assert!(two_level > 0.02, "TC+2level average {two_level:.2} too small");
        assert!(ideal > two_level - 0.05, "ideal BTB should not trail the 2-level one");
    }

    #[test]
    fn table_shape_includes_mgrid() {
        let r = run(&ExperimentConfig { trace_len: 5_000, ..ExperimentConfig::default() });
        assert_eq!(r.to_table().num_rows(), 10); // 9 benchmarks + avg
        assert!(r.row_of("go").is_some());
        assert!(r.row_of("mgrid").is_some(), "the paper's figure includes mgrid");
    }
}
