//! Terminal bar charts for the paper's figures.
//!
//! The paper's results are bar charts; [`BarChart`] renders the same
//! grouped-bar layout in plain text so `fetchvp <figure> --chart` shows the
//! figure, not just its table.

use std::fmt;

/// A grouped horizontal bar chart.
///
/// Rows are benchmarks; each row holds one bar per series (e.g. one per
/// fetch rate). Bars scale to the chart's maximum value.
///
/// # Example
///
/// ```
/// use fetchvp_experiments::chart::BarChart;
///
/// let mut c = BarChart::new("Demo", 20);
/// c.row("go", &[("BW=4", 0.1), ("BW=40", 0.5)]);
/// let text = c.to_string();
/// assert!(text.contains("go"));
/// assert!(text.contains("BW=40"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BarChart {
    title: String,
    width: usize,
    rows: Vec<(String, Vec<(String, f64)>)>,
}

impl BarChart {
    /// Creates an empty chart whose longest bar spans `width` columns.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(title: impl Into<String>, width: usize) -> BarChart {
        assert!(width > 0, "chart width must be positive");
        BarChart { title: title.into(), width, rows: Vec::new() }
    }

    /// Appends one row (a labelled group of bars).
    pub fn row(&mut self, label: impl Into<String>, bars: &[(&str, f64)]) -> &mut BarChart {
        self.rows.push((label.into(), bars.iter().map(|(l, v)| (l.to_string(), *v)).collect()));
        self
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    fn max_value(&self) -> f64 {
        self.rows.iter().flat_map(|(_, bars)| bars.iter().map(|(_, v)| v.abs())).fold(0.0, f64::max)
    }
}

impl fmt::Display for BarChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let max = self.max_value();
        let label_w =
            self.rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0).max("benchmark".len());
        let series_w = self
            .rows
            .iter()
            .flat_map(|(_, bars)| bars.iter().map(|(l, _)| l.len()))
            .max()
            .unwrap_or(0);
        for (label, bars) in &self.rows {
            for (i, (series, value)) in bars.iter().enumerate() {
                let row_label = if i == 0 { label.as_str() } else { "" };
                let filled = if max > 0.0 {
                    ((value.abs() / max) * self.width as f64).round() as usize
                } else {
                    0
                };
                let bar: String = std::iter::repeat_n('█', filled).collect();
                let sign = if *value < 0.0 { "-" } else { "" };
                writeln!(
                    f,
                    "{row_label:>label_w$} {series:>series_w$} |{bar:<width$}| {sign}{:.1}%",
                    100.0 * value.abs(),
                    width = self.width,
                )?;
            }
            if bars.len() > 1 {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_the_maximum() {
        let mut c = BarChart::new("T", 10);
        c.row("a", &[("s", 0.5)]);
        c.row("b", &[("s", 1.0)]);
        let text = c.to_string();
        let full: String = std::iter::repeat_n('█', 10).collect();
        let half: String = std::iter::repeat_n('█', 5).collect();
        assert!(text.contains(&full));
        assert!(text.contains(&format!("{half} ")), "{text}");
    }

    #[test]
    fn negative_values_render_with_sign() {
        let mut c = BarChart::new("T", 10);
        c.row("a", &[("s", -0.25), ("t", 0.5)]);
        let text = c.to_string();
        assert!(text.contains("-25.0%"));
        assert!(text.contains("50.0%"));
    }

    #[test]
    fn empty_chart_renders_title_only() {
        let c = BarChart::new("Empty", 10);
        assert_eq!(c.to_string(), "Empty\n");
        assert_eq!(c.num_rows(), 0);
    }

    #[test]
    fn zero_values_render_empty_bars() {
        let mut c = BarChart::new("T", 8);
        c.row("a", &[("s", 0.0)]);
        assert!(c.to_string().contains("| 0.0%"));
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        BarChart::new("T", 0);
    }
}
