//! Ablation studies beyond the paper's figures.
//!
//! The paper fixes most design parameters (window 40, 2-bit classification,
//! one predictor, one trace-cache policy). These runners sweep the choices
//! `DESIGN.md` calls out, quantifying how sensitive the headline result is
//! to each:
//!
//! * [`bank_sweep`] — how many banks the §4 interleaved prediction table
//!   needs before router denials stop costing performance.
//! * [`window_sweep`] — the instruction-window size the ideal machine needs
//!   before fetch bandwidth (not the window) is the binding constraint.
//! * [`confidence_sweep`] — the classification threshold's
//!   coverage/accuracy trade-off (§3.1's saturating-counter unit).
//! * [`predictor_comparison`] — last-value vs stride vs two-delta vs the
//!   §4.2 hybrid, on equal footing.
//! * [`partial_matching`] — the trace-cache policy alternative of paper
//!   reference \[6\] (Friendly, Patel & Patt).
//! * [`btb_sensitivity`] — branch predictors of increasing quality under
//!   the §5 machine, quantifying the paper's closing remark that BTB
//!   accuracy directly scales the value-prediction gain.
//! * [`fetch_mechanisms`] — the §2.2 high-bandwidth fetch mechanisms
//!   (taken-branch-limited, branch address cache, trace cache) compared
//!   head-to-head.
//! * [`penalty_sweep`] — branch/value misprediction penalties around the
//!   paper's (3, 1) operating point.
//! * [`tc_geometry`] — trace-cache size and line length.
//! * [`hint_study`] — the hybrid predictor's dynamic classification vs the
//!   profiling hints of §4.2 (reference \[9\]).
//! * [`model_assumptions`] — relaxing the §3 idealizations (structural
//!   hazards, memory dependencies) one at a time.
//! * [`seed_stability`] — the Figure 3.1 averages across five workload
//!   seeds, showing the conclusions do not hinge on one dataset.

use fetchvp_bpred::{GshareConfig, TwoLevelConfig};
use fetchvp_core::{
    BtbKind, FrontEnd, IdealConfig, MachineConfig, PredictorKind, RealisticConfig, VpConfig,
};
use fetchvp_dfg::profiling::profile_hints;
use fetchvp_fetch::{BacConfig, TraceCacheConfig};
use fetchvp_predictor::{BankedConfig, ConfidenceConfig, StrideKind, TableGeometry};
use fetchvp_predictor::{HybridPredictor, StridePredictor, ValuePredictor};

use crate::report::{num, pct, Table};
use crate::sweep::Sweep;
use crate::{mean, ExperimentConfig};

/// Per-workload rows of (coverage, accuracy, speedup) triples, one
/// column per swept predictor variant.
type VpTripleRows = Vec<(&'static str, Vec<(f64, f64, f64)>)>;

/// The arithmetic mean of column `i` across per-workload result rows.
fn column_mean<R>(rows: &[(&'static str, Vec<R>)], i: usize, f: impl Fn(&R) -> f64) -> f64 {
    mean(&rows.iter().map(|(_, cols)| f(&cols[i])).collect::<Vec<_>>())
}

/// The bank counts swept by [`bank_sweep`].
pub const BANK_SWEEP: [u32; 6] = [1, 2, 4, 8, 16, 64];

/// Result of the bank-count ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct BankSweepResult {
    /// Per bank count: (average speedup, average denial rate).
    pub points: Vec<(u32, f64, f64)>,
}

impl BankSweepResult {
    /// Renders as a markdown table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Ablation — prediction-table banks (trace cache, ideal BTB)",
            &["banks", "avg speedup", "avg denial rate"],
        );
        for (banks, speedup, denial) in &self.points {
            t.row(&[banks.to_string(), pct(*speedup), pct(*denial)]);
        }
        t
    }
}

fn tc_front_end() -> FrontEnd {
    FrontEnd::TraceCache { config: TraceCacheConfig::paper(), btb: BtbKind::Perfect }
}

/// Sweeps the number of banks in the §4 interleaved prediction table.
pub fn bank_sweep(cfg: &ExperimentConfig) -> BankSweepResult {
    bank_sweep_with(&Sweep::serial(cfg))
}

/// [`bank_sweep`] on a [`Sweep`]: per benchmark, the baseline and all bank
/// counts advance in batched lockstep over one trace walk.
pub fn bank_sweep_with(sweep: &Sweep) -> BankSweepResult {
    let mut configs =
        vec![MachineConfig::Realistic(RealisticConfig::paper(tc_front_end(), VpConfig::None))];
    configs.extend(BANK_SWEEP.iter().map(|&banks| {
        MachineConfig::Realistic(
            RealisticConfig::paper(tc_front_end(), VpConfig::stride_infinite())
                .with_banked(BankedConfig::new(banks)),
        )
    }));
    let rows: Vec<(&'static str, Vec<(f64, f64)>)> = sweep
        .machines(&configs)
        .into_iter()
        .map(|(name, results)| {
            let (base, vps) = (&results[0], &results[1..]);
            let cols = vps
                .iter()
                .map(|vp| {
                    let banked = vp.banked_stats.as_ref().expect("banked stats");
                    (vp.speedup_over(base), banked.denial_rate())
                })
                .collect();
            (name, cols)
        })
        .collect();
    BankSweepResult {
        points: BANK_SWEEP
            .iter()
            .enumerate()
            .map(|(i, &banks)| {
                (banks, column_mean(&rows, i, |c| c.0), column_mean(&rows, i, |c| c.1))
            })
            .collect(),
    }
}

/// The window sizes swept by [`window_sweep`].
pub const WINDOW_SWEEP: [usize; 4] = [16, 40, 80, 160];

/// Result of the instruction-window ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSweepResult {
    /// Per window size: average VP speedup on the fetch-16 ideal machine.
    pub points: Vec<(usize, f64)>,
}

impl WindowSweepResult {
    /// Renders as a markdown table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Ablation — instruction-window size (ideal machine, fetch 16)",
            &["window", "avg speedup"],
        );
        for (window, speedup) in &self.points {
            t.row(&[window.to_string(), pct(*speedup)]);
        }
        t
    }
}

/// Sweeps the ideal machine's instruction-window size at fetch rate 16.
pub fn window_sweep(cfg: &ExperimentConfig) -> WindowSweepResult {
    window_sweep_with(&Sweep::serial(cfg))
}

/// [`window_sweep`] on a [`Sweep`]: per benchmark, the base/VP pairs of
/// all window sizes advance in batched lockstep over one trace walk.
pub fn window_sweep_with(sweep: &Sweep) -> WindowSweepResult {
    let configs: Vec<MachineConfig> = WINDOW_SWEEP
        .iter()
        .flat_map(|&window| {
            [VpConfig::None, VpConfig::stride_infinite()].map(|vp| {
                MachineConfig::Ideal(IdealConfig {
                    fetch_rate: 16,
                    window,
                    vp,
                    ..IdealConfig::default()
                })
            })
        })
        .collect();
    let rows: Vec<(&'static str, Vec<f64>)> = sweep
        .machines(&configs)
        .into_iter()
        .map(|(name, results)| {
            (name, results.chunks_exact(2).map(|pair| pair[1].speedup_over(&pair[0])).collect())
        })
        .collect();
    WindowSweepResult {
        points: WINDOW_SWEEP
            .iter()
            .enumerate()
            .map(|(i, &w)| (w, column_mean(&rows, i, |&s| s)))
            .collect(),
    }
}

/// Result of the classification-threshold ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfidenceSweepResult {
    /// Per threshold: (threshold, avg coverage, avg accuracy, avg speedup).
    pub points: Vec<(u8, f64, f64, f64)>,
}

impl ConfidenceSweepResult {
    /// Renders as a markdown table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Ablation — classification threshold (2-bit counters, ideal machine, fetch 16)",
            &["predict at", "coverage", "accuracy", "avg speedup"],
        );
        for (at, cov, acc, speedup) in &self.points {
            t.row(&[at.to_string(), pct(*cov), pct(*acc), pct(*speedup)]);
        }
        t
    }
}

/// Sweeps the saturating-counter confidence threshold.
pub fn confidence_sweep(cfg: &ExperimentConfig) -> ConfidenceSweepResult {
    confidence_sweep_with(&Sweep::serial(cfg))
}

/// [`confidence_sweep`] on a [`Sweep`]: per benchmark, the baseline and
/// all thresholds advance in batched lockstep over one trace walk.
pub fn confidence_sweep_with(sweep: &Sweep) -> ConfidenceSweepResult {
    let thresholds: [u8; 4] = [0, 1, 2, 3];
    let ideal16 =
        |vp| MachineConfig::Ideal(IdealConfig { fetch_rate: 16, vp, ..IdealConfig::default() });
    let mut configs = vec![ideal16(VpConfig::None)];
    configs.extend(thresholds.iter().map(|&predict_at| {
        ideal16(VpConfig::Predictor(PredictorKind::Stride {
            geometry: TableGeometry::Infinite,
            confidence: ConfidenceConfig { bits: 2, predict_at, initial: 0 },
            kind: StrideKind::Simple,
        }))
    }));
    let rows: VpTripleRows = sweep
        .machines(&configs)
        .into_iter()
        .map(|(name, results)| {
            let (base, vps) = (&results[0], &results[1..]);
            let cols = vps
                .iter()
                .map(|vp| {
                    let s = vp.vp_stats.as_ref().expect("predictor stats");
                    (s.coverage(), s.accuracy(), vp.speedup_over(base))
                })
                .collect();
            (name, cols)
        })
        .collect();
    ConfidenceSweepResult {
        points: thresholds
            .iter()
            .enumerate()
            .map(|(i, &at)| {
                (
                    at,
                    column_mean(&rows, i, |c| c.0),
                    column_mean(&rows, i, |c| c.1),
                    column_mean(&rows, i, |c| c.2),
                )
            })
            .collect(),
    }
}

/// Result of the predictor-kind comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictorComparisonResult {
    /// Per predictor: (name, avg coverage, avg accuracy, avg speedup).
    pub points: Vec<(String, f64, f64, f64)>,
}

impl PredictorComparisonResult {
    /// Renders as a markdown table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Ablation — predictor kind (ideal machine, fetch 16)",
            &["predictor", "coverage", "accuracy", "avg speedup"],
        );
        for (name, cov, acc, speedup) in &self.points {
            t.row(&[name.clone(), pct(*cov), pct(*acc), pct(*speedup)]);
        }
        t
    }

    /// The average speedup of one predictor.
    pub fn speedup_of(&self, name: &str) -> Option<f64> {
        self.points.iter().find(|(n, ..)| n == name).map(|&(_, _, _, s)| s)
    }
}

/// Compares last-value, simple-stride, two-delta-stride, hybrid and FCM
/// prediction under identical machine conditions (§4.2's discussion plus
/// the context-based scheme of reference \[22\]).
pub fn predictor_comparison(cfg: &ExperimentConfig) -> PredictorComparisonResult {
    predictor_comparison_with(&Sweep::serial(cfg))
}

/// [`predictor_comparison`] on a [`Sweep`]: per benchmark, the baseline
/// and all predictor kinds advance in batched lockstep over one trace
/// walk.
pub fn predictor_comparison_with(sweep: &Sweep) -> PredictorComparisonResult {
    let kinds: [(&str, PredictorKind); 5] = [
        (
            "last-value",
            PredictorKind::LastValue {
                geometry: TableGeometry::Infinite,
                confidence: ConfidenceConfig::paper(),
            },
        ),
        (
            "stride",
            PredictorKind::Stride {
                geometry: TableGeometry::Infinite,
                confidence: ConfidenceConfig::paper(),
                kind: StrideKind::Simple,
            },
        ),
        (
            "stride-2delta",
            PredictorKind::Stride {
                geometry: TableGeometry::Infinite,
                confidence: ConfidenceConfig::paper(),
                kind: StrideKind::TwoDelta,
            },
        ),
        ("hybrid", PredictorKind::Hybrid),
        ("fcm", PredictorKind::Fcm { confidence: ConfidenceConfig::paper() }),
    ];
    let mut configs = vec![MachineConfig::Ideal(IdealConfig {
        fetch_rate: 16,
        vp: VpConfig::None,
        ..IdealConfig::default()
    })];
    configs.extend(kinds.iter().map(|(_, kind)| {
        MachineConfig::Ideal(IdealConfig {
            fetch_rate: 16,
            vp: VpConfig::Predictor(*kind),
            ..IdealConfig::default()
        })
    }));
    let rows: VpTripleRows = sweep
        .machines(&configs)
        .into_iter()
        .map(|(name, results)| {
            let (base, vps) = (&results[0], &results[1..]);
            let cols = vps
                .iter()
                .map(|vp| {
                    let s = vp.vp_stats.as_ref().expect("predictor stats");
                    (s.coverage(), s.accuracy(), vp.speedup_over(base))
                })
                .collect();
            (name, cols)
        })
        .collect();
    PredictorComparisonResult {
        points: kinds
            .iter()
            .enumerate()
            .map(|(i, (name, _))| {
                (
                    name.to_string(),
                    column_mean(&rows, i, |c| c.0),
                    column_mean(&rows, i, |c| c.1),
                    column_mean(&rows, i, |c| c.2),
                )
            })
            .collect(),
    }
}

/// Result of the seed-stability study.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedStabilityResult {
    /// Per fetch rate: (rate, min, mean, max) of the Figure 3.1 suite
    /// average across seeds.
    pub points: Vec<(usize, f64, f64, f64)>,
}

impl SeedStabilityResult {
    /// Renders as a markdown table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Ablation — seed stability of the Figure 3.1 averages",
            &["fetch rate", "min", "mean", "max"],
        );
        for (rate, min, mean_, max) in &self.points {
            t.row(&[rate.to_string(), pct(*min), pct(*mean_), pct(*max)]);
        }
        t
    }
}

/// Re-runs the Figure 3.1 averages across several workload-data seeds: the
/// paper's conclusions must not depend on one synthetic dataset.
pub fn seed_stability(cfg: &ExperimentConfig) -> SeedStabilityResult {
    seed_stability_with(&Sweep::serial(cfg))
}

/// [`seed_stability`] parallelized within each seed. Every seed generates
/// *different* traces, so it cannot share the caller's [`TraceCache`](crate::TraceCache); each
/// seed gets its own sweep (with the caller's job count) and runs in turn.
pub fn seed_stability_with(sweep: &Sweep) -> SeedStabilityResult {
    let cfg = sweep.config();
    let seeds = [cfg.workloads.seed, 1, 42, 0xDEAD_BEEF, 0x1998];
    let mut per_rate: Vec<Vec<f64>> = vec![Vec::new(); crate::fig3_1::FETCH_RATES.len()];
    for seed in seeds {
        let seeded = ExperimentConfig {
            workloads: fetchvp_workloads::WorkloadParams { seed, ..cfg.workloads },
            ..*cfg
        };
        let averages = crate::fig3_1::run_with(&Sweep::with_jobs(&seeded, sweep.jobs())).averages();
        for (i, a) in averages.into_iter().enumerate() {
            per_rate[i].push(a);
        }
    }
    SeedStabilityResult {
        points: crate::fig3_1::FETCH_RATES
            .iter()
            .enumerate()
            .map(|(i, &rate)| {
                let xs = &per_rate[i];
                let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
                let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                (rate, min, mean(xs), max)
            })
            .collect(),
    }
}

/// Result of the model-assumption study.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelAssumptionsResult {
    /// Per model variant: (name, avg base IPC, avg VP speedup) on the
    /// fetch-16 ideal machine.
    pub points: Vec<(String, f64, f64)>,
}

impl ModelAssumptionsResult {
    /// Renders as a markdown table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Ablation — model assumptions (ideal machine, fetch 16)",
            &["model", "base IPC", "avg VP speedup"],
        );
        for (name, ipc, speedup) in &self.points {
            t.row(&[name.clone(), num(*ipc), pct(*speedup)]);
        }
        t
    }
}

/// Relaxes the §3 model's idealizations one at a time: finite execution
/// units (structural hazards) and memory dependencies (store-to-load
/// ordering), quantifying how much each assumption contributes to the
/// reported speedups.
pub fn model_assumptions(cfg: &ExperimentConfig) -> ModelAssumptionsResult {
    model_assumptions_with(&Sweep::serial(cfg))
}

/// [`model_assumptions`] on a [`Sweep`]: per benchmark, the base/VP pairs
/// of all variants advance in batched lockstep over one trace walk.
pub fn model_assumptions_with(sweep: &Sweep) -> ModelAssumptionsResult {
    let variants: [(&str, Option<usize>, bool); 4] = [
        ("paper model (no structural/memory constraints)", None, false),
        ("+ memory dependencies", None, true),
        ("+ 8 execution units", Some(8), false),
        ("+ both", Some(8), true),
    ];
    let configs: Vec<MachineConfig> = variants
        .iter()
        .flat_map(|&(_, exec_units, memory_deps)| {
            [VpConfig::None, VpConfig::stride_infinite()].map(|vp| {
                MachineConfig::Ideal(IdealConfig {
                    fetch_rate: 16,
                    vp,
                    exec_units,
                    memory_deps,
                    ..IdealConfig::default()
                })
            })
        })
        .collect();
    let rows: Vec<(&'static str, Vec<(f64, f64)>)> = sweep
        .machines(&configs)
        .into_iter()
        .map(|(name, results)| {
            let cols = results
                .chunks_exact(2)
                .map(|pair| (pair[0].ipc(), pair[1].speedup_over(&pair[0])))
                .collect();
            (name, cols)
        })
        .collect();
    ModelAssumptionsResult {
        points: variants
            .iter()
            .enumerate()
            .map(|(i, (name, _, _))| {
                (name.to_string(), column_mean(&rows, i, |c| c.0), column_mean(&rows, i, |c| c.1))
            })
            .collect(),
    }
}

/// Result of the misprediction-penalty sensitivity study.
#[derive(Debug, Clone, PartialEq)]
pub struct PenaltySweepResult {
    /// Per (branch penalty, value penalty): average VP speedup at n=4 with
    /// the 2-level BTB.
    pub points: Vec<(u64, u64, f64)>,
}

impl PenaltySweepResult {
    /// Renders as a markdown table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Ablation — misprediction penalties (conventional fetch, n=4, 2-level BTB)",
            &["branch penalty", "value penalty", "avg VP speedup"],
        );
        for (bp, vp, speedup) in &self.points {
            t.row(&[bp.to_string(), vp.to_string(), pct(*speedup)]);
        }
        t
    }
}

/// Sweeps the branch- and value-misprediction penalties around the paper's
/// (3, 1) operating point.
pub fn penalty_sweep(cfg: &ExperimentConfig) -> PenaltySweepResult {
    penalty_sweep_with(&Sweep::serial(cfg))
}

/// [`penalty_sweep`] on a [`Sweep`]: per benchmark, the base/VP pairs of
/// all grid points advance in batched lockstep over one trace walk.
pub fn penalty_sweep_with(sweep: &Sweep) -> PenaltySweepResult {
    let grid: [(u64, u64); 5] = [(0, 1), (3, 0), (3, 1), (3, 3), (10, 1)];
    let fe =
        FrontEnd::Conventional { width: 40, max_taken: Some(4), btb: BtbKind::two_level_paper() };
    let configs: Vec<MachineConfig> = grid
        .iter()
        .flat_map(|&(branch_penalty, value_penalty)| {
            [VpConfig::None, VpConfig::stride_infinite()].map(|vp| {
                MachineConfig::Realistic(RealisticConfig {
                    branch_penalty,
                    value_penalty,
                    ..RealisticConfig::paper(fe, vp)
                })
            })
        })
        .collect();
    let rows: Vec<(&'static str, Vec<f64>)> = sweep
        .machines(&configs)
        .into_iter()
        .map(|(name, results)| {
            (name, results.chunks_exact(2).map(|pair| pair[1].speedup_over(&pair[0])).collect())
        })
        .collect();
    PenaltySweepResult {
        points: grid
            .iter()
            .enumerate()
            .map(|(i, &(bp, vp))| (bp, vp, column_mean(&rows, i, |&s| s)))
            .collect(),
    }
}

/// Result of the trace-cache geometry sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TcGeometryResult {
    /// Per geometry: (entries, line size, avg base IPC, avg VP speedup).
    pub points: Vec<(usize, usize, f64, f64)>,
}

impl TcGeometryResult {
    /// Renders as a markdown table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Ablation — trace-cache geometry (2-level BTB, stride VP)",
            &["entries", "line instrs", "base IPC", "avg VP speedup"],
        );
        for (entries, line, ipc, speedup) in &self.points {
            t.row(&[entries.to_string(), line.to_string(), num(*ipc), pct(*speedup)]);
        }
        t
    }
}

/// Sweeps the trace-cache size and line length around the paper's
/// 64-entry, 32-instruction design point — §5's "improving the performance
/// of the trace cache".
pub fn tc_geometry(cfg: &ExperimentConfig) -> TcGeometryResult {
    tc_geometry_with(&Sweep::serial(cfg))
}

/// [`tc_geometry`] on a [`Sweep`]: per benchmark, the base/VP pairs of
/// all geometries advance in batched lockstep over one trace walk.
pub fn tc_geometry_with(sweep: &Sweep) -> TcGeometryResult {
    let geometries: [(usize, usize); 4] = [(16, 16), (64, 16), (64, 32), (256, 32)];
    let configs: Vec<MachineConfig> = geometries
        .iter()
        .flat_map(|&(entries, max_instrs)| {
            let fe = FrontEnd::TraceCache {
                config: TraceCacheConfig { entries, max_instrs, ..TraceCacheConfig::paper() },
                btb: BtbKind::two_level_paper(),
            };
            [VpConfig::None, VpConfig::stride_infinite()]
                .map(|vp| MachineConfig::Realistic(RealisticConfig::paper(fe, vp)))
        })
        .collect();
    let rows: Vec<(&'static str, Vec<(f64, f64)>)> = sweep
        .machines(&configs)
        .into_iter()
        .map(|(name, results)| {
            let cols = results
                .chunks_exact(2)
                .map(|pair| (pair[0].ipc(), pair[1].speedup_over(&pair[0])))
                .collect();
            (name, cols)
        })
        .collect();
    TcGeometryResult {
        points: geometries
            .iter()
            .enumerate()
            .map(|(i, &(e, l))| {
                (e, l, column_mean(&rows, i, |c| c.0), column_mean(&rows, i, |c| c.1))
            })
            .collect(),
    }
}

/// Result of the hint-classification study (§4.2 / reference \[9\]).
#[derive(Debug, Clone, PartialEq)]
pub struct HintStudyResult {
    /// Per scheme: (name, avg coverage, avg accuracy).
    pub points: Vec<(String, f64, f64)>,
}

impl HintStudyResult {
    /// Renders as a markdown table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Ablation — hybrid classification: dynamic vs profiling hints",
            &["scheme", "coverage", "accuracy"],
        );
        for (name, cov, acc) in &self.points {
            t.row(&[name.clone(), pct(*cov), pct(*acc)]);
        }
        t
    }

    /// The `(coverage, accuracy)` of one scheme.
    pub fn point_of(&self, name: &str) -> Option<(f64, f64)> {
        self.points.iter().find(|(n, ..)| n == name).map(|&(_, c, a)| (c, a))
    }
}

/// Compares the hybrid predictor's dynamic classification against
/// profiling-based opcode hints (§4.2, reference \[9\]): the first half of
/// each trace trains the profile, the second half evaluates all schemes.
pub fn hint_study(cfg: &ExperimentConfig) -> HintStudyResult {
    hint_study_with(&Sweep::serial(cfg))
}

/// [`hint_study`] on a [`Sweep`], one job per benchmark (the three schemes
/// share a single pass over the trace).
pub fn hint_study_with(sweep: &Sweep) -> HintStudyResult {
    let names = ["stride", "hybrid (dynamic)", "hybrid (profiled hints)"];
    let rows = sweep.per_workload(|_, trace| {
        let (train_trace, _) = trace.split_at(trace.len() / 2);
        let view = trace.view();
        let split = trace.len() / 2;
        let hints = profile_hints(&train_trace, 0.85);
        let mut predictors: [Box<dyn ValuePredictor>; 3] = [
            Box::new(StridePredictor::infinite()),
            Box::new(HybridPredictor::paper()),
            Box::new(HybridPredictor::paper().with_hints(hints)),
        ];
        // Warm all predictors on the training half, then measure on the
        // evaluation half.
        let mut evaluation = [fetchvp_predictor::PredictorStats::default(); 3];
        for (phase, range) in [(0, 0..split), (1, split..trace.len())] {
            for rec in view.slots_in(range) {
                if !rec.produces_value() {
                    continue;
                }
                for (i, p) in predictors.iter_mut().enumerate() {
                    let before = p.stats();
                    let predicted = p.lookup(rec.pc());
                    p.commit(rec.pc(), rec.result(), predicted);
                    if phase == 1 {
                        let after = p.stats();
                        evaluation[i].lookups += after.lookups - before.lookups;
                        evaluation[i].predictions += after.predictions - before.predictions;
                        evaluation[i].correct += after.correct - before.correct;
                        evaluation[i].incorrect += after.incorrect - before.incorrect;
                        evaluation[i].unpredicted += after.unpredicted - before.unpredicted;
                    }
                }
            }
        }
        evaluation.iter().map(|e| (e.coverage(), e.accuracy())).collect::<Vec<_>>()
    });
    HintStudyResult {
        points: names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                (name.to_string(), column_mean(&rows, i, |c| c.0), column_mean(&rows, i, |c| c.1))
            })
            .collect(),
    }
}

/// Result of the fetch-mechanism comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchMechanismResult {
    /// Per front-end: (name, avg baseline IPC, avg VP speedup).
    pub points: Vec<(String, f64, f64)>,
}

impl FetchMechanismResult {
    /// Renders as a markdown table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Ablation — high-bandwidth fetch mechanisms (2-level BTB, stride VP)",
            &["front-end", "base IPC", "avg VP speedup"],
        );
        for (name, ipc, speedup) in &self.points {
            t.row(&[name.clone(), num(*ipc), pct(*speedup)]);
        }
        t
    }

    /// The `(base IPC, speedup)` of one front-end.
    pub fn point_of(&self, name: &str) -> Option<(f64, f64)> {
        self.points.iter().find(|(n, ..)| n == name).map(|&(_, i, s)| (i, s))
    }
}

/// Compares the §2.2 high-bandwidth fetch mechanisms head-to-head: one
/// taken branch per cycle (present processors), the branch address cache
/// (\[28\]), and the trace cache (\[18\]) — all with the paper's 2-level
/// BTB and stride value prediction.
pub fn fetch_mechanisms(cfg: &ExperimentConfig) -> FetchMechanismResult {
    fetch_mechanisms_with(&Sweep::serial(cfg))
}

/// [`fetch_mechanisms`] on a [`Sweep`]: per benchmark, the base/VP pairs
/// of all front-ends advance in batched lockstep over one trace walk.
pub fn fetch_mechanisms_with(sweep: &Sweep) -> FetchMechanismResult {
    let front_ends: [(&str, FrontEnd); 4] = [
        (
            "conventional, 1 taken/cycle",
            FrontEnd::Conventional {
                width: 40,
                max_taken: Some(1),
                btb: BtbKind::two_level_paper(),
            },
        ),
        (
            "conventional, 4 taken/cycle",
            FrontEnd::Conventional {
                width: 40,
                max_taken: Some(4),
                btb: BtbKind::two_level_paper(),
            },
        ),
        (
            "branch address cache (3 blocks)",
            FrontEnd::BranchAddressCache {
                config: BacConfig::classic(),
                btb: BtbKind::two_level_paper(),
            },
        ),
        (
            "trace cache (64 x 32)",
            FrontEnd::TraceCache {
                config: TraceCacheConfig::paper(),
                btb: BtbKind::two_level_paper(),
            },
        ),
    ];
    let configs: Vec<MachineConfig> = front_ends
        .iter()
        .flat_map(|&(_, fe)| {
            [VpConfig::None, VpConfig::stride_infinite()]
                .map(|vp| MachineConfig::Realistic(RealisticConfig::paper(fe, vp)))
        })
        .collect();
    let rows: Vec<(&'static str, Vec<(f64, f64)>)> = sweep
        .machines(&configs)
        .into_iter()
        .map(|(name, results)| {
            let cols = results
                .chunks_exact(2)
                .map(|pair| (pair[0].ipc(), pair[1].speedup_over(&pair[0])))
                .collect();
            (name, cols)
        })
        .collect();
    FetchMechanismResult {
        points: front_ends
            .iter()
            .enumerate()
            .map(|(i, (name, _))| {
                (name.to_string(), column_mean(&rows, i, |c| c.0), column_mean(&rows, i, |c| c.1))
            })
            .collect(),
    }
}

/// Result of the BTB-sensitivity study.
#[derive(Debug, Clone, PartialEq)]
pub struct BtbSensitivityResult {
    /// Per BTB: (name, avg conditional accuracy, avg VP speedup at n=4).
    pub points: Vec<(String, f64, f64)>,
}

impl BtbSensitivityResult {
    /// Renders as a markdown table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Ablation — BTB sensitivity (conventional fetch, n=4, stride VP)",
            &["branch predictor", "cond accuracy", "avg VP speedup"],
        );
        for (name, acc, speedup) in &self.points {
            t.row(&[name.clone(), pct(*acc), pct(*speedup)]);
        }
        t
    }
}

/// Quantifies §5's closing remark — "any small improvement in the BTB
/// accuracy can considerably affect the performance gain of value
/// prediction" — by sweeping branch predictors of increasing quality under
/// the Figure 5.1/5.2 machine at n = 4.
pub fn btb_sensitivity(cfg: &ExperimentConfig) -> BtbSensitivityResult {
    btb_sensitivity_with(&Sweep::serial(cfg))
}

/// [`btb_sensitivity`] on a [`Sweep`]: per benchmark, the base/VP pairs
/// of all BTBs advance in batched lockstep over one trace walk.
pub fn btb_sensitivity_with(sweep: &Sweep) -> BtbSensitivityResult {
    let btbs: [(&str, BtbKind); 4] = [
        (
            "2-level, 512-entry",
            BtbKind::TwoLevel(TwoLevelConfig { entries: 512, assoc: 2, history_bits: 4 }),
        ),
        ("2-level, 2K-entry (paper)", BtbKind::two_level_paper()),
        ("gshare, 12-bit history", BtbKind::Gshare(GshareConfig::default_budget())),
        ("ideal", BtbKind::Perfect),
    ];
    let configs: Vec<MachineConfig> = btbs
        .iter()
        .flat_map(|&(_, btb)| {
            let fe = FrontEnd::Conventional { width: 40, max_taken: Some(4), btb };
            [VpConfig::None, VpConfig::stride_infinite()]
                .map(|vp| MachineConfig::Realistic(RealisticConfig::paper(fe, vp)))
        })
        .collect();
    let rows: Vec<(&'static str, Vec<(f64, f64)>)> = sweep
        .machines(&configs)
        .into_iter()
        .map(|(name, results)| {
            let cols = results
                .chunks_exact(2)
                .zip(&btbs)
                .map(|(pair, &(_, btb))| {
                    let bp = pair[1].bpred_stats.as_ref().expect("bpred stats");
                    // The perfect predictor never sees conditional branches
                    // as "cond" mispredictions; report 100% explicitly.
                    let acc =
                        if matches!(btb, BtbKind::Perfect) { 1.0 } else { bp.cond_accuracy() };
                    (acc, pair[1].speedup_over(&pair[0]))
                })
                .collect();
            (name, cols)
        })
        .collect();
    BtbSensitivityResult {
        points: btbs
            .iter()
            .enumerate()
            .map(|(i, (name, _))| {
                (name.to_string(), column_mean(&rows, i, |c| c.0), column_mean(&rows, i, |c| c.1))
            })
            .collect(),
    }
}

/// Result of the partial-matching ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialMatchingResult {
    /// Per benchmark: (name, base-policy IPC, partial-matching IPC).
    pub rows: Vec<(String, f64, f64)>,
}

impl PartialMatchingResult {
    /// Renders as a markdown table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Ablation — trace-cache partial matching (2-level BTB, stride VP)",
            &["benchmark", "full-match IPC", "partial-match IPC", "gain"],
        );
        for (name, full, partial) in &self.rows {
            t.row(&[name.clone(), num(*full), num(*partial), pct(partial / full - 1.0)]);
        }
        t
    }
}

/// Compares the base (full-match-or-miss) trace cache against partial
/// matching (paper reference \[6\]).
pub fn partial_matching(cfg: &ExperimentConfig) -> PartialMatchingResult {
    partial_matching_with(&Sweep::serial(cfg))
}

/// [`partial_matching`] on a [`Sweep`]: per benchmark, both policies
/// advance in batched lockstep over one trace walk.
pub fn partial_matching_with(sweep: &Sweep) -> PartialMatchingResult {
    let configs = [false, true].map(|partial_matching| {
        let fe = FrontEnd::TraceCache {
            config: TraceCacheConfig { partial_matching, ..TraceCacheConfig::paper() },
            btb: BtbKind::two_level_paper(),
        };
        MachineConfig::Realistic(RealisticConfig::paper(fe, VpConfig::stride_infinite()))
    });
    let rows = sweep
        .machines(&configs)
        .into_iter()
        .map(|(n, ipcs)| (n.to_string(), ipcs[0].ipc(), ipcs[1].ipc()))
        .collect();
    PartialMatchingResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig { trace_len: 15_000, ..ExperimentConfig::default() }
    }

    #[test]
    fn bank_sweep_denials_fall_monotonically() {
        let r = bank_sweep(&cfg());
        assert_eq!(r.points.len(), BANK_SWEEP.len());
        for w in r.points.windows(2) {
            assert!(w[1].2 <= w[0].2 + 1e-9, "denial rate rose: {:?}", r.points);
        }
        // Enough banks eliminate denials entirely.
        assert!(r.points.last().unwrap().2 < 0.01);
    }

    #[test]
    fn window_sweep_speedup_grows_with_window() {
        let r = window_sweep(&cfg());
        let first = r.points.first().unwrap().1;
        let last = r.points.last().unwrap().1;
        assert!(last >= first - 0.02, "window growth hurt: {:?}", r.points);
    }

    #[test]
    fn confidence_sweep_trades_coverage_for_accuracy() {
        let r = confidence_sweep(&cfg());
        for w in r.points.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9, "coverage must fall: {:?}", r.points);
            assert!(w[1].2 >= w[0].2 - 0.02, "accuracy must rise: {:?}", r.points);
        }
    }

    #[test]
    fn stride_beats_last_value_on_this_suite() {
        let r = predictor_comparison(&cfg());
        let stride = r.speedup_of("stride").unwrap();
        let last = r.speedup_of("last-value").unwrap();
        assert!(
            stride > last,
            "stride {stride:.2} should beat last-value {last:.2} on strided workloads"
        );
        assert_eq!(r.points.len(), 5);
    }

    #[test]
    fn partial_matching_does_not_hurt() {
        let r = partial_matching(&cfg());
        for (name, full, partial) in &r.rows {
            assert!(partial >= &(full * 0.97), "{name}: partial matching lost >3%");
        }
    }

    #[test]
    fn conclusions_hold_across_seeds() {
        let r =
            seed_stability(&ExperimentConfig { trace_len: 8_000, ..ExperimentConfig::default() });
        // Fetch-4 is negligible for every seed; fetch-40 is large for every
        // seed.
        let at4 = r.points[0];
        let at40 = *r.points.last().unwrap();
        assert!(at4.3 < 0.10, "fetch-4 max {:?}", at4);
        assert!(at40.1 > 0.25, "fetch-40 min {:?}", at40);
    }

    #[test]
    fn relaxed_assumptions_only_reduce_ipc() {
        let r = model_assumptions(&cfg());
        let base = r.points[0].1;
        for (name, ipc, _) in &r.points[1..] {
            assert!(*ipc <= base + 1e-9, "{name}: IPC {ipc:.2} above the ideal {base:.2}");
        }
    }

    #[test]
    fn harsher_penalties_reduce_the_gain() {
        let r = penalty_sweep(&cfg());
        let find = |bp, vp| {
            r.points.iter().find(|&&(b, v, _)| (b, v) == (bp, vp)).map(|&(_, _, s)| s).unwrap()
        };
        // A 3-cycle value penalty cannot beat a free one.
        assert!(find(3, 3) <= find(3, 0) + 0.03, "{:?}", r.points);
        assert_eq!(r.points.len(), 5);
    }

    #[test]
    fn bigger_trace_caches_do_not_hurt() {
        let r = tc_geometry(&cfg());
        let small = r.points[0].2;
        let big = r.points.last().unwrap().2;
        assert!(big >= small - 0.05, "bigger cache lost IPC: {:?}", r.points);
    }

    #[test]
    fn profiled_hints_trade_coverage_for_accuracy() {
        let r = hint_study(&cfg());
        let (dyn_cov, _) = r.point_of("hybrid (dynamic)").unwrap();
        let (hint_cov, hint_acc) = r.point_of("hybrid (profiled hints)").unwrap();
        // Hints exclude unpredictable PCs entirely: lower coverage, high
        // accuracy.
        assert!(hint_cov <= dyn_cov + 0.02, "{:?}", r.points);
        assert!(hint_acc > 0.9, "hinted accuracy {hint_acc:.2}");
    }

    #[test]
    fn high_bandwidth_mechanisms_beat_single_taken_branch_fetch() {
        let r = fetch_mechanisms(&cfg());
        let (one_ipc, _) = r.point_of("conventional, 1 taken/cycle").unwrap();
        let (bac_ipc, _) = r.point_of("branch address cache (3 blocks)").unwrap();
        let (tc_ipc, _) = r.point_of("trace cache (64 x 32)").unwrap();
        assert!(bac_ipc >= one_ipc * 0.95, "BAC {bac_ipc:.2} vs 1-taken {one_ipc:.2}");
        assert!(tc_ipc > one_ipc, "TC {tc_ipc:.2} vs 1-taken {one_ipc:.2}");
    }

    #[test]
    fn btb_quality_scales_vp_gain() {
        let r = btb_sensitivity(&cfg());
        assert_eq!(r.points.len(), 4);
        let small = r.points[0].2;
        let ideal = r.points[3].2;
        assert!(ideal >= small - 0.02, "ideal BTB {ideal:.2} vs small {small:.2}");
        // Accuracy orders with predictor quality.
        assert!(r.points[3].1 >= r.points[0].1);
    }

    #[test]
    fn tables_render() {
        let c = cfg();
        assert!(bank_sweep(&c).to_table().to_string().contains("banks"));
        assert!(window_sweep(&c).to_table().num_rows() == WINDOW_SWEEP.len());
    }
}
