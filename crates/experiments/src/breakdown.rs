//! Retire-slot attribution: where every cycle goes, with and without value
//! prediction.
//!
//! The paper's story in one table: a fetch-limited machine loses its slots
//! to *fetch starvation* and value prediction cannot help; a
//! bandwidth-rich machine loses them to *dataflow stalls*, which value
//! prediction converts into retirement. Uses the event-driven machine,
//! which attributes every retire slot (see
//! [`fetchvp_core::CycleBreakdown`]).

use fetchvp_core::event::EventMachine;
use fetchvp_core::{BtbKind, CycleBreakdown, FrontEnd, RealisticConfig, VpConfig};

use crate::report::{pct, Table};
use crate::sweep::Sweep;
use crate::ExperimentConfig;

/// One benchmark's slot attribution under one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakdownRow {
    /// The attribution.
    pub slots: CycleBreakdown,
}

/// Per-benchmark slot attribution for baseline and VP machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakdownResult {
    /// `(benchmark, baseline attribution, VP attribution)` in suite order.
    pub rows: Vec<(String, CycleBreakdown, CycleBreakdown)>,
}

impl BreakdownResult {
    /// The `(baseline, VP)` attribution of one benchmark.
    pub fn row_of(&self, name: &str) -> Option<(CycleBreakdown, CycleBreakdown)> {
        self.rows.iter().find(|(n, ..)| n == name).map(|&(_, b, v)| (b, v))
    }

    /// Renders as a markdown table (fractions of all retire slots).
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Retire-slot attribution (event machine, 4 taken branches/cycle, 2-level BTB)",
            &[
                "benchmark",
                "config",
                "retiring",
                "dataflow stall",
                "fetch starved",
                "mispredict stall",
            ],
        );
        for (name, base, vp) in &self.rows {
            for (config, b) in [("baseline", base), ("stride VP", vp)] {
                t.row(&[
                    name.clone(),
                    config.to_string(),
                    pct(b.fraction(b.retiring)),
                    pct(b.fraction(b.dataflow_stall)),
                    pct(b.fraction(b.fetch_starved)),
                    pct(b.fraction(b.mispredict_stall)),
                ]);
            }
        }
        t
    }
}

/// Runs the attribution for the whole suite, serially.
pub fn run(cfg: &ExperimentConfig) -> BreakdownResult {
    run_with(&Sweep::serial(cfg))
}

/// Runs the attribution on a [`Sweep`], one job per (benchmark, config)
/// cell.
pub fn run_with(sweep: &Sweep) -> BreakdownResult {
    let fe =
        FrontEnd::Conventional { width: 40, max_taken: Some(4), btb: BtbKind::two_level_paper() };
    let configs = [VpConfig::None, VpConfig::stride_infinite()];
    let rows = sweep.cells(&configs, |_, trace, &vp| {
        EventMachine::new(RealisticConfig::paper(fe, vp))
            .run(trace)
            .cycle_breakdown
            .expect("event machine attributes slots")
    });
    BreakdownResult { rows: rows.into_iter().map(|(n, b)| (n.to_string(), b[0], b[1])).collect() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig { trace_len: 20_000, ..ExperimentConfig::default() }
    }

    #[test]
    fn attributions_cover_every_slot() {
        let r = run(&cfg());
        assert_eq!(r.rows.len(), 8);
        for (name, base, vp) in &r.rows {
            assert!(base.total() > 0, "{name}");
            // VP retires the same instruction count in (hopefully) fewer
            // slots-total; both attributions must be complete.
            assert_eq!(base.retiring, vp.retiring, "{name}: same retired work");
            assert!(vp.total() <= base.total() + 40, "{name}: VP should not add slots");
        }
    }

    #[test]
    fn vp_reduces_dataflow_stalls_where_it_speeds_up() {
        let r = run(&cfg());
        let (base, vp) = r.row_of("vortex").expect("vortex in suite");
        assert!(
            vp.dataflow_stall < base.dataflow_stall,
            "vortex dataflow slots {} -> {}",
            base.dataflow_stall,
            vp.dataflow_stall
        );
    }

    #[test]
    fn table_shape() {
        let r = run(&ExperimentConfig { trace_len: 5_000, ..ExperimentConfig::default() });
        assert_eq!(r.to_table().num_rows(), 16); // 8 benchmarks x 2 configs
    }
}
